//! Slice sampling helpers mirroring `rand::seq::SliceRandom`.

use crate::{uniform_below, RngCore};

/// Iterator over the elements selected by [`SliceRandom::choose_multiple`].
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: std::vec::IntoIter<usize>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        self.indices.next().map(|i| &self.slice[i])
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.indices.size_hint()
    }
}

impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

/// Random selection and shuffling on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// One uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements chosen uniformly without replacement
    /// (all of them if `amount >= len`), in random order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector: the first `amount`
        // slots end up holding a uniform sample without replacement.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + uniform_below(rng, (self.len() - i) as u64) as usize;
            indices.swap(i, j);
        }
        indices.truncate(amount);
        SliceChooseIter {
            slice: self,
            indices: indices.into_iter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mix64, GOLDEN_GAMMA};

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = mix64(self.0.wrapping_add(GOLDEN_GAMMA));
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_is_distinct_and_sized() {
        let mut rng = Counter(2);
        let v: Vec<u32> = (0..30).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 12).copied().collect();
        assert_eq!(picked.len(), 12);
        let set: std::collections::BTreeSet<u32> = picked.iter().copied().collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn choose_multiple_clamps_to_len() {
        let mut rng = Counter(3);
        let v = [1u8, 2, 3];
        assert_eq!(v.choose_multiple(&mut rng, 10).count(), 3);
    }
}
