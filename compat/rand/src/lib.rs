//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `RngCore`/`Rng`/`SeedableRng`, uniform ranges, and the slice
//! helpers in [`seq`]. The build environment has no registry access, so the
//! workspace resolves `rand` to this path crate instead of crates.io.
//!
//! Only determinism is promised, not value-compatibility with upstream
//! `rand`: generators seeded through [`SeedableRng::seed_from_u64`] expand
//! the seed with `SplitMix64` rather than upstream's PCG32 expansion.

pub mod seq;

/// The odd constant from `SplitMix64` (2^64 / phi).
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Finalizer of `SplitMix64`: a bijective avalanche mix of a 64-bit word.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A raw source of random 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit state into a full seed via the `SplitMix64` stream.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(GOLDEN_GAMMA);
            let word = mix64(s).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unbiased uniform draw in [0, n) by Lemire's multiply-shift rejection.
#[inline]
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = (rng.next_u64() as u128) * (n as u128);
    if (m as u64) < n {
        let threshold = n.wrapping_neg() % n;
        while (m as u64) < threshold {
            m = (rng.next_u64() as u128) * (n as u128);
        }
    }
    (m >> 64) as u64
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Guard the rare rounding case v == end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f32::sample_standard(rng);
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// The user-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_one(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = mix64(self.0.wrapping_add(GOLDEN_GAMMA));
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn uniform_below_covers_all_residues() {
        let mut rng = Counter(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[uniform_below(&mut rng, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
