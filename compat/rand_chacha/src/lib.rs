//! A real `ChaCha12` stream-cipher generator behind the workspace's in-tree
//! `rand` shim traits. The keystream follows RFC 8439's state layout and
//! quarter-round with 12 rounds and a 64-bit block counter; seeding via
//! `seed_from_u64` uses the shim's `SplitMix64` expansion, so values differ
//! from upstream `rand_chacha` but have the same statistical quality and
//! determinism guarantees.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// `ChaCha` with `R/2` double-rounds, generic over the round count.
#[derive(Clone, Debug)]
struct ChaChaCore<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn new(key: [u32; 8]) -> Self {
        ChaChaCore {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero: one keystream per seed.
        let initial = state;
        debug_assert!(ROUNDS.is_multiple_of(2));
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(&initial) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index == 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

/// The 12-round `ChaCha` generator (the default of upstream `rand` 0.8).
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    core: ChaChaCore<12>,
}

/// The 8-round variant, for callers that trade margin for speed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    core: ChaChaCore<8>,
}

/// The 20-round variant (full `ChaCha20`).
#[derive(Clone, Debug)]
pub struct ChaCha20Rng {
    core: ChaChaCore<20>,
}

macro_rules! impl_rng {
    ($name:ident) => {
        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }
            #[inline]
            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name {
                    core: ChaChaCore::new(key),
                }
            }
        }
    };
}

impl_rng!(ChaCha8Rng);
impl_rng!(ChaCha12Rng);
impl_rng!(ChaCha20Rng);

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector: `ChaCha20` block with the canonical key
    /// and counter 1. Our nonce is fixed to zero, so compare against a
    /// freshly computed reference for the zero-nonce state instead of the
    /// RFC's nonced vector; the structural check is that 20-round output
    /// matches an independent straightforward implementation.
    fn reference_block_20(key: &[u32; 8], counter: u64) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        let init = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (w, i) in state.iter_mut().zip(&init) {
            *w = w.wrapping_add(*i);
        }
        state
    }

    #[test]
    fn quarter_round_matches_rfc8439_vector() {
        // RFC 8439 §2.1.1.
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    #[test]
    fn chacha20_blocks_match_reference() {
        let key = [1u32, 2, 3, 4, 5, 6, 7, 0xdead_beef];
        let mut seed = [0u8; 32];
        for (chunk, word) in seed.chunks_exact_mut(4).zip(&key) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        let mut rng = ChaCha20Rng::from_seed(seed);
        for counter in 0..3u64 {
            let expect = reference_block_20(&key, counter);
            for &word in &expect {
                assert_eq!(rng.next_u32(), word);
            }
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let expect = 1024 * 32;
        assert!((ones as i64 - expect as i64).abs() < 3000, "ones={ones}");
    }
}
