//! Minimal self-contained micro-benchmark harness for the `benches/`
//! targets (`harness = false`): warm up, size the batch to a target wall
//! time, time several batches, and report ns/iter (plus MB/s when a byte
//! throughput is declared). No external framework needed.
//!
//! # Which statistic gates what
//!
//! Each measurement times several batches and keeps two statistics:
//!
//! - **min** — the fastest batch. Timing noise (scheduler preemption,
//!   frequency transitions) only ever *inflates* a batch, so the min is the
//!   low-variance statistic. **Regression gating (`--check`) compares
//!   min-vs-min, always.**
//! - **median** — the middle batch; reported alongside for context on how
//!   noisy the run was (a median far above the min means a noisy machine,
//!   not a slow kernel).
//!
//! Baselines written by `--json` record *both* under each name
//! (`{"name": {"min": ns, "median": ns}}`); legacy flat baselines
//! (`{"name": ns}`) are read as min-only. The ungrouped [`fn@bench`] /
//! [`Group`] helpers (no baseline tracking) print the median.
//!
//! Baseline-tracked targets use [`Harness`], which adds four flags after
//! `cargo bench --bench <name> --`:
//!
//! - `--fast` — shorter batches (CI smoke budget);
//! - `--json PATH` — dump per-name `{min, median}` results as JSON;
//! - `--check PATH` — compare min ns/iter against a committed baseline and
//!   exit non-zero on a > `--max-regress` percent slowdown (default 25).

use mlec_runner::Json;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Batches timed per measurement; the median is reported.
const BATCHES: usize = 7;
/// Target wall time per batch, seconds.
const BATCH_SECONDS: f64 = 0.05;
/// `--fast` budgets: fewer batches, shorter wall time each.
const FAST_BATCHES: usize = 5;
const FAST_BATCH_SECONDS: f64 = 0.02;

/// Re-export of the optimizer barrier the closures should wrap their
/// results in.
pub use std::hint::black_box;

/// One named group of measurements, printed as aligned rows.
pub struct Group {
    title: String,
}

impl Group {
    pub fn new(title: &str) -> Group {
        println!("\n-- {title}");
        Group {
            title: title.to_string(),
        }
    }

    /// Time `f` and print ns/iter.
    pub fn bench<F: FnMut()>(&self, name: &str, f: F) {
        let ns = time_ns_per_iter(f);
        println!("{:<40} {:>14} ns/iter", self.row(name), group_digits(ns));
    }

    /// Time `f`, printing ns/iter and MB/s for `bytes` processed per iter.
    pub fn bench_bytes<F: FnMut()>(&self, name: &str, bytes: u64, f: F) {
        let ns = time_ns_per_iter(f);
        let mbs = bytes as f64 / (ns as f64 / 1e9) / 1e6;
        println!(
            "{:<40} {:>14} ns/iter {:>10.0} MB/s",
            self.row(name),
            group_digits(ns),
            mbs
        );
    }

    fn row(&self, name: &str) -> String {
        format!("{}/{}", self.title, name)
    }
}

/// Time a standalone (ungrouped) benchmark.
pub fn bench<F: FnMut()>(name: &str, f: F) {
    let ns = time_ns_per_iter(f);
    println!("{:<40} {:>14} ns/iter", name, group_digits(ns));
}

fn time_ns_per_iter<F: FnMut()>(f: F) -> u64 {
    samples_with_budget(f, BATCHES, BATCH_SECONDS)[BATCHES / 2]
}

/// Both gate and context statistics from one set of batches (see the
/// module docs for which is which).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Fastest batch, ns/iter — the regression-gated statistic.
    pub min: u64,
    /// Median batch, ns/iter — noise context, never gated on.
    pub median: u64,
}

fn stats_with_budget<F: FnMut()>(f: F, batches: usize, batch_seconds: f64) -> BatchStats {
    let samples = samples_with_budget(f, batches, batch_seconds);
    BatchStats {
        min: samples[0],
        median: samples[samples.len() / 2],
    }
}

/// Sorted per-batch ns/iter samples under the given budget.
fn samples_with_budget<F: FnMut()>(mut f: F, batches: usize, batch_seconds: f64) -> Vec<u64> {
    // Warm up and estimate a single iteration.
    let start = Instant::now();
    let mut warmup_iters = 0u64;
    while start.elapsed().as_secs_f64() < batch_seconds / 2.0 || warmup_iters < 3 {
        f();
        warmup_iters += 1;
    }
    let est = start.elapsed().as_secs_f64() / warmup_iters as f64;
    let per_batch = ((batch_seconds / est) as u64).max(1);

    let mut samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..per_batch {
            f();
        }
        samples.push(t.elapsed().as_nanos() as u64 / per_batch);
    }
    samples.sort_unstable();
    samples
}

/// A baseline-tracked bench binary: records every measurement by name,
/// optionally dumps them as JSON, and optionally gates against a
/// committed baseline file.
pub struct Harness {
    fast: bool,
    json: Option<PathBuf>,
    check: Option<PathBuf>,
    max_regress_pct: f64,
    results: Vec<(String, BatchStats)>,
}

impl Harness {
    /// Parse the process arguments (`--fast`, `--json PATH`,
    /// `--check PATH`, `--max-regress PCT`). Unknown flags — such as the
    /// `--bench` cargo forwards — are ignored.
    pub fn from_args() -> Harness {
        let mut h = Harness {
            fast: false,
            json: None,
            check: None,
            max_regress_pct: 25.0,
            results: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--fast" => h.fast = true,
                "--json" => h.json = Some(PathBuf::from(args.next().expect("--json PATH"))),
                "--check" => h.check = Some(PathBuf::from(args.next().expect("--check PATH"))),
                "--max-regress" => {
                    h.max_regress_pct = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-regress PCT");
                }
                _ => {}
            }
        }
        h
    }

    /// Time `f`, print min (and median) ns/iter, and record both under
    /// `name`.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) {
        let stats = self.measure(f);
        println!(
            "{name:<40} {:>14} ns/iter (median {})",
            group_digits(stats.min),
            group_digits(stats.median)
        );
        self.results.push((name.to_string(), stats));
    }

    /// Like [`Harness::bench`], also printing MB/s for `bytes` per iter
    /// (computed from the min, the gated statistic).
    pub fn bench_bytes<F: FnMut()>(&mut self, name: &str, bytes: u64, f: F) {
        let stats = self.measure(f);
        let mbs = bytes as f64 / (stats.min as f64 / 1e9) / 1e6;
        println!(
            "{name:<40} {:>14} ns/iter {mbs:>10.0} MB/s (median {})",
            group_digits(stats.min),
            group_digits(stats.median)
        );
        self.results.push((name.to_string(), stats));
    }

    /// Baseline-tracked measurements keep min *and* median over batches;
    /// regression gating uses the min (see module docs).
    fn measure<F: FnMut()>(&self, f: F) -> BatchStats {
        if self.fast {
            stats_with_budget(f, FAST_BATCHES, FAST_BATCH_SECONDS)
        } else {
            stats_with_budget(f, BATCHES, BATCH_SECONDS)
        }
    }

    /// Results recorded so far, in execution order.
    pub fn results(&self) -> &[(String, BatchStats)] {
        &self.results
    }

    /// Dump (`--json`) and gate (`--check`), returning the process exit
    /// code: failure iff any baseline comparison regressed beyond the
    /// threshold or the baseline is unreadable.
    pub fn finish(self) -> ExitCode {
        if let Some(path) = &self.json {
            let obj = Json::Obj(
                self.results
                    .iter()
                    .map(|(n, stats)| {
                        (
                            n.clone(),
                            Json::Obj(vec![
                                ("min".to_string(), Json::U64(stats.min)),
                                ("median".to_string(), Json::U64(stats.median)),
                            ]),
                        )
                    })
                    .collect(),
            );
            if let Err(e) = std::fs::write(path, obj.to_string_pretty() + "\n") {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("\nresults written to {}", path.display());
        }
        let Some(path) = &self.check else {
            return ExitCode::SUCCESS;
        };
        match self.check_against(path) {
            Ok(()) => {
                println!("baseline check passed ({})", path.display());
                ExitCode::SUCCESS
            }
            Err(failures) => {
                for f in &failures {
                    eprintln!("regression: {f}");
                }
                ExitCode::FAILURE
            }
        }
    }

    fn check_against(&self, path: &PathBuf) -> Result<(), Vec<String>> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| vec![format!("cannot read baseline {}: {e}", path.display())])?;
        let baseline = Json::parse(&text)
            .map_err(|e| vec![format!("bad baseline {}: {e}", path.display())])?;
        let Json::Obj(entries) = &baseline else {
            return Err(vec![format!(
                "{}: baseline must be an object",
                path.display()
            )]);
        };
        let mut failures = Vec::new();
        for (name, value) in entries {
            // The gate statistic is always the min: structured entries
            // carry it under "min" (alongside an ungated "median"); legacy
            // flat integers *are* the min.
            let base_min = match value {
                Json::Obj(_) => value.get("min").and_then(Json::as_u64),
                _ => value.as_u64(),
            };
            let Some(base_ns) = base_min.filter(|&ns| ns > 0) else {
                failures.push(format!(
                    "{name}: baseline entry has no positive integer min"
                ));
                continue;
            };
            let Some((_, stats)) = self.results.iter().find(|(n, _)| n == name) else {
                failures.push(format!("{name}: in the baseline but not measured"));
                continue;
            };
            let ns = stats.min;
            let pct = (ns as f64 / base_ns as f64 - 1.0) * 100.0;
            if pct > self.max_regress_pct {
                failures.push(format!(
                    "{name}: min {ns} ns/iter vs baseline min {base_ns} ({pct:+.1}% > {:.0}%)",
                    self.max_regress_pct
                ));
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures)
        }
    }
}

/// `1234567` -> `1,234,567` for readable ns columns.
fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(7), "7");
        assert_eq!(group_digits(1234), "1,234");
        assert_eq!(group_digits(1234567), "1,234,567");
    }

    fn harness_with(results: &[(&str, u64, u64)], max_regress_pct: f64) -> Harness {
        Harness {
            fast: false,
            json: None,
            check: None,
            max_regress_pct,
            results: results
                .iter()
                .map(|(n, min, median)| {
                    (
                        (*n).to_string(),
                        BatchStats {
                            min: *min,
                            median: *median,
                        },
                    )
                })
                .collect(),
        }
    }

    fn baseline_file(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mlec-microbench-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.json", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn baseline_check_passes_within_threshold() {
        // Legacy flat-integer baselines are read as min-only.
        let path = baseline_file("pass", r#"{"a": 100, "b": 200}"#);
        // +24% and -50%: both inside a 25% regression budget.
        let h = harness_with(&[("a", 124, 130), ("b", 100, 110)], 25.0);
        assert!(h.check_against(&path).is_ok());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn baseline_check_reads_structured_entries_and_gates_on_min() {
        let path = baseline_file(
            "structured",
            r#"{"a": {"min": 100, "median": 120}, "b": {"min": 200, "median": 210}}"#,
        );
        // a's median regressed wildly (500 vs 120) but its min is within
        // budget: the gate must look only at min and pass.
        let h = harness_with(&[("a", 110, 500), ("b", 190, 205)], 25.0);
        assert!(h.check_against(&path).is_ok());
        // And a min regression must fail even with a fine median.
        let h = harness_with(&[("a", 200, 120), ("b", 190, 205)], 25.0);
        let failures = h.check_against(&path).unwrap_err();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("a: min 200"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn baseline_check_fails_on_regression_and_missing_result() {
        let path = baseline_file("fail", r#"{"a": 100, "gone": 50}"#);
        let h = harness_with(&[("a", 130, 140)], 25.0);
        let failures = h.check_against(&path).unwrap_err();
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("a: min 130")));
        assert!(failures.iter().any(|f| f.contains("gone")));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn baseline_check_rejects_unreadable_baseline() {
        let h = harness_with(&[("a", 1, 1)], 25.0);
        assert!(h
            .check_against(&PathBuf::from("/nonexistent/b.json"))
            .is_err());
        let path = baseline_file("garbage", "not json");
        assert!(h.check_against(&path).is_err());
        let path2 = baseline_file("no-min", r#"{"a": {"median": 5}}"#);
        assert!(h.check_against(&path2).is_err());
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(path2);
    }
}
