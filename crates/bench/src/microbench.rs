//! Minimal self-contained micro-benchmark harness for the `benches/`
//! targets (`harness = false`): warm up, size the batch to a target wall
//! time, time several batches, and report the median ns/iter (plus MB/s
//! when a byte throughput is declared). No external framework needed.

use std::time::Instant;

/// Batches timed per measurement; the median is reported.
const BATCHES: usize = 7;
/// Target wall time per batch, seconds.
const BATCH_SECONDS: f64 = 0.05;

/// Re-export of the optimizer barrier the closures should wrap their
/// results in.
pub use std::hint::black_box;

/// One named group of measurements, printed as aligned rows.
pub struct Group {
    title: String,
}

impl Group {
    pub fn new(title: &str) -> Group {
        println!("\n-- {title}");
        Group {
            title: title.to_string(),
        }
    }

    /// Time `f` and print ns/iter.
    pub fn bench<F: FnMut()>(&self, name: &str, f: F) {
        let ns = time_ns_per_iter(f);
        println!("{:<40} {:>14} ns/iter", self.row(name), group_digits(ns));
    }

    /// Time `f`, printing ns/iter and MB/s for `bytes` processed per iter.
    pub fn bench_bytes<F: FnMut()>(&self, name: &str, bytes: u64, f: F) {
        let ns = time_ns_per_iter(f);
        let mbs = bytes as f64 / (ns as f64 / 1e9) / 1e6;
        println!(
            "{:<40} {:>14} ns/iter {:>10.0} MB/s",
            self.row(name),
            group_digits(ns),
            mbs
        );
    }

    fn row(&self, name: &str) -> String {
        format!("{}/{}", self.title, name)
    }
}

/// Time a standalone (ungrouped) benchmark.
pub fn bench<F: FnMut()>(name: &str, f: F) {
    let ns = time_ns_per_iter(f);
    println!("{:<40} {:>14} ns/iter", name, group_digits(ns));
}

fn time_ns_per_iter<F: FnMut()>(mut f: F) -> u64 {
    // Warm up and estimate a single iteration.
    let start = Instant::now();
    let mut warmup_iters = 0u64;
    while start.elapsed().as_secs_f64() < BATCH_SECONDS / 2.0 || warmup_iters < 3 {
        f();
        warmup_iters += 1;
    }
    let est = start.elapsed().as_secs_f64() / warmup_iters as f64;
    let per_batch = ((BATCH_SECONDS / est) as u64).max(1);

    let mut samples = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..per_batch {
            f();
        }
        samples.push(t.elapsed().as_nanos() as u64 / per_batch);
    }
    samples.sort_unstable();
    samples[BATCHES / 2]
}

/// `1234567` -> `1,234,567` for readable ns columns.
fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(7), "7");
        assert_eq!(group_digits(1234), "1,234");
        assert_eq!(group_digits(1234567), "1,234,567");
    }
}
