//! Compatibility shim for `mlec run fig06` — same arguments, same
//! output; see `mlec info fig06` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig06")
}
