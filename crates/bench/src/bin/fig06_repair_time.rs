//! Figure 6: repair time under (a) a single disk failure and (b) a
//! catastrophic local failure, for the four MLEC schemes (R_ALL).

use mlec_bench::banner;
use mlec_core::experiments::table2_and_fig6;
use mlec_core::report::{ascii_table, dump_json};

fn main() {
    banner("Figure 6", "repair time per MLEC scheme (R_ALL)");
    let rows = table2_and_fig6();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.1}", r.disk_repair_hours),
                format!("{:.1}", r.pool_repair_hours),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &["scheme", "(a) single disk, h", "(b) catastrophic pool, h"],
            &table
        )
    );
    println!("paper shape: (a) C/C≈D/C≈150h, C/D≈D/D≈25h (6x faster);");
    println!("             (b) C/D slowest (~2.7Kh), D/C fastest (~82h), D/D slightly above C/C");
    if let Ok(path) = dump_json("fig06", &rows) {
        println!("json: {}", path.display());
    }
}
