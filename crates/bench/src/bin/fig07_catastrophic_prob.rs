//! Compatibility shim for `mlec run fig07` — same arguments, same
//! output; see `mlec info fig07` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig07")
}
