//! Figure 7: probability of a catastrophic local-pool failure per year.

use mlec_bench::banner;
use mlec_core::experiments::fig7_catastrophic_prob;
use mlec_core::report::{ascii_table, dump_json, fmt_value};

fn main() {
    banner("Figure 7", "probability of catastrophic local failure (per system-year)");
    let rows = fig7_catastrophic_prob();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                fmt_value(r.prob_per_year),
                format!("{:.4}%", r.prob_per_year * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["scheme", "prob/yr", "percent/yr"], &table)
    );
    println!("paper: C/C and D/C below 0.001%/yr; C/D and D/D almost 0.00001%/yr");
    if let Ok(path) = dump_json("fig07", &rows) {
        println!("json: {}", path.display());
    }
}
