//! Figure 7: probability of a catastrophic local-pool failure per year.
//!
//! Usage: `fig07_catastrophic_prob [mode=analytic]`
//!
//! `mode=sim` measures the rate by pool simulation through `mlec-runner`
//! instead of the Markov chain, with importance-sampled failure arrivals so
//! it runs at the paper's true 1% AFR by default:
//! `fig07_catastrophic_prob mode=sim [afr_pct=1] [years=20] [trials=64]`
//! `[bias=auto|B] [seed=42] [threads=0] [manifests=DIR]`
//!
//! `bias=auto` (the default) picks a per-scheme degraded-state rate
//! multiplier; `bias=1` forces direct (unweighted) simulation; any other
//! `bias=B` multiplies failure arrivals by `B` while the pool is degraded,
//! with exact likelihood-ratio reweighting either way.

use mlec_bench::{arg_f64, arg_str, arg_u64, banner, bias_from_args, runner_opts_from_args};
use mlec_core::experiments::{fig7_catastrophic_prob, fig7_catastrophic_prob_sim};
use mlec_core::report::{ascii_table, dump_json, fmt_value};

fn main() {
    banner(
        "Figure 7",
        "probability of catastrophic local failure (per system-year)",
    );
    if arg_str("mode").as_deref() == Some("sim") {
        run_sim();
        return;
    }
    let rows = fig7_catastrophic_prob();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                fmt_value(r.prob_per_year),
                format!("{:.4}%", r.prob_per_year * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["scheme", "prob/yr", "percent/yr"], &table)
    );
    println!("paper: C/C and D/C below 0.001%/yr; C/D and D/D almost 0.00001%/yr");
    if let Ok(path) = dump_json("fig07", &rows) {
        println!("json: {}", path.display());
    }
}

fn run_sim() {
    let afr = arg_f64("afr_pct", 1.0) / 100.0;
    let years = arg_u64("years", 20) as f64;
    let trials = arg_u64("trials", 64);
    let seed = arg_u64("seed", 42);
    let bias = bias_from_args();
    let opts = runner_opts_from_args();
    let bias_desc = match bias {
        None => "auto".to_string(),
        Some(b) => format!("{b}"),
    };
    println!(
        "sim mode: AFR {afr}, {trials} pool trials x {years} years per scheme, \
         bias {bias_desc}, root seed {seed}\n"
    );
    let rows = match fig7_catastrophic_prob_sim(afr, years, trials, seed, bias, &opts) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{}/{:.0}y", r.events, r.pool_years),
                format!("{:.0}", r.bias),
                format!("{:.1}", r.ess),
                if r.unobserved {
                    format!("<{}", fmt_value(r.rate_per_pool_year))
                } else {
                    fmt_value(r.rate_per_pool_year)
                },
                format!(
                    "[{}, {}]",
                    fmt_value(r.rate_ci_low),
                    fmt_value(r.rate_ci_high)
                ),
                if r.unobserved {
                    format!("<{}", fmt_value(r.prob_per_system_year))
                } else {
                    fmt_value(r.prob_per_system_year)
                },
                fmt_value(r.analytic_prob_per_system_year),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &[
                "scheme",
                "events",
                "bias",
                "ESS",
                "rate/pool-yr",
                "95% CI",
                "sim prob/sys-yr",
                "chain prob/sys-yr"
            ],
            &table
        )
    );
    println!("reading: rates are likelihood-ratio reweighted (unbiased at any bias); ESS is");
    println!("the effective sample size of the weighted events. `<x` marks a zero-event");
    println!("campaign reporting the Poisson 95% upper bound instead of a point estimate;");
    println!("where events > 0 the chain prediction should sit inside (or near) the CI.");
    if let Ok(path) = dump_json("fig07_sim", &rows) {
        println!("json: {}", path.display());
    }
}
