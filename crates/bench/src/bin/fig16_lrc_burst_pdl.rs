//! Figure 16: PDL of the (14,2,4) declustered LRC under correlated bursts.
//!
//! Usage: `fig16_lrc_burst_pdl [max=60] [step=6] [samples=60] [seed=42]`
//! `[threads=0] [manifests=DIR]`

use mlec_bench::{banner, heatmap_spec_from_args, runner_opts_from_args};
use mlec_core::ec::LrcParams;
use mlec_core::experiments::fig16_lrc_burst_with;
use mlec_core::report::{dump_json, render_heatmap};

fn main() {
    banner(
        "Figure 16",
        "LRC-Dp (14,2,4) PDL under correlated failure bursts",
    );
    let spec = heatmap_spec_from_args();
    let opts = runner_opts_from_args();
    let map = fig16_lrc_burst_with(&spec, LrcParams::paper_default(), &opts);
    println!("{}", render_heatmap(&map));
    println!("paper: pattern similar to Net-Dp SLEC — susceptible to highly scattered bursts");
    if let Ok(path) = dump_json("fig16", &map) {
        println!("json: {}", path.display());
    }
}
