//! Compatibility shim for `mlec run fig16` — same arguments, same
//! output; see `mlec info fig16` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig16")
}
