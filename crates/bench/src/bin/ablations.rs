//! Compatibility shim for `mlec run ablations` — same arguments, same
//! output; see `mlec info ablations` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("ablations")
}
