//! Ablation sweeps over the design parameters the paper fixes or discusses:
//! detection time (§5.2.2), repair-bandwidth throttle (§3's 20%), AFR, and
//! the clustered spare-rebuild policy.

use mlec_bench::banner;
use mlec_core::analysis::ablation::{
    afr_sweep, detection_time_sweep, spare_policy_comparison, throttle_sweep,
};
use mlec_core::ec::LrcParams;
use mlec_core::report::{ascii_table, dump_json, fmt_value};
use mlec_core::sim::config::MlecDeployment;
use mlec_core::topology::MlecScheme;

fn print_points(title: &str, unit: &str, points: &[mlec_core::analysis::ablation::AblationPoint]) {
    println!("--- {title}");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.series.clone(), fmt_value(p.x), format!("{:.1}", p.value)])
        .collect();
    println!("{}", ascii_table(&["series", unit, "nines"], &rows));
}

fn main() {
    banner(
        "Ablations",
        "detection time, throttle, AFR, and spare policy sweeps",
    );

    let cd = MlecDeployment::paper_default(MlecScheme::CD);
    let detection = detection_time_sweep(
        &cd,
        LrcParams::paper_default(),
        &[1.0, 0.5, 0.25, 1.0 / 12.0, 1.0 / 60.0],
    );
    print_points(
        "failure detection time (h) vs durability (paper §5.2.2)",
        "hours",
        &detection,
    );

    let cc = MlecDeployment::paper_default(MlecScheme::CC);
    let throttle = throttle_sweep(&cc, &[0.05, 0.1, 0.2, 0.4, 0.8]);
    print_points(
        "repair bandwidth throttle fraction (paper fixes 0.2)",
        "frac",
        &throttle,
    );

    let afr = afr_sweep(&cc, &[0.002, 0.005, 0.01, 0.02, 0.05]);
    print_points("annual disk failure rate (paper fixes 0.01)", "AFR", &afr);

    let (serial, parallel) = spare_policy_comparison(&cc);
    println!("--- clustered spare-rebuild policy (catastrophic events / pool-year)");
    println!(
        "  serial hot spare (deployed reality): {}",
        fmt_value(serial)
    );
    println!(
        "  idealized parallel spares:           {}",
        fmt_value(parallel)
    );
    println!(
        "  -> spare parallelism buys {:.1}x; declustering buys far more (Fig 7)\n",
        serial / parallel
    );

    let _ = dump_json("ablation_detection", &detection);
    let _ = dump_json("ablation_throttle", &throttle);
    let _ = dump_json("ablation_afr", &afr);
    println!("json: target/figures/ablation_*.json");
}
