//! Figure 8: cross-rack network traffic of the four repair methods on the
//! four MLEC schemes (catastrophic pool with p_l+1 simultaneous failures).

use mlec_bench::banner;
use mlec_core::experiments::fig8_fig9_repair_methods;
use mlec_core::report::{ascii_table, dump_json, fmt_value};

fn main() {
    banner(
        "Figure 8",
        "cross-rack repair traffic (TB) per method and scheme",
    );
    let cells = fig8_fig9_repair_methods();
    let schemes = ["C/C", "C/D", "D/C", "D/D"];
    let methods = ["R_ALL", "R_FCO", "R_HYB", "R_MIN"];
    let rows: Vec<Vec<String>> = methods
        .iter()
        .map(|m| {
            let mut row = vec![m.to_string()];
            for s in schemes {
                let cell = cells
                    .iter()
                    .find(|c| c.scheme == s && c.method == *m)
                    .expect("cell exists");
                row.push(fmt_value(cell.cross_rack_tb));
            }
            row
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["method", "C/C", "C/D", "D/C", "D/D"], &rows)
    );
    println!("paper: R_ALL 4400/26400/4400/26400; R_FCO 880 everywhere;");
    println!("       R_HYB 880/3.1/880/3.1; R_MIN = R_HYB / 4");
    if let Ok(path) = dump_json("fig08", &cells) {
        println!("json: {}", path.display());
    }
}
