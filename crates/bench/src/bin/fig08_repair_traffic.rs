//! Compatibility shim for `mlec run fig08` — same arguments, same
//! output; see `mlec info fig08` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig08")
}
