//! Table 2: repair size and available repair bandwidth per MLEC scheme.

use mlec_bench::banner;
use mlec_core::experiments::table2_and_fig6;
use mlec_core::report::{ascii_table, dump_json};

fn main() {
    banner(
        "Table 2",
        "repair size and available repair bandwidth (single disk / catastrophic pool)",
    );
    let rows = table2_and_fig6();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.0}", r.disk_size_tb),
                format!("{:.0}", r.disk_bw_mbs),
                format!("{:.0}", r.pool_size_tb),
                format!("{:.0}", r.pool_bw_mbs),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &[
                "scheme",
                "disk TB",
                "disk BW MB/s",
                "pool TB",
                "pool BW MB/s"
            ],
            &table
        )
    );
    println!(
        "paper: C/C 20/40/400/250  C/D 20/264/2400/250  D/C 20/40/400/1363  D/D 20/264/2400/1363"
    );
    if let Ok(path) = dump_json("table2", &rows) {
        println!("json: {}", path.display());
    }
}
