//! Compatibility shim for `mlec run table2` — same arguments, same
//! output; see `mlec info table2` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("table2")
}
