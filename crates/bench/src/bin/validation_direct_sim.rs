//! Methodology validation (paper §6.2): run the *direct* whole-system
//! simulation at inflated failure rates where data loss is observable, and
//! compare against the splitting estimator's prediction at the same AFR.
//!
//! The per-scheme mission ensemble executes through `mlec-runner`: trial
//! seeds come from the run's seed stream, the loss probability carries a
//! Wilson 95% interval, and with `manifests=DIR` an interrupted campaign
//! resumes from its JSONL checkpoint with bit-identical results.
//!
//! Usage: `validation_direct_sim [afr_pct=75] [years=2] [runs=40]`
//!        `[seed=42] [threads=0] [manifests=DIR]`

use mlec_bench::{arg_u64, banner, runner_opts_from_args};
use mlec_core::analysis::markov::nines;
use mlec_core::analysis::splitting::{stage1_analytic, stage2_pdl};
use mlec_core::report::{ascii_table, dump_json, fmt_value};
use mlec_core::sim::config::MlecDeployment;
use mlec_core::sim::failure::FailureModel;
use mlec_core::sim::system_sim::SystemSimOptions;
use mlec_core::sim::trials::SystemTrial;
use mlec_core::sim::RepairMethod;
use mlec_core::topology::MlecScheme;
use mlec_runner::{impl_to_json, run, Json, RunSpec, StopRule};

struct ValidationRow {
    scheme: String,
    afr: f64,
    direct_loss_runs: u64,
    total_runs: u64,
    direct_pdl: f64,
    wilson_low: f64,
    wilson_high: f64,
    splitting_pdl: f64,
    catastrophic_pools_simulated: u64,
}

impl_to_json!(ValidationRow {
    scheme,
    afr,
    direct_loss_runs,
    total_runs,
    direct_pdl,
    wilson_low,
    wilson_high,
    splitting_pdl,
    catastrophic_pools_simulated,
});

fn main() {
    banner(
        "Validation",
        "direct system simulation vs splitting estimator at inflated AFR",
    );
    let afr = arg_u64("afr_pct", 75) as f64 / 100.0;
    let years = arg_u64("years", 2) as f64;
    let runs = arg_u64("runs", 40);
    let seed = arg_u64("seed", 42);
    let opts = runner_opts_from_args();
    println!("AFR {afr}, mission {years} years, {runs} runs per scheme, root seed {seed}\n");

    let config_hash = Json::obj(vec![
        ("afr", Json::F64(afr)),
        ("years", Json::F64(years)),
        ("runs", Json::U64(runs)),
    ])
    .fingerprint();

    let mut rows = Vec::new();
    for scheme in MlecScheme::ALL {
        let mut dep = MlecDeployment::paper_default(scheme);
        dep.config.afr = afr;
        let model = FailureModel::Exponential { afr };
        let trial = SystemTrial {
            dep: &dep,
            model: &model,
            method: RepairMethod::Fco,
            years,
            opts: SystemSimOptions::default(),
        };
        let label = format!("validation/{}", scheme.name().replace('/', ""));
        let mut spec = RunSpec::new(&label, seed, StopRule::fixed(runs))
            .threads(opts.threads)
            .config_hash(config_hash);
        if let Some(dir) = &opts.manifest_dir {
            spec = spec.manifest(dir.join(format!("{}.jsonl", label.replace('/', "-"))));
        }
        let report = run(&trial, &spec).expect("validation run");
        if report.resumed_trials > 0 {
            println!(
                "  [{label}: resumed {} of {} trials from manifest]",
                report.resumed_trials, report.trials
            );
        }

        let s1 = stage1_analytic(&dep);
        let splitting_pdl = stage2_pdl(&dep, RepairMethod::Fco, &s1, years);
        let summary = report.summary;
        rows.push(ValidationRow {
            scheme: scheme.name(),
            afr,
            direct_loss_runs: report.acc.loss.hits(),
            total_runs: report.trials,
            direct_pdl: summary.mean,
            wilson_low: summary.ci_low,
            wilson_high: summary.ci_high,
            splitting_pdl,
            catastrophic_pools_simulated: report.acc.catastrophic_pools,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{}/{}", r.direct_loss_runs, r.total_runs),
                fmt_value(r.direct_pdl),
                format!(
                    "[{}, {}]",
                    fmt_value(r.wilson_low),
                    fmt_value(r.wilson_high)
                ),
                fmt_value(r.splitting_pdl),
                format!("{:.1}", nines(r.splitting_pdl.max(1e-300))),
                r.catastrophic_pools_simulated.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &[
                "scheme",
                "losses",
                "direct PDL",
                "wilson 95%",
                "splitting PDL",
                "nines",
                "cat pools"
            ],
            &table
        )
    );
    println!("reading: where direct PDL is measurable but < 1, splitting should agree within");
    println!("an order of magnitude; splitting saturates to 1 earlier because its Poisson");
    println!("overlap formula is an upper bound outside the rare-event regime it serves");
    println!("(at the paper's 1% AFR, overlaps are ~20 orders rarer and the bound is tight).");
    if let Ok(path) = dump_json("validation_direct_sim", &rows) {
        println!("json: {}", path.display());
    }
}
