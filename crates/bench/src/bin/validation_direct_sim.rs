//! Methodology validation (paper §6.2): run the *direct* whole-system
//! simulation at inflated failure rates where data loss is observable, and
//! compare against the splitting estimator's prediction at the same AFR.
//!
//! Usage: `validation_direct_sim [afr_pct=400] [years=2] [runs=40]`

use mlec_bench::{arg_u64, banner};
use mlec_core::analysis::markov::nines;
use mlec_core::analysis::splitting::{stage1_analytic, stage2_pdl};
use mlec_core::report::{ascii_table, dump_json, fmt_value};
use mlec_core::sim::config::MlecDeployment;
use mlec_core::sim::failure::FailureModel;
use mlec_core::sim::system_sim::simulate_system;
use mlec_core::sim::RepairMethod;
use mlec_core::topology::MlecScheme;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct ValidationRow {
    scheme: String,
    afr: f64,
    direct_loss_runs: u64,
    total_runs: u64,
    direct_pdl: f64,
    splitting_pdl: f64,
    catastrophic_pools_simulated: u64,
}

fn main() {
    banner(
        "Validation",
        "direct system simulation vs splitting estimator at inflated AFR",
    );
    let afr = arg_u64("afr_pct", 75) as f64 / 100.0;
    let years = arg_u64("years", 2) as f64;
    let runs = arg_u64("runs", 40);
    println!("AFR {afr}, mission {years} years, {runs} runs per scheme\n");

    let mut rows = Vec::new();
    for scheme in MlecScheme::ALL {
        let mut dep = MlecDeployment::paper_default(scheme);
        dep.config.afr = afr;
        let model = FailureModel::Exponential { afr };
        let results: Vec<_> = (0..runs)
            .into_par_iter()
            .map(|seed| simulate_system(&dep, &model, RepairMethod::Fco, years, seed))
            .collect();
        let losses = results.iter().filter(|r| r.lost_data()).count() as u64;
        let cat: u64 = results.iter().map(|r| r.catastrophic_pools).sum();
        let direct_pdl = losses as f64 / runs as f64;
        let s1 = stage1_analytic(&dep);
        let splitting_pdl = stage2_pdl(&dep, RepairMethod::Fco, &s1, years);
        rows.push(ValidationRow {
            scheme: scheme.name(),
            afr,
            direct_loss_runs: losses,
            total_runs: runs,
            direct_pdl,
            splitting_pdl,
            catastrophic_pools_simulated: cat,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{}/{}", r.direct_loss_runs, r.total_runs),
                fmt_value(r.direct_pdl),
                fmt_value(r.splitting_pdl),
                format!("{:.1}", nines(r.splitting_pdl.max(1e-300))),
                r.catastrophic_pools_simulated.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &["scheme", "losses", "direct PDL", "splitting PDL", "nines", "cat pools"],
            &table
        )
    );
    println!("reading: where direct PDL is measurable but < 1, splitting should agree within");
    println!("an order of magnitude; splitting saturates to 1 earlier because its Poisson");
    println!("overlap formula is an upper bound outside the rare-event regime it serves");
    println!("(at the paper's 1% AFR, overlaps are ~20 orders rarer and the bound is tight).");
    if let Ok(path) = dump_json("validation_direct_sim", &rows) {
        println!("json: {}", path.display());
    }
}
