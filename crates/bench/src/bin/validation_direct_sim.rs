//! Compatibility shim for `mlec run validation` — same arguments, same
//! output; see `mlec info validation` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("validation")
}
