//! One-page reproduction summary: every headline number of the paper next
//! to this repository's result, using the fast analytic paths only (the
//! heatmaps and measured-throughput surfaces have their own binaries).

use mlec_bench::banner;
use mlec_core::experiments::{
    fig10_durability, fig7_catastrophic_prob, fig8_fig9_repair_methods, table2_and_fig6,
};
use mlec_core::report::ascii_table;
use mlec_core::sim::traffic;
use mlec_core::sim::SimConfig;
use mlec_core::topology::Geometry;

fn main() {
    banner(
        "Reproduction summary",
        "paper headline numbers vs this repository",
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut add = |exp: &str, what: &str, paper: &str, ours: String| {
        rows.push(vec![exp.into(), what.into(), paper.into(), ours]);
    };

    let t2 = table2_and_fig6();
    let get = |s: &str| t2.iter().find(|r| r.scheme == s).unwrap();
    add(
        "Table 2",
        "C/D single-disk repair BW",
        "264 MB/s",
        format!("{:.0} MB/s", get("C/D").disk_bw_mbs),
    );
    add(
        "Table 2",
        "D/C pool repair BW",
        "1363 MB/s",
        format!("{:.0} MB/s", get("D/C").pool_bw_mbs),
    );
    add(
        "Fig 6a",
        "single-disk repair speedup */D vs */C",
        "~6x",
        format!(
            "{:.1}x",
            get("C/C").disk_repair_hours / get("C/D").disk_repair_hours
        ),
    );
    add(
        "Fig 6b",
        "pool repair speedup D/C vs C/C",
        "~5x",
        format!(
            "{:.1}x",
            get("C/C").pool_repair_hours / get("D/C").pool_repair_hours
        ),
    );

    let f7 = fig7_catastrophic_prob();
    let p = |s: &str| f7.iter().find(|r| r.scheme == s).unwrap().prob_per_year;
    add(
        "Fig 7",
        "catastrophic prob, */C",
        "< 0.001%/yr",
        format!("{:.4}%/yr", p("C/C") * 100.0),
    );
    add(
        "Fig 7",
        "catastrophic prob, */D",
        "~0.00001%/yr",
        format!("{:.5}%/yr", p("C/D") * 100.0),
    );

    let f8 = fig8_fig9_repair_methods();
    let traffic_of = |s: &str, m: &str| {
        f8.iter()
            .find(|c| c.scheme == s && c.method == m)
            .unwrap()
            .cross_rack_tb
    };
    add(
        "Fig 8",
        "R_ALL traffic on C/D",
        "26,400 TB",
        format!("{:.0} TB", traffic_of("C/D", "R_ALL")),
    );
    add(
        "Fig 8",
        "R_FCO traffic (all schemes)",
        "880 TB",
        format!("{:.0} TB", traffic_of("C/C", "R_FCO")),
    );
    add(
        "Fig 8",
        "R_HYB traffic on */D",
        "3.1 TB",
        format!("{:.1} TB", traffic_of("C/D", "R_HYB")),
    );
    add(
        "Fig 8",
        "R_MIN vs R_HYB reduction",
        ">= 4x",
        format!(
            "{:.1}x",
            traffic_of("C/C", "R_HYB") / traffic_of("C/C", "R_MIN")
        ),
    );

    let f9_net = |s: &str, m: &str| {
        f8.iter()
            .find(|c| c.scheme == s && c.method == m)
            .unwrap()
            .network_time_h
    };
    add(
        "Fig 9",
        "R_FCO network-time cut vs R_ALL",
        "5-30x",
        format!(
            "{:.0}x-{:.0}x",
            f9_net("C/C", "R_ALL") / f9_net("C/C", "R_FCO"),
            f9_net("C/D", "R_ALL") / f9_net("C/D", "R_FCO")
        ),
    );

    let f10 = fig10_durability();
    let nines = |s: &str, m: &str| {
        f10.iter()
            .find(|c| c.scheme == s && c.method == m)
            .unwrap()
            .nines
    };
    let fco_gains: Vec<f64> = ["C/C", "C/D", "D/C", "D/D"]
        .iter()
        .map(|s| nines(s, "R_FCO") - nines(s, "R_ALL"))
        .collect();
    add(
        "Fig 10",
        "R_FCO durability gain",
        "+0.9-6.6 nines",
        format!(
            "+{:.1}-{:.1} nines",
            fco_gains.iter().cloned().fold(f64::NAN, f64::min),
            fco_gains.iter().cloned().fold(f64::NAN, f64::max)
        ),
    );
    let min_gains: Vec<f64> = ["C/C", "C/D", "D/C", "D/D"]
        .iter()
        .map(|s| nines(s, "R_MIN") - nines(s, "R_HYB"))
        .collect();
    add(
        "Fig 10",
        "R_MIN durability gain",
        "+0.1-1.2 nines",
        format!(
            "+{:.1}-{:.1} nines",
            min_gains.iter().cloned().fold(f64::NAN, f64::min),
            min_gains.iter().cloned().fold(f64::NAN, f64::max)
        ),
    );
    add(
        "Fig 10",
        "best / worst scheme with R_MIN",
        "C/D,D/D / D/C",
        format!(
            "{:.1},{:.1} / {:.1} nines",
            nines("C/D", "R_MIN"),
            nines("D/D", "R_MIN"),
            nines("D/C", "R_MIN")
        ),
    );

    let g = Geometry::paper_default();
    let c = SimConfig::paper_default();
    add(
        "§5.1.4",
        "(7+3) net-SLEC repair traffic",
        "100s of TB/day",
        format!(
            "{:.0} TB/day",
            traffic::net_slec_daily_traffic_tb(&g, &c, 7)
        ),
    );
    let mlec_yearly = traffic::mlec_yearly_traffic_tb(
        &mlec_core::sim::config::MlecDeployment::paper_default(mlec_core::topology::MlecScheme::CC),
        mlec_core::sim::RepairMethod::Min,
        p("C/C"),
    );
    add(
        "§5.1.4",
        "MLEC repair traffic",
        "few TB / 1000s of years",
        format!("{:.1e} TB/yr", mlec_yearly),
    );

    println!(
        "{}",
        ascii_table(&["experiment", "quantity", "paper", "ours"], &rows)
    );
    println!("Full per-figure details: EXPERIMENTS.md; regeneration commands in README.md.");
}
