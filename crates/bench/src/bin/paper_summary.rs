//! Compatibility shim for `mlec run paper_summary` — same arguments, same
//! output; see `mlec info paper_summary` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("paper_summary")
}
