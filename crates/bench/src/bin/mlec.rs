//! `mlec` — the single driver for every experiment in the registry.
//!
//! ```text
//! mlec list                       # every figure/table, modes, one-liner
//! mlec info fig10                 # parameter schema with defaults
//! mlec run fig08                  # analytic mode, paper defaults
//! mlec run fig08 mode=sim trials=4 threads=8 out=target/figures
//! mlec run fig05 rel_err=0.1 samples=200 manifests=target/manifests
//! mlec run all --fast             # smoke every experiment with fast params
//! ```
//!
//! Arguments are validated against each experiment's declared schema:
//! unknown keys, malformed values, and unsupported modes exit with status
//! 2 (a failed acceptance gate such as `require_events=` exits 1).

use mlec_core::registry::{self, REGISTRY};
use mlec_core::report::ascii_table;
use std::process::ExitCode;

fn usage() {
    eprintln!("usage: mlec <command>");
    eprintln!("  list                      list registered experiments");
    eprintln!("  info <name>               show an experiment's parameters");
    eprintln!("  run <name> [key=value…]   run one experiment");
    eprintln!("  run all [--fast]          run every experiment (--fast: small budgets)");
    eprintln!("global keys accepted by every experiment:");
    eprintln!("  mode=analytic|sim|measured  out=DIR  threads=N  manifests=DIR");
}

fn list() {
    // Sorted by name so the listing is stable as the registry grows
    // (REGISTRY itself stays in the paper's presentation order).
    let mut rows: Vec<Vec<String>> = REGISTRY
        .iter()
        .map(|exp| {
            let info = exp.info();
            vec![
                info.name.to_string(),
                info.modes
                    .iter()
                    .map(|m| m.name())
                    .collect::<Vec<_>>()
                    .join(","),
                info.title.to_string(),
                info.description.to_string(),
            ]
        })
        .collect();
    rows.sort();
    print!(
        "{}",
        ascii_table(&["name", "modes", "title", "description"], &rows)
    );
    println!("\nrun one with `mlec run <name> [key=value…]`; `mlec info <name>` for parameters.");
}

fn info(name: &str) -> ExitCode {
    let Some(exp) = registry::find(name) else {
        match registry::suggest(name) {
            Some(s) => eprintln!(
                "error: unknown experiment `{name}` — did you mean `{s}`? (run `mlec list`)"
            ),
            None => eprintln!("error: unknown experiment `{name}` (run `mlec list`)"),
        }
        return ExitCode::from(2);
    };
    let info = exp.info();
    println!("{} — {} [{}]", info.title, info.description, info.paper_ref);
    println!(
        "modes: {} (default: {})",
        info.modes
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", "),
        info.default_mode().name()
    );
    if info.params.is_empty() {
        println!("parameters: none beyond the global keys");
    } else {
        let rows: Vec<Vec<String>> = info
            .params
            .iter()
            .map(|p| {
                vec![
                    p.name.to_string(),
                    p.kind.name().to_string(),
                    if p.default.is_empty() {
                        "''".to_string()
                    } else {
                        p.default.to_string()
                    },
                    p.help.to_string(),
                ]
            })
            .collect();
        print!(
            "{}",
            ascii_table(&["parameter", "type", "default", "help"], &rows)
        );
    }
    println!("global keys: mode= out= threads= manifests=");
    if !info.fast.is_empty() {
        let overrides: Vec<String> = info.fast.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("`run all --fast` overrides: {}", overrides.join(" "));
    }
    ExitCode::SUCCESS
}

fn run_all(flags: &[String]) -> ExitCode {
    let fast = match flags {
        [] => false,
        [f] if f == "--fast" => true,
        _ => {
            eprintln!("error: `mlec run all` accepts only `--fast`");
            return ExitCode::from(2);
        }
    };
    let mut failed: Vec<&str> = Vec::new();
    for exp in REGISTRY {
        let info = exp.info();
        let args: Vec<String> = if fast {
            info.fast.iter().map(|(k, v)| format!("{k}={v}")).collect()
        } else {
            Vec::new()
        };
        println!("--- mlec run {} {}", info.name, args.join(" "));
        if mlec_bench::execute_status(info.name, &args) != 0 {
            failed.push(info.name);
        }
        println!();
    }
    if failed.is_empty() {
        println!("all {} experiments completed", REGISTRY.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("failed: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("info") => match args.get(1) {
            Some(name) => info(name),
            None => {
                usage();
                ExitCode::from(2)
            }
        },
        Some("run") => match args.get(1).map(String::as_str) {
            Some("all") => run_all(&args[2..]),
            Some(name) => mlec_bench::execute_with(name, &args[2..]),
            None => {
                usage();
                ExitCode::from(2)
            }
        },
        Some("help" | "--help" | "-h") => {
            usage();
            ExitCode::SUCCESS
        }
        _ => {
            usage();
            ExitCode::from(2)
        }
    }
}
