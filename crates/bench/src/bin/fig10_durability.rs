//! Compatibility shim for `mlec run fig10` — same arguments, same
//! output; see `mlec info fig10` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig10")
}
