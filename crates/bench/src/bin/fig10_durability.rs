//! Figure 10: one-year durability (nines) of the four MLEC schemes under
//! the four repair methods, via the splitting estimator.
//!
//! Usage: `fig10_durability [mode=analytic]`
//!
//! `mode=sim` replaces the analytic stage 1 (pool Markov chain) with a
//! pool-simulation campaign through `mlec-runner`, at an inflated AFR
//! where catastrophic events are observable:
//! `fig10_durability mode=sim [afr_pct=400] [years=20] [trials=64]`
//! `[seed=42] [threads=0] [manifests=DIR]`

use mlec_bench::{arg_str, arg_u64, banner, runner_opts_from_args};
use mlec_core::experiments::{fig10_durability, fig10_durability_sim};
use mlec_core::report::{ascii_table, dump_json};

const SCHEMES: [&str; 4] = ["C/C", "C/D", "D/C", "D/D"];
const METHODS: [&str; 4] = ["R_ALL", "R_FCO", "R_HYB", "R_MIN"];

fn main() {
    banner(
        "Figure 10",
        "durability (nines) per scheme and repair method",
    );
    if arg_str("mode").as_deref() == Some("sim") {
        run_sim();
        return;
    }
    let cells = fig10_durability();
    let rows: Vec<Vec<String>> = METHODS
        .iter()
        .map(|m| {
            let mut row = vec![m.to_string()];
            for s in SCHEMES {
                let cell = cells
                    .iter()
                    .find(|c| c.scheme == s && c.method == *m)
                    .expect("cell exists");
                row.push(format!("{:.1}", cell.nines));
            }
            row
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["method", "C/C", "C/D", "D/C", "D/D"], &rows)
    );
    println!("paper: R_FCO +0.9-6.6 nines over R_ALL; R_HYB +0.6-4.1; R_MIN +0.1-1.2;");
    println!("       after optimization C/D and D/D best, D/C worst");
    if let Ok(path) = dump_json("fig10", &cells) {
        println!("json: {}", path.display());
    }
}

fn run_sim() {
    let afr = arg_u64("afr_pct", 400) as f64 / 100.0;
    let years = arg_u64("years", 20) as f64;
    let trials = arg_u64("trials", 64);
    let seed = arg_u64("seed", 42);
    let opts = runner_opts_from_args();
    println!("sim mode: AFR {afr}, stage 1 from {trials} pool trials x {years} years per scheme,");
    println!("root seed {seed}; cells show nines as sim-stage1 (analytic-stage1)\n");
    let cells = match fig10_durability_sim(afr, years, trials, seed, &opts) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let rows: Vec<Vec<String>> = METHODS
        .iter()
        .map(|m| {
            let mut row = vec![m.to_string()];
            for s in SCHEMES {
                let cell = cells
                    .iter()
                    .find(|c| c.scheme == s && c.method == *m)
                    .expect("cell exists");
                row.push(format!(
                    "{:.1} ({:.1})",
                    cell.nines_sim_stage1, cell.nines_analytic_stage1
                ));
            }
            row
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["method", "C/C", "C/D", "D/C", "D/D"], &rows)
    );
    for s in SCHEMES {
        if let Some(c) = cells.iter().find(|c| c.scheme == s) {
            println!(
                "  {s}: {} catastrophic events over {:.0} pool-years",
                c.events, c.pool_years
            );
        }
    }
    println!("reading: with zero observed events the simulated stage 1 falls back to the");
    println!("injected-failure census for lost-stripes but reports rate 0 (infinite nines).");
    if let Ok(path) = dump_json("fig10_sim", &cells) {
        println!("json: {}", path.display());
    }
}
