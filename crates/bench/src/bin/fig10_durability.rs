//! Figure 10: one-year durability (nines) of the four MLEC schemes under
//! the four repair methods, via the splitting estimator.

use mlec_bench::banner;
use mlec_core::experiments::fig10_durability;
use mlec_core::report::{ascii_table, dump_json};

fn main() {
    banner("Figure 10", "durability (nines) per scheme and repair method");
    let cells = fig10_durability();
    let schemes = ["C/C", "C/D", "D/C", "D/D"];
    let methods = ["R_ALL", "R_FCO", "R_HYB", "R_MIN"];
    let rows: Vec<Vec<String>> = methods
        .iter()
        .map(|m| {
            let mut row = vec![m.to_string()];
            for s in schemes {
                let cell = cells
                    .iter()
                    .find(|c| c.scheme == s && c.method == *m)
                    .expect("cell exists");
                row.push(format!("{:.1}", cell.nines));
            }
            row
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["method", "C/C", "C/D", "D/C", "D/D"], &rows)
    );
    println!("paper: R_FCO +0.9-6.6 nines over R_ALL; R_HYB +0.6-4.1; R_MIN +0.1-1.2;");
    println!("       after optimization C/D and D/D best, D/C worst");
    if let Ok(path) = dump_json("fig10", &cells) {
        println!("json: {}", path.display());
    }
}
