//! Figure 10: one-year durability (nines) of the four MLEC schemes under
//! the four repair methods, via the splitting estimator.
//!
//! Usage: `fig10_durability [mode=analytic]`
//!
//! `mode=sim` replaces the analytic stage 1 (pool Markov chain) with a
//! pool-simulation campaign through `mlec-runner`, importance-sampled so
//! catastrophic events are observable at the paper's true 1% AFR:
//! `fig10_durability mode=sim [afr_pct=1] [years=20] [trials=64]`
//! `[bias=auto|B] [seed=42] [threads=0] [manifests=DIR] [require_events=0]`
//!
//! `bias=auto` (the default) picks a per-scheme degraded-state rate
//! multiplier; `bias=1` forces direct simulation. `require_events=N` exits
//! non-zero unless every scheme observed at least `N` catastrophic events
//! (the CI smoke gate).

use mlec_bench::{arg_f64, arg_str, arg_u64, banner, bias_from_args, runner_opts_from_args};
use mlec_core::experiments::{fig10_durability, fig10_durability_sim};
use mlec_core::report::{ascii_table, dump_json};

const SCHEMES: [&str; 4] = ["C/C", "C/D", "D/C", "D/D"];
const METHODS: [&str; 4] = ["R_ALL", "R_FCO", "R_HYB", "R_MIN"];

fn main() {
    banner(
        "Figure 10",
        "durability (nines) per scheme and repair method",
    );
    if arg_str("mode").as_deref() == Some("sim") {
        run_sim();
        return;
    }
    let cells = fig10_durability();
    let rows: Vec<Vec<String>> = METHODS
        .iter()
        .map(|m| {
            let mut row = vec![m.to_string()];
            for s in SCHEMES {
                let cell = cells
                    .iter()
                    .find(|c| c.scheme == s && c.method == *m)
                    .expect("cell exists");
                row.push(format!("{:.1}", cell.nines));
            }
            row
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["method", "C/C", "C/D", "D/C", "D/D"], &rows)
    );
    println!("paper: R_FCO +0.9-6.6 nines over R_ALL; R_HYB +0.6-4.1; R_MIN +0.1-1.2;");
    println!("       after optimization C/D and D/D best, D/C worst");
    if let Ok(path) = dump_json("fig10", &cells) {
        println!("json: {}", path.display());
    }
}

fn run_sim() {
    let afr = arg_f64("afr_pct", 1.0) / 100.0;
    let years = arg_u64("years", 20) as f64;
    let trials = arg_u64("trials", 64);
    let seed = arg_u64("seed", 42);
    let bias = bias_from_args();
    let require_events = arg_u64("require_events", 0);
    let opts = runner_opts_from_args();
    let bias_desc = match bias {
        None => "auto".to_string(),
        Some(b) => format!("{b}"),
    };
    println!("sim mode: AFR {afr}, stage 1 from {trials} pool trials x {years} years per scheme,");
    println!(
        "bias {bias_desc}, root seed {seed}; cells show nines as sim-stage1 (analytic-stage1);"
    );
    println!("`>=x` marks a zero-event durability lower bound\n");
    let cells = match fig10_durability_sim(afr, years, trials, seed, bias, &opts) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let rows: Vec<Vec<String>> = METHODS
        .iter()
        .map(|m| {
            let mut row = vec![m.to_string()];
            for s in SCHEMES {
                let cell = cells
                    .iter()
                    .find(|c| c.scheme == s && c.method == *m)
                    .expect("cell exists");
                row.push(format!(
                    "{}{:.1} ({:.1})",
                    if cell.unobserved { ">=" } else { "" },
                    cell.nines_sim_stage1,
                    cell.nines_analytic_stage1
                ));
            }
            row
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["method", "C/C", "C/D", "D/C", "D/D"], &rows)
    );
    for s in SCHEMES {
        if let Some(c) = cells.iter().find(|c| c.scheme == s) {
            println!(
                "  {s}: {} events ({:.3e} weighted, ESS {:.1}) over {:.0} pool-years, bias {:.0}{}",
                c.events,
                c.weighted_events,
                c.ess,
                c.pool_years,
                c.bias,
                if c.unobserved {
                    " — unobserved: nines are the Poisson 95% lower bound"
                } else {
                    ""
                }
            );
        }
    }
    println!("\nreading: stage-1 rates are likelihood-ratio reweighted, so the sim column is");
    println!("unbiased at any bias; ESS is the effective sample size of the weighted events.");
    println!("Zero-event schemes report a durability lower bound (never infinite nines).");
    if let Ok(path) = dump_json("fig10_sim", &cells) {
        println!("json: {}", path.display());
    }
    if require_events > 0 {
        let mut failed = false;
        for s in SCHEMES {
            if let Some(c) = cells.iter().find(|c| c.scheme == s) {
                if c.events < require_events {
                    eprintln!(
                        "require_events={require_events}: {s} observed only {} events",
                        c.events
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("require_events={require_events}: satisfied for all schemes");
    }
}
