//! Compatibility shim for `mlec run fig15` — same arguments, same
//! output; see `mlec info fig15` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig15")
}
