//! Figure 15: MLEC C/D vs LRC-Dp durability/throughput tradeoff at ~30%
//! parity overhead.

use mlec_bench::{arg_u64, banner};
use mlec_core::ec::throughput::ThroughputModel;
use mlec_core::experiments::fig15_mlec_vs_lrc;
use mlec_core::report::{ascii_table, dump_json};

fn main() {
    banner(
        "Figure 15",
        "MLEC C/D vs LRC-Dp durability/throughput tradeoff",
    );
    let mb = arg_u64("mb", 32) as usize * 1024 * 1024;
    let model = ThroughputModel::calibrate(128 * 1024, mb);
    let points = fig15_mlec_vs_lrc(&model);
    for family in ["C/D", "LRC-Dp"] {
        let mut fam: Vec<_> = points.iter().filter(|p| p.family == family).collect();
        fam.sort_by(|a, b| a.durability_nines.total_cmp(&b.durability_nines));
        println!("series {family} ({} configs):", fam.len());
        let rows: Vec<Vec<String>> = fam
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    format!("{:.1}", p.durability_nines),
                    format!("{:.0}", p.throughput_mbs),
                    format!("{:.0}%", p.overhead * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            ascii_table(&["config", "nines", "MB/s", "overhead"], &rows)
        );
    }
    println!("paper F#1: MLEC reaches high durability with higher encoding throughput than LRC");
    if let Ok(path) = dump_json("fig15", &points) {
        println!("json: {}", path.display());
    }
}
