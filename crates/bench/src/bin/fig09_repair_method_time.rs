//! Compatibility shim for `mlec run fig09` — same arguments, same
//! output; see `mlec info fig09` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig09")
}
