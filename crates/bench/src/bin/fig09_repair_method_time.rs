//! Figure 9: network-level (-N) and local (-L) repair time of the four
//! repair methods on the four MLEC schemes.

use mlec_bench::banner;
use mlec_core::experiments::fig8_fig9_repair_methods;
use mlec_core::report::{ascii_table, dump_json};

fn main() {
    banner(
        "Figure 9",
        "repair time split into network (-N) and local (-L) phases",
    );
    let cells = fig8_fig9_repair_methods();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.scheme.clone(),
                c.method.clone(),
                format!("{:.1}", c.network_time_h),
                format!("{:.1}", c.local_time_h),
                format!("{:.1}", c.network_time_h + c.local_time_h),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &["scheme", "method", "network h", "local h", "total h"],
            &rows
        )
    );
    println!("paper: R_FCO cuts network time 5-30x vs R_ALL; R_HYB trades network for");
    println!("       local time; R_MIN has the least network time but can take longest in total");
    if let Ok(path) = dump_json("fig09", &cells) {
        println!("json: {}", path.display());
    }
}
