//! Failure-trace tooling: synthesize a trace, print its statistics and
//! detected bursts, and replay it through the system simulator — the
//! paper's trace-driven fault-simulation mode end to end.
//!
//! Usage: `trace_tools [afr_pct=1] [bursts_per_year_x10=10] [burst_size=60]
//! [burst_racks=1] [years=5] [out=]`
//! (pass `out=/path/trace.csv` to also write the trace)

use mlec_bench::{arg_u64, banner};
use mlec_core::report::ascii_table;
use mlec_core::sim::config::MlecDeployment;
use mlec_core::sim::system_sim::simulate_system_trace;
use mlec_core::sim::trace::{detect_bursts, synthesize, TraceSpec};
use mlec_core::sim::RepairMethod;
use mlec_core::topology::{Geometry, MlecScheme};

fn main() {
    banner(
        "Trace tools",
        "synthesize, analyze, and replay a failure trace",
    );
    let spec = TraceSpec {
        background_afr: arg_u64("afr_pct", 1) as f64 / 100.0,
        bursts_per_year: arg_u64("bursts_per_year_x10", 10) as f64 / 10.0,
        burst_size: arg_u64("burst_size", 60) as u32,
        burst_racks: arg_u64("burst_racks", 1) as u32,
        years: arg_u64("years", 5) as f64,
    };
    let geometry = Geometry::paper_default();
    let trace = synthesize(&geometry, &spec, arg_u64("seed", 42));

    println!(
        "synthesized {} failures over {:.1} years (empirical AFR {:.3}%)\n",
        trace.len(),
        spec.years,
        trace.empirical_afr(&geometry) * 100.0
    );

    let bursts = detect_bursts(&trace, 0.5, 5);
    println!(
        "detected {} bursts (>= 5 failures within 30 min):",
        bursts.len()
    );
    for (start, disks) in bursts.iter().take(10) {
        let racks: std::collections::BTreeSet<u32> =
            disks.iter().map(|&d| geometry.rack_of(d)).collect();
        println!(
            "  t={start:>9.1}h  {} disks across {} racks",
            disks.len(),
            racks.len()
        );
    }

    println!("\nreplaying the trace against each scheme (R_MIN):");
    let rows: Vec<Vec<String>> = MlecScheme::ALL
        .into_iter()
        .map(|scheme| {
            let dep = MlecDeployment::paper_default(scheme);
            let r = simulate_system_trace(&dep, &trace, RepairMethod::Min, 1);
            vec![
                scheme.name(),
                r.catastrophic_pools.to_string(),
                r.data_loss_events.to_string(),
                format!("{:.2}", r.cross_rack_traffic_tb),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &[
                "scheme",
                "catastrophic pools",
                "data losses",
                "cross-rack TB"
            ],
            &rows
        )
    );

    if let Some(path) = std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("out=").map(String::from))
    {
        std::fs::write(&path, trace.to_csv()).expect("write trace CSV");
        println!("trace written to {path}");
    }
}
