//! Compatibility shim for `mlec run trace` — same arguments, same
//! output; see `mlec info trace` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("trace")
}
