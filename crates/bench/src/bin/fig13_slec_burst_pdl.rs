//! Figure 13: PDL of (7+3) SLEC under correlated failure bursts for the
//! four placements (Loc-Cp, Loc-Dp, Net-Cp, Net-Dp).
//!
//! Usage: `fig13_slec_burst_pdl [max=60] [step=6] [samples=60] [seed=42]`
//! `[threads=0] [manifests=DIR]`

use mlec_bench::{banner, heatmap_spec_from_args, runner_opts_from_args};
use mlec_core::ec::SlecParams;
use mlec_core::experiments::fig13_slec_burst_with;
use mlec_core::report::{dump_json, render_heatmap};

fn main() {
    banner(
        "Figure 13",
        "SLEC PDL under correlated failure bursts, (7+3)",
    );
    let spec = heatmap_spec_from_args();
    let opts = runner_opts_from_args();
    let maps = fig13_slec_burst_with(&spec, SlecParams::new(7, 3), &opts);
    for map in &maps {
        println!("{}", render_heatmap(map));
    }
    println!("paper: local SLEC susceptible to localized bursts (left edge red),");
    println!("       network SLEC susceptible to scattered bursts (diagonal red),");
    println!("       Dp variants worse than Cp in their respective failure regimes");
    if let Ok(path) = dump_json("fig13", &maps) {
        println!("json: {}", path.display());
    }
}
