//! Compatibility shim for `mlec run fig13` — same arguments, same
//! output; see `mlec info fig13` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig13")
}
