//! Figure 1: storage scaling over the years (motivational data).

use mlec_bench::banner;
use mlec_core::figdata;
use mlec_core::report::{ascii_table, dump_json};

fn main() {
    banner("Figure 1", "storage scaling over the years");
    for (title, series) in [
        ("(a) Disks per system", figdata::disks_per_system()),
        ("(b) Capacity per disk", figdata::capacity_per_disk()),
    ] {
        println!("{title}");
        let years: Vec<u32> = series[0].samples.iter().map(|s| s.year).collect();
        let mut headers = vec!["series", "unit"];
        let year_strs: Vec<String> = years.iter().map(|y| y.to_string()).collect();
        headers.extend(year_strs.iter().map(|s| s.as_str()));
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|s| {
                let mut row = vec![s.name.to_string(), s.unit.to_string()];
                row.extend(s.samples.iter().map(|p| format!("{:.1}", p.value)));
                row
            })
            .collect();
        println!("{}", ascii_table(&headers, &rows));
        if let Ok(path) = dump_json(
            if title.starts_with("(a)") {
                "fig01a"
            } else {
                "fig01b"
            },
            &series,
        ) {
            println!("json: {}\n", path.display());
        }
    }
}
