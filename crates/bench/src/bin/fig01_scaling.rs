//! Compatibility shim for `mlec run fig01` — same arguments, same
//! output; see `mlec info fig01` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig01")
}
