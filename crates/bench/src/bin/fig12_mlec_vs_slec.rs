//! Figure 12: MLEC vs SLEC durability/throughput tradeoff at ~30% parity
//! overhead. Throughput is predicted by the calibrated cost model
//! (validated against Fig 11's direct measurements).

use mlec_bench::{arg_u64, banner};
use mlec_core::ec::throughput::ThroughputModel;
use mlec_core::experiments::fig12_mlec_vs_slec;
use mlec_core::report::{ascii_table, dump_json};

fn main() {
    banner(
        "Figure 12",
        "MLEC vs SLEC durability/throughput tradeoff (~30% overhead)",
    );
    let mb = arg_u64("mb", 32) as usize * 1024 * 1024;
    let model = ThroughputModel::calibrate(128 * 1024, mb);
    println!(
        "calibrated kernel rate: {:.0} MB/s of multiply work\n",
        model.rate_mb_per_s
    );

    let points = fig12_mlec_vs_slec(&model);
    for family in ["C/C", "C/D", "Loc-Cp-S", "Loc-Dp-S", "Net-Cp-S", "Net-Dp-S"] {
        let mut fam: Vec<_> = points.iter().filter(|p| p.family == family).collect();
        fam.sort_by(|a, b| a.durability_nines.total_cmp(&b.durability_nines));
        println!("series {family} ({} configs):", fam.len());
        let rows: Vec<Vec<String>> = fam
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    format!("{:.1}", p.durability_nines),
                    format!("{:.0}", p.throughput_mbs),
                    format!("{:.0}%", p.overhead * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            ascii_table(&["config", "nines", "MB/s", "overhead"], &rows)
        );
    }
    println!("paper F#2: above ~20 nines, MLEC sustains much higher throughput than SLEC");
    if let Ok(path) = dump_json("fig12", &points) {
        println!("json: {}", path.display());
    }
}
