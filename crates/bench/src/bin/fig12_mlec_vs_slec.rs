//! Compatibility shim for `mlec run fig12` — same arguments, same
//! output; see `mlec info fig12` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig12")
}
