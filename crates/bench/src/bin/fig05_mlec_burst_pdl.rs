//! Compatibility shim for `mlec run fig05` — same arguments, same
//! output; see `mlec info fig05` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig05")
}
