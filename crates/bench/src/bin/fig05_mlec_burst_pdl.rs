//! Figure 5: PDL heatmaps of the four MLEC schemes under correlated
//! failure bursts (y failed disks scattered over x racks).
//!
//! Usage: `fig05_mlec_burst_pdl [max=60] [step=6] [samples=60] [seed=42]`
//! `[threads=0] [manifests=DIR]` — step=1 reproduces the paper's full
//! 60x60 grid (slower); with `manifests=DIR` an interrupted run resumes
//! from its JSONL checkpoints.

use mlec_bench::{banner, heatmap_spec_from_args, runner_opts_from_args};
use mlec_core::experiments::fig5_mlec_burst_with;
use mlec_core::report::{dump_json, render_heatmap};

fn main() {
    banner("Figure 5", "MLEC PDL under correlated failure bursts");
    let spec = heatmap_spec_from_args();
    let opts = runner_opts_from_args();
    println!(
        "grid: 1..{} step {}, {} layout samples/cell\n",
        spec.max, spec.step, spec.samples
    );
    let maps = fig5_mlec_burst_with(&spec, &opts);
    for map in &maps {
        println!("{}", render_heatmap(map));
    }
    println!("paper findings to check against:");
    println!("  F#2: fixed y, more racks => lower PDL (rows get greener rightward)");
    println!("  F#3: C/C: PDL=0 for x <= p_n=2 racks");
    println!("  F#4: worst cells at x = p_n+1 = 3 racks, y = 60");
    println!("  F#5-7: C/D and D/C redder than C/C; D/D reddest overall");
    if let Ok(path) = dump_json("fig05", &maps) {
        println!("json: {}", path.display());
    }
}
