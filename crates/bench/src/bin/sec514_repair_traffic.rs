//! Compatibility shim for `mlec run sec514` — same arguments, same
//! output; see `mlec info sec514` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("sec514")
}
