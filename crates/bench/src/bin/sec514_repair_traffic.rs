//! §5.1.4 / §5.2.4: steady-state repair network traffic comparison across
//! network SLEC, LRC-Dp, and MLEC (all repair methods).

use mlec_bench::banner;
use mlec_core::experiments::repair_traffic_comparison;
use mlec_core::report::{ascii_table, dump_json, fmt_value};

fn main() {
    banner(
        "Sections 5.1.4 & 5.2.4",
        "repair network traffic: SLEC vs LRC vs MLEC",
    );
    let rows = repair_traffic_comparison();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                fmt_value(r.tb_per_day),
                fmt_value(r.tb_per_year),
            ]
        })
        .collect();
    println!("{}", ascii_table(&["system", "TB/day", "TB/year"], &table));
    println!("paper: network SLEC needs hundreds of TB/day; LRC less but still substantial;");
    println!("       MLEC needs a few TB every thousands of years");
    if let Ok(path) = dump_json("sec514_sec524_traffic", &rows) {
        println!("json: {}", path.display());
    }
}
