//! Compatibility shim for `mlec run fig11` — same arguments, same
//! output; see `mlec info fig11` for the parameter schema.

fn main() -> std::process::ExitCode {
    mlec_bench::shim("fig11")
}
