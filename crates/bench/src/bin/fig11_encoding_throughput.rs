//! Figure 11: single-core encoding throughput for (k+p) SLEC, measured on
//! our pure-Rust GF(2^8) kernels (ISA-L substitute — shapes comparable,
//! absolute MB/s differ).
//!
//! Usage: `fig11_encoding_throughput [kmax=50] [pmax=15] [kstep=4] [pstep=2]
//! [chunk_kb=128] [mb=64]`

use mlec_bench::{arg_u64, banner};
use mlec_core::experiments::fig11_encoding_throughput;
use mlec_core::report::dump_json;

fn main() {
    banner("Figure 11", "single-core (k+p) encoding throughput heatmap");
    let kmax = arg_u64("kmax", 50) as usize;
    let pmax = arg_u64("pmax", 15) as usize;
    let kstep = arg_u64("kstep", 4).max(1) as usize;
    let pstep = arg_u64("pstep", 2).max(1) as usize;
    let chunk = arg_u64("chunk_kb", 128) as usize * 1024;
    let min_bytes = arg_u64("mb", 64) as usize * 1024 * 1024;

    let ks: Vec<usize> = (2..=kmax).step_by(kstep).collect();
    let ps: Vec<usize> = (1..=pmax).step_by(pstep).collect();
    println!("grid: k in {ks:?}\n      p in {ps:?}\n");

    let cells = fig11_encoding_throughput(&ks, &ps, chunk, min_bytes);

    // Render the heatmap rows (p down the side, k across).
    print!("{:>6}", "p\\k");
    for &k in &ks {
        print!("{k:>7}");
    }
    println!();
    for &p in ps.iter().rev() {
        print!("{p:>6}");
        for &k in &ks {
            let cell = cells.iter().find(|c| c.k == k && c.p == p).unwrap();
            print!("{:>7.0}", cell.mb_per_s);
        }
        println!();
    }
    println!("\n(values: MB/s of data encoded; paper shape: falls with larger k and p)");
    let max = cells.iter().map(|c| c.mb_per_s).fold(0.0f64, f64::max);
    let min = cells
        .iter()
        .map(|c| c.mb_per_s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "range: {min:.0} .. {max:.0} MB/s ({:.1}x spread)",
        max / min
    );
    if let Ok(path) = dump_json("fig11", &cells) {
        println!("json: {}", path.display());
    }
}
