//! `mlec-bench`: the `mlec` experiment driver, the per-figure
//! compatibility shims (`src/bin/fig*.rs`), and the self-contained
//! microbenchmarks (`benches/`, timed by [`microbench`]).
//!
//! All execution goes through `mlec_core::registry`: arguments are parsed
//! once against each experiment's declared schema, so unknown keys,
//! malformed values, and unsupported modes exit non-zero instead of being
//! silently ignored. Every experiment prints the paper-comparable
//! rows/series to stdout and dumps machine-readable JSON under
//! `target/figures/` (tunable with `out=DIR`).

pub mod microbench;

use mlec_core::registry::{self, ExperimentError, RunOutcome};
use std::process::ExitCode;

/// Standard banner printed before an experiment's report.
pub fn banner(figure: &str, description: &str) {
    println!("=== {figure}: {description}");
    println!(
        "    (mlec-rs reproduction of Wang et al., SC'23 — shapes/orderings are the target, \
         not absolute testbed numbers)"
    );
    println!();
}

fn print_outcome(outcome: &RunOutcome) {
    banner(outcome.info.title, outcome.info.description);
    print!("{}", outcome.text);
    for path in &outcome.artifact_paths {
        println!("json: {}", path.display());
    }
}

/// Run a registered experiment with explicit `key=value` arguments,
/// printing its banner, report, artifact paths, and any gate failures.
/// Exit status: `0` success, `1` failed gates or campaign I/O, `2`
/// unresolvable name/arguments.
pub fn execute_status(name: &str, raw_args: &[String]) -> u8 {
    match registry::run_experiment(name, raw_args) {
        Ok(outcome) => {
            print_outcome(&outcome);
            if outcome.gate_failures.is_empty() {
                0
            } else {
                for failure in &outcome.gate_failures {
                    eprintln!("{failure}");
                }
                1
            }
        }
        Err(e @ (ExperimentError::Io(_) | ExperimentError::Dump(_))) => {
            eprintln!("error: {e}");
            1
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("hint: `mlec info {name}` lists the accepted parameters");
            2
        }
    }
}

/// [`execute_status`] as an [`ExitCode`].
pub fn execute_with(name: &str, raw_args: &[String]) -> ExitCode {
    ExitCode::from(execute_status(name, raw_args))
}

/// Entry point of the per-figure compatibility shims: forward this
/// process's `key=value` arguments to the named registry experiment
/// (identical to `mlec run <name> [args…]`).
pub fn shim(name: &str) -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    execute_with(name, &args)
}
