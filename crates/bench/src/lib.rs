//! `mlec-bench`: shared plumbing for the per-figure regeneration binaries
//! (`src/bin/fig*.rs`) and the Criterion microbenchmarks (`benches/`).
//!
//! Every binary prints the paper-comparable rows/series to stdout and dumps
//! machine-readable JSON under `target/figures/`. Grid resolution and sample
//! counts are tunable from the command line so a laptop run finishes in
//! seconds while a full-fidelity run reproduces the paper's 60×60 grids.

use mlec_core::experiments::HeatmapSpec;

/// Parse `key=value` style CLI arguments (e.g. `step=3 samples=200 max=60`)
/// into a [`HeatmapSpec`], starting from the default.
pub fn heatmap_spec_from_args() -> HeatmapSpec {
    let mut spec = HeatmapSpec::default();
    for arg in std::env::args().skip(1) {
        if let Some((key, value)) = arg.split_once('=') {
            let Ok(v) = value.parse::<u64>() else {
                continue;
            };
            match key {
                "max" => spec.max = v as u32,
                "step" => spec.step = (v as u32).max(1),
                "samples" => spec.samples = (v as u32).max(1),
                "seed" => spec.seed = v,
                _ => {}
            }
        }
    }
    spec
}

/// Parse a single `key=value` u64 argument with a default.
pub fn arg_u64(key: &str, default: u64) -> u64 {
    for arg in std::env::args().skip(1) {
        if let Some((k, value)) = arg.split_once('=') {
            if k == key {
                if let Ok(v) = value.parse() {
                    return v;
                }
            }
        }
    }
    default
}

/// Standard banner for figure binaries.
pub fn banner(figure: &str, description: &str) {
    println!("=== {figure}: {description}");
    println!(
        "    (mlec-rs reproduction of Wang et al., SC'23 — shapes/orderings are the target, \
         not absolute testbed numbers)"
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_when_no_args() {
        let spec = heatmap_spec_from_args();
        assert_eq!(spec.max, 60);
        assert!(spec.step >= 1);
    }

    #[test]
    fn arg_parse_default() {
        assert_eq!(arg_u64("nonexistent", 7), 7);
    }
}
