//! `mlec-bench`: shared plumbing for the per-figure regeneration binaries
//! (`src/bin/fig*.rs`) and the self-contained microbenchmarks (`benches/`,
//! timed by [`microbench`]).
//!
//! Every binary prints the paper-comparable rows/series to stdout and dumps
//! machine-readable JSON under `target/figures/`. Grid resolution and sample
//! counts are tunable from the command line so a laptop run finishes in
//! seconds while a full-fidelity run reproduces the paper's 60×60 grids.

pub mod microbench;

use mlec_core::experiments::{HeatmapRunOpts, HeatmapSpec};

/// Parse `key=value` style CLI arguments (e.g. `step=3 samples=200 max=60`)
/// into a [`HeatmapSpec`], starting from the default.
pub fn heatmap_spec_from_args() -> HeatmapSpec {
    let mut spec = HeatmapSpec::default();
    for arg in std::env::args().skip(1) {
        if let Some((key, value)) = arg.split_once('=') {
            let Ok(v) = value.parse::<u64>() else {
                continue;
            };
            match key {
                "max" => spec.max = v as u32,
                "step" => spec.step = (v as u32).max(1),
                "samples" => spec.samples = (v as u32).max(1),
                "seed" => spec.seed = v,
                _ => {}
            }
        }
    }
    spec
}

/// Parse a single `key=value` string argument.
pub fn arg_str(key: &str) -> Option<String> {
    for arg in std::env::args().skip(1) {
        if let Some((k, value)) = arg.split_once('=') {
            if k == key {
                return Some(value.to_string());
            }
        }
    }
    None
}

/// Parse the shared runner options of the Monte Carlo binaries:
/// `threads=N` (0 = all cores) and `manifests=DIR` (enables JSONL
/// checkpoint manifests under DIR; rerunning with the same arguments
/// resumes an interrupted sweep from its last checkpoint).
pub fn runner_opts_from_args() -> HeatmapRunOpts {
    HeatmapRunOpts {
        threads: arg_u64("threads", 0) as usize,
        manifest_dir: arg_str("manifests").map(std::path::PathBuf::from),
    }
}

/// Parse a single `key=value` u64 argument with a default.
pub fn arg_u64(key: &str, default: u64) -> u64 {
    for arg in std::env::args().skip(1) {
        if let Some((k, value)) = arg.split_once('=') {
            if k == key {
                if let Ok(v) = value.parse() {
                    return v;
                }
            }
        }
    }
    default
}

/// Parse a single `key=value` f64 argument with a default.
pub fn arg_f64(key: &str, default: f64) -> f64 {
    for arg in std::env::args().skip(1) {
        if let Some((k, value)) = arg.split_once('=') {
            if k == key {
                if let Ok(v) = value.parse() {
                    return v;
                }
            }
        }
    }
    default
}

/// Parse the `bias=` knob of the importance-sampled simulation modes:
/// absent or `bias=auto` → `None` (auto-select per scheme), `bias=1` →
/// direct simulation, `bias=B` → degraded-state multiplier `B`.
pub fn bias_from_args() -> Option<f64> {
    let raw = arg_str("bias")?;
    if raw == "auto" {
        return None;
    }
    match raw.parse::<f64>() {
        Ok(b) if b.is_finite() && b > 0.0 => Some(b),
        _ => {
            eprintln!("warning: ignoring invalid bias={raw} (want auto or a positive number)");
            None
        }
    }
}

/// Standard banner for figure binaries.
pub fn banner(figure: &str, description: &str) {
    println!("=== {figure}: {description}");
    println!(
        "    (mlec-rs reproduction of Wang et al., SC'23 — shapes/orderings are the target, \
         not absolute testbed numbers)"
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_when_no_args() {
        let spec = heatmap_spec_from_args();
        assert_eq!(spec.max, 60);
        assert!(spec.step >= 1);
    }

    #[test]
    fn arg_parse_default() {
        assert_eq!(arg_u64("nonexistent", 7), 7);
    }
}
