//! Microbenchmarks of the simulation and analysis engines: event queue
//! throughput, stripe-census updates, pool-year simulation rate (the
//! paper's "years even with a 200-core simulation" motivation for
//! splitting), and the rare-event analysis kernels. Run with
//! `cargo bench --bench simulation`.

use mlec_analysis::burst::mlec_burst_pdl;
use mlec_analysis::chains::pool_chain;
use mlec_bench::microbench::{bench, black_box};
use mlec_sim::census::StripeCensus;
use mlec_sim::config::MlecDeployment;
use mlec_sim::engine::EventQueue;
use mlec_sim::failure::FailureModel;
use mlec_sim::pool_sim::simulate_pool;
use mlec_topology::MlecScheme;

fn bench_event_queue() {
    bench("event_queue_push_pop_10k", || {
        let mut q = EventQueue::new();
        for i in 0..10_000u32 {
            q.schedule(((i * 2654435761) % 100_000) as f64, i);
        }
        let mut count = 0;
        while q.pop().is_some() {
            count += 1;
        }
        black_box(count);
    });
}

fn bench_census_update() {
    bench("census_fail_and_drain", || {
        let mut census = StripeCensus::new(120, 20, 9.375e8);
        for _ in 0..4 {
            census.add_disk_failure();
        }
        census.drain_priority(1e6);
        black_box(census.failed_chunks());
    });
}

fn bench_pool_year_simulation() {
    // Simulation rate in pool-years/second is the headline capacity number
    // for splitting stage 1.
    let model = FailureModel::Exponential { afr: 0.05 };
    let dep = MlecDeployment::paper_default(MlecScheme::CD);
    let mut seed = 0u64;
    bench("dp_pool_sim_100y", || {
        seed += 1;
        black_box(simulate_pool(&dep, &model, 100.0, seed));
    });
    let dep_cp = MlecDeployment::paper_default(MlecScheme::CC);
    let mut seed = 0u64;
    bench("cp_pool_sim_100y", || {
        seed += 1;
        black_box(simulate_pool(&dep_cp, &model, 100.0, seed));
    });
}

fn bench_markov_chain() {
    let dep = MlecDeployment::paper_default(MlecScheme::CD);
    bench("pool_chain_hazard", || {
        black_box(pool_chain(&dep).absorb_hazard_per_hour());
    });
}

fn bench_burst_cell() {
    // One Fig 5 heatmap cell (60 failures over 3 racks, 20 samples).
    let dep = MlecDeployment::paper_default(MlecScheme::DD);
    bench("fig5_cell_dd_y60_x3", || {
        black_box(mlec_burst_pdl(&dep, 60, 3, 20, 7));
    });
}

fn main() {
    bench_event_queue();
    bench_census_update();
    bench_pool_year_simulation();
    bench_markov_chain();
    bench_burst_cell();
}
