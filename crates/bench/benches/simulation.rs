//! Microbenchmarks of the simulation and analysis engines: event queue
//! throughput, stripe-census updates, catastrophic repair-plan
//! construction across the strategy registry, pool-year simulation rate
//! (the paper's "years even with a 200-core simulation" motivation for
//! splitting), and the rare-event analysis kernels. Run with
//! `cargo bench --bench simulation`; `-- --fast --check BENCH_sim.json`
//! gates against the committed baseline, `-- --json BENCH_sim.json`
//! refreshes it.
//!
//! Committed baseline `min`s are the recorded `--json` output plus ~25%
//! slow-side headroom (see `gf_kernels.rs` for the rationale); medians
//! are the recorded values, kept as noise context.

use mlec_analysis::burst::mlec_burst_pdl;
use mlec_analysis::chains::pool_chain;
use mlec_bench::microbench::{black_box, Harness};
use mlec_sim::census::StripeCensus;
use mlec_sim::config::MlecDeployment;
use mlec_sim::engine::EventQueue;
use mlec_sim::failure::FailureModel;
use mlec_sim::pool_sim::simulate_pool;
use mlec_sim::repair::{inject_catastrophic, RepairMethod};
use mlec_topology::MlecScheme;

fn bench_event_queue(h: &mut Harness) {
    h.bench("event_queue_push_pop_10k", || {
        let mut q = EventQueue::new();
        for i in 0..10_000u32 {
            q.schedule(((i * 2654435761) % 100_000) as f64, i);
        }
        let mut count = 0;
        while q.pop().is_some() {
            count += 1;
        }
        black_box(count);
    });
}

fn bench_census_update(h: &mut Harness) {
    h.bench("census_fail_and_drain", || {
        let mut census = StripeCensus::new(120, 20, 9.375e8);
        for _ in 0..4 {
            census.add_disk_failure();
        }
        census.drain_priority(1e6);
        black_box(census.failed_chunks());
    });
}

fn bench_repair_plans(h: &mut Harness) {
    // Full strategy registry x all four schemes: census injection plus the
    // strategy's staged plan. This sits on the system simulator's
    // per-mission setup path and the analytic figure rows, so plan
    // construction must stay trivially cheap.
    let deps: Vec<MlecDeployment> = MlecScheme::ALL
        .iter()
        .map(|&s| MlecDeployment::paper_default(s))
        .collect();
    h.bench("repair_plan_extended_all_schemes", || {
        let mut traffic = 0.0;
        for dep in &deps {
            let injected = inject_catastrophic(black_box(dep));
            for method in RepairMethod::EXTENDED {
                let plan = method.strategy().plan(dep, &injected);
                traffic += plan.cross_rack_traffic_tb;
            }
        }
        black_box(traffic);
    });
}

fn bench_pool_year_simulation(h: &mut Harness) {
    // Simulation rate in pool-years/second is the headline capacity number
    // for splitting stage 1.
    let model = FailureModel::Exponential { afr: 0.05 };
    let dep = MlecDeployment::paper_default(MlecScheme::CD);
    let mut seed = 0u64;
    h.bench("dp_pool_sim_100y", || {
        seed += 1;
        black_box(simulate_pool(&dep, &model, 100.0, seed));
    });
    let dep_cp = MlecDeployment::paper_default(MlecScheme::CC);
    let mut seed = 0u64;
    h.bench("cp_pool_sim_100y", || {
        seed += 1;
        black_box(simulate_pool(&dep_cp, &model, 100.0, seed));
    });
}

fn bench_markov_chain(h: &mut Harness) {
    let dep = MlecDeployment::paper_default(MlecScheme::CD);
    h.bench("pool_chain_hazard", || {
        black_box(pool_chain(&dep).absorb_hazard().to_per_hour());
    });
}

fn bench_burst_cell(h: &mut Harness) {
    // One Fig 5 heatmap cell (60 failures over 3 racks, 20 samples).
    let dep = MlecDeployment::paper_default(MlecScheme::DD);
    h.bench("fig5_cell_dd_y60_x3", || {
        black_box(mlec_burst_pdl(&dep, 60, 3, 20, 7));
    });
}

fn main() -> std::process::ExitCode {
    let mut h = Harness::from_args();
    bench_event_queue(&mut h);
    bench_census_update(&mut h);
    bench_repair_plans(&mut h);
    bench_pool_year_simulation(&mut h);
    bench_markov_chain(&mut h);
    bench_burst_cell(&mut h);
    h.finish()
}
