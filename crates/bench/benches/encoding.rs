//! Microbenchmarks of the erasure codecs — the measured form of Fig 11
//! (encoding throughput vs (k, p)) plus MLEC/LRC encode and the
//! reconstruction paths. Run with `cargo bench --bench encoding`.

use mlec_bench::microbench::{bench, black_box, Group};
use mlec_ec::{Lrc, MlecCodec, ReedSolomon};

const CHUNK: usize = 128 * 1024; // the paper's §3 chunk size

fn data_chunks(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|s| (0..len).map(|i| ((s * 31 + i) % 256) as u8).collect())
        .collect()
}

fn bench_rs_encode() {
    let group = Group::new("rs_encode");
    // A slice through the Fig 11 surface: growing k at p=3, growing p at k=10.
    for (k, p) in [
        (5usize, 3usize),
        (10, 3),
        (17, 3),
        (30, 3),
        (10, 1),
        (10, 6),
        (10, 12),
    ] {
        let rs = ReedSolomon::new(k, p).unwrap();
        let data = data_chunks(k, CHUNK);
        let mut parity = vec![vec![0u8; CHUNK]; p];
        group.bench_bytes(&format!("{k}+{p}"), (k * CHUNK) as u64, || {
            rs.encode_into(black_box(&data), black_box(&mut parity))
                .unwrap();
        });
    }
}

fn bench_rs_reconstruct() {
    let rs = ReedSolomon::new(17, 3).unwrap();
    let encoded = rs.encode(&data_chunks(17, CHUNK)).unwrap();
    bench("rs_reconstruct_17+3_3erasures", || {
        let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[7] = None;
        shards[19] = None;
        rs.reconstruct(black_box(&mut shards)).unwrap();
    });
}

fn bench_mlec_encode() {
    let group = Group::new("mlec_encode");
    // Paper default (10+2)/(17+3) at a reduced chunk to keep iterations fast.
    let chunk = 16 * 1024;
    for (kn, pn, kl, pl) in [(2usize, 1usize, 2usize, 1usize), (10, 2, 17, 3)] {
        let codec = MlecCodec::new(kn, pn, kl, pl).unwrap();
        let data = data_chunks(kn * kl, chunk);
        group.bench_bytes(
            &format!("({kn}+{pn})/({kl}+{pl})"),
            (kn * kl * chunk) as u64,
            || {
                black_box(codec.encode(black_box(&data)).unwrap());
            },
        );
    }
}

fn bench_lrc_encode() {
    let group = Group::new("lrc_encode");
    let params = [(12usize, 2usize, 2usize), (14, 2, 4)];
    for (k, l, r) in params {
        let lrc = Lrc::new(k, l, r).unwrap();
        let data = data_chunks(k, CHUNK);
        group.bench_bytes(&format!("({k},{l},{r})"), (k * CHUNK) as u64, || {
            black_box(lrc.encode(black_box(&data)).unwrap());
        });
    }
}

fn bench_parallel_encode() {
    // Multi-core scaling of stripe-parallel encoding (paper §5.1.2: "more
    // CPU cores ... potentially extra overhead caused by imperfect
    // parallelism").
    use mlec_ec::throughput::measure_slec_parallel;
    let group = Group::new("parallel_encode_17p3");
    for stripes in [1usize, 4, 16] {
        group.bench(&stripes.to_string(), || {
            black_box(measure_slec_parallel(17, 3, 64 * 1024, stripes, 8 << 20));
        });
    }
}

fn bench_lrc_decodability() {
    let lrc = Lrc::new(14, 2, 4).unwrap();
    let n = lrc.total_chunks();
    let mut i = 0usize;
    bench("lrc_decodable_rank_test_uncached", || {
        // Rotate the pattern so the memo rarely hits.
        let mut erased = vec![false; n];
        erased[i % n] = true;
        erased[(i / n + i) % n] = true;
        erased[(i * 7 + 3) % n] = true;
        i += 1;
        black_box(lrc.decodable(&erased));
    });
}

fn main() {
    bench_rs_encode();
    bench_rs_reconstruct();
    bench_mlec_encode();
    bench_lrc_encode();
    bench_parallel_encode();
    bench_lrc_decodability();
}
