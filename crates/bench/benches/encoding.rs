//! Criterion benchmarks of the erasure codecs — the measured form of
//! Fig 11 (encoding throughput vs (k, p)) plus MLEC/LRC encode and the
//! reconstruction paths.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlec_ec::{Lrc, MlecCodec, ReedSolomon};

const CHUNK: usize = 128 * 1024; // the paper's §3 chunk size

fn data_chunks(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|s| (0..len).map(|i| ((s * 31 + i) % 256) as u8).collect())
        .collect()
}

fn bench_rs_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_encode");
    // A slice through the Fig 11 surface: growing k at p=3, growing p at k=10.
    for (k, p) in [(5usize, 3usize), (10, 3), (17, 3), (30, 3), (10, 1), (10, 6), (10, 12)] {
        let rs = ReedSolomon::new(k, p).unwrap();
        let data = data_chunks(k, CHUNK);
        let mut parity = vec![vec![0u8; CHUNK]; p];
        group.throughput(Throughput::Bytes((k * CHUNK) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}+{p}")),
            &(k, p),
            |b, _| b.iter(|| rs.encode_into(black_box(&data), black_box(&mut parity)).unwrap()),
        );
    }
    group.finish();
}

fn bench_rs_reconstruct(c: &mut Criterion) {
    let rs = ReedSolomon::new(17, 3).unwrap();
    let encoded = rs.encode(&data_chunks(17, CHUNK)).unwrap();
    c.bench_function("rs_reconstruct_17+3_3erasures", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
            shards[0] = None;
            shards[7] = None;
            shards[19] = None;
            rs.reconstruct(black_box(&mut shards)).unwrap();
        })
    });
}

fn bench_mlec_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlec_encode");
    // Paper default (10+2)/(17+3) at a reduced chunk to keep iterations fast.
    let chunk = 16 * 1024;
    for (kn, pn, kl, pl) in [(2usize, 1usize, 2usize, 1usize), (10, 2, 17, 3)] {
        let codec = MlecCodec::new(kn, pn, kl, pl).unwrap();
        let data = data_chunks(kn * kl, chunk);
        group.throughput(Throughput::Bytes((kn * kl * chunk) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("({kn}+{pn})/({kl}+{pl})")),
            &(),
            |b, _| b.iter(|| black_box(codec.encode(black_box(&data)).unwrap())),
        );
    }
    group.finish();
}

fn bench_lrc_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("lrc_encode");
    let params = [(12usize, 2usize, 2usize), (14, 2, 4)];
    for (k, l, r) in params {
        let lrc = Lrc::new(k, l, r).unwrap();
        let data = data_chunks(k, CHUNK);
        group.throughput(Throughput::Bytes((k * CHUNK) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("({k},{l},{r})")),
            &(),
            |b, _| b.iter(|| black_box(lrc.encode(black_box(&data)).unwrap())),
        );
    }
    group.finish();
}

fn bench_parallel_encode(c: &mut Criterion) {
    // Multi-core scaling of stripe-parallel encoding (paper §5.1.2: "more
    // CPU cores ... potentially extra overhead caused by imperfect
    // parallelism").
    use mlec_ec::throughput::measure_slec_parallel;
    let mut group = c.benchmark_group("parallel_encode_17p3");
    for stripes in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(stripes),
            &stripes,
            |b, &stripes| {
                b.iter(|| {
                    black_box(measure_slec_parallel(17, 3, 64 * 1024, stripes, 8 << 20))
                })
            },
        );
    }
    group.finish();
}

fn bench_lrc_decodability(c: &mut Criterion) {
    let lrc = Lrc::new(14, 2, 4).unwrap();
    let n = lrc.total_chunks();
    c.bench_function("lrc_decodable_rank_test_uncached", |b| {
        let mut i = 0usize;
        b.iter(|| {
            // Rotate the pattern so the memo rarely hits.
            let mut erased = vec![false; n];
            erased[i % n] = true;
            erased[(i / n + i) % n] = true;
            erased[(i * 7 + 3) % n] = true;
            i += 1;
            black_box(lrc.decodable(&erased))
        })
    });
}

criterion_group!(
    benches,
    bench_rs_encode,
    bench_rs_reconstruct,
    bench_mlec_encode,
    bench_lrc_encode,
    bench_parallel_encode,
    bench_lrc_decodability
);
criterion_main!(benches);
