//! Criterion microbenchmarks of the GF(2^8) substrate: the slice kernels
//! that bound encoding throughput (Fig 11's inner loop) and the matrix
//! operations behind decode planning.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlec_gf::matrix::Matrix;
use mlec_gf::slice::{mul_add_slice, mul_slice, xor_slice};

fn bench_mul_add_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_mul_add_slice");
    for size in [4 * 1024, 128 * 1024, 1024 * 1024] {
        let input: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let mut out = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| mul_add_slice(black_box(0x57), black_box(&input), black_box(&mut out)))
        });
    }
    group.finish();
}

fn bench_xor_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_xor_slice");
    let size = 128 * 1024;
    let input: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    let mut out = vec![0u8; size];
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function("128KiB", |b| {
        b.iter(|| xor_slice(black_box(&input), black_box(&mut out)))
    });
    group.finish();
}

fn bench_mul_slice(c: &mut Criterion) {
    let size = 128 * 1024;
    let input: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    let mut out = vec![0u8; size];
    let mut group = c.benchmark_group("gf_mul_slice");
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function("128KiB", |b| {
        b.iter(|| mul_slice(black_box(0x8e), black_box(&input), black_box(&mut out)))
    });
    group.finish();
}

fn bench_matrix_invert(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_matrix_invert");
    for n in [10usize, 20, 50] {
        // Cauchy matrices are always invertible.
        let m = Matrix::cauchy(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(&m).invert().unwrap())
        });
    }
    group.finish();
}

fn bench_matrix_rank(c: &mut Criterion) {
    // The LRC decodability hot path: rank of a survivors x k matrix.
    let m = Matrix::vandermonde(20, 14);
    c.bench_function("gf_matrix_rank_20x14", |b| b.iter(|| black_box(&m).rank()));
}

criterion_group!(
    benches,
    bench_mul_add_slice,
    bench_xor_slice,
    bench_mul_slice,
    bench_matrix_invert,
    bench_matrix_rank
);
criterion_main!(benches);
