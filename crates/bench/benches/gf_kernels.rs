//! Microbenchmarks of the GF(2^8) substrate: the slice kernels that bound
//! encoding throughput (Fig 11's inner loop) and the matrix operations
//! behind decode planning. Run with `cargo bench --bench gf_kernels`.

use mlec_bench::microbench::{bench, black_box, Group};
use mlec_gf::matrix::Matrix;
use mlec_gf::slice::{mul_add_slice, mul_slice, xor_slice};

fn bench_mul_add_slice() {
    let group = Group::new("gf_mul_add_slice");
    for size in [4 * 1024, 128 * 1024, 1024 * 1024] {
        let input: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let mut out = vec![0u8; size];
        group.bench_bytes(&size.to_string(), size as u64, || {
            mul_add_slice(black_box(0x57), black_box(&input), black_box(&mut out));
        });
    }
}

fn bench_xor_slice() {
    let group = Group::new("gf_xor_slice");
    let size = 128 * 1024;
    let input: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    let mut out = vec![0u8; size];
    group.bench_bytes("128KiB", size as u64, || {
        xor_slice(black_box(&input), black_box(&mut out));
    });
}

fn bench_mul_slice() {
    let group = Group::new("gf_mul_slice");
    let size = 128 * 1024;
    let input: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    let mut out = vec![0u8; size];
    group.bench_bytes("128KiB", size as u64, || {
        mul_slice(black_box(0x8e), black_box(&input), black_box(&mut out));
    });
}

fn bench_matrix_invert() {
    let group = Group::new("gf_matrix_invert");
    for n in [10usize, 20, 50] {
        // Cauchy matrices are always invertible.
        let m = Matrix::cauchy(n, n);
        group.bench(&n.to_string(), || {
            black_box(black_box(&m).invert().unwrap());
        });
    }
}

fn bench_matrix_rank() {
    // The LRC decodability hot path: rank of a survivors x k matrix.
    let m = Matrix::vandermonde(20, 14);
    bench("gf_matrix_rank_20x14", || {
        black_box(black_box(&m).rank());
    });
}

fn main() {
    bench_mul_add_slice();
    bench_xor_slice();
    bench_mul_slice();
    bench_matrix_invert();
    bench_matrix_rank();
}
