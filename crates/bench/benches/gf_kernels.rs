//! Microbenchmarks of the GF(2^8) substrate: the slice kernels that bound
//! encoding throughput (Fig 11's inner loop) and the matrix operations
//! behind decode planning. Run with `cargo bench --bench gf_kernels`;
//! `-- --fast --check BENCH_gf.json` gates against the committed
//! baseline, `-- --json BENCH_gf.json` refreshes it.
//!
//! The `gf_mul_add_slice/*` rows go through the runtime SIMD dispatcher
//! (printed at startup); `gf_mul_add_scalar/*` pins the portable u64
//! fallback, so the committed baseline documents the SIMD-vs-scalar ratio
//! on the machine that produced it.
//!
//! Committed baseline `min`s are the recorded `--json` output plus ~25%
//! slow-side headroom: virtualized CI hosts drift in effective clock speed
//! between runs, which would trip a tight 25% gate on noise alone, while
//! the regressions this gate exists to catch (losing vector dispatch is
//! a 10x+ slowdown) clear any reasonable headroom. Medians are the
//! recorded values, kept as noise context.

use mlec_bench::microbench::{black_box, Harness};
use mlec_gf::matrix::Matrix;
use mlec_gf::slice::{mul_add_slice, mul_add_slice_scalar, mul_slice, xor_slice};

fn bench_mul_add_slice(h: &mut Harness) {
    for size in [4 * 1024, 128 * 1024, 1024 * 1024] {
        let input: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let mut out = vec![0u8; size];
        h.bench_bytes(&format!("gf_mul_add_slice/{size}"), size as u64, || {
            mul_add_slice(black_box(0x57), black_box(&input), black_box(&mut out));
        });
    }
}

fn bench_mul_add_scalar(h: &mut Harness) {
    // Forced-scalar twin of gf_mul_add_slice/131072: the baseline ratio
    // between the two is the SIMD speedup on the baseline machine.
    let size = 128 * 1024;
    let input: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    let mut out = vec![0u8; size];
    h.bench_bytes("gf_mul_add_scalar/131072", size as u64, || {
        mul_add_slice_scalar(black_box(0x57), black_box(&input), black_box(&mut out));
    });
}

fn bench_xor_slice(h: &mut Harness) {
    let size = 128 * 1024;
    let input: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    let mut out = vec![0u8; size];
    h.bench_bytes("gf_xor_slice/128KiB", size as u64, || {
        xor_slice(black_box(&input), black_box(&mut out));
    });
}

fn bench_mul_slice(h: &mut Harness) {
    let size = 128 * 1024;
    let input: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    let mut out = vec![0u8; size];
    h.bench_bytes("gf_mul_slice/128KiB", size as u64, || {
        mul_slice(black_box(0x8e), black_box(&input), black_box(&mut out));
    });
}

fn bench_matrix_invert(h: &mut Harness) {
    for n in [10usize, 20, 50] {
        // Cauchy matrices are always invertible.
        let m = Matrix::cauchy(n, n);
        h.bench(&format!("gf_matrix_invert/{n}"), || {
            black_box(black_box(&m).invert().unwrap());
        });
    }
}

fn bench_matrix_rank(h: &mut Harness) {
    // The LRC decodability hot path: rank of a survivors x k matrix.
    let m = Matrix::vandermonde(20, 14);
    h.bench("gf_matrix_rank/20x14", || {
        black_box(black_box(&m).rank());
    });
}

fn main() -> std::process::ExitCode {
    println!("gf kernel dispatch: {}", mlec_gf::simd::kernel_name());
    let mut h = Harness::from_args();
    bench_mul_add_slice(&mut h);
    bench_mul_add_scalar(&mut h);
    bench_xor_slice(&mut h);
    bench_mul_slice(&mut h);
    bench_matrix_invert(&mut h);
    bench_matrix_rank(&mut h);
    h.finish()
}
