//! Microbenchmarks of the `mlec-store` serving path: stripe encoding,
//! the put/get fast paths (cached and uncached), degraded reads, and a
//! short end-to-end trace replay. Run with `cargo bench --bench store`;
//! `-- --fast --check BENCH_store.json` gates against the committed
//! baseline, `-- --json BENCH_store.json` refreshes it.
//!
//! These time the *code* (map lookups, cache, GF decode, arbiter math) —
//! op latencies inside the store remain virtual and deterministic.

use mlec_bench::microbench::{black_box, Harness};
use mlec_runner::SeedStream;
use mlec_store::{payload_for, run_store_bench, BenchSpec, MemBackend, MlecStore, StoreConfig};

fn store_with(cache_chunks: usize) -> MlecStore<MemBackend> {
    let mut cfg = StoreConfig::small_test();
    cfg.cache_chunks = cache_chunks;
    MlecStore::new(cfg, |_| Ok(MemBackend::new())).unwrap()
}

fn main() -> std::process::ExitCode {
    let mut h = Harness::from_args();
    let pay = SeedStream::new(42, "bench/store");
    let cfg = StoreConfig::small_test();
    let plen = cfg.payload_bytes();
    let payload = payload_for(&pay, 0, 0, plen);

    h.bench_bytes("store_payload_synth/32KiB", plen as u64, || {
        black_box(payload_for(black_box(&pay), 1, 0, plen));
    });

    let encoder = store_with(0);
    h.bench_bytes("store_encode/32KiB", plen as u64, || {
        black_box(encoder.encode_payload(black_box(&payload)).unwrap());
    });

    let mut store = store_with(0);
    let stripe = store.encode_payload(&payload).unwrap();
    let mut now = 0u64;
    h.bench_bytes("store_put_encoded/32KiB", plen as u64, || {
        now += 1_000;
        black_box(store.put_encoded(0, black_box(&stripe), now).unwrap());
    });

    let mut uncached = store_with(0);
    uncached.put(7, &payload, 0).unwrap();
    h.bench_bytes("store_get/uncached/32KiB", plen as u64, || {
        now += 1_000;
        black_box(uncached.get(7, now).unwrap());
    });

    let mut cached = store_with(4096);
    cached.put(7, &payload, 0).unwrap();
    h.bench_bytes("store_get/cached/32KiB", plen as u64, || {
        now += 1_000;
        black_box(cached.get(7, now).unwrap());
    });

    let mut degraded = store_with(0);
    degraded.put(7, &payload, 0).unwrap();
    // Kill whole racks until one of the object's rows is actually lost
    // (stopping at the first hit keeps the stripe within tolerance).
    let geometry = degraded.config().geometry;
    for rack in 0..geometry.racks {
        if degraded.lost_chunks() > 0 {
            break;
        }
        let kill: Vec<u32> = geometry.disks_in_rack(rack).collect();
        degraded.kill_disks(&kill, 1_000);
    }
    assert!(degraded.get(7, 2_000).unwrap().degraded);
    h.bench_bytes("store_get/degraded/32KiB", plen as u64, || {
        now += 1_000;
        black_box(degraded.get(7, now).unwrap());
    });

    let mut spec = BenchSpec::small(200);
    spec.load.objects = 32;
    h.bench("store_replay/200ops", || {
        black_box(run_store_bench(black_box(&spec)).unwrap());
    });

    // Serial vs epoch-sharded apply on the standard Zipf serving trace
    // (get-dominated, as in the paper's foreground workload). The two
    // produce bit-identical op logs (pinned by tests/shard_equivalence);
    // this pair holds the sharded path's replay throughput win.
    let mut replay = BenchSpec::small(4_000);
    replay.store.chunk_bytes = 32_768; // paper-scale objects: 256 KiB payloads
    replay.load.objects = 32;
    replay.load.put_pct = 0;
    replay.verify_every = 0;
    replay.shards = 0;
    h.bench("store_replay_serial/zipf4k", || {
        black_box(run_store_bench(black_box(&replay)).unwrap());
    });
    replay.shards = 4;
    h.bench("store_replay_sharded4/zipf4k", || {
        black_box(run_store_bench(black_box(&replay)).unwrap());
    });

    h.finish()
}
