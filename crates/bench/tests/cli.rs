//! End-to-end tests of the `mlec` driver binary: registry enumeration,
//! schema enforcement (exit code 2 on unresolvable names/arguments, 1 on
//! failed acceptance gates), and fixed-seed golden regressions for both
//! analytic and simulated modes of the refactored figures.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Every experiment the registry must expose (one per EXPERIMENTS.md entry).
const ALL_EXPERIMENTS: &[&str] = &[
    "fig01",
    "table2",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig15",
    "fig16",
    "sec514",
    "ablations",
    "paper_summary",
    "validation",
    "trace",
    "store_bench",
];

fn mlec(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mlec"))
        .args(args)
        .output()
        .expect("spawn mlec driver")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn status(out: &Output) -> i32 {
    out.status.code().expect("driver terminated by signal")
}

/// A per-test scratch directory under the target temp dir (no external
/// tempdir crate; unique per test name, wiped on entry).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mlec-cli-tests")
        .join(format!("{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn list_enumerates_every_registered_experiment() {
    let out = mlec(&["list"]);
    assert_eq!(status(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for name in ALL_EXPERIMENTS {
        assert!(text.contains(name), "`mlec list` is missing `{name}`");
    }
    assert!(text.contains("analytic"));
    assert!(text.contains("sim"));
}

#[test]
fn list_output_is_sorted_by_name() {
    let out = mlec(&["list"]);
    assert_eq!(status(&out), 0);
    let text = stdout(&out);
    let names: Vec<&str> = text
        .lines()
        .filter_map(|l| l.split_whitespace().next())
        .filter(|first| ALL_EXPERIMENTS.contains(first))
        .collect();
    assert_eq!(names.len(), ALL_EXPERIMENTS.len(), "rows missing:\n{text}");
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "`mlec list` rows must be sorted by name");
}

#[test]
fn info_prints_parameter_schema() {
    let out = mlec(&["info", "fig10"]);
    assert_eq!(status(&out), 0);
    let text = stdout(&out);
    assert!(text.contains("require_events"));
    assert!(text.contains("default"));
    assert!(text.contains("mode="));
}

#[test]
fn unknown_experiment_exits_2() {
    let out = mlec(&["run", "fig99"]);
    assert_eq!(status(&out), 2);
    assert!(stderr(&out).contains("unknown experiment `fig99`"));
}

#[test]
fn unknown_experiment_gets_a_did_you_mean() {
    let out = mlec(&["run", "store_benh"]);
    assert_eq!(status(&out), 2);
    let err = stderr(&out);
    assert!(
        err.contains("did you mean `store_bench`"),
        "missing suggestion in: {err}"
    );
    let out = mlec(&["info", "validatoin"]);
    assert_eq!(status(&out), 2);
    assert!(stderr(&out).contains("did you mean `validation`"));
}

#[test]
fn typoed_parameter_is_a_hard_error() {
    // The motivating bug: `afr_pc=1` used to be silently ignored, running
    // the 75%-AFR default instead of the requested configuration.
    let out = mlec(&["run", "fig07", "afr_pc=1"]);
    assert_eq!(status(&out), 2);
    let err = stderr(&out);
    assert!(err.contains("unknown parameter `afr_pc`"));
    assert!(
        err.contains("afr_pct"),
        "error must suggest the accepted keys"
    );
}

#[test]
fn malformed_value_exits_2() {
    let out = mlec(&["run", "fig07", "trials=many"]);
    assert_eq!(status(&out), 2);
    assert!(stderr(&out).contains("invalid value `many` for `trials`"));
}

#[test]
fn unsupported_mode_exits_2() {
    let out = mlec(&["run", "fig06", "mode=sim"]);
    assert_eq!(status(&out), 2);
    assert!(stderr(&out).contains("has no mode=sim"));
}

#[test]
fn fig06_analytic_golden() {
    let dir = scratch("fig06");
    let out = mlec(&["run", "fig06", &format!("out={}", dir.display())]);
    assert_eq!(status(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    // Paper-comparable repair-time table (hours): C/C pool 444.9, C/D pool
    // 2667.2, and the declustered variants 82.0 / 489.4.
    for golden in ["444.9", "2667.2", "82.0", "489.4"] {
        assert!(text.contains(golden), "missing `{golden}` in:\n{text}");
    }
    assert!(dir.join("fig06.json").is_file(), "artifact not written");
}

#[test]
fn table2_analytic_golden() {
    let dir = scratch("table2");
    let out = mlec(&["run", "table2", &format!("out={}", dir.display())]);
    assert_eq!(status(&out), 0);
    let text = stdout(&out);
    for golden in ["40", "250", "264", "1364"] {
        assert!(text.contains(golden), "missing `{golden}` in:\n{text}");
    }
}

#[test]
fn fig05_fixed_seed_golden_and_thread_invariance() {
    let dir1 = scratch("fig05-t1");
    let dir4 = scratch("fig05-t4");
    let args = ["max=12", "step=6", "samples=10", "seed=1"];
    let mut a1: Vec<&str> = vec!["run", "fig05", "threads=1"];
    let o1 = format!("out={}", dir1.display());
    a1.extend(args);
    a1.push(&o1);
    let mut a4: Vec<&str> = vec!["run", "fig05", "threads=4"];
    let o4 = format!("out={}", dir4.display());
    a4.extend(args);
    a4.push(&o4);
    let r1 = mlec(&a1);
    let r4 = mlec(&a4);
    assert_eq!(status(&r1), 0, "stderr: {}", stderr(&r1));
    assert_eq!(status(&r4), 0, "stderr: {}", stderr(&r4));

    // Per-trial seeding makes the campaign bit-identical across thread
    // counts: identical reports (minus artifact paths) and JSON bytes.
    let strip = |s: String| -> String {
        s.lines()
            .filter(|l| !l.starts_with("json: "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(stdout(&r1)), strip(stdout(&r4)));
    let j1 = std::fs::read(dir1.join("fig05.json")).expect("fig05.json (threads=1)");
    let j4 = std::fs::read(dir4.join("fig05.json")).expect("fig05.json (threads=4)");
    assert_eq!(j1, j4, "heatmap JSON differs across thread counts");

    // Fixed-seed golden: the D/D map's first non-trivial PDL cell.
    let json = String::from_utf8(j1).unwrap();
    assert!(
        json.contains("6.524636655583522e-10"),
        "fig05 seed=1 golden cell missing from JSON"
    );
}

#[test]
fn fig05_adaptive_rel_err_stop() {
    let dir = scratch("fig05-adaptive");
    let out = mlec(&[
        "run",
        "fig05",
        "max=12",
        "step=6",
        "samples=40",
        "rel_err=0.3",
        "min_samples=8",
        "seed=1",
        &format!("out={}", dir.display()),
    ]);
    assert_eq!(status(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("adaptive stop"),
        "rel_err= run must report the adaptive trial spend"
    );
}

#[test]
fn fig07_sim_mode_golden() {
    let dir = scratch("fig07-sim");
    let out = mlec(&[
        "run",
        "fig07",
        "mode=sim",
        "trials=8",
        "years=25",
        &format!("out={}", dir.display()),
    ]);
    assert_eq!(status(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    // Root seed 42: C/C sees 19 catastrophic events in 200 pool-years at
    // auto bias 662, reweighted to 9.28e-10 per pool-year.
    for golden in ["19/200y", "662", "9.28e-10", "196/200y"] {
        assert!(text.contains(golden), "missing `{golden}` in:\n{text}");
    }
    assert!(dir.join("fig07_sim.json").is_file());
}

#[test]
fn fig08_sim_mode_golden() {
    let dir = scratch("fig08-sim");
    let out = mlec(&[
        "run",
        "fig08",
        "mode=sim",
        "trials=1",
        "years=1",
        &format!("out={}", dir.display()),
    ]);
    assert_eq!(status(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    // Measured per-pool traffic equals the analytic plan (the simulator
    // charges repairs from it); catastrophic-pool counts are seed-fixed.
    assert!(text.contains("   C/D   R_ALL  26400.0      26400.0         10         1"));
    assert!(text.contains("   D/D   R_MIN     0.78         0.78          6         1"));
    assert!(dir.join("fig08_sim.json").is_file());
}

#[test]
fn store_bench_smoke_kill_gates_and_thread_invariant_oplog() {
    let dir = scratch("store-smoke");
    let base = [
        "run",
        "store_bench",
        "ops=2000",
        "objects=256",
        "kill_at=600",
        "verify_every=16",
        "require_degraded=1",
    ];
    let mut logs = Vec::new();
    for threads in ["1", "4"] {
        let oplog = dir.join(format!("t{threads}.jsonl"));
        let mut args: Vec<String> = base.iter().map(|s| (*s).to_string()).collect();
        args.push(format!("threads={threads}"));
        args.push(format!("oplog={}", oplog.display()));
        args.push(format!("out={}", dir.display()));
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let out = mlec(&argv);
        assert_eq!(status(&out), 0, "stderr: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("rebuild"), "no rebuild phase in:\n{text}");
        assert!(
            text.contains("degraded reads"),
            "no degraded reads:\n{text}"
        );
        logs.push(std::fs::read(&oplog).expect("op log written"));
    }
    assert!(!logs[0].is_empty());
    assert_eq!(logs[0], logs[1], "op log differs across thread counts");
    assert!(dir.join("store_bench.json").is_file(), "artifact missing");
}

#[test]
fn store_bench_shard_sweep_oplog_identical() {
    // `shards=` selects the apply engine (0 = monolithic serial, N >= 1 =
    // epoch-sharded): the op log must be byte-identical either way, with
    // a mid-trace kill in the window.
    let dir = scratch("store-shards");
    let base = [
        "run",
        "store_bench",
        "ops=2000",
        "objects=256",
        "kill_at=600",
        "verify_every=16",
        "require_degraded=1",
    ];
    let mut logs = Vec::new();
    for shards in ["0", "4"] {
        let oplog = dir.join(format!("s{shards}.jsonl"));
        let mut args: Vec<String> = base.iter().map(|s| (*s).to_string()).collect();
        args.push(format!("shards={shards}"));
        args.push(format!("oplog={}", oplog.display()));
        args.push(format!("out={}", dir.display()));
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let out = mlec(&argv);
        assert_eq!(status(&out), 0, "stderr: {}", stderr(&out));
        logs.push(std::fs::read(&oplog).expect("op log written"));
    }
    assert!(!logs[0].is_empty());
    assert_eq!(logs[0], logs[1], "op log differs across shard counts");
}

#[test]
fn store_bench_gate_fails_without_a_kill() {
    // require_degraded=1 with no injection: nothing degrades, exit 1.
    let out = mlec(&[
        "run",
        "store_bench",
        "ops=300",
        "objects=64",
        "verify_every=0",
        "require_degraded=1",
    ]);
    assert_eq!(status(&out), 1, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("require_degraded"));
}

#[test]
fn fig10_require_events_gate_exits_1() {
    let dir = scratch("fig10-gate");
    let out = mlec(&[
        "run",
        "fig10",
        "mode=sim",
        "trials=2",
        "years=1",
        "bias=1",
        "require_events=5",
        &format!("out={}", dir.display()),
    ]);
    assert_eq!(status(&out), 1, "gate failure must exit 1");
    assert!(stderr(&out).contains("require_events"));
}
