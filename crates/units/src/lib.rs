//! Typed physical quantities for the mlec workspace.
//!
//! Every headline number in the paper is dimensioned — repair wire volume
//! in TB (Fig 8/9), repair bandwidth in MB/s (Table 2), repair time in
//! hours (Fig 6), failure and loss rates per year (Fig 7/10) — and a
//! single silently-wrong conversion (TB·MB/s instead of TB÷MB/s, an
//! hours-vs-years slip in a hazard rate) skews durability by orders of
//! magnitude in the nines. This crate gives each dimension a newtype so
//! the compiler rejects those mixups, and the `unit-discipline` lint
//! (`cargo xtask lint`, L7) keeps bare dimension-suffixed `f64`s from
//! creeping back into public signatures.
//!
//! # Dimension algebra
//!
//! | expression              | result        |
//! |-------------------------|---------------|
//! | [`Volume`] / [`Bandwidth`] | [`Duration`] |
//! | [`Volume`] / [`Duration`]  | [`Bandwidth`] |
//! | [`Bandwidth`] * [`Duration`] | [`Volume`] |
//! | [`Rate`] * [`Duration`]    | `f64` (expected count) |
//! | [`Volume`] / [`Volume`]    | `f64` (ratio) |
//! | scalar `*`/`/` any quantity | same quantity |
//!
//! Additions and subtractions are only defined within one dimension;
//! anything else is a compile error — which is the entire point.
//!
//! # Bit-exactness contract
//!
//! Every type is `#[repr(transparent)]` over `f64` and stores one
//! canonical unit (TB, MB/s, hours, events/year). Constructors and
//! accessors in the canonical unit are the identity (no rounding), and
//! each non-canonical conversion performs exactly the float operations
//! the pre-migration inline expressions performed, in the same order
//! (e.g. [`Volume::div`] by [`Bandwidth`] computes
//! `tb / (mbs * 3600.0 / 1e6)`, verbatim the old `hours_to_move`).
//! Re-typing a formula onto these quantities therefore produces the same
//! binary `f64` at every step, which is what lets the fixed-seed goldens
//! pin the migration. Conversions that would round-trip through a
//! non-canonical unit (`from_per_hour(..).to_per_hour()`) are *not*
//! guaranteed bit-stable; keep values in their native unit until the
//! final escape hatch.

use std::ops::{Add, Div, Mul, Sub};

/// Hours in one (Julian) year; the hour↔year conversions use this
/// throughout (re-exported by `mlec_sim::config`).
pub const HOURS_PER_YEAR: f64 = 8766.0;

/// Seconds per hour, for MB/s → TB/h conversions.
const S_PER_H: f64 = 3600.0;

/// A data volume. Canonical unit: terabytes (decimal, 1 TB = 1e12 bytes),
/// the unit of the paper's Fig 8 traffic axis and Table 2 repair sizes.
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Volume(f64);

impl Volume {
    /// Zero bytes.
    pub const ZERO: Volume = Volume(0.0);

    /// From terabytes (identity — no rounding).
    pub const fn from_tb(tb: f64) -> Volume {
        Volume(tb)
    }

    /// From kilobytes: `kb * 1e3 / 1e12` (the chunk-size conversion).
    pub fn from_kb(kb: f64) -> Volume {
        Volume(kb * 1e3 / 1e12)
    }

    /// From megabytes: `mb / 1e6`.
    pub fn from_mb(mb: f64) -> Volume {
        Volume(mb / 1e6)
    }

    /// Escape hatch: terabytes (identity — no rounding).
    pub const fn to_tb(self) -> f64 {
        self.0
    }

    /// Escape hatch: megabytes (`tb * 1e6`).
    pub fn to_mb(self) -> f64 {
        self.0 * 1e6
    }

    /// Larger of two volumes (`f64::max` semantics).
    pub fn max(self, other: Volume) -> Volume {
        Volume(self.0.max(other.0))
    }

    /// Transfer time at `bw`, evaluated MB-first: `tb * 1e6 / mbs / 3600`.
    ///
    /// Bitwise this is NOT `self / bw` (which divides by
    /// `mbs * 3600 / 1e6`); the Markov-chain builders and simulators were
    /// written with the MB-first order and their goldens pin it.
    pub fn transfer_time_mb(self, bw: Bandwidth) -> Duration {
        Duration(self.0 * 1e6 / bw.0 / S_PER_H)
    }
}

/// A transfer rate. Canonical unit: MB/s (decimal megabytes), the unit of
/// the paper's Table 2. Note 1 MB/s is numerically 1 byte/µs — the store's
/// virtual-clock arithmetic leans on that identity via
/// [`Bandwidth::bytes_per_us`].
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// From MB/s (identity — no rounding).
    pub const fn from_mbs(mbs: f64) -> Bandwidth {
        Bandwidth(mbs)
    }

    /// From Gbps: `gbps * 1e9 / 8.0 / 1e6` (the §3 rack-uplink
    /// conversion, verbatim).
    pub fn from_gbps(gbps: f64) -> Bandwidth {
        Bandwidth(gbps * 1e9 / 8.0 / 1e6)
    }

    /// Escape hatch: MB/s (identity — no rounding).
    pub const fn to_mbs(self) -> f64 {
        self.0
    }

    /// Escape hatch: TB moved per hour (`mbs * 3600.0 / 1e6`).
    pub fn to_tb_per_hour(self) -> f64 {
        self.0 * S_PER_H / 1e6
    }

    /// Escape hatch: MB moved per hour (`mbs * 3600.0`), for chunk-count
    /// flux arithmetic that stays in megabytes.
    pub fn to_mb_per_hour(self) -> f64 {
        self.0 * S_PER_H
    }

    /// Escape hatch: bytes per virtual microsecond. The identity — MB/s
    /// *is* bytes/µs — but spelled out so virtual-clock code states the
    /// unit it actually wants.
    pub const fn bytes_per_us(self) -> f64 {
        self.0
    }

    /// Smaller of two bandwidths (pipeline bottleneck).
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }
}

/// A span of (virtual or mission) time. Canonical unit: hours, the unit
/// of the paper's repair-time figures and detection delays.
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Duration(f64);

impl Duration {
    /// Zero time.
    pub const ZERO: Duration = Duration(0.0);

    /// From hours (identity — no rounding).
    pub const fn from_hours(hours: f64) -> Duration {
        Duration(hours)
    }

    /// From years: `years * 8766.0`.
    pub fn from_years(years: f64) -> Duration {
        Duration(years * HOURS_PER_YEAR)
    }

    /// Escape hatch: hours (identity — no rounding).
    pub const fn to_hours(self) -> f64 {
        self.0
    }

    /// Escape hatch: years (`hours / 8766.0`).
    pub fn to_years(self) -> f64 {
        self.0 / HOURS_PER_YEAR
    }
}

/// An event rate (failures, catastrophes, losses). Canonical unit:
/// events per year, the unit of AFR and the Fig 7/Fig 10 y-axes.
///
/// The two dominant plumbing directions are single-rounding exact:
/// an AFR built with [`Rate::from_per_year`] reads back per hour as one
/// division (`afr / 8766.0`), and a chain hazard built with
/// [`Rate::from_per_hour`] reads back per year as one multiplication
/// (`hazard * 8766.0`) — precisely the two conversions the analysis
/// chains perform.
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// From events/year (identity — no rounding).
    pub const fn from_per_year(per_year: f64) -> Rate {
        Rate(per_year)
    }

    /// From events/hour: `per_hour * 8766.0`.
    pub fn from_per_hour(per_hour: f64) -> Rate {
        Rate(per_hour * HOURS_PER_YEAR)
    }

    /// Escape hatch: events/year (identity — no rounding).
    pub const fn to_per_year(self) -> f64 {
        self.0
    }

    /// Escape hatch: events/hour (`per_year / 8766.0`).
    pub fn to_per_hour(self) -> f64 {
        self.0 / HOURS_PER_YEAR
    }

    /// Escape hatch: events/day (`per_year / 365.25`).
    pub fn to_per_day(self) -> f64 {
        self.0 / (HOURS_PER_YEAR / 24.0)
    }
}

// --- dimension algebra -------------------------------------------------
//
// Operand order is preserved in every impl (`a op b` computes exactly
// `a.0 op b.0` modulo the documented conversion), so re-typed formulas
// keep their binary results.

macro_rules! scalar_ops {
    ($ty:ident) => {
        impl Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Mul<$ty> for f64 {
            type Output = $ty;
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl std::iter::Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty(0.0), |a, b| a + b)
            }
        }
    };
}

scalar_ops!(Volume);
scalar_ops!(Bandwidth);
scalar_ops!(Duration);
scalar_ops!(Rate);

/// `Volume / Bandwidth → Duration`: `tb / (mbs * 3600.0 / 1e6)` — the
/// transfer-time formula, verbatim the old `hours_to_move` hot path.
impl Div<Bandwidth> for Volume {
    type Output = Duration;
    fn div(self, rhs: Bandwidth) -> Duration {
        Duration(self.0 / rhs.to_tb_per_hour())
    }
}

/// `Volume / Duration → Bandwidth`: `tb / hours * 1e6 / 3600.0`.
impl Div<Duration> for Volume {
    type Output = Bandwidth;
    fn div(self, rhs: Duration) -> Bandwidth {
        Bandwidth(self.0 / rhs.0 * 1e6 / S_PER_H)
    }
}

/// `Bandwidth * Duration → Volume`: `(mbs * 3600.0 / 1e6) * hours`.
impl Mul<Duration> for Bandwidth {
    type Output = Volume;
    fn mul(self, rhs: Duration) -> Volume {
        Volume(self.to_tb_per_hour() * rhs.0)
    }
}

/// `Volume / Volume → f64` (dimensionless ratio).
impl Div for Volume {
    type Output = f64;
    fn div(self, rhs: Volume) -> f64 {
        self.0 / rhs.0
    }
}

/// `Rate * Duration → f64` (expected event count):
/// `per_year * (hours / 8766.0)`.
impl Mul<Duration> for Rate {
    type Output = f64;
    fn mul(self, rhs: Duration) -> f64 {
        self.0 * rhs.to_years()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_round_trips_are_identity() {
        for x in [0.0, 1.0, 0.1, 400.0, 1e-12, f64::MAX] {
            assert_eq!(Volume::from_tb(x).to_tb().to_bits(), x.to_bits());
            assert_eq!(Bandwidth::from_mbs(x).to_mbs().to_bits(), x.to_bits());
            assert_eq!(Duration::from_hours(x).to_hours().to_bits(), x.to_bits());
            assert_eq!(Rate::from_per_year(x).to_per_year().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn transfer_time_matches_inline_formula_bitwise() {
        // The Fig 6/Fig 9 seam: `tb / (mbs * 3600.0 / 1e6)`.
        for (tb, mbs) in [
            (400.0, 250.0),
            (20.0, 40.0),
            (2400.0, 1363.6363),
            (0.125, 264.0),
        ] {
            let typed = (Volume::from_tb(tb) / Bandwidth::from_mbs(mbs)).to_hours();
            let inline = tb / (mbs * 3600.0 / 1e6);
            assert_eq!(typed.to_bits(), inline.to_bits());
        }
    }

    #[test]
    fn rack_uplink_conversion_matches_config_formula_bitwise() {
        let typed = Bandwidth::from_gbps(10.0).to_mbs();
        assert_eq!(typed.to_bits(), (10.0f64 * 1e9 / 8.0 / 1e6).to_bits());
        assert_eq!(typed, 1250.0);
    }

    #[test]
    fn rate_dominant_flows_are_single_rounding() {
        // AFR per-year → per-hour: exactly `afr / HOURS_PER_YEAR`.
        let afr = 0.01;
        assert_eq!(
            Rate::from_per_year(afr).to_per_hour().to_bits(),
            (afr / HOURS_PER_YEAR).to_bits()
        );
        // Chain hazard per-hour → per-year: exactly `h * HOURS_PER_YEAR`.
        let h = 3.1e-9;
        assert_eq!(
            Rate::from_per_hour(h).to_per_year().to_bits(),
            (h * HOURS_PER_YEAR).to_bits()
        );
    }

    #[test]
    fn operand_order_is_preserved() {
        // f64 * Quantity and Quantity * f64 keep the written order, so
        // `survivors * bw / amp` re-types without changing a bit.
        let bw = Bandwidth::from_mbs(40.0);
        let typed = (116.0 * bw / 18.0).to_mbs();
        assert_eq!(typed.to_bits(), (116.0_f64 * 40.0 / 18.0).to_bits());
    }

    #[test]
    fn dimension_algebra() {
        let v = Bandwidth::from_mbs(1000.0) * Duration::from_hours(1.0);
        assert!((v.to_tb() - 3.6).abs() < 1e-12);
        let bw = Volume::from_tb(3.6) / Duration::from_hours(1.0);
        assert!((bw.to_mbs() - 1000.0).abs() < 1e-9);
        let n = Rate::from_per_year(100.0) * Duration::from_years(2.0);
        assert!((n - 200.0).abs() < 1e-9);
        assert!((Volume::from_tb(8.0) / Volume::from_tb(2.0) - 4.0).abs() < 1e-15);
        assert_eq!(Volume::from_kb(128.0).to_tb(), 128.0 * 1e3 / 1e12);
        assert_eq!(Volume::from_tb(2.0).max(Volume::ZERO).to_tb(), 2.0);
        assert_eq!(
            Bandwidth::from_mbs(3.0)
                .min(Bandwidth::from_mbs(2.0))
                .to_mbs(),
            2.0
        );
        assert_eq!(Bandwidth::from_mbs(200.0).bytes_per_us(), 200.0);
        assert!((Rate::from_per_year(365.25).to_per_day() - 1.0).abs() < 1e-12);
        assert!((Duration::from_years(1.0).to_hours() - HOURS_PER_YEAR).abs() < 1e-9);
        let total: Volume = [Volume::from_tb(1.0), Volume::from_tb(2.0)]
            .into_iter()
            .sum();
        assert_eq!(total.to_tb(), 3.0);
    }
}
