//! Streaming statistics: Welford mean/variance with exact parallel merge,
//! and Wilson score intervals for rare-event proportions.

use crate::json::Json;

/// Welford's online mean/variance accumulator.
///
/// Merging follows Chan et al.'s pairwise update, so batch-wise accumulation
/// merged in a fixed order is deterministic. State round-trips through JSON
/// bit-exactly (floats are stored as raw bit patterns), which is what makes
/// checkpoint/resume reproduce uninterrupted runs to the last ulp.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    pub fn new() -> Welford {
        Welford::default()
    }

    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let nf = n as f64;
        self.mean += delta * (other.n as f64 / nf);
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64 / nf);
        self.n = n;
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// |std_err / mean|; infinite when the mean is zero, NaN before two
    /// samples.
    pub fn rel_err(&self) -> f64 {
        let se = self.std_err();
        if self.mean == 0.0 {
            if se == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (se / self.mean).abs()
        }
    }

    /// Bit-exact state for manifests.
    pub fn save(&self) -> Json {
        Json::obj(vec![
            ("n", Json::U64(self.n)),
            ("mean_bits", Json::U64(self.mean.to_bits())),
            ("m2_bits", Json::U64(self.m2.to_bits())),
        ])
    }

    pub fn load(value: &Json) -> Option<Welford> {
        Some(Welford {
            n: value.get("n")?.as_u64()?,
            mean: f64::from_bits(value.get("mean_bits")?.as_u64()?),
            m2: f64::from_bits(value.get("m2_bits")?.as_u64()?),
        })
    }
}

/// Counter for rare-event proportions with Wilson score intervals.
///
/// The Wilson interval stays honest at tiny hit counts (even zero hits),
/// where the Wald interval collapses to width zero — exactly the regime of
/// catastrophic-failure estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Proportion {
    trials: u64,
    hits: u64,
}

impl Proportion {
    pub fn new() -> Proportion {
        Proportion::default()
    }

    #[inline]
    pub fn push(&mut self, hit: bool) {
        self.trials += 1;
        self.hits += hit as u64;
    }

    pub fn merge(&mut self, other: &Proportion) {
        self.trials += other.trials;
        self.hits += other.hits;
    }

    pub fn trials(&self) -> u64 {
        self.trials
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            f64::NAN
        } else {
            self.hits as f64 / self.trials as f64
        }
    }

    /// Wilson score interval at critical value `z` (1.96 for 95%).
    pub fn wilson(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.hits as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Half-width of the 95% Wilson interval.
    pub fn wilson_half_width(&self) -> f64 {
        let (lo, hi) = self.wilson(1.96);
        (hi - lo) / 2.0
    }

    /// Relative half-width against the point estimate (infinite until the
    /// first hit) — the natural stopping criterion for rare events.
    pub fn rel_half_width(&self) -> f64 {
        if self.hits == 0 {
            f64::INFINITY
        } else {
            self.wilson_half_width() / self.estimate()
        }
    }

    pub fn save(&self) -> Json {
        Json::obj(vec![
            ("trials", Json::U64(self.trials)),
            ("hits", Json::U64(self.hits)),
        ])
    }

    pub fn load(value: &Json) -> Option<Proportion> {
        Some(Proportion {
            trials: value.get("trials")?.as_u64()?,
            hits: value.get("hits")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn welford_matches_two_pass() {
        let mut rng = SplitMix64::new(3);
        let xs: Vec<f64> = (0..5000).map(|_| rng.next_f64() * 10.0 - 2.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut rng = SplitMix64::new(4);
        let xs: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..317] {
            left.push(x);
        }
        for &x in &xs[317..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-12);
    }

    #[test]
    fn welford_state_round_trips_bit_exact() {
        let mut w = Welford::new();
        for i in 0..97 {
            w.push((i as f64).sin());
        }
        let back = Welford::load(&w.save()).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn wilson_brackets_true_p() {
        // 10_000 Bernoulli(0.03) trials: the 95% interval should contain
        // 0.03 for this fixed seed.
        let mut rng = SplitMix64::new(5);
        let mut prop = Proportion::new();
        for _ in 0..10_000 {
            prop.push(rng.next_f64() < 0.03);
        }
        let (lo, hi) = prop.wilson(1.96);
        assert!(lo < 0.03 && 0.03 < hi, "({lo}, {hi})");
        assert!(hi - lo < 0.02);
    }

    #[test]
    fn wilson_zero_hits_still_informative() {
        let mut prop = Proportion::new();
        for _ in 0..1000 {
            prop.push(false);
        }
        let (lo, hi) = prop.wilson(1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01, "hi={hi}");
        assert!(prop.rel_half_width().is_infinite());
    }
}
