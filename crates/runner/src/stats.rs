//! Streaming statistics: Welford mean/variance with exact parallel merge,
//! Wilson score intervals for rare-event proportions, and weighted variants
//! ([`WeightedWelford`], [`WeightedRate`]) for importance-sampled campaigns
//! where every observation carries a likelihood-ratio weight.

use crate::json::Json;

/// `-ln(0.05)`: the exact 95% Poisson upper bound on a rate after observing
/// zero events over unit exposure.
/// `-ln(0.05)`: the 95% upper confidence bound on a Poisson mean when zero
/// events were observed (divide by the exposure to get a rate bound).
pub const POISSON_ZERO_EVENT_UPPER_95: f64 = 2.995_732_273_553_991;

/// Welford's online mean/variance accumulator.
///
/// Merging follows Chan et al.'s pairwise update, so batch-wise accumulation
/// merged in a fixed order is deterministic. State round-trips through JSON
/// bit-exactly (floats are stored as raw bit patterns), which is what makes
/// checkpoint/resume reproduce uninterrupted runs to the last ulp.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    pub fn new() -> Welford {
        Welford::default()
    }

    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let nf = n as f64;
        self.mean += delta * (other.n as f64 / nf);
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64 / nf);
        self.n = n;
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// |`std_err` / mean|; infinite when the mean is zero or before two
    /// samples (an empty or single-sample accumulator has not converged —
    /// returning NaN here would silently defeat `rel_err <= target`
    /// stopping rules, since every NaN comparison is false).
    pub fn rel_err(&self) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        let se = self.std_err();
        if self.mean == 0.0 {
            if se == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (se / self.mean).abs()
        }
    }

    /// Bit-exact state for manifests.
    pub fn save(&self) -> Json {
        Json::obj(vec![
            ("n", Json::U64(self.n)),
            ("mean_bits", Json::U64(self.mean.to_bits())),
            ("m2_bits", Json::U64(self.m2.to_bits())),
        ])
    }

    pub fn load(value: &Json) -> Option<Welford> {
        Some(Welford {
            n: value.get("n")?.as_u64()?,
            mean: f64::from_bits(value.get("mean_bits")?.as_u64()?),
            m2: f64::from_bits(value.get("m2_bits")?.as_u64()?),
        })
    }
}

/// Weighted Welford mean/variance accumulator (West's incremental
/// algorithm with reliability weights).
///
/// Built for importance sampling: each observation `x` carries a
/// likelihood-ratio weight `w`, the mean estimates `E[w x] / E[w]`, and
/// [`WeightedWelford::ess`] reports the effective sample size
/// `(Σw)² / Σw²` — the number of unweighted samples the weighted set is
/// worth. With all weights 1 it reduces to [`Welford`] exactly. Merging
/// follows the same pairwise update, so batch-order merges are
/// deterministic, and state round-trips through JSON bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WeightedWelford {
    n: u64,
    sum_w: f64,
    sum_w2: f64,
    mean: f64,
    m2: f64,
}

impl WeightedWelford {
    pub fn new() -> WeightedWelford {
        WeightedWelford::default()
    }

    /// Fold in observation `x` with weight `w > 0` (non-positive weights
    /// are ignored: a zero-weight sample carries no information).
    #[inline]
    pub fn push(&mut self, x: f64, w: f64) {
        if w.is_nan() || w <= 0.0 {
            return;
        }
        self.n += 1;
        self.sum_w += w;
        self.sum_w2 += w * w;
        let delta = x - self.mean;
        self.mean += delta * (w / self.sum_w);
        self.m2 += w * delta * (x - self.mean);
    }

    pub fn merge(&mut self, other: &WeightedWelford) {
        if other.sum_w == 0.0 {
            return;
        }
        if self.sum_w == 0.0 {
            *self = *other;
            return;
        }
        let sum_w = self.sum_w + other.sum_w;
        let delta = other.mean - self.mean;
        self.mean += delta * (other.sum_w / sum_w);
        self.m2 += other.m2 + delta * delta * (self.sum_w * other.sum_w / sum_w);
        self.sum_w = sum_w;
        self.sum_w2 += other.sum_w2;
        self.n += other.n;
    }

    /// Observations folded in (regardless of weight).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Total weight `Σw`.
    pub fn total_weight(&self) -> f64 {
        self.sum_w
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased (reliability-weights) sample variance.
    pub fn variance(&self) -> f64 {
        let denom = self.sum_w - self.sum_w2 / self.sum_w;
        if self.n < 2 || denom.is_nan() || denom <= 0.0 {
            f64::NAN
        } else {
            self.m2 / denom
        }
    }

    /// Effective sample size `(Σw)² / Σw²`; 0 before the first sample.
    pub fn ess(&self) -> f64 {
        if self.sum_w2 > 0.0 {
            self.sum_w * self.sum_w / self.sum_w2
        } else {
            0.0
        }
    }

    /// Standard error of the weighted mean, using the effective sample
    /// size in place of the raw count.
    pub fn std_err(&self) -> f64 {
        let ess = self.ess();
        if ess > 0.0 {
            (self.variance() / ess).sqrt()
        } else {
            f64::NAN
        }
    }

    /// Bit-exact state for manifests.
    pub fn save(&self) -> Json {
        Json::obj(vec![
            ("n", Json::U64(self.n)),
            ("sum_w_bits", Json::U64(self.sum_w.to_bits())),
            ("sum_w2_bits", Json::U64(self.sum_w2.to_bits())),
            ("mean_bits", Json::U64(self.mean.to_bits())),
            ("m2_bits", Json::U64(self.m2.to_bits())),
        ])
    }

    pub fn load(value: &Json) -> Option<WeightedWelford> {
        Some(WeightedWelford {
            n: value.get("n")?.as_u64()?,
            sum_w: f64::from_bits(value.get("sum_w_bits")?.as_u64()?),
            sum_w2: f64::from_bits(value.get("sum_w2_bits")?.as_u64()?),
            mean: f64::from_bits(value.get("mean_bits")?.as_u64()?),
            m2: f64::from_bits(value.get("m2_bits")?.as_u64()?),
        })
    }
}

/// Weighted rare-event rate over a continuous exposure (events per
/// pool-year, say), where each event carries a likelihood-ratio weight.
///
/// The estimate is `Σw / exposure`; its standard error uses the
/// compound-Poisson approximation `se = sqrt(Σw²) / exposure`, which for
/// unit weights reduces to the classic counting-statistics
/// `sqrt(N) / exposure`. All state is plain sums, so batch-order merges
/// are deterministic and JSON round-trips are bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WeightedRate {
    exposure: f64,
    events: u64,
    sum_w: f64,
    sum_w2: f64,
}

impl WeightedRate {
    pub fn new() -> WeightedRate {
        WeightedRate::default()
    }

    /// Add observation time (pool-years, disk-hours, ...) with no event.
    #[inline]
    pub fn add_exposure(&mut self, exposure: f64) {
        self.exposure += exposure;
    }

    /// Record one event with likelihood weight `w > 0` (non-positive
    /// weights are ignored).
    #[inline]
    pub fn push(&mut self, w: f64) {
        if w.is_nan() || w <= 0.0 {
            return;
        }
        self.events += 1;
        self.sum_w += w;
        self.sum_w2 += w * w;
    }

    pub fn merge(&mut self, other: &WeightedRate) {
        self.exposure += other.exposure;
        self.events += other.events;
        self.sum_w += other.sum_w;
        self.sum_w2 += other.sum_w2;
    }

    /// Raw (unweighted) event count.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total observation time.
    pub fn exposure(&self) -> f64 {
        self.exposure
    }

    /// Weighted event count `Σw`.
    pub fn weighted_events(&self) -> f64 {
        self.sum_w
    }

    /// Weighted rate `Σw / exposure`; 0 with no exposure (an empty or
    /// zero-trial resume must not yield NaN in reports).
    pub fn rate(&self) -> f64 {
        if self.exposure > 0.0 {
            self.sum_w / self.exposure
        } else {
            0.0
        }
    }

    /// Standard error of the rate; 0 with no exposure.
    pub fn std_err(&self) -> f64 {
        if self.exposure > 0.0 {
            self.sum_w2.sqrt() / self.exposure
        } else {
            0.0
        }
    }

    /// Normal-approximation 95% interval on the rate, clamped at zero.
    pub fn ci95(&self) -> (f64, f64) {
        let rate = self.rate();
        let half = 1.96 * self.std_err();
        ((rate - half).max(0.0), rate + half)
    }

    /// `se / rate`; infinite until the first event (the natural rare-event
    /// stopping criterion, matching `1/sqrt(N)` for unit weights).
    pub fn rel_err(&self) -> f64 {
        if self.sum_w > 0.0 {
            self.sum_w2.sqrt() / self.sum_w
        } else {
            f64::INFINITY
        }
    }

    /// Effective sample size `(Σw)² / Σw²` of the event weights; 0 before
    /// the first event.
    pub fn ess(&self) -> f64 {
        if self.sum_w2 > 0.0 {
            self.sum_w * self.sum_w / self.sum_w2
        } else {
            0.0
        }
    }

    /// Exact Poisson 95% upper bound on the rate after observing **zero**
    /// events: `-ln(0.05) / exposure`. Infinite with no exposure. For a
    /// biased (importance-sampled) process this is conservative: biasing
    /// only makes events more likely, so zero biased events bounds the
    /// true rate at least as tightly.
    pub fn zero_event_upper_95(&self) -> f64 {
        if self.exposure > 0.0 {
            POISSON_ZERO_EVENT_UPPER_95 / self.exposure
        } else {
            f64::INFINITY
        }
    }

    /// Bit-exact state for manifests.
    pub fn save(&self) -> Json {
        Json::obj(vec![
            ("exposure_bits", Json::U64(self.exposure.to_bits())),
            ("events", Json::U64(self.events)),
            ("sum_w_bits", Json::U64(self.sum_w.to_bits())),
            ("sum_w2_bits", Json::U64(self.sum_w2.to_bits())),
        ])
    }

    pub fn load(value: &Json) -> Option<WeightedRate> {
        Some(WeightedRate {
            exposure: f64::from_bits(value.get("exposure_bits")?.as_u64()?),
            events: value.get("events")?.as_u64()?,
            sum_w: f64::from_bits(value.get("sum_w_bits")?.as_u64()?),
            sum_w2: f64::from_bits(value.get("sum_w2_bits")?.as_u64()?),
        })
    }
}

/// Counter for rare-event proportions with Wilson score intervals.
///
/// The Wilson interval stays honest at tiny hit counts (even zero hits),
/// where the Wald interval collapses to width zero — exactly the regime of
/// catastrophic-failure estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Proportion {
    trials: u64,
    hits: u64,
}

impl Proportion {
    pub fn new() -> Proportion {
        Proportion::default()
    }

    #[inline]
    pub fn push(&mut self, hit: bool) {
        self.trials += 1;
        self.hits += hit as u64;
    }

    pub fn merge(&mut self, other: &Proportion) {
        self.trials += other.trials;
        self.hits += other.hits;
    }

    pub fn trials(&self) -> u64 {
        self.trials
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            f64::NAN
        } else {
            self.hits as f64 / self.trials as f64
        }
    }

    /// Wilson score interval at critical value `z` (1.96 for 95%).
    pub fn wilson(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.hits as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Half-width of the 95% Wilson interval.
    pub fn wilson_half_width(&self) -> f64 {
        let (lo, hi) = self.wilson(1.96);
        (hi - lo) / 2.0
    }

    /// Relative half-width against the point estimate (infinite until the
    /// first hit) — the natural stopping criterion for rare events.
    pub fn rel_half_width(&self) -> f64 {
        if self.hits == 0 {
            f64::INFINITY
        } else {
            self.wilson_half_width() / self.estimate()
        }
    }

    pub fn save(&self) -> Json {
        Json::obj(vec![
            ("trials", Json::U64(self.trials)),
            ("hits", Json::U64(self.hits)),
        ])
    }

    pub fn load(value: &Json) -> Option<Proportion> {
        Some(Proportion {
            trials: value.get("trials")?.as_u64()?,
            hits: value.get("hits")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn welford_matches_two_pass() {
        let mut rng = SplitMix64::new(3);
        let xs: Vec<f64> = (0..5000).map(|_| rng.next_f64() * 10.0 - 2.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut rng = SplitMix64::new(4);
        let xs: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..317] {
            left.push(x);
        }
        for &x in &xs[317..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-12);
    }

    #[test]
    fn welford_state_round_trips_bit_exact() {
        let mut w = Welford::new();
        for i in 0..97 {
            w.push((i as f64).sin());
        }
        let back = Welford::load(&w.save()).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn wilson_brackets_true_p() {
        // 10_000 Bernoulli(0.03) trials: the 95% interval should contain
        // 0.03 for this fixed seed.
        let mut rng = SplitMix64::new(5);
        let mut prop = Proportion::new();
        for _ in 0..10_000 {
            prop.push(rng.next_f64() < 0.03);
        }
        let (lo, hi) = prop.wilson(1.96);
        assert!(lo < 0.03 && 0.03 < hi, "({lo}, {hi})");
        assert!(hi - lo < 0.02);
    }

    #[test]
    fn rel_err_is_infinite_before_two_samples() {
        // NaN here would make `rel_err <= target` stopping rules silently
        // false-converge-never/always; empty accumulators must read as
        // "not converged", not NaN.
        let mut w = Welford::new();
        assert!(w.rel_err().is_infinite());
        w.push(3.5);
        assert!(w.rel_err().is_infinite());
        w.push(4.5);
        assert!(w.rel_err().is_finite());
    }

    #[test]
    fn weighted_welford_unit_weights_match_welford() {
        let mut rng = SplitMix64::new(8);
        let mut plain = Welford::new();
        let mut weighted = WeightedWelford::new();
        for _ in 0..3000 {
            let x = rng.next_f64() * 4.0 - 1.0;
            plain.push(x);
            weighted.push(x, 1.0);
        }
        assert_eq!(weighted.count(), plain.count());
        assert!((weighted.mean() - plain.mean()).abs() < 1e-12);
        assert!((weighted.variance() - plain.variance()).abs() < 1e-9);
        assert!((weighted.ess() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_welford_matches_two_pass() {
        let mut rng = SplitMix64::new(9);
        let data: Vec<(f64, f64)> = (0..2000)
            .map(|_| (rng.next_f64() * 10.0, rng.next_f64() + 0.1))
            .collect();
        let mut w = WeightedWelford::new();
        for &(x, wt) in &data {
            w.push(x, wt);
        }
        let sum_w: f64 = data.iter().map(|&(_, wt)| wt).sum();
        let mean = data.iter().map(|&(x, wt)| x * wt).sum::<f64>() / sum_w;
        let m2: f64 = data.iter().map(|&(x, wt)| wt * (x - mean).powi(2)).sum();
        let sum_w2: f64 = data.iter().map(|&(_, wt)| wt * wt).sum();
        let var = m2 / (sum_w - sum_w2 / sum_w);
        assert!((w.mean() - mean).abs() < 1e-10);
        assert!((w.variance() - var).abs() < 1e-8);
        assert!((w.ess() - sum_w * sum_w / sum_w2).abs() < 1e-6);
    }

    #[test]
    fn weighted_welford_merge_equals_sequential_and_round_trips() {
        let mut rng = SplitMix64::new(10);
        let data: Vec<(f64, f64)> = (0..800)
            .map(|_| (rng.next_f64(), rng.next_f64() * 2.0 + 0.01))
            .collect();
        let mut whole = WeightedWelford::new();
        for &(x, wt) in &data {
            whole.push(x, wt);
        }
        let mut left = WeightedWelford::new();
        let mut right = WeightedWelford::new();
        for &(x, wt) in &data[..271] {
            left.push(x, wt);
        }
        for &(x, wt) in &data[271..] {
            right.push(x, wt);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        let back = WeightedWelford::load(&left.save()).unwrap();
        assert_eq!(back, left);
    }

    #[test]
    fn weighted_welford_ignores_non_positive_weights() {
        let mut w = WeightedWelford::new();
        w.push(5.0, 0.0);
        w.push(5.0, -1.0);
        w.push(5.0, f64::NAN);
        assert_eq!(w.count(), 0);
        assert!(w.mean().is_nan());
        w.push(7.0, 2.0);
        assert_eq!(w.mean(), 7.0);
    }

    #[test]
    fn weighted_rate_unit_weights_match_poisson_counting() {
        let mut r = WeightedRate::new();
        r.add_exposure(50.0);
        r.push(1.0);
        r.push(1.0);
        assert_eq!(r.events(), 2);
        assert!((r.rate() - 0.04).abs() < 1e-15);
        assert!((r.std_err() - 2.0f64.sqrt() / 50.0).abs() < 1e-15);
        assert!((r.rel_err() - 1.0 / 2.0f64.sqrt()).abs() < 1e-15);
        assert!((r.ess() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_rate_zero_exposure_yields_no_nan() {
        let r = WeightedRate::new();
        assert_eq!(r.rate(), 0.0);
        assert_eq!(r.std_err(), 0.0);
        assert_eq!(r.ci95(), (0.0, 0.0));
        assert!(r.rel_err().is_infinite());
        assert_eq!(r.ess(), 0.0);
        assert!(r.zero_event_upper_95().is_infinite());
    }

    #[test]
    fn weighted_rate_zero_event_upper_bound() {
        let mut r = WeightedRate::new();
        r.add_exposure(100.0);
        // -ln(0.05)/100: the exact 95% Poisson upper bound at zero events.
        assert!((r.zero_event_upper_95() - 0.02995732273553991).abs() < 1e-15);
    }

    #[test]
    fn weighted_rate_merge_and_round_trip() {
        let mut a = WeightedRate::new();
        a.add_exposure(10.0);
        a.push(0.25);
        let mut b = WeightedRate::new();
        b.add_exposure(30.0);
        b.push(0.5);
        b.push(0.125);
        a.merge(&b);
        assert_eq!(a.events(), 3);
        assert!((a.exposure() - 40.0).abs() < 1e-15);
        assert!((a.weighted_events() - 0.875).abs() < 1e-15);
        let back = WeightedRate::load(&a.save()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn wilson_zero_hits_still_informative() {
        let mut prop = Proportion::new();
        for _ in 0..1000 {
            prop.push(false);
        }
        let (lo, hi) = prop.wilson(1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01, "hi={hi}");
        assert!(prop.rel_half_width().is_infinite());
    }
}
