//! The batched parallel executor.
//!
//! Trials are partitioned into fixed-size batches by trial index alone;
//! worker threads claim batches from an atomic counter, accumulate each
//! batch locally, and the round's batch accumulators merge in batch-index
//! order. Stopping rules and checkpoints apply only at round boundaries
//! (a round is a fixed number of batches). Consequences, by construction:
//!
//! * results are bit-identical for any worker-thread count;
//! * a resumed run continues at the recorded trial count with the same
//!   partitioning and merge order, so kill + resume reproduces an
//!   uninterrupted run exactly;
//! * adaptive stopping decisions are themselves deterministic, because
//!   they observe only round-boundary states.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::manifest::{Checkpoint, Manifest, ManifestHeader};
use crate::seed_stream::SeedStream;
use crate::trial::{Accumulator, Summary, Trial};

/// When to stop drawing trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// Never stop on precision before this many trials.
    pub min_trials: u64,
    /// Hard ceiling (always enforced).
    pub max_trials: u64,
    /// Stop once |`std_err/mean`| (or relative CI half-width for
    /// proportions) drops below this.
    pub target_rel_err: Option<f64>,
    /// Stop once the absolute 95% CI half-width drops below this.
    pub target_ci_half_width: Option<f64>,
}

impl StopRule {
    /// Exactly `n` trials, no adaptive stopping.
    pub fn fixed(n: u64) -> StopRule {
        StopRule {
            min_trials: n,
            max_trials: n,
            target_rel_err: None,
            target_ci_half_width: None,
        }
    }

    /// Adaptive: stop at `rel_err` relative precision, bounded by
    /// `[min_trials, max_trials]`.
    pub fn until_rel_err(rel_err: f64, min_trials: u64, max_trials: u64) -> StopRule {
        StopRule {
            min_trials,
            max_trials,
            target_rel_err: Some(rel_err),
            target_ci_half_width: None,
        }
    }

    fn precision_reached(&self, summary: &Summary) -> bool {
        let rel_ok = match self.target_rel_err {
            Some(target) => summary.rel_err <= target,
            None => false,
        };
        let ci_ok = match self.target_ci_half_width {
            Some(target) => (summary.ci_high - summary.ci_low) / 2.0 <= target,
            None => false,
        };
        match (self.target_rel_err, self.target_ci_half_width) {
            (None, None) => false,
            _ => {
                (self.target_rel_err.is_none() || rel_ok)
                    && (self.target_ci_half_width.is_none() || ci_ok)
            }
        }
    }
}

/// Full description of one run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Experiment label; part of the seed derivation, so different labels
    /// draw independent trial streams from the same root seed.
    pub label: String,
    pub root_seed: u64,
    /// Worker threads; 0 means `std::thread::available_parallelism()`.
    pub threads: usize,
    /// Trials per batch. Per-trial seeds depend only on the trial index, so
    /// every batch size sees the same observations; counting statistics are
    /// bit-identical across batch sizes, floating-point merges agree to
    /// rounding. For a fixed batch size, results are bit-identical across
    /// thread counts. Stopping/checkpoint granularity is
    /// `batch_size * batches_per_round` trials.
    pub batch_size: u64,
    /// Batches per round (stop checks and checkpoints happen per round).
    pub batches_per_round: u64,
    pub stop: StopRule,
    /// Fingerprint of the experiment configuration; guards resume.
    pub config_hash: u64,
    /// Where to write the JSONL manifest; `None` disables checkpointing.
    pub manifest_path: Option<PathBuf>,
}

impl RunSpec {
    pub fn new(label: impl Into<String>, root_seed: u64, stop: StopRule) -> RunSpec {
        RunSpec {
            label: label.into(),
            root_seed,
            threads: 0,
            batch_size: 64,
            batches_per_round: 8,
            stop,
            config_hash: 0,
            manifest_path: None,
        }
    }

    pub fn threads(mut self, threads: usize) -> RunSpec {
        self.threads = threads;
        self
    }

    pub fn batch_size(mut self, batch_size: u64) -> RunSpec {
        assert!(batch_size > 0);
        self.batch_size = batch_size;
        self
    }

    pub fn batches_per_round(mut self, batches: u64) -> RunSpec {
        assert!(batches > 0);
        self.batches_per_round = batches;
        self
    }

    pub fn config_hash(mut self, hash: u64) -> RunSpec {
        self.config_hash = hash;
        self
    }

    pub fn manifest(mut self, path: impl Into<PathBuf>) -> RunSpec {
        self.manifest_path = Some(path.into());
        self
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        }
    }
}

/// What a completed (or precision-converged) run produced.
#[derive(Debug, Clone)]
pub struct RunReport<A> {
    pub acc: A,
    pub summary: Summary,
    /// Total trials folded into `acc`, including resumed ones.
    pub trials: u64,
    /// Trials restored from the manifest rather than run in this session.
    pub resumed_trials: u64,
    /// Wall-clock of this session only.
    pub elapsed_s: f64,
    /// Throughput of this session (trials actually run / elapsed).
    pub trials_per_sec: f64,
    pub manifest_path: Option<PathBuf>,
}

/// Execute `trial` under `spec`. See the module docs for the determinism
/// contract.
pub fn run<T: Trial>(trial: &T, spec: &RunSpec) -> std::io::Result<RunReport<T::Acc>>
where
    T::Acc: Default,
{
    run_with(trial, spec, T::Acc::default())
}

/// Like [`run`], for accumulators without a meaningful `Default` (e.g.
/// sized grids): `empty` is the zero-trial accumulator, also used for each
/// batch.
pub fn run_with<T: Trial>(
    trial: &T,
    spec: &RunSpec,
    empty: T::Acc,
) -> std::io::Result<RunReport<T::Acc>> {
    let start = Instant::now();
    let stream = SeedStream::new(spec.root_seed, &spec.label);

    let mut manifest = None;
    let mut acc = empty.clone();
    let mut prior_elapsed = 0.0f64;
    if let Some(path) = &spec.manifest_path {
        let header = ManifestHeader {
            label: spec.label.clone(),
            config_hash: spec.config_hash,
            root_seed: spec.root_seed,
            batch_size: spec.batch_size,
            batches_per_round: spec.batches_per_round,
        };
        let opened = Manifest::open(path, &header)?;
        if let Some(cp) = opened.resume {
            let restored = T::Acc::load(&cp.acc_state).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: cannot restore accumulator state", path.display()),
                )
            })?;
            debug_assert_eq!(restored.trials(), cp.trials);
            acc = restored;
            prior_elapsed = cp.elapsed_s;
        }
        manifest = Some(opened.manifest);
    }
    let resumed_trials = acc.trials();

    let threads = spec.effective_threads();
    loop {
        let done = acc.trials();
        if done >= spec.stop.max_trials {
            break;
        }
        if done >= spec.stop.min_trials && spec.stop.precision_reached(&acc.summary()) {
            break;
        }
        // Batches cover `done..max_trials` starting from `done` itself.
        // A checkpoint is usually batch-aligned (rounds are whole batches),
        // but a round truncated by `max_trials` leaves a ragged count; a
        // later resume with a larger budget must continue at `done`, never
        // re-run earlier indices. When `done` IS aligned, this partition
        // coincides with the uninterrupted run's, keeping resume
        // bit-identical; a ragged resume shifts the merge tree only (same
        // observations — seeds depend on the trial index alone).
        let max_batches = (spec.stop.max_trials - done).div_ceil(spec.batch_size);
        let round_batches = spec.batches_per_round.min(max_batches);

        let slots: Vec<Mutex<Option<T::Acc>>> =
            (0..round_batches).map(|_| Mutex::new(None)).collect();
        let claim = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(round_batches as usize) {
                scope.spawn(|| loop {
                    let slot = claim.fetch_add(1, Ordering::Relaxed);
                    if slot >= round_batches {
                        break;
                    }
                    let lo = done + slot * spec.batch_size;
                    let hi = (lo + spec.batch_size).min(spec.stop.max_trials);
                    let mut local = empty.clone();
                    for index in lo..hi {
                        trial.run(index, stream.trial_seed(index), &mut local);
                    }
                    *slots[slot as usize].lock().unwrap() = Some(local);
                });
            }
        });
        // Merge in batch order: the only order-sensitive step, and it is
        // fixed regardless of which thread ran which batch.
        for slot in &slots {
            let batch_acc = slot.lock().unwrap().take().expect("batch not run");
            acc.merge(&batch_acc);
        }

        if let Some(manifest) = manifest.as_mut() {
            let session_elapsed = start.elapsed().as_secs_f64();
            let session_trials = acc.trials() - resumed_trials;
            manifest.checkpoint(&Checkpoint {
                trials: acc.trials(),
                acc_state: acc.save(),
                elapsed_s: prior_elapsed + session_elapsed,
                trials_per_sec: session_trials as f64 / session_elapsed.max(1e-9),
            })?;
        }
    }

    let elapsed_s = start.elapsed().as_secs_f64();
    let summary = acc.summary();
    let session_trials = acc.trials() - resumed_trials;
    let trials_per_sec = session_trials as f64 / elapsed_s.max(1e-9);
    if let Some(manifest) = manifest.as_mut() {
        manifest.finalize(&summary, prior_elapsed + elapsed_s, trials_per_sec)?;
    }
    Ok(RunReport {
        trials: acc.trials(),
        resumed_trials,
        summary,
        acc,
        elapsed_s,
        trials_per_sec,
        manifest_path: spec.manifest_path.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::trial::{FnTrial, HitTrial, MeanAcc};

    fn noisy_mean_trial() -> FnTrial<impl Fn(u64) -> f64 + Sync> {
        FnTrial(|seed| {
            let mut rng = SplitMix64::new(seed);
            // A skewed observable with a known mean of about 0.5.
            rng.next_f64().powi(2) * 1.5
        })
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let trial = noisy_mean_trial();
        let base = run(
            &trial,
            &RunSpec::new("exec/threads", 9, StopRule::fixed(1003)).threads(1),
        )
        .unwrap();
        for threads in [2, 3, 8] {
            let other = run(
                &trial,
                &RunSpec::new("exec/threads", 9, StopRule::fixed(1003)).threads(threads),
            )
            .unwrap();
            assert_eq!(other.trials, base.trials);
            assert_eq!(other.acc, base.acc, "threads={threads}");
        }
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let trial = noisy_mean_trial();
        let a = run(
            &trial,
            &RunSpec::new("exec/batch", 9, StopRule::fixed(500)).batch_size(7),
        )
        .unwrap();
        let b = run(
            &trial,
            &RunSpec::new("exec/batch", 9, StopRule::fixed(500)).batch_size(128),
        )
        .unwrap();
        assert_eq!(a.trials, 500);
        assert_eq!(b.trials, 500);
        assert_eq!(a.acc.trials(), 500);
        // Observations are identical (seeds depend only on trial index);
        // the Welford merge tree differs with the partition, so means agree
        // to rounding, not to the bit (thread count, by contrast, leaves
        // the partition and merge order fixed => bit-identical).
        assert!((a.summary.mean - b.summary.mean).abs() < 1e-12);
        assert!((a.summary.std_err - b.summary.std_err).abs() < 1e-12);
    }

    #[test]
    fn batch_size_is_exactly_invariant_for_counting_accumulators() {
        let trial = HitTrial(|seed| {
            let mut rng = SplitMix64::new(seed);
            rng.next_f64() < 0.2
        });
        let a = run(
            &trial,
            &RunSpec::new("exec/hits", 3, StopRule::fixed(999)).batch_size(13),
        )
        .unwrap();
        let b = run(
            &trial,
            &RunSpec::new("exec/hits", 3, StopRule::fixed(999)).batch_size(256),
        )
        .unwrap();
        assert_eq!(a.acc, b.acc);
    }

    #[test]
    fn adaptive_stopping_stops_between_bounds() {
        let trial = noisy_mean_trial();
        let report = run(
            &trial,
            &RunSpec::new(
                "exec/adaptive",
                11,
                StopRule::until_rel_err(0.05, 100, 1_000_000),
            ),
        )
        .unwrap();
        assert!(report.trials >= 100);
        assert!(report.trials < 1_000_000, "should converge well before max");
        assert!(report.summary.rel_err <= 0.05);
    }

    #[test]
    fn rare_event_proportion_converges() {
        let trial = HitTrial(|seed| {
            let mut rng = SplitMix64::new(seed);
            rng.next_f64() < 0.01
        });
        let spec = RunSpec::new(
            "exec/rare",
            13,
            StopRule {
                min_trials: 1000,
                max_trials: 200_000,
                target_rel_err: Some(0.25),
                target_ci_half_width: None,
            },
        );
        let report = run(&trial, &spec).unwrap();
        assert!(report.summary.ci_low <= 0.01 && 0.01 <= report.summary.ci_high);
    }

    #[test]
    fn resume_from_manifest_is_bit_identical() {
        let dir = std::env::temp_dir().join("mlec-runner-exec-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");
        let _ = std::fs::remove_file(&path);

        let trial = noisy_mean_trial();
        // Uninterrupted reference run (no manifest).
        let full = run(
            &trial,
            &RunSpec::new("exec/resume", 21, StopRule::fixed(2048)),
        )
        .unwrap();

        // First half: run to 1024 trials, checkpointing.
        let half = run(
            &trial,
            &RunSpec::new("exec/resume", 21, StopRule::fixed(1024)).manifest(&path),
        )
        .unwrap();
        assert_eq!(half.trials, 1024);
        assert_eq!(half.resumed_trials, 0);

        // Second half: same spec with the full trial budget resumes.
        let resumed = run(
            &trial,
            &RunSpec::new("exec/resume", 21, StopRule::fixed(2048)).manifest(&path),
        )
        .unwrap();
        assert_eq!(resumed.resumed_trials, 1024);
        assert_eq!(resumed.trials, 2048);
        assert_eq!(resumed.acc, full.acc, "resume must be bit-identical");
    }

    #[test]
    fn resume_from_ragged_checkpoint_runs_each_trial_once() {
        // A checkpoint left by a max_trials-truncated round is not
        // batch-aligned; extending the budget must continue at the recorded
        // count, not re-run (or skip) earlier trial indices.
        let dir = std::env::temp_dir().join("mlec-runner-exec-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged-resume.jsonl");
        let _ = std::fs::remove_file(&path);

        let trial = HitTrial(|seed| {
            let mut rng = SplitMix64::new(seed);
            rng.next_f64() < 0.3
        });
        let spec = |trials: u64| {
            RunSpec::new("exec/ragged-resume", 37, StopRule::fixed(trials)).batch_size(64)
        };
        // 130 = 2 whole batches + a ragged 2-trial tail.
        let half = run(&trial, &spec(130).manifest(&path)).unwrap();
        assert_eq!(half.trials, 130);
        let resumed = run(&trial, &spec(200).manifest(&path)).unwrap();
        assert_eq!(resumed.resumed_trials, 130);
        assert_eq!(resumed.trials, 200);
        // Counting accumulators are exact regardless of the batch
        // partition, so the resumed run must equal a fresh one bit for bit.
        let fresh = run(&trial, &spec(200)).unwrap();
        assert_eq!(resumed.acc, fresh.acc);
    }

    #[test]
    fn max_trials_not_multiple_of_batch_is_exact() {
        let trial = noisy_mean_trial();
        let report = run(
            &trial,
            &RunSpec::new("exec/ragged", 5, StopRule::fixed(130)).batch_size(64),
        )
        .unwrap();
        assert_eq!(report.trials, 130);
    }

    #[test]
    fn empty_run_reports_zero() {
        let trial = noisy_mean_trial();
        let report = run(&trial, &RunSpec::new("exec/empty", 5, StopRule::fixed(0))).unwrap();
        assert_eq!(report.trials, 0);
        assert_eq!(report.acc, MeanAcc::default());
    }
}
