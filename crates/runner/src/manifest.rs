//! JSONL run manifests: an append-only record of what a run was and how far
//! it got, written incrementally so a killed run restarts where it left off.
//!
//! Line 1 is a `header` record naming the run (label, config hash, root
//! seed, batching); every subsequent line is a `checkpoint` with the trial
//! count, the accumulator's bit-exact state, wall-clock, and throughput; a
//! completed run appends a `final` record with the converged summary.
//! Resume validates the header — a manifest written under a different
//! config, seed, or batching refuses to resume rather than silently mixing
//! incompatible runs.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::trial::Summary;

/// Identity of a run; all fields must match for a resume to be legal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestHeader {
    pub label: String,
    pub config_hash: u64,
    pub root_seed: u64,
    pub batch_size: u64,
    pub batches_per_round: u64,
}

impl ManifestHeader {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str("header".into())),
            ("label", Json::Str(self.label.clone())),
            ("config_hash", Json::U64(self.config_hash)),
            ("root_seed", Json::U64(self.root_seed)),
            ("batch_size", Json::U64(self.batch_size)),
            ("batches_per_round", Json::U64(self.batches_per_round)),
        ])
    }

    fn from_json(value: &Json) -> Option<ManifestHeader> {
        Some(ManifestHeader {
            label: value.get("label")?.as_str()?.to_string(),
            config_hash: value.get("config_hash")?.as_u64()?,
            root_seed: value.get("root_seed")?.as_u64()?,
            batch_size: value.get("batch_size")?.as_u64()?,
            batches_per_round: value.get("batches_per_round")?.as_u64()?,
        })
    }
}

/// One incremental progress record.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    pub trials: u64,
    /// Accumulator state as produced by `Accumulator::save`.
    pub acc_state: Json,
    /// Total wall-clock across all sessions of this run, seconds.
    pub elapsed_s: f64,
    pub trials_per_sec: f64,
}

impl Checkpoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str("checkpoint".into())),
            ("trials", Json::U64(self.trials)),
            ("acc", self.acc_state.clone()),
            ("elapsed_s", Json::F64(self.elapsed_s)),
            ("trials_per_sec", Json::F64(self.trials_per_sec)),
        ])
    }

    fn from_json(value: &Json) -> Option<Checkpoint> {
        Some(Checkpoint {
            trials: value.get("trials")?.as_u64()?,
            acc_state: value.get("acc")?.clone(),
            elapsed_s: value.get("elapsed_s")?.as_f64()?,
            trials_per_sec: value.get("trials_per_sec")?.as_f64()?,
        })
    }
}

/// An open, append-mode manifest.
#[derive(Debug)]
pub struct Manifest {
    file: File,
    path: PathBuf,
}

/// Result of opening a manifest path: a writable manifest plus the
/// checkpoint to resume from, if a compatible run was already underway.
#[derive(Debug)]
pub struct Opened {
    pub manifest: Manifest,
    pub resume: Option<Checkpoint>,
}

impl Manifest {
    /// Open `path` for this run. A fresh file gets the header written; an
    /// existing file is validated against `header` and scanned for its last
    /// checkpoint.
    pub fn open(path: &Path, header: &ManifestHeader) -> std::io::Result<Opened> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let resume = if path.exists() {
            let existing = read_manifest(path)?;
            let found = existing.header.ok_or_else(|| {
                bad_data(format!("{}: manifest has no header line", path.display()))
            })?;
            if &found != header {
                return Err(bad_data(format!(
                    "{}: manifest belongs to a different run \
                     (found label={:?} config_hash={:#x} root_seed={} batch={}x{}, \
                     expected label={:?} config_hash={:#x} root_seed={} batch={}x{}); \
                     delete it or change --manifest to start fresh",
                    path.display(),
                    found.label,
                    found.config_hash,
                    found.root_seed,
                    found.batch_size,
                    found.batches_per_round,
                    header.label,
                    header.config_hash,
                    header.root_seed,
                    header.batch_size,
                    header.batches_per_round,
                )));
            }
            existing.last_checkpoint
        } else {
            None
        };
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if resume.is_none() && file.metadata()?.len() == 0 {
            writeln!(file, "{}", header.to_json().to_string_compact())?;
            file.flush()?;
        }
        Ok(Opened {
            manifest: Manifest {
                file,
                path: path.to_path_buf(),
            },
            resume,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn checkpoint(&mut self, cp: &Checkpoint) -> std::io::Result<()> {
        writeln!(self.file, "{}", cp.to_json().to_string_compact())?;
        self.file.flush()
    }

    pub fn finalize(
        &mut self,
        summary: &Summary,
        elapsed_s: f64,
        trials_per_sec: f64,
    ) -> std::io::Result<()> {
        let record = Json::obj(vec![
            ("kind", Json::Str("final".into())),
            ("summary", summary.to_json()),
            ("elapsed_s", Json::F64(elapsed_s)),
            ("trials_per_sec", Json::F64(trials_per_sec)),
        ]);
        writeln!(self.file, "{}", record.to_string_compact())?;
        self.file.flush()
    }
}

/// Everything a manifest file currently says.
pub struct ManifestContents {
    pub header: Option<ManifestHeader>,
    pub last_checkpoint: Option<Checkpoint>,
    pub finalized: bool,
}

/// Parse a manifest file. Torn trailing lines (a write cut off mid-kill)
/// are ignored, keeping the last complete checkpoint usable.
pub fn read_manifest(path: &Path) -> std::io::Result<ManifestContents> {
    let reader = BufReader::new(File::open(path)?);
    let mut contents = ManifestContents {
        header: None,
        last_checkpoint: None,
        finalized: false,
    };
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(value) = Json::parse(&line) else {
            continue; // torn write
        };
        match value.get("kind").and_then(Json::as_str) {
            Some("header") => contents.header = ManifestHeader::from_json(&value),
            Some("checkpoint") => {
                if let Some(cp) = Checkpoint::from_json(&value) {
                    contents.last_checkpoint = Some(cp);
                }
            }
            Some("final") => contents.finalized = true,
            _ => {}
        }
    }
    Ok(contents)
}

fn bad_data(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mlec-runner-manifest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn header() -> ManifestHeader {
        ManifestHeader {
            label: "test/run".into(),
            config_hash: 0xdead_beef,
            root_seed: 42,
            batch_size: 64,
            batches_per_round: 8,
        }
    }

    #[test]
    fn fresh_open_writes_header_and_resumes_last_checkpoint() {
        let path = tmp("fresh.jsonl");
        let mut opened = Manifest::open(&path, &header()).unwrap();
        assert!(opened.resume.is_none());
        for trials in [64u64, 128, 192] {
            opened
                .manifest
                .checkpoint(&Checkpoint {
                    trials,
                    acc_state: Json::obj(vec![("n", Json::U64(trials))]),
                    elapsed_s: trials as f64 * 0.1,
                    trials_per_sec: 640.0,
                })
                .unwrap();
        }
        drop(opened);

        let reopened = Manifest::open(&path, &header()).unwrap();
        let cp = reopened.resume.unwrap();
        assert_eq!(cp.trials, 192);
        assert_eq!(cp.acc_state.get("n").unwrap(), &Json::U64(192));
    }

    #[test]
    fn mismatched_header_refuses_resume() {
        let path = tmp("mismatch.jsonl");
        Manifest::open(&path, &header()).unwrap();
        let mut other = header();
        other.root_seed = 43;
        let err = Manifest::open(&path, &other).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_trailing_line_is_ignored() {
        let path = tmp("torn.jsonl");
        let mut opened = Manifest::open(&path, &header()).unwrap();
        opened
            .manifest
            .checkpoint(&Checkpoint {
                trials: 64,
                acc_state: Json::Null,
                elapsed_s: 1.0,
                trials_per_sec: 64.0,
            })
            .unwrap();
        drop(opened);
        // Simulate a kill mid-write.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        write!(file, "{{\"kind\":\"checkpoint\",\"trials\":128,\"acc").unwrap();
        drop(file);

        let reopened = Manifest::open(&path, &header()).unwrap();
        assert_eq!(reopened.resume.unwrap().trials, 64);
    }

    #[test]
    fn finalize_marks_manifest() {
        let path = tmp("final.jsonl");
        let mut opened = Manifest::open(&path, &header()).unwrap();
        opened
            .manifest
            .finalize(
                &Summary {
                    trials: 100,
                    mean: 0.25,
                    std_err: 0.01,
                    ci_low: 0.23,
                    ci_high: 0.27,
                    rel_err: 0.04,
                },
                2.0,
                50.0,
            )
            .unwrap();
        let contents = read_manifest(&path).unwrap();
        assert!(contents.finalized);
    }
}
