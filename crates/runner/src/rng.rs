//! The runner's own generators: `SplitMix64` and the trial-RNG selection.
//!
//! With the default `external-rng` feature the per-trial generator is the
//! workspace `ChaCha12`; without it the runner is fully self-contained and
//! uses [`SplitMix64`] directly. Either way every trial draws its own
//! generator from a single `u64` produced by
//! [`crate::seed_stream::SeedStream`], so the feature only changes the
//! stream cipher, never the orchestration.

/// 2^64 / phi, the odd increment of the `SplitMix64` sequence.
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// `SplitMix64`'s bijective finalizer (Stafford variant 13): a cheap,
/// statistically strong avalanche mix of one 64-bit word.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The `SplitMix64` generator (Steele, Lea & Flood, OOPSLA'14): one add and
/// one mix per output, equidistributed over the full 2^64 period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in [0, 1) with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(feature = "external-rng")]
mod adapter {
    use super::SplitMix64;

    impl rand::RngCore for SplitMix64 {
        fn next_u32(&mut self) -> u32 {
            SplitMix64::next_u32(self)
        }
        fn next_u64(&mut self) -> u64 {
            SplitMix64::next_u64(self)
        }
    }

    impl rand::SeedableRng for SplitMix64 {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Self {
            SplitMix64::new(u64::from_le_bytes(seed))
        }
        fn seed_from_u64(state: u64) -> Self {
            SplitMix64::new(state)
        }
    }

    /// The generator trials should build from their per-trial seed.
    pub type TrialRng = rand_chacha::ChaCha12Rng;

    /// Build the trial generator from a seed-stream seed.
    pub fn trial_rng(seed: u64) -> TrialRng {
        use rand::SeedableRng as _;
        TrialRng::seed_from_u64(seed)
    }
}

#[cfg(not(feature = "external-rng"))]
mod adapter {
    use super::SplitMix64;

    /// ChaCha-free fallback: SplitMix64 seeded directly.
    pub type TrialRng = SplitMix64;

    pub fn trial_rng(seed: u64) -> TrialRng {
        SplitMix64::new(seed)
    }
}

pub use adapter::{trial_rng, TrialRng};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_injective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 of the canonical SplitMix64.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn trial_rng_is_deterministic() {
        use crate::rng::trial_rng;
        #[cfg(feature = "external-rng")]
        use rand::RngCore as _;
        let mut a = trial_rng(5);
        let mut b = trial_rng(5);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
