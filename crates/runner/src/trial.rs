//! The `Trial`/`Accumulator` abstraction every experiment runs through.
//!
//! A [`Trial`] maps one seed to one observation, folded into an
//! [`Accumulator`]. The executor runs disjoint batches of trials into
//! per-batch accumulators and merges them in batch order, so any
//! accumulator whose `merge` is associative over ordered batches yields
//! thread-count-independent results.

use crate::json::Json;
use crate::stats::{Proportion, Welford};

/// One unit of Monte Carlo work.
pub trait Trial: Sync {
    type Acc: Accumulator;

    /// Run trial number `index` (the global trial index — stable across
    /// batch sizes, thread counts, and resume) with its derived `seed` and
    /// fold the observation into `acc`. Most trials only use `seed`; grid
    /// trials map `index` to a cell.
    fn run(&self, index: u64, seed: u64, acc: &mut Self::Acc);
}

/// Mergeable, checkpointable trial statistics.
pub trait Accumulator: Clone + Send + Sync + 'static {
    /// Fold `other` in; called in ascending batch order.
    fn merge(&mut self, other: &Self);

    /// Number of trials folded in so far.
    fn trials(&self) -> u64;

    /// Convergence/reporting summary of the primary statistic.
    fn summary(&self) -> Summary;

    /// Bit-exact state for the run manifest.
    fn save(&self) -> Json;

    /// Restore from a manifest checkpoint.
    fn load(value: &Json) -> Option<Self>;
}

/// What an accumulator currently believes about its primary statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub trials: u64,
    pub mean: f64,
    /// Standard error of the mean (NaN when undefined).
    pub std_err: f64,
    /// 95% interval (Wilson for proportions, normal for means).
    pub ci_low: f64,
    pub ci_high: f64,
    /// Relative precision: |`std_err/mean`| or relative CI half-width.
    pub rel_err: f64,
}

impl Summary {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("trials", Json::U64(self.trials)),
            ("mean", Json::F64(self.mean)),
            ("std_err", Json::F64(self.std_err)),
            ("ci_low", Json::F64(self.ci_low)),
            ("ci_high", Json::F64(self.ci_high)),
            ("rel_err", Json::F64(self.rel_err)),
        ])
    }
}

/// Accumulator for real-valued observations (Welford).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeanAcc {
    pub stats: Welford,
}

impl MeanAcc {
    pub fn push(&mut self, x: f64) {
        self.stats.push(x);
    }
}

impl Accumulator for MeanAcc {
    fn merge(&mut self, other: &Self) {
        self.stats.merge(&other.stats);
    }

    fn trials(&self) -> u64 {
        self.stats.count()
    }

    fn summary(&self) -> Summary {
        let mean = self.stats.mean();
        let se = self.stats.std_err();
        Summary {
            trials: self.stats.count(),
            mean,
            std_err: se,
            ci_low: mean - 1.96 * se,
            ci_high: mean + 1.96 * se,
            rel_err: self.stats.rel_err(),
        }
    }

    fn save(&self) -> Json {
        Json::obj(vec![("welford", self.stats.save())])
    }

    fn load(value: &Json) -> Option<Self> {
        Some(MeanAcc {
            stats: Welford::load(value.get("welford")?)?,
        })
    }
}

/// Accumulator for hit/miss observations (Wilson intervals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HitAcc {
    pub stats: Proportion,
}

impl HitAcc {
    pub fn push(&mut self, hit: bool) {
        self.stats.push(hit);
    }
}

impl Accumulator for HitAcc {
    fn merge(&mut self, other: &Self) {
        self.stats.merge(&other.stats);
    }

    fn trials(&self) -> u64 {
        self.stats.trials()
    }

    fn summary(&self) -> Summary {
        let (lo, hi) = self.stats.wilson(1.96);
        Summary {
            trials: self.stats.trials(),
            mean: self.stats.estimate(),
            std_err: self.stats.wilson_half_width() / 1.96,
            ci_low: lo,
            ci_high: hi,
            rel_err: self.stats.rel_half_width(),
        }
    }

    fn save(&self) -> Json {
        Json::obj(vec![("proportion", self.stats.save())])
    }

    fn load(value: &Json) -> Option<Self> {
        Some(HitAcc {
            stats: Proportion::load(value.get("proportion")?)?,
        })
    }
}

/// Per-cell Welford accumulator for grid experiments (PDL heatmaps): one
/// run estimates every cell of a grid, with trial index `i` mapped to cell
/// `i / samples_per_cell` (see [`GridTrial`]). Construct with
/// [`GridAcc::sized`] and run via [`crate::run_with`] (a grid has no
/// meaningful `Default`).
#[derive(Debug, Clone, PartialEq)]
pub struct GridAcc {
    cells: Vec<Welford>,
}

impl GridAcc {
    /// An empty accumulator for `cells` grid cells.
    pub fn sized(cells: usize) -> GridAcc {
        GridAcc {
            cells: vec![Welford::default(); cells],
        }
    }

    pub fn push(&mut self, cell: usize, x: f64) {
        self.cells[cell].push(x);
    }

    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    pub fn cell(&self, cell: usize) -> &Welford {
        &self.cells[cell]
    }

    /// Per-cell means, in cell order.
    pub fn means(&self) -> Vec<f64> {
        self.cells.iter().map(super::stats::Welford::mean).collect()
    }
}

impl Accumulator for GridAcc {
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.cells.len(), other.cells.len(), "grid shape mismatch");
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            mine.merge(theirs);
        }
    }

    fn trials(&self) -> u64 {
        self.cells.iter().map(super::stats::Welford::count).sum()
    }

    /// Summary over the pooled observations of every cell (adaptive
    /// stopping on a grid therefore targets the overall precision).
    fn summary(&self) -> Summary {
        let mut pooled = Welford::default();
        for cell in &self.cells {
            pooled.merge(cell);
        }
        let mean = pooled.mean();
        let se = pooled.std_err();
        Summary {
            trials: pooled.count(),
            mean,
            std_err: se,
            ci_low: mean - 1.96 * se,
            ci_high: mean + 1.96 * se,
            rel_err: pooled.rel_err(),
        }
    }

    fn save(&self) -> Json {
        Json::Arr(self.cells.iter().map(super::stats::Welford::save).collect())
    }

    fn load(value: &Json) -> Option<Self> {
        let Json::Arr(items) = value else {
            return None;
        };
        let cells = items
            .iter()
            .map(Welford::load)
            .collect::<Option<Vec<_>>>()?;
        Some(GridAcc { cells })
    }
}

/// How a [`GridTrial`] maps the global trial index onto grid cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GridOrder {
    /// Cell `i / samples_per_cell`: all samples of cell 0, then cell 1, …
    /// The right choice for fixed budgets — each cell's seed block is
    /// contiguous, so shrinking or growing `samples_per_cell` preserves the
    /// seeds of the samples that remain.
    #[default]
    Blocked,
    /// Cell `i % cells`: one sample of every cell per grid sweep. The right
    /// choice under adaptive stopping ([`crate::StopRule`] with a relative
    /// precision target): whenever the run stops, every cell has received
    /// the same number of samples, give or take one sweep.
    Interleaved,
}

/// Adapter running a closure `(cell, seed) -> f64` over every cell of a
/// grid in one deterministic run: trial index `i` evaluates the cell given
/// by [`GridOrder`], so a full run performs `samples_per_cell`
/// observations of each of `cells` cells, and checkpoint/resume and thread
/// counts behave exactly as for scalar trials.
pub struct GridTrial<F: Fn(usize, u64) -> f64 + Sync> {
    pub cells: usize,
    pub samples_per_cell: u64,
    pub order: GridOrder,
    pub f: F,
}

impl<F: Fn(usize, u64) -> f64 + Sync> GridTrial<F> {
    /// The trial budget covering the whole grid (an upper bound under
    /// adaptive stopping).
    pub fn total_trials(&self) -> u64 {
        self.cells as u64 * self.samples_per_cell
    }

    /// The matching empty accumulator for [`crate::run_with`].
    pub fn empty(&self) -> GridAcc {
        GridAcc::sized(self.cells)
    }
}

impl<F: Fn(usize, u64) -> f64 + Sync> Trial for GridTrial<F> {
    type Acc = GridAcc;

    fn run(&self, index: u64, seed: u64, acc: &mut GridAcc) {
        let cell = match self.order {
            GridOrder::Blocked => (index / self.samples_per_cell) as usize,
            GridOrder::Interleaved => (index % self.cells as u64) as usize,
        };
        debug_assert!(cell < self.cells, "trial index beyond the grid budget");
        acc.push(cell, (self.f)(cell, seed));
    }
}

/// Adapter turning a closure `seed -> f64` into a mean-estimating trial.
pub struct FnTrial<F: Fn(u64) -> f64 + Sync>(pub F);

impl<F: Fn(u64) -> f64 + Sync> Trial for FnTrial<F> {
    type Acc = MeanAcc;
    fn run(&self, _index: u64, seed: u64, acc: &mut MeanAcc) {
        acc.push((self.0)(seed));
    }
}

/// Adapter turning a closure `seed -> bool` into a proportion-estimating
/// trial.
pub struct HitTrial<F: Fn(u64) -> bool + Sync>(pub F);

impl<F: Fn(u64) -> bool + Sync> Trial for HitTrial<F> {
    type Acc = HitAcc;
    fn run(&self, _index: u64, seed: u64, acc: &mut HitAcc) {
        acc.push((self.0)(seed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_acc_round_trips() {
        let mut acc = MeanAcc::default();
        for i in 0..50 {
            acc.push(i as f64);
        }
        let back = MeanAcc::load(&acc.save()).unwrap();
        assert_eq!(back, acc);
        assert_eq!(back.summary().trials, 50);
    }

    #[test]
    fn grid_trial_maps_indices_to_cells() {
        use crate::{run_with, RunSpec, StopRule};
        let trial = GridTrial {
            cells: 5,
            samples_per_cell: 40,
            order: GridOrder::Blocked,
            // Observation = the cell index itself: means must come out exact.
            f: |cell, _seed| cell as f64,
        };
        let report = run_with(
            &trial,
            &RunSpec::new("grid/map", 1, StopRule::fixed(trial.total_trials())).batch_size(7),
            trial.empty(),
        )
        .unwrap();
        assert_eq!(report.trials, 200);
        for (i, w) in (0..5).map(|i| (i, report.acc.cell(i))) {
            assert_eq!(w.count(), 40, "cell {i}");
            assert_eq!(w.mean(), i as f64, "cell {i}");
        }
        let back = GridAcc::load(&report.acc.save()).unwrap();
        assert_eq!(back, report.acc);
    }

    #[test]
    fn grid_acc_is_thread_count_invariant() {
        use crate::rng::SplitMix64;
        use crate::{run_with, RunSpec, StopRule};
        let trial = GridTrial {
            cells: 9,
            samples_per_cell: 64,
            order: GridOrder::default(),
            f: |cell, seed| SplitMix64::new(seed).next_f64() + cell as f64,
        };
        let stop = StopRule::fixed(trial.total_trials());
        let a = run_with(
            &trial,
            &RunSpec::new("grid/threads", 4, stop).threads(1),
            trial.empty(),
        )
        .unwrap();
        let b = run_with(
            &trial,
            &RunSpec::new("grid/threads", 4, stop).threads(4),
            trial.empty(),
        )
        .unwrap();
        assert_eq!(a.acc, b.acc);
    }

    #[test]
    fn interleaved_grid_balances_cells_under_adaptive_stop() {
        use crate::{run_with, RunSpec, StopRule};
        let trial = GridTrial {
            cells: 7,
            samples_per_cell: 4096,
            order: GridOrder::Interleaved,
            // Low-variance observations: the precision target fires long
            // before the budget is exhausted.
            f: |cell, seed| cell as f64 + 1.0 + 1e-3 * (seed % 7) as f64,
        };
        let stop = StopRule::until_rel_err(0.05, 7 * 8, trial.total_trials());
        let report = run_with(
            &trial,
            &RunSpec::new("grid/adaptive", 11, stop).batch_size(13),
            trial.empty(),
        )
        .unwrap();
        assert!(report.trials < trial.total_trials(), "{}", report.trials);
        let counts: Vec<u64> = (0..7).map(|i| report.acc.cell(i).count()).collect();
        let (lo, hi) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        // One interleaved sweep covers every cell once; a partial final
        // batch can leave at most one sweep of imbalance per batch row.
        assert!(hi - lo <= 2, "unbalanced cells: {counts:?}");
        for i in 0..7 {
            assert!(
                (report.acc.cell(i).mean() - (i as f64 + 1.0)).abs() < 0.01,
                "cell {i}"
            );
        }
    }

    #[test]
    fn hit_acc_summary_uses_wilson() {
        let mut acc = HitAcc::default();
        for i in 0..1000 {
            acc.push(i % 100 == 0);
        }
        let s = acc.summary();
        assert_eq!(s.trials, 1000);
        assert!((s.mean - 0.01).abs() < 1e-12);
        assert!(s.ci_low < 0.01 && 0.01 < s.ci_high);
        let back = HitAcc::load(&acc.save()).unwrap();
        assert_eq!(back, acc);
    }
}
