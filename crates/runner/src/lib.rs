//! # mlec-runner — deterministic Monte Carlo orchestration
//!
//! The single way every experiment in this workspace executes trials:
//!
//! * [`seed_stream`] — SplitMix64-derived per-trial seeds keyed by
//!   `(root_seed, experiment_label, trial_index)`, so results are
//!   bit-identical regardless of thread count or batch size;
//! * [`executor`] — a batched parallel executor over the generic
//!   [`trial::Trial`] trait with adaptive stopping rules;
//! * [`stats`] — streaming Welford mean/variance and Wilson confidence
//!   intervals for rare-event proportions;
//! * [`manifest`] — incremental JSONL run manifests enabling
//!   checkpoint/resume of long runs;
//! * [`json`] — the self-contained JSON layer used by manifests and figure
//!   dumps.
//!
//! The crate is foundational (std-only): simulation and analysis crates
//! depend on it and implement [`trial::Trial`] for their own types. With
//! the default `external-rng` feature the per-trial generator is the
//! workspace `ChaCha12`; disabling it leaves a fully self-contained
//! `SplitMix64` fallback.

pub mod executor;
pub mod json;
pub mod manifest;
pub mod rng;
pub mod seed_stream;
pub mod stats;
pub mod trial;

pub use executor::{run, run_with, RunReport, RunSpec, StopRule};
pub use json::{Json, ToJson};
pub use rng::{trial_rng, SplitMix64, TrialRng};
pub use seed_stream::SeedStream;
pub use stats::{Proportion, WeightedRate, WeightedWelford, Welford, POISSON_ZERO_EVENT_UPPER_95};
pub use trial::{
    Accumulator, FnTrial, GridAcc, GridOrder, GridTrial, HitAcc, HitTrial, MeanAcc, Summary, Trial,
};
