//! Deterministic per-trial seed derivation.
//!
//! Every experiment names a stream by `(root_seed, label)`; the stream then
//! hands out one independent 64-bit seed per trial index (or per heatmap
//! cell). Seeds are SplitMix64-derived: the trial sequence is exactly the
//! `SplitMix64` output stream started at a label-mixed base, so distinct
//! indices always produce distinct seeds, and nothing depends on thread
//! count, batch size, or evaluation order.
//!
//! This replaces the ad-hoc XOR mixes that used to live in `pool_sim`
//! (`seed ^ 0x9e37_79b9_7f4a_7c15`), `system_sim` (`seed ^ 0x5157_9ad1`)
//! and the heatmap cells (`seed ^ ((y << 32) | x)`, which collides whenever
//! two cells share low bits).

use crate::rng::{mix64, GOLDEN_GAMMA};

/// FNV-1a 64-bit hash (label hashing; stable across platforms).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A named, rooted stream of per-trial seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    base: u64,
}

impl SeedStream {
    /// Stream keyed by `(root_seed, label)`.
    pub fn new(root_seed: u64, label: &str) -> SeedStream {
        let tag = fnv1a(label.as_bytes());
        SeedStream {
            base: mix64(root_seed ^ mix64(tag)),
        }
    }

    /// Seed for trial `index`: element `index` of the `SplitMix64` stream
    /// anchored at the label base. Injective in `index` because the
    /// increment is odd and the finalizer is bijective.
    #[inline]
    pub fn trial_seed(&self, index: u64) -> u64 {
        mix64(
            self.base
                .wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)),
        )
    }

    /// Seed for a 2-D cell, e.g. a heatmap coordinate. Unlike
    /// `(y << 32) | x` packing, both coordinates pass through a full
    /// avalanche before combining, so grids of any shape get distinct,
    /// decorrelated seeds.
    #[inline]
    pub fn cell_seed(&self, x: u64, y: u64) -> u64 {
        self.derive(&[x, y])
    }

    /// Seed derived from an arbitrary word tuple (a generalized
    /// `cell_seed`). The words are folded left-to-right through the mix,
    /// each offset by its position so `[a, b]` and `[b, a]` differ.
    pub fn derive(&self, words: &[u64]) -> u64 {
        let mut h = self.base;
        for (i, &w) in words.iter().enumerate() {
            h = mix64(
                h ^ w
                    .wrapping_add(1)
                    .wrapping_mul(GOLDEN_GAMMA)
                    .wrapping_add(i as u64),
            );
        }
        mix64(h.wrapping_add(GOLDEN_GAMMA))
    }

    /// A sub-stream for a nested phase (e.g. per splitting stage).
    pub fn substream(&self, label: &str) -> SeedStream {
        SeedStream {
            base: mix64(self.base ^ mix64(fnv1a(label.as_bytes()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn trial_seeds_are_distinct_and_order_free() {
        let s = SeedStream::new(42, "fig07/CD");
        let forward: Vec<u64> = (0..10_000).map(|i| s.trial_seed(i)).collect();
        let mut set = HashSet::new();
        for &v in &forward {
            assert!(set.insert(v));
        }
        // Recomputing any index in any order gives the same value.
        assert_eq!(s.trial_seed(9_999), forward[9_999]);
        assert_eq!(s.trial_seed(0), forward[0]);
    }

    #[test]
    fn labels_and_roots_separate_streams() {
        let a = SeedStream::new(42, "fig07/CD");
        let b = SeedStream::new(42, "fig07/CC");
        let c = SeedStream::new(43, "fig07/CD");
        assert_ne!(a.trial_seed(0), b.trial_seed(0));
        assert_ne!(a.trial_seed(0), c.trial_seed(0));
        assert_ne!(b.trial_seed(0), c.trial_seed(0));
    }

    #[test]
    fn cell_seeds_distinct_on_a_50x50_grid() {
        // Regression for the old `(y << 32) | x` mix, which collides when
        // cells share low bits. Every cell of a 50x50 grid must get its own
        // seed.
        let s = SeedStream::new(7, "heatmap");
        let mut seen = HashSet::new();
        for y in 0..50u64 {
            for x in 0..50u64 {
                assert!(seen.insert(s.cell_seed(x, y)), "collision at ({x}, {y})");
            }
        }
        assert_eq!(seen.len(), 2500);
    }

    #[test]
    fn derive_is_position_sensitive() {
        let s = SeedStream::new(1, "t");
        assert_ne!(s.derive(&[3, 5]), s.derive(&[5, 3]));
        assert_ne!(s.derive(&[0]), s.derive(&[0, 0]));
    }

    #[test]
    fn substream_differs_from_parent() {
        let s = SeedStream::new(1, "splitting");
        let sub = s.substream("stage1");
        assert_ne!(s.trial_seed(0), sub.trial_seed(0));
        assert_eq!(sub, s.substream("stage1"));
    }

    #[test]
    fn fnv1a_known_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
