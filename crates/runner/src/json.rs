//! A small self-contained JSON value type, writer, and parser.
//!
//! This replaces `serde_json` for the workspace's needs: dumping figure
//! data, and reading/writing run manifests. Unsigned 64-bit integers (seeds,
//! config hashes) round-trip losslessly through the dedicated [`Json::U64`]
//! variant; finite floats round-trip through Rust's shortest-representation
//! formatting; NaN and infinities serialize as `null` (heatmaps use NaN for
//! not-computed cells).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered list of key/value pairs (insertion order is
    /// preserved when writing).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(v) => Some(v),
            Json::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(v) => Some(v),
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }

    /// Parse a JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters"));
        }
        Ok(value)
    }

    /// FNV-1a hash of the compact rendering: a stable config fingerprint.
    pub fn fingerprint(&self) -> u64 {
        crate::seed_stream::fnv1a(self.to_string_compact().as_bytes())
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's Debug for f64 is the shortest representation that parses
        // back to the same bits, and always includes a '.' or exponent.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: &str) -> JsonError {
        JsonError {
            offset,
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(*pos, &format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number"))?;
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| JsonError::at(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| JsonError::at(*pos, "unterminated escape"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            expect(bytes, pos, b'\\')?;
                            expect(bytes, pos, b'u')?;
                            let lo = parse_hex4(bytes, pos)?;
                            0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| JsonError::at(*pos, "invalid codepoint"))?,
                        );
                    }
                    _ => return Err(JsonError::at(*pos - 1, "invalid escape")),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err(JsonError::at(*pos, "truncated \\u escape"));
    }
    let text = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
    let v = u32::from_str_radix(text, 16).map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
    *pos = end;
    Ok(v)
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

/// Conversion into [`Json`], the workspace's replacement for
/// `serde::Serialize`.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::F64(*self as f64)
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
    )*};
}
impl_to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::I64(*self as i64) }
        }
    )*};
}
impl_to_json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<K: std::fmt::Display, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

/// Derive a field-by-field [`ToJson`] impl for a struct.
///
/// ```ignore
/// impl_to_json!(Point { x, y });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

/// Implement [`ToJson`] as the `Display` string of the type — useful for
/// scheme/method enums that already render their canonical names.
#[macro_export]
macro_rules! impl_to_json_display {
    ($($ty:ty),+ $(,)?) => {$(
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Str(format!("{self}"))
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let doc = Json::obj(vec![
            ("label", Json::Str("fig07/CD".into())),
            ("seed", Json::U64(u64::MAX)),
            ("delta", Json::I64(-3)),
            ("pdl", Json::F64(1.25e-33)),
            ("nan", Json::F64(f64::NAN)),
            (
                "cells",
                Json::Arr(vec![Json::F64(0.1), Json::Bool(true), Json::Null]),
            ),
            ("note", Json::Str("a \"quoted\" line\nnext".into())),
        ]);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        // NaN becomes null; everything else is preserved exactly.
        assert_eq!(back.get("seed").unwrap(), &Json::U64(u64::MAX));
        assert_eq!(back.get("delta").unwrap(), &Json::I64(-3));
        assert_eq!(back.get("pdl").unwrap(), &Json::F64(1.25e-33));
        assert_eq!(back.get("nan").unwrap(), &Json::Null);
        assert_eq!(
            back.get("note").unwrap().as_str().unwrap(),
            "a \"quoted\" line\nnext"
        );
        let compact = doc.to_string_compact();
        assert_eq!(Json::parse(&compact).unwrap(), back);
    }

    #[test]
    fn f64_shortest_repr_round_trips() {
        for v in [0.1, 1.0 / 3.0, 6.02e23, -1e-300, 123456.789] {
            let text = Json::F64(v).to_string_compact();
            assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), v);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""Aé😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "Aé😀");
    }

    struct P {
        x: u32,
        y: f64,
    }
    impl_to_json!(P { x, y });

    #[test]
    fn struct_macro_emits_fields_in_order() {
        let p = P { x: 3, y: 0.5 };
        assert_eq!(p.to_json().to_string_compact(), r#"{"x":3,"y":0.5}"#);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = Json::obj(vec![("k", Json::U64(1))]);
        let b = Json::obj(vec![("k", Json::U64(2))]);
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
