//! Bulk GF(2^8) kernels: multiply a byte slice by a scalar coefficient and
//! accumulate into an output slice.
//!
//! These are the inner loops of erasure encoding: producing one parity chunk
//! from `k` data chunks is `k` calls to [`mul_add_slice`]. The paper's
//! Fig. 11 measures exactly this path (via Intel ISA-L in the original; here
//! via the same split-nibble technique ISA-L uses, runtime-dispatched to
//! SIMD table-shuffle kernels in [`crate::simd`] with the same asymptotic
//! shape: throughput falls with wider `k` and more parities `p`).
//!
//! The public entry points ([`mul_slice`], [`mul_add_slice`], [`xor_slice`])
//! are safe and dispatch to the fastest kernel the CPU supports (AVX2 /
//! SSSE3 `pshufb` on `x86_64`, NEON `tbl` on `aarch64`, the portable u64 batch
//! loop everywhere else — see [`crate::simd::kernel_name`]). The u64
//! fallback cores live in this module; [`mul_add_slice_scalar`] exposes the
//! fallback directly so benchmarks and equivalence tests can compare the
//! two paths on the same host.
//!
//! Two table shapes are provided and cross-checked:
//! - [`NibbleTable`]: split 4-bit tables (32 bytes of table per
//!   coefficient, built on the fly; stays in L1 regardless of how many
//!   coefficients a generator matrix has, and small enough to live in two
//!   vector registers for the SIMD kernels).
//! - [`MulTable`]: a full 256-entry table per coefficient for callers that
//!   reuse one coefficient across many stripes.

use crate::field::gf_mul;

/// Split multiplication tables for a fixed coefficient `c`: `lo[x & 0xf] ^
/// hi[x >> 4] == c * x` for every byte `x`, by linearity of the field
/// multiplication over bitwise decomposition.
#[derive(Clone, Copy)]
pub struct NibbleTable {
    pub(crate) lo: [u8; 16],
    pub(crate) hi: [u8; 16],
}

impl NibbleTable {
    /// Build the two 16-entry tables for coefficient `c`.
    pub fn new(c: u8) -> NibbleTable {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for x in 0..16u8 {
            lo[x as usize] = gf_mul(c, x);
            hi[x as usize] = gf_mul(c, x << 4);
        }
        NibbleTable { lo, hi }
    }

    /// Multiply a single byte by the table's coefficient.
    #[inline(always)]
    pub fn mul(&self, x: u8) -> u8 {
        self.lo[(x & 0x0f) as usize] ^ self.hi[(x >> 4) as usize]
    }
}

/// A full 256-entry multiplication table for a fixed coefficient.
#[derive(Clone)]
pub struct MulTable {
    table: [u8; 256],
}

impl MulTable {
    /// Build the table for coefficient `c`.
    pub fn new(c: u8) -> MulTable {
        let mut table = [0u8; 256];
        for (x, slot) in table.iter_mut().enumerate() {
            *slot = gf_mul(c, x as u8);
        }
        MulTable { table }
    }

    /// Multiply a single byte by the table's coefficient.
    #[inline(always)]
    pub fn mul(&self, x: u8) -> u8 {
        self.table[x as usize]
    }
}

/// `out[i] = c * input[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_slice(c: u8, input: &[u8], out: &mut [u8]) {
    assert_eq!(input.len(), out.len(), "slice length mismatch");
    match c {
        0 => out.fill(0),
        1 => out.copy_from_slice(input),
        _ => {
            let t = NibbleTable::new(c);
            crate::simd::mul_dispatch(&t, input, out);
        }
    }
}

/// `out[i] ^= c * input[i]` for all `i` — the fused multiply-accumulate that
/// dominates encoding time.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_add_slice(c: u8, input: &[u8], out: &mut [u8]) {
    assert_eq!(input.len(), out.len(), "slice length mismatch");
    match c {
        0 => {}
        1 => xor_slice(input, out),
        _ => {
            let t = NibbleTable::new(c);
            crate::simd::mul_add_dispatch(&t, input, out);
        }
    }
}

/// [`mul_add_slice`] pinned to the portable u64 fallback kernel, bypassing
/// SIMD dispatch. Exists so benchmarks can report the scalar-vs-SIMD ratio
/// on one host and so equivalence tests can compare the two paths; regular
/// callers want [`mul_add_slice`].
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_add_slice_scalar(c: u8, input: &[u8], out: &mut [u8]) {
    assert_eq!(input.len(), out.len(), "slice length mismatch");
    match c {
        0 => {}
        1 => xor_scalar(input, out),
        _ => {
            let t = NibbleTable::new(c);
            mul_add_scalar(&t, input, out);
        }
    }
}

/// Portable `out[i] = t.mul(input[i])` core (byte-at-a-time; the two table
/// lookups dominate, so u64 batching buys nothing without SIMD shuffles).
pub(crate) fn mul_scalar(t: &NibbleTable, input: &[u8], out: &mut [u8]) {
    debug_assert_eq!(input.len(), out.len());
    for (o, &x) in out.iter_mut().zip(input) {
        *o = t.mul(x);
    }
}

/// Portable u64-batched `out[i] ^= t.mul(input[i])` core — the universal
/// fallback behind [`mul_add_slice`] when no SIMD kernel is available.
pub(crate) fn mul_add_scalar(t: &NibbleTable, input: &[u8], out: &mut [u8]) {
    debug_assert_eq!(input.len(), out.len());
    let len = input.len();
    // The u64 batch loop covers exactly `words * 8` bytes; the
    // scalar tail below finishes the rest.
    let words = len / 8;
    let src = input.as_ptr();
    let dst = out.as_mut_ptr();
    for w in 0..words {
        let off = w * 8;
        // Bounds invariant of the batch: the widest access touches
        // bytes `off..off + 8`, and `off + 8 <= words * 8 <= len`.
        debug_assert!(off + 8 <= len, "u64 batch out of bounds");
        // SAFETY: `off + 8 <= len` (invariant above) keeps the
        // 8-byte unaligned read inside `input`, whose length equals
        // `out`'s (debug-asserted here, asserted by every public
        // caller); reads via raw pointer impose no alignment beyond
        // the unaligned load itself.
        let x = unsafe { src.add(off).cast::<u64>().read_unaligned() };
        // Shift-based lane extraction/packing is its own inverse
        // regardless of endianness, so `z` holds `t.mul` of each
        // byte of `x` in matching lanes.
        let mut z = 0u64;
        for lane in 0..8 {
            let byte = (x >> (lane * 8)) as u8;
            z |= u64::from(t.mul(byte)) << (lane * 8);
        }
        // SAFETY: same bounds invariant on `out` (equal length,
        // `off + 8 <= len`). `input` and `out` come from a shared
        // and an exclusive reference respectively, so the source
        // and destination regions cannot overlap.
        unsafe {
            let y = dst.add(off).cast::<u64>().read_unaligned();
            dst.add(off).cast::<u64>().write_unaligned(y ^ z);
        }
    }
    for i in words * 8..len {
        out[i] ^= t.mul(input[i]);
    }
}

/// `out[i] ^= input[i]`, dispatched to the widest XOR kernel available
/// (AVX2 on capable `x86_64`, the unaligned-u64 batch loop elsewhere).
pub fn xor_slice(input: &[u8], out: &mut [u8]) {
    assert_eq!(input.len(), out.len(), "slice length mismatch");
    crate::simd::xor_dispatch(input, out);
}

/// Portable u64-batched XOR core — fallback behind [`xor_slice`].
pub(crate) fn xor_scalar(input: &[u8], out: &mut [u8]) {
    debug_assert_eq!(input.len(), out.len());
    let len = input.len();
    let words = len / 8;
    let src = input.as_ptr();
    let dst = out.as_mut_ptr();
    for w in 0..words {
        let off = w * 8;
        // Bounds invariant of the batch: bytes `off..off + 8` with
        // `off + 8 <= words * 8 <= len`.
        debug_assert!(off + 8 <= len, "u64 batch out of bounds");
        // SAFETY: `off + 8 <= len` (invariant above) keeps both 8-byte
        // unaligned accesses inside their slices (lengths debug-asserted
        // equal here, asserted by every public caller); the shared
        // `input` borrow and exclusive `out` borrow guarantee the
        // regions are disjoint.
        unsafe {
            let a = src.add(off).cast::<u64>().read_unaligned();
            let b = dst.add(off).cast::<u64>().read_unaligned();
            dst.add(off).cast::<u64>().write_unaligned(a ^ b);
        }
    }
    for i in words * 8..len {
        out[i] ^= input[i];
    }
}

/// Dot product of coefficient row `coeffs` with input shards: for each
/// output byte position `i`, `out[i] = sum_j coeffs[j] * inputs[j][i]`.
///
/// This is the whole-parity-chunk kernel used by the Reed–Solomon encoder.
///
/// # Panics
/// Panics if `coeffs.len() != inputs.len()` or any shard length differs from
/// `out`.
pub fn dot_into(coeffs: &[u8], inputs: &[&[u8]], out: &mut [u8]) {
    assert_eq!(
        coeffs.len(),
        inputs.len(),
        "coefficient/shard count mismatch"
    );
    out.fill(0);
    for (&c, input) in coeffs.iter().zip(inputs) {
        mul_add_slice(c, input, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::gf_mul;

    /// Coefficients the exhaustive cross-checks sweep. Under Miri the
    /// interpreter is ~1000× slower than native, so the sweep shrinks to
    /// the structurally interesting cases (zero, one, a generator, values
    /// exercising both nibbles, the top element); natively it is all 256.
    fn sweep_coeffs() -> Vec<u8> {
        if cfg!(miri) {
            vec![0, 1, 2, 0x1d, 0x53, 0x80, 0xff]
        } else {
            (0..=255).collect()
        }
    }

    fn reference_mul_add(c: u8, input: &[u8], out: &mut [u8]) {
        for (o, &x) in out.iter_mut().zip(input) {
            *o ^= gf_mul(c, x);
        }
    }

    #[test]
    fn nibble_table_matches_scalar_mul() {
        for c in sweep_coeffs() {
            let t = NibbleTable::new(c);
            for x in 0..=255u8 {
                assert_eq!(t.mul(x), gf_mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn full_table_matches_scalar_mul() {
        for c in [0u8, 1, 2, 0x1d, 0x80, 0xff] {
            let t = MulTable::new(c);
            for x in 0..=255u8 {
                assert_eq!(t.mul(x), gf_mul(c, x));
            }
        }
    }

    #[test]
    fn mul_add_slice_matches_reference_all_lengths() {
        // Lengths around the 8-byte blocking boundary are the risky cases.
        for len in 0..40usize {
            let input: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for c in [0u8, 1, 2, 0x53, 0xff] {
                let mut fast = vec![0xaa; len];
                let mut slow = vec![0xaa; len];
                mul_add_slice(c, &input, &mut fast);
                reference_mul_add(c, &input, &mut slow);
                assert_eq!(fast, slow, "c={c} len={len}");
            }
        }
    }

    #[test]
    fn mul_add_slice_unaligned_offsets() {
        // The u64 batch loop reads/writes through unaligned pointers; run
        // it over every sub-slice start offset so Miri sees genuinely
        // misaligned u64 accesses (and the scalar tail at every phase).
        let backing: Vec<u8> = (0..64).map(|i| (i * 29 + 3) as u8).collect();
        let mut out_backing = [0x5au8; 64];
        for start in 0..9usize {
            for c in sweep_coeffs() {
                let input = &backing[start..];
                let mut fast = out_backing[start..].to_vec();
                let mut slow = fast.clone();
                mul_add_slice(c, input, &mut fast);
                reference_mul_add(c, input, &mut slow);
                assert_eq!(fast, slow, "c={c} start={start}");
                out_backing[start..].copy_from_slice(&fast);
            }
        }
    }

    #[test]
    fn xor_slice_unaligned_offsets() {
        let backing: Vec<u8> = (0..64).map(|i| (i * 13 + 7) as u8).collect();
        for start in 0..9usize {
            let input = &backing[start..];
            let mut fast: Vec<u8> = (0..input.len()).map(|i| (i * 5) as u8).collect();
            let expect: Vec<u8> = fast.iter().zip(input).map(|(y, x)| y ^ x).collect();
            xor_slice(input, &mut fast);
            assert_eq!(fast, expect, "start={start}");
        }
    }

    #[test]
    fn mul_slice_zero_and_one_fast_paths() {
        let input = [1u8, 2, 3, 4, 5];
        let mut out = [9u8; 5];
        mul_slice(0, &input, &mut out);
        assert_eq!(out, [0; 5]);
        mul_slice(1, &input, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn xor_slice_matches_elementwise() {
        for len in [0usize, 1, 7, 8, 9, 16, 31] {
            let a: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut b: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            let expect: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            xor_slice(&a, &mut b);
            assert_eq!(b, expect, "len={len}");
        }
    }

    #[test]
    fn dot_into_is_linear_combination() {
        let shards: Vec<Vec<u8>> = (0..4)
            .map(|s| (0..16).map(|i| (s * 40 + i) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(std::vec::Vec::as_slice).collect();
        let coeffs = [3u8, 0, 1, 0x8e];
        let mut out = vec![0u8; 16];
        dot_into(&coeffs, &refs, &mut out);
        for i in 0..16 {
            let mut expect = 0u8;
            for (j, shard) in shards.iter().enumerate() {
                expect ^= gf_mul(coeffs[j], shard[i]);
            }
            assert_eq!(out[i], expect, "byte {i}");
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut out = [0u8; 3];
        mul_add_slice(5, &[1, 2, 3, 4], &mut out);
    }
}
