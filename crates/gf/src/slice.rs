//! Bulk GF(2^8) kernels: multiply a byte slice by a scalar coefficient and
//! accumulate into an output slice.
//!
//! These are the inner loops of erasure encoding: producing one parity chunk
//! from `k` data chunks is `k` calls to [`mul_add_slice`]. The paper's
//! Fig. 11 measures exactly this path (via Intel ISA-L in the original; here
//! via the split-nibble scalar kernel, which has the same asymptotic shape:
//! throughput falls with wider `k` and more parities `p`).
//!
//! Two implementations are provided and cross-checked:
//! - [`mul_add_slice`]: split 4-bit tables (32 bytes of table per
//!   coefficient, built on the fly; stays in L1 regardless of how many
//!   coefficients a generator matrix has).
//! - [`MulTable`]: a full 256-entry table per coefficient for callers that
//!   reuse one coefficient across many stripes.

use crate::field::gf_mul;

/// Split multiplication tables for a fixed coefficient `c`: `lo[x & 0xf] ^
/// hi[x >> 4] == c * x` for every byte `x`, by linearity of the field
/// multiplication over bitwise decomposition.
#[derive(Clone, Copy)]
pub struct NibbleTable {
    lo: [u8; 16],
    hi: [u8; 16],
}

impl NibbleTable {
    /// Build the two 16-entry tables for coefficient `c`.
    pub fn new(c: u8) -> NibbleTable {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for x in 0..16u8 {
            lo[x as usize] = gf_mul(c, x);
            hi[x as usize] = gf_mul(c, x << 4);
        }
        NibbleTable { lo, hi }
    }

    /// Multiply a single byte by the table's coefficient.
    #[inline(always)]
    pub fn mul(&self, x: u8) -> u8 {
        self.lo[(x & 0x0f) as usize] ^ self.hi[(x >> 4) as usize]
    }
}

/// A full 256-entry multiplication table for a fixed coefficient.
#[derive(Clone)]
pub struct MulTable {
    table: [u8; 256],
}

impl MulTable {
    /// Build the table for coefficient `c`.
    pub fn new(c: u8) -> MulTable {
        let mut table = [0u8; 256];
        for (x, slot) in table.iter_mut().enumerate() {
            *slot = gf_mul(c, x as u8);
        }
        MulTable { table }
    }

    /// Multiply a single byte by the table's coefficient.
    #[inline(always)]
    pub fn mul(&self, x: u8) -> u8 {
        self.table[x as usize]
    }
}

/// `out[i] = c * input[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_slice(c: u8, input: &[u8], out: &mut [u8]) {
    assert_eq!(input.len(), out.len(), "slice length mismatch");
    match c {
        0 => out.fill(0),
        1 => out.copy_from_slice(input),
        _ => {
            let t = NibbleTable::new(c);
            for (o, &x) in out.iter_mut().zip(input) {
                *o = t.mul(x);
            }
        }
    }
}

/// `out[i] ^= c * input[i]` for all `i` — the fused multiply-accumulate that
/// dominates encoding time.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_add_slice(c: u8, input: &[u8], out: &mut [u8]) {
    assert_eq!(input.len(), out.len(), "slice length mismatch");
    match c {
        0 => {}
        1 => xor_slice(input, out),
        _ => {
            let t = NibbleTable::new(c);
            // Process in blocks of 8 to give the optimizer unrollable bodies
            // without relying on unstable SIMD.
            let mut chunks_in = input.chunks_exact(8);
            let mut chunks_out = out.chunks_exact_mut(8);
            for (ci, co) in (&mut chunks_in).zip(&mut chunks_out) {
                for j in 0..8 {
                    co[j] ^= t.mul(ci[j]);
                }
            }
            for (o, &x) in chunks_out
                .into_remainder()
                .iter_mut()
                .zip(chunks_in.remainder())
            {
                *o ^= t.mul(x);
            }
        }
    }
}

/// `out[i] ^= input[i]`, vectorized over `u64` words where alignment allows.
pub fn xor_slice(input: &[u8], out: &mut [u8]) {
    assert_eq!(input.len(), out.len(), "slice length mismatch");
    let mut in8 = input.chunks_exact(8);
    let mut out8 = out.chunks_exact_mut(8);
    for (ci, co) in (&mut in8).zip(&mut out8) {
        let a = u64::from_ne_bytes(ci.try_into().unwrap());
        let b = u64::from_ne_bytes((&*co).try_into().unwrap());
        co.copy_from_slice(&(a ^ b).to_ne_bytes());
    }
    for (o, &x) in out8.into_remainder().iter_mut().zip(in8.remainder()) {
        *o ^= x;
    }
}

/// Dot product of coefficient row `coeffs` with input shards: for each
/// output byte position `i`, `out[i] = sum_j coeffs[j] * inputs[j][i]`.
///
/// This is the whole-parity-chunk kernel used by the Reed–Solomon encoder.
///
/// # Panics
/// Panics if `coeffs.len() != inputs.len()` or any shard length differs from
/// `out`.
pub fn dot_into(coeffs: &[u8], inputs: &[&[u8]], out: &mut [u8]) {
    assert_eq!(
        coeffs.len(),
        inputs.len(),
        "coefficient/shard count mismatch"
    );
    out.fill(0);
    for (&c, input) in coeffs.iter().zip(inputs) {
        mul_add_slice(c, input, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::gf_mul;

    fn reference_mul_add(c: u8, input: &[u8], out: &mut [u8]) {
        for (o, &x) in out.iter_mut().zip(input) {
            *o ^= gf_mul(c, x);
        }
    }

    #[test]
    fn nibble_table_matches_scalar_mul() {
        for c in 0..=255u8 {
            let t = NibbleTable::new(c);
            for x in 0..=255u8 {
                assert_eq!(t.mul(x), gf_mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn full_table_matches_scalar_mul() {
        for c in [0u8, 1, 2, 0x1d, 0x80, 0xff] {
            let t = MulTable::new(c);
            for x in 0..=255u8 {
                assert_eq!(t.mul(x), gf_mul(c, x));
            }
        }
    }

    #[test]
    fn mul_add_slice_matches_reference_all_lengths() {
        // Lengths around the 8-byte blocking boundary are the risky cases.
        for len in 0..40usize {
            let input: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for c in [0u8, 1, 2, 0x53, 0xff] {
                let mut fast = vec![0xaa; len];
                let mut slow = vec![0xaa; len];
                mul_add_slice(c, &input, &mut fast);
                reference_mul_add(c, &input, &mut slow);
                assert_eq!(fast, slow, "c={c} len={len}");
            }
        }
    }

    #[test]
    fn mul_slice_zero_and_one_fast_paths() {
        let input = [1u8, 2, 3, 4, 5];
        let mut out = [9u8; 5];
        mul_slice(0, &input, &mut out);
        assert_eq!(out, [0; 5]);
        mul_slice(1, &input, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn xor_slice_matches_elementwise() {
        for len in [0usize, 1, 7, 8, 9, 16, 31] {
            let a: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut b: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            let expect: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            xor_slice(&a, &mut b);
            assert_eq!(b, expect, "len={len}");
        }
    }

    #[test]
    fn dot_into_is_linear_combination() {
        let shards: Vec<Vec<u8>> = (0..4)
            .map(|s| (0..16).map(|i| (s * 40 + i) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(|v| v.as_slice()).collect();
        let coeffs = [3u8, 0, 1, 0x8e];
        let mut out = vec![0u8; 16];
        dot_into(&coeffs, &refs, &mut out);
        for i in 0..16 {
            let mut expect = 0u8;
            for (j, shard) in shards.iter().enumerate() {
                expect ^= gf_mul(coeffs[j], shard[i]);
            }
            assert_eq!(out[i], expect, "byte {i}");
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut out = [0u8; 3];
        mul_add_slice(5, &[1, 2, 3, 4], &mut out);
    }
}
