//! Dense matrices over GF(2^8): the linear-algebra layer used to build
//! systematic Reed–Solomon generator matrices, invert decode matrices, and
//! rank-test LRC erasure patterns.

use crate::field::{gf_div, gf_inv, gf_mul, gf_pow};
use std::fmt;

/// A row-major dense matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// An all-zero `rows x cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Build from a nested-slice literal; all rows must have equal length.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[&[u8]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix literal");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// An `rows x cols` Vandermonde matrix: entry `(i, j) = i^j`.
    ///
    /// Any `cols` rows of this matrix are linearly independent when
    /// `rows <= 256`, which is what makes it a valid MDS construction seed.
    pub fn vandermonde(rows: usize, cols: usize) -> Matrix {
        assert!(rows <= 256, "GF(2^8) Vandermonde supports at most 256 rows");
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, gf_pow(i as u8, j));
            }
        }
        m
    }

    /// An `rows x cols` Cauchy matrix with `x_i = i` and `y_j = rows + j`:
    /// entry `(i, j) = 1 / (x_i + y_j)`. Every square submatrix of a Cauchy
    /// matrix is invertible, so it is MDS without post-processing.
    ///
    /// # Panics
    /// Panics if `rows + cols > 256` (the x/y sets must be disjoint).
    pub fn cauchy(rows: usize, cols: usize) -> Matrix {
        assert!(
            rows + cols <= 256,
            "Cauchy needs rows+cols <= 256 in GF(2^8)"
        );
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let denom = (i as u8) ^ ((rows + j) as u8);
                m.set(i, j, gf_inv(denom));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix multiply");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = gf_mul(a, rhs.get(l, j));
                    let slot = out.get(i, j);
                    out.set(i, j, slot ^ prod);
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols`.
    pub fn mul_vec(&self, v: &[u8]) -> Vec<u8> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = 0u8;
                for (j, &x) in v.iter().enumerate() {
                    acc ^= gf_mul(self.get(i, j), x);
                }
                acc
            })
            .collect()
    }

    /// A new matrix from the given subset of row indices.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zero(indices.len(), self.cols);
        for (oi, &ri) in indices.iter().enumerate() {
            let src = self.row(ri).to_vec();
            out.data[oi * self.cols..(oi + 1) * self.cols].copy_from_slice(&src);
        }
        out
    }

    /// Vertical concatenation `[self; bottom]`.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn stack(&self, bottom: &Matrix) -> Matrix {
        assert_eq!(self.cols, bottom.cols, "column mismatch in stack");
        let mut data = self.data.clone();
        data.extend_from_slice(&bottom.data);
        Matrix {
            rows: self.rows + bottom.rows,
            cols: self.cols,
            data,
        }
    }

    /// Rank via Gaussian elimination on a scratch copy.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        for col in 0..m.cols {
            if rank == m.rows {
                break;
            }
            // Find a pivot at or below `rank` in this column.
            let Some(pivot) = (rank..m.rows).find(|&r| m.get(r, col) != 0) else {
                continue;
            };
            m.swap_rows(rank, pivot);
            let inv = gf_inv(m.get(rank, col));
            for c in 0..m.cols {
                let v = m.get(rank, c);
                m.set(rank, c, gf_mul(v, inv));
            }
            for r in 0..m.rows {
                if r != rank {
                    let factor = m.get(r, col);
                    if factor != 0 {
                        for c in 0..m.cols {
                            let v = m.get(r, c) ^ gf_mul(factor, m.get(rank, c));
                            m.set(r, c, v);
                        }
                    }
                }
            }
            rank += 1;
        }
        rank
    }

    /// Inverse of a square matrix via Gauss–Jordan, or `None` if singular.
    pub fn invert(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse of a non-square matrix");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            let pivot = (col..n).find(|&r| work.get(r, col) != 0)?;
            work.swap_rows(col, pivot);
            inv.swap_rows(col, pivot);
            let scale = work.get(col, col);
            for c in 0..n {
                work.set(col, c, gf_div(work.get(col, c), scale));
                inv.set(col, c, gf_div(inv.get(col, c), scale));
            }
            for r in 0..n {
                if r != col {
                    let factor = work.get(r, col);
                    if factor != 0 {
                        for c in 0..n {
                            let wv = work.get(r, c) ^ gf_mul(factor, work.get(col, c));
                            work.set(r, c, wv);
                            let iv = inv.get(r, c) ^ gf_mul(factor, inv.get(col, c));
                            inv.set(r, c, iv);
                        }
                    }
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:02x} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = Matrix::vandermonde(4, 4);
        let id = Matrix::identity(4);
        assert_eq!(m.mul(&id), m);
        assert_eq!(id.mul(&m), m);
    }

    #[test]
    fn invert_round_trips() {
        // Vandermonde over distinct points is invertible.
        let m = Matrix::vandermonde(5, 5);
        let inv = m.invert().expect("vandermonde must be invertible");
        assert_eq!(m.mul(&inv), Matrix::identity(5));
        assert_eq!(inv.mul(&m), Matrix::identity(5));
    }

    #[test]
    fn invert_round_trips_scaled() {
        // Same Gauss–Jordan path at a workload-scaled size: 16×16
        // natively, 6×6 under Miri (the interpreter is ~1000× slower).
        let n = if cfg!(miri) { 6 } else { 16 };
        let m = Matrix::vandermonde(n, n);
        let inv = m.invert().expect("vandermonde must be invertible");
        assert_eq!(m.mul(&inv), Matrix::identity(n));
        assert_eq!(inv.mul(&m), Matrix::identity(n));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Matrix::from_rows(&[&[1, 2], &[1, 2]]);
        assert!(m.invert().is_none());
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn rank_of_rectangular() {
        let m = Matrix::vandermonde(6, 3);
        assert_eq!(m.rank(), 3);
        let z = Matrix::zero(4, 7);
        assert_eq!(z.rank(), 0);
    }

    #[test]
    fn cauchy_every_square_submatrix_invertible() {
        let m = Matrix::cauchy(4, 4);
        // Check all 2x2 minors are non-singular (a spot check of the MDS
        // property; full-rank of row subsets is exercised by the RS tests).
        for r0 in 0..4 {
            for r1 in (r0 + 1)..4 {
                for c0 in 0..4 {
                    for c1 in (c0 + 1)..4 {
                        let det = gf_mul(m.get(r0, c0), m.get(r1, c1))
                            ^ gf_mul(m.get(r0, c1), m.get(r1, c0));
                        assert_ne!(det, 0, "singular 2x2 minor at {r0},{r1},{c0},{c1}");
                    }
                }
            }
        }
    }

    #[test]
    fn vandermonde_any_k_rows_full_rank() {
        let k = 4;
        let m = Matrix::vandermonde(8, k);
        // Exhaustively test every k-subset of the 8 rows.
        for a in 0..8 {
            for b in (a + 1)..8 {
                for c in (b + 1)..8 {
                    for d in (c + 1)..8 {
                        let sub = m.select_rows(&[a, b, c, d]);
                        assert_eq!(sub.rank(), k, "rows {a},{b},{c},{d}");
                    }
                }
            }
        }
    }

    #[test]
    fn mul_vec_matches_mul() {
        let m = Matrix::cauchy(3, 5);
        let v = [7u8, 0, 0x40, 9, 0xff];
        let as_col = Matrix::from_rows(&[&[7], &[0], &[0x40], &[9], &[0xff]]);
        let prod = m.mul(&as_col);
        let prod_vec = m.mul_vec(&v);
        for (i, &pv) in prod_vec.iter().enumerate() {
            assert_eq!(prod.get(i, 0), pv);
        }
    }

    #[test]
    fn stack_and_select_rows() {
        let top = Matrix::identity(2);
        let bottom = Matrix::from_rows(&[&[3, 4]]);
        let s = top.stack(&bottom);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(2), &[3, 4]);
        let sel = s.select_rows(&[2, 0]);
        assert_eq!(sel.row(0), &[3, 4]);
        assert_eq!(sel.row(1), &[1, 0]);
    }
}
