//! Scalar arithmetic in GF(2^8) and the [`Gf256`] element wrapper.
//!
//! Addition and subtraction are both XOR; multiplication and division go
//! through the log/exp tables in [`crate::tables`]. All functions are total:
//! division by zero panics (a programming error in an erasure coder, never a
//! data-dependent condition).

use crate::tables::{EXP, GROUP_ORDER, LOG};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Add two field elements (XOR).
#[inline(always)]
pub const fn gf_add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtract two field elements (identical to addition in characteristic 2).
#[inline(always)]
pub const fn gf_sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiply two field elements via the log/exp tables.
#[inline(always)]
pub fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics if `a == 0`.
pub fn gf_inv(a: u8) -> u8 {
    assert!(a != 0, "inverse of zero in GF(2^8)");
    EXP[GROUP_ORDER - LOG[a as usize] as usize]
}

/// Division `a / b`.
///
/// # Panics
/// Panics if `b == 0`.
#[inline]
pub fn gf_div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(2^8)");
    if a == 0 {
        0
    } else {
        EXP[(LOG[a as usize] as usize + GROUP_ORDER - LOG[b as usize] as usize) % GROUP_ORDER]
    }
}

/// Raise `a` to the power `n` (with `0^0 == 1` by convention, as required by
/// Vandermonde-matrix construction).
pub fn gf_pow(a: u8, n: usize) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = (LOG[a as usize] as usize * n) % GROUP_ORDER;
    EXP[l]
}

/// A GF(2^8) element with operator overloads, used where expression-style
/// math reads better than the free functions (e.g. matrix kernels in tests).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);

    /// The canonical generator (2) of the multiplicative group.
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Multiplicative inverse. Panics on zero.
    pub fn inv(self) -> Gf256 {
        Gf256(gf_inv(self.0))
    }

    /// `self^n`.
    pub fn pow(self, n: usize) -> Gf256 {
        Gf256(gf_pow(self.0, n))
    }

    /// True iff this is the additive identity.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(gf_add(self.0, rhs.0))
    }
}

impl AddAssign for Gf256 {
    // GF(2^8) addition IS xor — not a typo for `+`.
    #[allow(clippy::suspicious_op_assign_impl)]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    fn sub(self, rhs: Gf256) -> Gf256 {
        Gf256(gf_sub(self.0, rhs.0))
    }
}

impl SubAssign for Gf256 {
    // Subtraction equals addition in characteristic 2.
    #[allow(clippy::suspicious_op_assign_impl)]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    fn neg(self) -> Gf256 {
        self // -a == a in characteristic 2
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(gf_mul(self.0, rhs.0))
    }
}

impl MulAssign for Gf256 {
    fn mul_assign(&mut self, rhs: Gf256) {
        self.0 = gf_mul(self.0, rhs.0);
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    fn div(self, rhs: Gf256) -> Gf256 {
        Gf256(gf_div(self.0, rhs.0))
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Gf256 {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    fn from(v: Gf256) -> u8 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slow but obviously-correct carry-less multiply for cross-checking.
    fn mul_reference(mut a: u8, mut b: u8) -> u8 {
        let mut acc: u8 = 0;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            let hi = a & 0x80 != 0;
            a <<= 1;
            if hi {
                a ^= (crate::tables::POLY & 0xff) as u8;
            }
            b >>= 1;
        }
        acc
    }

    #[test]
    fn mul_matches_reference_everywhere() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(gf_mul(a, b), mul_reference(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                assert_eq!(gf_div(gf_mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn pow_agrees_with_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 0x1d, 0xff] {
            let mut acc = 1u8;
            for n in 0..600 {
                assert_eq!(gf_pow(a, n), acc, "a={a} n={n}");
                acc = gf_mul(acc, a);
            }
        }
    }

    #[test]
    fn pow_zero_conventions() {
        assert_eq!(gf_pow(0, 0), 1);
        assert_eq!(gf_pow(0, 5), 0);
    }

    #[test]
    #[should_panic]
    fn inverse_of_zero_panics() {
        gf_inv(0);
    }

    #[test]
    #[should_panic]
    fn division_by_zero_panics() {
        gf_div(7, 0);
    }

    #[test]
    fn wrapper_operators() {
        let a = Gf256(0x53);
        let b = Gf256(0xca);
        assert_eq!(a + b, Gf256(0x53 ^ 0xca));
        assert_eq!(a - b, a + b);
        assert_eq!(-a, a);
        assert_eq!((a * b) / b, a);
        assert_eq!(a * Gf256::ONE, a);
        assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
        assert_eq!(a.inv() * a, Gf256::ONE);
    }
}
