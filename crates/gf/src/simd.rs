//! Runtime-dispatched SIMD GF(2^8) kernels behind the safe API in
//! [`crate::slice`].
//!
//! This is the split-table technique Intel ISA-L uses for the paper's
//! Fig. 11 comparator: a coefficient's [`NibbleTable`] (two 16-entry
//! tables) fits in two vector registers, so one 16-byte table shuffle
//! (`pshufb` on `x86_64`, `tbl` on `aarch64`) multiplies 16/32 bytes by the
//! coefficient at once — two shuffles and two XORs per vector versus two
//! scalar table lookups and an XOR *per byte* in the fallback.
//!
//! Dispatch policy:
//! - **`x86_64`** (with the `simd` crate feature, on by default): AVX2
//!   (32-byte blocks) when the CPU has it, else SSSE3 (16-byte blocks),
//!   detected once via `is_x86_feature_detected!` and cached.
//! - **aarch64** (with `simd`): NEON `vqtbl1q_u8`, unconditionally — NEON
//!   is baseline on aarch64.
//! - **everything else** — other architectures, `--no-default-features`
//!   builds, and Miri runs — the portable u64 batch loop in
//!   [`crate::slice`]. Under Miri the dispatcher always picks the scalar
//!   kernel so the unsafe fallback cores (the ones Miri can actually
//!   interpret) get interpreted coverage.
//!
//! Every SIMD core is `unsafe fn` solely because of its `target_feature`
//! contract plus raw-pointer loads/stores; the dispatcher is the single
//! call site and upholds the CPU-feature precondition by construction.
//! Equivalence with the scalar fallback is enforced by the exhaustive
//! property tests at the bottom of this file (all 256 coefficients ×
//! unaligned offsets × lengths straddling every vector-width boundary).

use crate::slice::NibbleTable;

/// The kernel family selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable u64 batch loop (universal fallback).
    Scalar,
    /// SSSE3 `pshufb` split-table kernel, 16-byte blocks (`x86_64`).
    Ssse3,
    /// AVX2 `vpshufb` split-table kernel, 32-byte blocks (`x86_64`).
    Avx2,
    /// NEON `tbl` split-table kernel, 16-byte blocks (aarch64).
    Neon,
}

impl Kernel {
    fn detect() -> Kernel {
        // Miri interprets the scalar cores; SIMD intrinsics would be
        // rejected, and the fallback is exactly what we want covered.
        if cfg!(miri) {
            return Kernel::Scalar;
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Kernel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("ssse3") {
                return Kernel::Ssse3;
            }
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        {
            return Kernel::Neon;
        }
        #[allow(unreachable_code)]
        Kernel::Scalar
    }

    /// Human-readable name (`"scalar"`, `"ssse3"`, `"avx2"`, `"neon"`).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Ssse3 => "ssse3",
            Kernel::Avx2 => "avx2",
            Kernel::Neon => "neon",
        }
    }
}

/// The kernel the slice entry points dispatch to, detected at first use
/// and cached for the life of the process.
pub fn active_kernel() -> Kernel {
    use std::sync::OnceLock;
    static KERNEL: OnceLock<Kernel> = OnceLock::new();
    *KERNEL.get_or_init(Kernel::detect)
}

/// Name of the active kernel — for benchmark banners and diagnostics.
pub fn kernel_name() -> &'static str {
    active_kernel().name()
}

/// `out[i] = t.mul(input[i])` via the active kernel.
pub(crate) fn mul_dispatch(t: &NibbleTable, input: &[u8], out: &mut [u8]) {
    dispatch::<false>(t, input, out);
}

/// `out[i] ^= t.mul(input[i])` via the active kernel.
pub(crate) fn mul_add_dispatch(t: &NibbleTable, input: &[u8], out: &mut [u8]) {
    dispatch::<true>(t, input, out);
}

/// Shared dispatcher: `ACC` selects accumulate (`^=`) vs overwrite (`=`).
fn dispatch<const ACC: bool>(t: &NibbleTable, input: &[u8], out: &mut [u8]) {
    debug_assert_eq!(input.len(), out.len());
    match active_kernel() {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `active_kernel` returns `Avx2`/`Ssse3` only after
        // `is_x86_feature_detected!` confirmed the CPU supports the
        // feature, satisfying each kernel's target-feature contract; the
        // slices were length-checked by the caller.
        Kernel::Avx2 => unsafe { x86::mul_avx2::<ACC>(t, input, out) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: as above — SSSE3 was runtime-detected before selection.
        Kernel::Ssse3 => unsafe { x86::mul_ssse3::<ACC>(t, input, out) },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        // SAFETY: NEON is an architectural baseline on aarch64, so the
        // target-feature contract holds on every aarch64 CPU.
        Kernel::Neon => unsafe { neon::mul_neon::<ACC>(t, input, out) },
        _ => scalar::<ACC>(t, input, out),
    }
}

/// `out[i] ^= input[i]` via the active kernel. Only AVX2 beats the u64
/// batch loop on pure XOR (no table shuffle involved), so everything else
/// falls through to the scalar core.
pub(crate) fn xor_dispatch(input: &[u8], out: &mut [u8]) {
    debug_assert_eq!(input.len(), out.len());
    match active_kernel() {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `Avx2` is only selected after runtime detection; the
        // slices were length-checked by the caller.
        Kernel::Avx2 => unsafe { x86::xor_avx2(input, out) },
        _ => crate::slice::xor_scalar(input, out),
    }
}

/// Scalar leg of the dispatcher.
fn scalar<const ACC: bool>(t: &NibbleTable, input: &[u8], out: &mut [u8]) {
    if ACC {
        crate::slice::mul_add_scalar(t, input, out);
    } else {
        crate::slice::mul_scalar(t, input, out);
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use crate::slice::NibbleTable;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// SSSE3 split-table multiply over 16-byte blocks: `pshufb` looks up
    /// both nibbles of 16 input bytes in one instruction each.
    ///
    /// # Safety
    /// Caller must guarantee the CPU supports SSSE3 and
    /// `input.len() == out.len()` (with `input` and `out` disjoint, which
    /// the `&`/`&mut` borrows already enforce).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_ssse3<const ACC: bool>(t: &NibbleTable, input: &[u8], out: &mut [u8]) {
        let len = input.len();
        let blocks = len / 16;
        // SAFETY: `[u8; 16]` and `__m128i` have identical size with no
        // padding; `loadu` imposes no alignment requirement.
        let lo_t = unsafe { _mm_loadu_si128(t.lo.as_ptr().cast()) };
        // SAFETY: as above for the high-nibble table.
        let hi_t = unsafe { _mm_loadu_si128(t.hi.as_ptr().cast()) };
        let mask = _mm_set1_epi8(0x0f);
        let src = input.as_ptr();
        let dst = out.as_mut_ptr();
        for b in 0..blocks {
            let off = b * 16;
            // Bounds invariant: the widest access touches bytes
            // `off..off + 16`, and `off + 16 <= blocks * 16 <= len`.
            debug_assert!(off + 16 <= len, "pshufb block out of bounds");
            // SAFETY: `off + 16 <= len` (invariant above) keeps every
            // 16-byte unaligned load/store inside its slice (lengths
            // equal per the function contract); `input` and `out` come
            // from a shared and an exclusive reference, so the regions
            // are disjoint.
            unsafe {
                let x = _mm_loadu_si128(src.add(off).cast());
                // pshufb with the high bit of every index clear (the 0x0f
                // mask guarantees this) selects table[idx & 0xf] per lane.
                let lo = _mm_shuffle_epi8(lo_t, _mm_and_si128(x, mask));
                let hi = _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi64(x, 4), mask));
                let prod = _mm_xor_si128(lo, hi);
                let res = if ACC {
                    _mm_xor_si128(_mm_loadu_si128(dst.add(off).cast()), prod)
                } else {
                    prod
                };
                _mm_storeu_si128(dst.add(off).cast(), res);
            }
        }
        tail::<ACC>(t, input, out, blocks * 16);
    }

    /// AVX2 split-table multiply over 32-byte blocks. `vpshufb` shuffles
    /// within each 128-bit lane, so the 16-entry tables are broadcast to
    /// both lanes and the per-lane semantics match the SSSE3 kernel.
    ///
    /// # Safety
    /// Caller must guarantee the CPU supports AVX2 and
    /// `input.len() == out.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_avx2<const ACC: bool>(t: &NibbleTable, input: &[u8], out: &mut [u8]) {
        let len = input.len();
        let blocks = len / 32;
        // SAFETY: `[u8; 16]` and `__m128i` have identical size with no
        // padding; `loadu` imposes no alignment requirement.
        let lo128 = unsafe { _mm_loadu_si128(t.lo.as_ptr().cast()) };
        // SAFETY: as above for the high-nibble table.
        let hi128 = unsafe { _mm_loadu_si128(t.hi.as_ptr().cast()) };
        let lo_t = _mm256_broadcastsi128_si256(lo128);
        let hi_t = _mm256_broadcastsi128_si256(hi128);
        let mask = _mm256_set1_epi8(0x0f);
        let src = input.as_ptr();
        let dst = out.as_mut_ptr();
        for b in 0..blocks {
            let off = b * 32;
            // Bounds invariant: bytes `off..off + 32` with
            // `off + 32 <= blocks * 32 <= len`.
            debug_assert!(off + 32 <= len, "avx2 block out of bounds");
            // SAFETY: `off + 32 <= len` (invariant above) keeps every
            // 32-byte unaligned load/store inside its slice (lengths
            // equal per the function contract); the `&`/`&mut` borrows
            // keep source and destination disjoint.
            unsafe {
                let x = _mm256_loadu_si256(src.add(off).cast());
                let lo = _mm256_shuffle_epi8(lo_t, _mm256_and_si256(x, mask));
                let hi = _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi64(x, 4), mask));
                let prod = _mm256_xor_si256(lo, hi);
                let res = if ACC {
                    _mm256_xor_si256(_mm256_loadu_si256(dst.add(off).cast()), prod)
                } else {
                    prod
                };
                _mm256_storeu_si256(dst.add(off).cast(), res);
            }
        }
        tail::<ACC>(t, input, out, blocks * 32);
    }

    /// AVX2 XOR over 32-byte blocks.
    ///
    /// # Safety
    /// Caller must guarantee the CPU supports AVX2 and
    /// `input.len() == out.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_avx2(input: &[u8], out: &mut [u8]) {
        let len = input.len();
        let blocks = len / 32;
        let src = input.as_ptr();
        let dst = out.as_mut_ptr();
        for b in 0..blocks {
            let off = b * 32;
            // Bounds invariant: bytes `off..off + 32` with
            // `off + 32 <= blocks * 32 <= len`.
            debug_assert!(off + 32 <= len, "avx2 block out of bounds");
            // SAFETY: `off + 32 <= len` keeps both unaligned accesses in
            // bounds (lengths equal per the function contract); borrows
            // keep the regions disjoint.
            unsafe {
                let a = _mm256_loadu_si256(src.add(off).cast());
                let y = _mm256_loadu_si256(dst.add(off).cast());
                _mm256_storeu_si256(dst.add(off).cast(), _mm256_xor_si256(a, y));
            }
        }
        for i in blocks * 32..len {
            out[i] ^= input[i];
        }
    }

    /// Scalar tail for the bytes after the last full vector block.
    fn tail<const ACC: bool>(t: &NibbleTable, input: &[u8], out: &mut [u8], from: usize) {
        for i in from..input.len() {
            if ACC {
                out[i] ^= t.mul(input[i]);
            } else {
                out[i] = t.mul(input[i]);
            }
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon {
    use crate::slice::NibbleTable;
    #[allow(clippy::wildcard_imports)]
    use std::arch::aarch64::*;

    /// NEON split-table multiply over 16-byte blocks: `vqtbl1q_u8` is the
    /// aarch64 equivalent of `pshufb` (out-of-range indices yield 0, and
    /// the 0x0f mask / 4-bit shift keep every index in 0..16).
    ///
    /// # Safety
    /// Caller must guarantee NEON support (architectural baseline on
    /// aarch64) and `input.len() == out.len()`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mul_neon<const ACC: bool>(t: &NibbleTable, input: &[u8], out: &mut [u8]) {
        let len = input.len();
        let blocks = len / 16;
        // SAFETY: the table arrays are 16 valid bytes each; vld1q_u8 is
        // an unaligned 16-byte load.
        let (lo_t, hi_t) = unsafe { (vld1q_u8(t.lo.as_ptr()), vld1q_u8(t.hi.as_ptr())) };
        let mask = vdupq_n_u8(0x0f);
        let src = input.as_ptr();
        let dst = out.as_mut_ptr();
        for b in 0..blocks {
            let off = b * 16;
            // Bounds invariant: bytes `off..off + 16` with
            // `off + 16 <= blocks * 16 <= len`.
            debug_assert!(off + 16 <= len, "neon block out of bounds");
            // SAFETY: `off + 16 <= len` (invariant above) keeps every
            // 16-byte unaligned load/store inside its slice (lengths
            // equal per the function contract); the `&`/`&mut` borrows
            // keep source and destination disjoint.
            unsafe {
                let x = vld1q_u8(src.add(off));
                let lo = vqtbl1q_u8(lo_t, vandq_u8(x, mask));
                let hi = vqtbl1q_u8(hi_t, vshrq_n_u8(x, 4));
                let prod = veorq_u8(lo, hi);
                let res = if ACC {
                    veorq_u8(vld1q_u8(dst.add(off)), prod)
                } else {
                    prod
                };
                vst1q_u8(dst.add(off), res);
            }
        }
        for i in blocks * 16..len {
            if ACC {
                out[i] ^= t.mul(input[i]);
            } else {
                out[i] = t.mul(input[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::gf_mul;
    use crate::slice::{mul_add_slice, mul_add_slice_scalar, mul_slice, xor_slice};

    /// Coefficient sweep: every coefficient natively; a structurally
    /// interesting subset under Miri (the interpreter is ~1000× slower,
    /// and the dispatcher pins Miri to the scalar kernel anyway).
    fn sweep_coeffs() -> Vec<u8> {
        if cfg!(miri) {
            vec![0, 1, 2, 0x1d, 0x53, 0x80, 0xff]
        } else {
            (0..=255).collect()
        }
    }

    /// Lengths straddling every vector-width boundary the kernels block
    /// on: the u64 word (8), the SSSE3/NEON block (16), the AVX2 block
    /// (32), and a two-AVX2-block run (64), each with the scalar tail in
    /// every phase.
    fn sweep_lens() -> Vec<usize> {
        let mut lens: Vec<usize> = (0..=40).collect();
        lens.extend(61..=70);
        if cfg!(miri) {
            lens.retain(|l| l % 3 == 0 || matches!(l, 7 | 8 | 15 | 16 | 31 | 32 | 63 | 64 | 65));
        }
        lens
    }

    /// Deterministic "random" fill — keeps the sweep seeded without
    /// pulling an RNG into the kernel crate.
    fn fill(seed: u64, len: usize) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn kernel_detection_is_cached_and_consistent() {
        let k = active_kernel();
        assert_eq!(k, active_kernel());
        assert_eq!(k.name(), kernel_name());
        if cfg!(miri) || cfg!(not(feature = "simd")) {
            assert_eq!(k, Kernel::Scalar);
        }
    }

    /// The headline equivalence sweep: the dispatched kernel must agree
    /// with both the pure-field reference and the forced-scalar fallback
    /// for all 256 coefficients × unaligned offsets 0..9 × lengths
    /// straddling the vector-width boundaries.
    #[test]
    fn simd_and_scalar_mul_add_agree() {
        let lens = sweep_lens();
        let max_len = *lens.iter().max().unwrap();
        for c in sweep_coeffs() {
            for start in 0..9usize {
                let backing = fill(u64::from(c) * 31 + start as u64, start + max_len);
                for &len in &lens {
                    let input = &backing[start..start + len];
                    let out0 = fill(u64::from(c) ^ 0xabcd, len);
                    let mut dispatched = out0.clone();
                    mul_add_slice(c, input, &mut dispatched);
                    let mut scalar = out0.clone();
                    mul_add_slice_scalar(c, input, &mut scalar);
                    let reference: Vec<u8> = out0
                        .iter()
                        .zip(input)
                        .map(|(&o, &x)| o ^ gf_mul(c, x))
                        .collect();
                    assert_eq!(dispatched, reference, "c={c} start={start} len={len}");
                    assert_eq!(dispatched, scalar, "c={c} start={start} len={len}");
                }
            }
        }
    }

    #[test]
    fn simd_and_scalar_mul_agree() {
        for c in sweep_coeffs() {
            for start in 0..9usize {
                for len in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 40, 64, 65] {
                    let backing = fill(u64::from(c) * 17 + start as u64, start + len);
                    let input = &backing[start..];
                    let mut dispatched = vec![0x5a; len];
                    mul_slice(c, input, &mut dispatched);
                    let reference: Vec<u8> = input.iter().map(|&x| gf_mul(c, x)).collect();
                    assert_eq!(dispatched, reference, "c={c} start={start} len={len}");
                }
            }
        }
    }

    #[test]
    fn simd_and_scalar_xor_agree() {
        for start in 0..9usize {
            for len in [0usize, 1, 7, 8, 9, 16, 31, 32, 33, 63, 64, 65, 100] {
                let backing = fill(start as u64 + 99, start + len);
                let input = &backing[start..];
                let out0 = fill(start as u64 * 7 + 1, len);
                let mut dispatched = out0.clone();
                xor_slice(input, &mut dispatched);
                let mut scalar = out0.clone();
                crate::slice::xor_scalar(input, &mut scalar);
                let reference: Vec<u8> = out0.iter().zip(input).map(|(&o, &x)| o ^ x).collect();
                assert_eq!(dispatched, reference, "start={start} len={len}");
                assert_eq!(dispatched, scalar, "start={start} len={len}");
            }
        }
    }

    /// Large-buffer spot check: one encode-sized block through every
    /// public kernel against the scalar core, catching any block-loop
    /// stride bug a short sweep might miss.
    #[test]
    fn large_buffer_equivalence() {
        let len = if cfg!(miri) {
            1 << 10
        } else {
            (128 << 10) + 13
        };
        let input = fill(0xfeed, len);
        let out0 = fill(0xbeef, len);
        for c in [2u8, 0x1d, 0x8e, 0xff] {
            let mut fast = out0.clone();
            mul_add_slice(c, &input, &mut fast);
            let mut slow = out0.clone();
            mul_add_slice_scalar(c, &input, &mut slow);
            assert_eq!(fast, slow, "c={c}");
        }
    }
}
