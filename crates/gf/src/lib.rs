//! `mlec-gf`: the finite-field substrate for the MLEC analysis suite.
//!
//! Everything in the erasure-coding stack (Reed–Solomon, LRC, the MLEC
//! two-level codec) reduces to linear algebra over GF(2^8), the field of 256
//! elements with the standard polynomial `x^8 + x^4 + x^3 + x^2 + 1`
//! (0x11d) used by Intel ISA-L, Jerasure, and most production erasure
//! coders. This crate provides:
//!
//! - [`field`]: scalar arithmetic (add/sub = XOR, log/exp-table multiply,
//!   inverse, power) and the [`field::Gf256`] element wrapper.
//! - [`tables`]: compile-time-generated exponent/logarithm tables.
//! - [`mod@slice`]: the throughput-critical bulk kernels
//!   ([`slice::mul_slice`], [`slice::mul_add_slice`]) that the encoding
//!   throughput experiment (paper Fig. 11) measures. They use per-coefficient
//!   split nibble tables so each output byte costs two table lookups and one
//!   XOR — or, via [`mod@simd`], two vector table shuffles per 16/32 bytes.
//! - [`mod@simd`]: runtime-dispatched SIMD versions of the slice kernels
//!   (AVX2 / SSSE3 `pshufb` on `x86_64`, NEON on `aarch64`), detected once and
//!   cached, with the portable u64 loop as the universal fallback. Gated
//!   behind the on-by-default `simd` crate feature;
//!   `--no-default-features` forces the scalar path on every target.
//! - [`matrix`]: dense matrices over GF(2^8) with Gauss–Jordan inversion,
//!   rank, and the Vandermonde/Cauchy constructions used to build systematic
//!   generator matrices.
//!
//! # Example
//!
//! ```
//! use mlec_gf::field::{gf_mul, gf_inv};
//! let a = 0x57;
//! let inv = gf_inv(a);
//! assert_eq!(gf_mul(a, inv), 1);
//! ```
//!
//! # Unsafe code
//!
//! The only `unsafe` in the workspace lives in [`mod@slice`] and
//! [`mod@simd`]: the u64-batched fallback loops use unaligned pointer
//! reads/writes, and the SIMD kernels add `target_feature` contracts plus
//! vector loads/stores. Every block carries a `// SAFETY:` comment and a
//! `debug_assert!` bounds invariant (both enforced by `cargo xtask lint`),
//! the dispatcher only selects a SIMD kernel after runtime feature
//! detection, and the scalar cores run under Miri in CI (`cargo miri test
//! -p mlec-gf`, where dispatch always picks the fallback) with
//! `#[cfg(miri)]`-scaled exhaustive tests.

// Unsafe hygiene: every unsafe operation inside an unsafe fn still needs
// its own unsafe block (and its own SAFETY comment).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod field;
pub mod matrix;
pub mod simd;
pub mod slice;
pub mod tables;

pub use field::Gf256;
pub use matrix::Matrix;
