//! Property-based tests: GF(2^8) must satisfy the field axioms and the
//! matrix layer must satisfy the usual linear-algebra identities.

use mlec_gf::field::{gf_add, gf_div, gf_inv, gf_mul, gf_pow};
use mlec_gf::matrix::Matrix;
use mlec_gf::slice::{dot_into, mul_add_slice, mul_slice, NibbleTable};
use proptest::prelude::*;

proptest! {
    #[test]
    fn addition_is_commutative_and_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!(gf_add(a, b), gf_add(b, a));
        prop_assert_eq!(gf_add(gf_add(a, b), c), gf_add(a, gf_add(b, c)));
    }

    #[test]
    fn multiplication_is_commutative_and_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!(gf_mul(a, b), gf_mul(b, a));
        prop_assert_eq!(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
    }

    #[test]
    fn multiplication_distributes_over_addition(a: u8, b: u8, c: u8) {
        prop_assert_eq!(gf_mul(a, gf_add(b, c)), gf_add(gf_mul(a, b), gf_mul(a, c)));
    }

    #[test]
    fn identities_hold(a: u8) {
        prop_assert_eq!(gf_add(a, 0), a);
        prop_assert_eq!(gf_mul(a, 1), a);
        prop_assert_eq!(gf_add(a, a), 0); // every element is its own negative
    }

    #[test]
    fn inverse_and_division(a in 1u8..=255, b in 1u8..=255) {
        prop_assert_eq!(gf_mul(a, gf_inv(a)), 1);
        prop_assert_eq!(gf_mul(gf_div(a, b), b), a);
    }

    #[test]
    fn pow_is_homomorphic(a: u8, m in 0usize..100, n in 0usize..100) {
        prop_assert_eq!(
            gf_mul(gf_pow(a, m), gf_pow(a, n)),
            gf_pow(a, m + n)
        );
    }

    #[test]
    fn frobenius_squaring_is_additive(a: u8, b: u8) {
        // (a + b)^2 == a^2 + b^2 in characteristic 2.
        prop_assert_eq!(
            gf_pow(gf_add(a, b), 2),
            gf_add(gf_pow(a, 2), gf_pow(b, 2))
        );
    }

    #[test]
    fn nibble_table_is_exact(c: u8, x: u8) {
        prop_assert_eq!(NibbleTable::new(c).mul(x), gf_mul(c, x));
    }

    #[test]
    fn mul_add_slice_is_scalar_mul_then_xor(
        c: u8,
        data in proptest::collection::vec(any::<u8>(), 0..256),
        seed in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let n = data.len().min(seed.len());
        let data = &data[..n];
        let mut out = seed[..n].to_vec();
        let mut expect = seed[..n].to_vec();
        for (e, &x) in expect.iter_mut().zip(data) {
            *e ^= gf_mul(c, x);
        }
        mul_add_slice(c, data, &mut out);
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn mul_slice_then_divide_round_trips(
        c in 1u8..=255,
        data in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        let mut out = vec![0; data.len()];
        mul_slice(c, &data, &mut out);
        let mut back = vec![0; data.len()];
        mul_slice(gf_inv(c), &out, &mut back);
        prop_assert_eq!(back, data);
    }

    #[test]
    fn dot_into_is_linear_in_each_shard(
        coeffs in proptest::collection::vec(any::<u8>(), 1..6),
        len in 1usize..64,
    ) {
        let k = coeffs.len();
        let shards: Vec<Vec<u8>> = (0..k)
            .map(|s| (0..len).map(|i| ((s * 97 + i * 31) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(|v| v.as_slice()).collect();
        let mut combined = vec![0u8; len];
        dot_into(&coeffs, &refs, &mut combined);

        // Sum of single-shard dots must equal the combined dot.
        let mut acc = vec![0u8; len];
        for j in 0..k {
            let mut single = vec![0u8; len];
            mul_slice(coeffs[j], &shards[j], &mut single);
            for (a, s) in acc.iter_mut().zip(&single) {
                *a ^= s;
            }
        }
        prop_assert_eq!(combined, acc);
    }

    #[test]
    fn matrix_inverse_round_trip(n in 1usize..7, seed: u64) {
        // Random matrices over GF(2^8) are invertible with probability
        // ~prod(1 - 256^-i) > 0.99; skip the singular draws.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let mut m = Matrix::zero(n, n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, next());
            }
        }
        if let Some(inv) = m.invert() {
            prop_assert_eq!(m.mul(&inv), Matrix::identity(n));
            prop_assert_eq!(inv.mul(&m), Matrix::identity(n));
            prop_assert_eq!(m.rank(), n);
        } else {
            prop_assert!(m.rank() < n);
        }
    }

    #[test]
    fn matrix_multiplication_is_associative(seed: u64) {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let mut mk = |r: usize, c: usize| {
            let mut m = Matrix::zero(r, c);
            for i in 0..r {
                for j in 0..c {
                    m.set(i, j, next());
                }
            }
            m
        };
        let a = mk(3, 4);
        let b = mk(4, 2);
        let c = mk(2, 5);
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }
}
