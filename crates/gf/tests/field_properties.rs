//! Property tests: GF(2^8) must satisfy the field axioms and the matrix
//! layer must satisfy the usual linear-algebra identities.
//!
//! Cases are driven by `mlec-runner`'s deterministic seed stream (one
//! substream per property, one seed per case) instead of a property-testing
//! framework, so every run exercises the same inputs.

use mlec_gf::field::{gf_add, gf_div, gf_inv, gf_mul, gf_pow};
use mlec_gf::matrix::Matrix;
use mlec_gf::slice::{dot_into, mul_add_slice, mul_slice, NibbleTable};
use mlec_runner::{SeedStream, SplitMix64};

// Scaled down under Miri: the interpreter is ~1000x slower than native.
const CASES: u64 = if cfg!(miri) { 8 } else { 256 };

/// One RNG per (property, case), derived exactly like runner trial seeds.
fn case_rng(property: &str, case: u64) -> SplitMix64 {
    SplitMix64::new(SeedStream::new(0xF1E1D, property).trial_seed(case))
}

fn byte(r: &mut SplitMix64) -> u8 {
    (r.next_u64() >> 56) as u8
}

fn in_range(r: &mut SplitMix64, lo: usize, hi: usize) -> usize {
    lo + (r.next_u64() as usize) % (hi - lo)
}

fn bytes(r: &mut SplitMix64, len: usize) -> Vec<u8> {
    (0..len).map(|_| byte(r)).collect()
}

#[test]
fn addition_is_commutative_and_associative() {
    for case in 0..CASES {
        let mut r = case_rng("add-axioms", case);
        let (a, b, c) = (byte(&mut r), byte(&mut r), byte(&mut r));
        assert_eq!(gf_add(a, b), gf_add(b, a));
        assert_eq!(gf_add(gf_add(a, b), c), gf_add(a, gf_add(b, c)));
    }
}

#[test]
fn multiplication_is_commutative_and_associative() {
    for case in 0..CASES {
        let mut r = case_rng("mul-axioms", case);
        let (a, b, c) = (byte(&mut r), byte(&mut r), byte(&mut r));
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
        assert_eq!(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
    }
}

#[test]
fn multiplication_distributes_over_addition() {
    for case in 0..CASES {
        let mut r = case_rng("distributive", case);
        let (a, b, c) = (byte(&mut r), byte(&mut r), byte(&mut r));
        assert_eq!(gf_mul(a, gf_add(b, c)), gf_add(gf_mul(a, b), gf_mul(a, c)));
    }
}

#[test]
fn identities_hold() {
    for a in 0..=255u8 {
        assert_eq!(gf_add(a, 0), a);
        assert_eq!(gf_mul(a, 1), a);
        assert_eq!(gf_add(a, a), 0); // every element is its own negative
    }
}

#[test]
fn inverse_and_division() {
    for a in 1..=255u8 {
        assert_eq!(gf_mul(a, gf_inv(a)), 1);
    }
    for case in 0..CASES {
        let mut r = case_rng("division", case);
        let a = in_range(&mut r, 1, 256) as u8;
        let b = in_range(&mut r, 1, 256) as u8;
        assert_eq!(gf_mul(gf_div(a, b), b), a);
    }
}

#[test]
fn pow_is_homomorphic() {
    for case in 0..CASES {
        let mut r = case_rng("pow", case);
        let a = byte(&mut r);
        let m = in_range(&mut r, 0, 100);
        let n = in_range(&mut r, 0, 100);
        assert_eq!(gf_mul(gf_pow(a, m), gf_pow(a, n)), gf_pow(a, m + n));
    }
}

#[test]
fn frobenius_squaring_is_additive() {
    for case in 0..CASES {
        let mut r = case_rng("frobenius", case);
        let (a, b) = (byte(&mut r), byte(&mut r));
        // (a + b)^2 == a^2 + b^2 in characteristic 2.
        assert_eq!(gf_pow(gf_add(a, b), 2), gf_add(gf_pow(a, 2), gf_pow(b, 2)));
    }
}

#[test]
fn nibble_table_is_exact() {
    for c in 0..=255u8 {
        let table = NibbleTable::new(c);
        for x in 0..=255u8 {
            assert_eq!(table.mul(x), gf_mul(c, x));
        }
    }
}

#[test]
fn mul_add_slice_is_scalar_mul_then_xor() {
    for case in 0..CASES {
        let mut r = case_rng("mul-add-slice", case);
        let c = byte(&mut r);
        let n = in_range(&mut r, 0, 256);
        let data = bytes(&mut r, n);
        let seed = bytes(&mut r, n);
        let mut out = seed.clone();
        let mut expect = seed;
        for (e, &x) in expect.iter_mut().zip(&data) {
            *e ^= gf_mul(c, x);
        }
        mul_add_slice(c, &data, &mut out);
        assert_eq!(out, expect);
    }
}

#[test]
fn mul_slice_then_divide_round_trips() {
    for case in 0..CASES {
        let mut r = case_rng("mul-slice-round-trip", case);
        let c = in_range(&mut r, 1, 256) as u8;
        let n = in_range(&mut r, 1, 128);
        let data = bytes(&mut r, n);
        let mut out = vec![0; data.len()];
        mul_slice(c, &data, &mut out);
        let mut back = vec![0; data.len()];
        mul_slice(gf_inv(c), &out, &mut back);
        assert_eq!(back, data);
    }
}

#[test]
fn dot_into_is_linear_in_each_shard() {
    for case in 0..CASES {
        let mut r = case_rng("dot-into", case);
        let k = in_range(&mut r, 1, 6);
        let len = in_range(&mut r, 1, 64);
        let coeffs = bytes(&mut r, k);
        let shards: Vec<Vec<u8>> = (0..k)
            .map(|s| (0..len).map(|i| ((s * 97 + i * 31) % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(std::vec::Vec::as_slice).collect();
        let mut combined = vec![0u8; len];
        dot_into(&coeffs, &refs, &mut combined);

        // Sum of single-shard dots must equal the combined dot.
        let mut acc = vec![0u8; len];
        for j in 0..k {
            let mut single = vec![0u8; len];
            mul_slice(coeffs[j], &shards[j], &mut single);
            for (a, s) in acc.iter_mut().zip(&single) {
                *a ^= s;
            }
        }
        assert_eq!(combined, acc);
    }
}

#[test]
fn matrix_inverse_round_trip() {
    // Random matrices over GF(2^8) are invertible with probability
    // ~prod(1 - 256^-i) > 0.99; singular draws exercise the rank branch.
    for case in 0..CASES {
        let mut r = case_rng("matrix-inverse", case);
        let n = in_range(&mut r, 1, 7);
        let mut m = Matrix::zero(n, n);
        for row in 0..n {
            for col in 0..n {
                m.set(row, col, byte(&mut r));
            }
        }
        if let Some(inv) = m.invert() {
            assert_eq!(m.mul(&inv), Matrix::identity(n));
            assert_eq!(inv.mul(&m), Matrix::identity(n));
            assert_eq!(m.rank(), n);
        } else {
            assert!(m.rank() < n);
        }
    }
}

#[test]
fn matrix_multiplication_is_associative() {
    for case in 0..CASES {
        let mut r = case_rng("matrix-assoc", case);
        let mut mk = |rows: usize, cols: usize| {
            let mut m = Matrix::zero(rows, cols);
            for i in 0..rows {
                for j in 0..cols {
                    m.set(i, j, byte(&mut r));
                }
            }
            m
        };
        let a = mk(3, 4);
        let b = mk(4, 2);
        let c = mk(2, 5);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }
}
