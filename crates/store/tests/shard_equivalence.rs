//! Seeded property test for the epoch scheduler: over random Zipf
//! workloads with a random mid-trace rack kill, every `(shards, threads)`
//! combination must reproduce the serial reference path exactly — the
//! JSONL op log byte for byte, and the per-phase p50/p99/p999 histograms
//! value for value. This is the contract that lets `shards=` be a pure
//! speed knob.

use mlec_runner::{SeedStream, SplitMix64};
use mlec_store::{run_store_bench, BenchSpec, KillSpec};
use std::path::PathBuf;

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mlec-store-tests")
        .join(format!("shard-equivalence-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Draw a randomized benchmark spec: trace shape, Zipf skew, op mix, and
/// a kill point anywhere in the first two-thirds of the trace.
fn random_spec(rng: &mut SplitMix64) -> BenchSpec {
    let ops = 1_200 + rng.next_u64() % 1_800;
    let mut spec = BenchSpec::small(ops);
    spec.load.objects = 64 + rng.next_u64() % 192;
    spec.load.zipf_s = 0.5 + (rng.next_u64() % 100) as f64 / 100.0;
    spec.load.put_pct = 5 + (rng.next_u64() % 20) as u32;
    spec.load.delete_pct = (rng.next_u64() % 10) as u32;
    spec.seed = rng.next_u64();
    spec.batch = 256 + (rng.next_u64() % 1024) as usize;
    spec.verify_every = 8;
    spec.kill = Some(KillSpec {
        at_op: rng.next_u64() % (ops * 2 / 3),
        racks: 1,
        disks: (rng.next_u64() % 3) as u32,
    });
    spec
}

#[test]
fn sharded_apply_reproduces_the_serial_path_exactly() {
    let dir = scratch();
    let cases = SeedStream::new(0xec0c, "store/shard-equivalence");
    for case in 0..6u64 {
        let mut rng = SplitMix64::new(cases.trial_seed(case));
        let base = random_spec(&mut rng);

        // Serial reference: shards = 0.
        let serial_log = dir.join(format!("case{case}-serial.jsonl"));
        let mut serial_spec = base.clone();
        serial_spec.shards = 0;
        serial_spec.threads = 1;
        serial_spec.oplog = Some(serial_log.clone());
        let serial = run_store_bench(&serial_spec).unwrap();
        let serial_bytes = std::fs::read(&serial_log).unwrap();
        assert_eq!(serial.oplog_records, base.load.ops);
        assert!(!serial.phases.is_empty());

        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 4] {
                let log = dir.join(format!("case{case}-s{shards}-t{threads}.jsonl"));
                let mut spec = base.clone();
                spec.shards = shards;
                spec.threads = threads;
                spec.oplog = Some(log.clone());
                let report = run_store_bench(&spec).unwrap();

                assert_eq!(
                    std::fs::read(&log).unwrap(),
                    serial_bytes,
                    "case {case}: op log diverged at shards={shards} threads={threads}"
                );
                // Identical per-phase latency distributions, not just logs.
                assert_eq!(
                    report.phases, serial.phases,
                    "case {case}: phase histograms diverged at shards={shards} threads={threads}"
                );
                assert_eq!(
                    report, serial,
                    "case {case}: report diverged at shards={shards} threads={threads}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
