//! Seeded property tests: after ANY tolerable combination of disk/rack
//! kills, `get` returns bytes identical to the original `put` payload.
//!
//! "Tolerable" follows the code's algebra: a stripe survives when every
//! row is locally recoverable (≤ `p_l` chunks lost in the row) except for
//! at most `p_n` rows that may be lost outright. The generator below
//! draws random kill sets *by construction* inside that envelope —
//! whole-rack kills (≤ `p_n` racks) plus per-row disk kills (≤ `p_l`
//! each) — so every case must decode exactly.

use mlec_runner::{SeedStream, SplitMix64};
use mlec_store::{payload_for, MemBackend, MlecStore, StoreConfig};

fn fresh_store() -> MlecStore<MemBackend> {
    MlecStore::new(StoreConfig::small_test(), |_| Ok(MemBackend::new())).unwrap()
}

fn load_objects(store: &mut MlecStore<MemBackend>, pay: &SeedStream, n: u64) {
    let plen = store.config().payload_bytes();
    for obj in 0..n {
        let payload = payload_for(pay, obj, 0, plen);
        store.put(obj, &payload, obj * 1_000).unwrap();
    }
}

#[test]
fn get_survives_any_tolerable_kill_combination() {
    let pay = SeedStream::new(7, "durability/payload");
    let kills = SeedStream::new(7, "durability/kills");
    let objects = 12u64;

    for case in 0..40u64 {
        let mut store = fresh_store();
        load_objects(&mut store, &pay, objects);
        let cfg = *store.config();
        let geometry = cfg.geometry;
        let mut rng = SplitMix64::new(kills.trial_seed(case));

        // Tolerable by construction: at most p_n whole racks...
        let whole_racks = (rng.next_u64() % u64::from(cfg.code.pn + 1)) as u32;
        let first_rack = rng.next_u32() % (geometry.racks - whole_racks + 1);
        for rack in first_rack..first_rack + whole_racks {
            let disks: Vec<u32> = geometry.disks_in_rack(rack).collect();
            store.kill_disks(&disks, 100_000);
        }
        // ...plus scattered disks in the *other* racks, at most p_l per
        // rack (a row never spans racks, so ≤ p_l disk losses per rack
        // keep every surviving row locally recoverable).
        for rack in 0..geometry.racks {
            if (first_rack..first_rack + whole_racks).contains(&rack) {
                continue;
            }
            let k = (rng.next_u64() % u64::from(cfg.code.pl + 1)) as usize;
            let mut disks: Vec<u32> = geometry.disks_in_rack(rack).collect();
            for i in 0..k {
                let j = i + (rng.next_u64() as usize) % (disks.len() - i);
                disks.swap(i, j);
            }
            store.kill_disks(&disks[..k], 100_000);
        }

        // Every object must read back bit-exactly, degraded or not.
        let plen = cfg.payload_bytes();
        for obj in 0..objects {
            let got = store
                .get(obj, 200_000)
                .unwrap_or_else(|e| panic!("case {case}, object {obj}: {e}"));
            assert_eq!(
                got.payload,
                payload_for(&pay, obj, 0, plen),
                "case {case}, object {obj} (degraded={})",
                got.degraded
            );
        }

        // And the rebuild heals everything the codec can reach.
        store.pump_repairs(u64::MAX);
        assert_eq!(
            store.repair().unrecoverable_stripes,
            0,
            "case {case}: tolerable damage must never be unrecoverable"
        );
        assert_eq!(store.lost_chunks(), 0, "case {case}");
        for obj in 0..objects {
            let got = store.get(obj, 10_000_000).unwrap();
            assert_eq!(got.payload, payload_for(&pay, obj, 0, plen));
            assert!(!got.degraded, "case {case}: object {obj} not healed");
        }
    }
}

#[test]
fn per_row_overload_is_still_recoverable_within_network_tolerance() {
    // Kill p_l + 1 disks in one rack: rows there lose local
    // recoverability only if all lost disks hit the same row — either
    // way the network level (p_n = 1 lost row) must absorb it.
    let pay = SeedStream::new(11, "durability/overload");
    let mut store = fresh_store();
    load_objects(&mut store, &pay, 8);
    let cfg = *store.config();
    let kill_count = (cfg.code.pl + 1) as usize;
    let disks: Vec<u32> = cfg.geometry.disks_in_rack(0).take(kill_count).collect();
    store.kill_disks(&disks, 50_000);
    let plen = cfg.payload_bytes();
    for obj in 0..8u64 {
        let got = store.get(obj, 100_000).unwrap();
        assert_eq!(got.payload, payload_for(&pay, obj, 0, plen), "object {obj}");
    }
    store.pump_repairs(u64::MAX);
    assert_eq!(store.lost_chunks(), 0);
}
