//! The headline determinism guarantee: the JSONL op log is bit-identical
//! across thread counts and apply-shard counts — and across chunk
//! backends, since latency is virtual time, never wall time.

use mlec_store::{run_store_bench, BackendChoice, BenchSpec, KillSpec};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mlec-store-tests")
        .join(format!("determinism-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec_with_kill(ops: u64) -> BenchSpec {
    let mut spec = BenchSpec::small(ops);
    spec.kill = Some(KillSpec {
        at_op: ops / 3,
        racks: 1,
        disks: 0,
    });
    spec
}

#[test]
fn oplog_is_bit_identical_across_thread_counts() {
    let dir = scratch("threads");
    let mut logs = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut spec = spec_with_kill(3_000);
        spec.threads = threads;
        let path = dir.join(format!("t{threads}.jsonl"));
        spec.oplog = Some(path.clone());
        let report = run_store_bench(&spec).unwrap();
        assert_eq!(report.oplog_records, 3_000);
        assert!(report.degraded_reads > 0);
        logs.push(std::fs::read(&path).unwrap());
    }
    assert!(!logs[0].is_empty());
    assert_eq!(logs[0], logs[1], "1 vs 2 threads");
    assert_eq!(logs[0], logs[2], "1 vs 8 threads");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oplog_is_bit_identical_across_shard_counts() {
    let dir = scratch("shards");
    let mut logs = Vec::new();
    for shards in [0usize, 1, 4] {
        let mut spec = spec_with_kill(3_000);
        spec.shards = shards;
        let path = dir.join(format!("s{shards}.jsonl"));
        spec.oplog = Some(path.clone());
        let report = run_store_bench(&spec).unwrap();
        assert_eq!(report.oplog_records, 3_000);
        assert!(report.degraded_reads > 0);
        logs.push(std::fs::read(&path).unwrap());
    }
    assert!(!logs[0].is_empty());
    assert_eq!(logs[0], logs[1], "serial vs shards=1");
    assert_eq!(logs[0], logs[2], "serial vs shards=4");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oplog_is_bit_identical_across_backends() {
    let dir = scratch("backends");
    let mem_log = dir.join("mem.jsonl");
    let file_log = dir.join("file.jsonl");

    let mut spec = spec_with_kill(1_200);
    spec.oplog = Some(mem_log.clone());
    let mem_report = run_store_bench(&spec).unwrap();

    let mut spec = spec_with_kill(1_200);
    spec.backend = BackendChoice::File(dir.join("chunks"));
    spec.oplog = Some(file_log.clone());
    let file_report = run_store_bench(&spec).unwrap();

    assert_eq!(
        std::fs::read(&mem_log).unwrap(),
        std::fs::read(&file_log).unwrap(),
        "virtual latencies must not depend on the backend"
    );
    // The full reports agree except for wall-clock (absent here anyway).
    assert_eq!(mem_report, file_report);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rebuild_phase_tails_exceed_steady_state() {
    // The experiment's headline effect at test scale: p99 during rebuild
    // is strictly worse than steady state, while every degraded read
    // still verified (run_store_bench fails on any byte mismatch).
    let mut spec = spec_with_kill(6_000);
    spec.verify_every = 1; // verify every single get
    let report = run_store_bench(&spec).unwrap();
    let steady = report.phase("steady").expect("steady phase present");
    let rebuild = report.phase("rebuild").expect("rebuild phase present");
    assert!(rebuild.count > 0 && steady.count > 0);
    assert!(
        rebuild.p99_us > steady.p99_us,
        "rebuild p99 {} must exceed steady p99 {}",
        rebuild.p99_us,
        steady.p99_us
    );
    assert_eq!(report.failed_gets, 0);
    assert_eq!(report.unrecoverable_stripes, 0);
    assert!(report.rebuild_done_us.is_some());
}
