//! A bounded, fully deterministic LRU chunk cache.
//!
//! Recency is tracked with a monotonically increasing logical tick (one per
//! access), not wall time, so eviction order is a pure function of the
//! access sequence — a requirement for bit-identical op logs. Two `BTreeMap`s
//! implement the classic LRU structure: `entries` maps keys to
//! `(tick, bytes)` and `order` maps ticks back to keys; the least recently
//! used entry is always `order`'s first key.

use crate::backend::ChunkKey;
use std::collections::BTreeMap;

/// Deterministic bounded LRU of chunk payloads.
#[derive(Debug)]
pub struct ChunkCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<ChunkKey, (u64, Vec<u8>)>,
    order: BTreeMap<u64, ChunkKey>,
    hits: u64,
    misses: u64,
    accesses: u64,
}

impl ChunkCache {
    /// Cache holding at most `capacity` chunks (0 disables caching).
    pub fn new(capacity: usize) -> ChunkCache {
        ChunkCache {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
            accesses: 0,
        }
    }

    /// Look up a chunk, refreshing its recency on hit. A single B-tree
    /// descent: the hit path updates the entry through the same `get_mut`
    /// borrow that found it (the recency maps are disjoint fields, so the
    /// borrows don't conflict).
    pub fn get(&mut self, key: ChunkKey) -> Option<&[u8]> {
        self.accesses += 1;
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        let Some(entry) = self.entries.get_mut(&key) else {
            self.misses += 1;
            return None;
        };
        self.hits += 1;
        self.tick += 1;
        let old_tick = entry.0;
        entry.0 = self.tick;
        self.order.remove(&old_tick);
        self.order.insert(self.tick, key);
        Some(&entry.1)
    }

    /// Insert (or refresh) a chunk, evicting the least recently used entry
    /// when over capacity.
    pub fn insert(&mut self, key: ChunkKey, data: &[u8]) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some((old_tick, bytes)) = self.entries.get_mut(&key) {
            let old = *old_tick;
            *old_tick = tick;
            bytes.clear();
            bytes.extend_from_slice(data);
            self.order.remove(&old);
            self.order.insert(tick, key);
            return;
        }
        self.entries.insert(key, (tick, data.to_vec()));
        self.order.insert(tick, key);
        if self.entries.len() > self.capacity {
            // PANICS: over-capacity implies at least one entry, so the LRU order map is non-empty.
            let (&lru_tick, &lru_key) = self.order.iter().next().expect("non-empty over capacity");
            self.order.remove(&lru_tick);
            self.entries.remove(&lru_key);
        }
    }

    /// Drop a chunk (overwrite, delete, or failure invalidation).
    pub fn invalidate(&mut self, key: ChunkKey) {
        if let Some((tick, _)) = self.entries.remove(&key) {
            self.order.remove(&tick);
        }
    }

    /// Cached chunk count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Total lookups since construction; always `hits + misses`.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ChunkCache::new(2);
        c.insert(1, b"a");
        c.insert(2, b"b");
        assert_eq!(c.get(1), Some(b"a".as_slice())); // 1 now most recent
        c.insert(3, b"c"); // evicts 2
        assert!(c.get(2).is_none());
        assert_eq!(c.get(1), Some(b"a".as_slice()));
        assert_eq!(c.get(3), Some(b"c".as_slice()));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_refreshes_existing_entries() {
        let mut c = ChunkCache::new(2);
        c.insert(1, b"a");
        c.insert(2, b"b");
        c.insert(1, b"a2"); // refresh, not a new entry
        c.insert(3, b"c"); // evicts 2, not 1
        assert_eq!(c.get(1), Some(b"a2".as_slice()));
        assert!(c.get(2).is_none());
    }

    #[test]
    fn invalidate_and_stats() {
        let mut c = ChunkCache::new(4);
        c.insert(1, b"a");
        assert!(c.get(1).is_some());
        c.invalidate(1);
        assert!(c.get(1).is_none());
        assert_eq!(c.stats(), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ChunkCache::new(0);
        c.insert(1, b"a");
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
        assert_eq!(c.accesses(), 1); // disabled lookups still count
        assert_eq!(c.stats(), (0, 1));
    }

    #[test]
    fn stats_invariant_hits_plus_misses_equals_accesses() {
        // Drive a deterministic mixed workload and check the counter
        // invariant after every single operation — this is the regression
        // test for the old get()'s double-descent path, where a divergence
        // between the hit bookkeeping and the entry update could go unseen.
        let mut c = ChunkCache::new(3);
        for i in 0..500u64 {
            match i % 7 {
                0 | 1 => c.insert(i % 5, &[i as u8]),
                2 => c.invalidate(i % 4),
                _ => {
                    let _ = c.get(i % 6);
                }
            }
            let (hits, misses) = c.stats();
            assert_eq!(hits + misses, c.accesses(), "invariant broken after op {i}");
            assert!(c.len() <= 3);
        }
        let (hits, misses) = c.stats();
        assert!(
            hits > 0 && misses > 0,
            "workload should mix hits and misses"
        );
    }
}
