//! Chunk storage backends: one trait, two implementations.
//!
//! The store addresses chunks by a packed [`ChunkKey`] (network stripe,
//! row, column). [`MemBackend`] keeps everything in a `BTreeMap` (the
//! default for benchmarks: byte movement without filesystem noise);
//! [`FileBackend`] writes one file per chunk under a sharded directory
//! tree, so a store survives process restarts and the same trace can be
//! replayed against real file I/O. Both are deterministic: iteration
//! order is key order everywhere.

use crate::StoreError;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::path::PathBuf;

/// Packed chunk address: `stripe << 12 | row << 6 | col`.
///
/// Rows and columns are 6 bits each (codes up to width 64, far beyond the
/// paper's 20), leaving 52 bits of stripe space.
pub type ChunkKey = u64;

/// Pack a `(stripe, row, col)` chunk coordinate into a [`ChunkKey`].
#[inline]
pub fn chunk_key(stripe: u64, row: u32, col: u32) -> ChunkKey {
    debug_assert!(row < 64 && col < 64, "row/col exceed 6-bit packing");
    (stripe << 12) | (u64::from(row) << 6) | u64::from(col)
}

/// Unpack a [`ChunkKey`] into `(stripe, row, col)`.
#[inline]
pub fn key_parts(key: ChunkKey) -> (u64, u32, u32) {
    (key >> 12, ((key >> 6) & 63) as u32, (key & 63) as u32)
}

/// Durable chunk storage. All methods are infallible for the in-memory
/// backend and surface I/O errors for the file backend.
pub trait ChunkBackend {
    /// Store (or overwrite) a chunk.
    fn write_chunk(&mut self, key: ChunkKey, data: &[u8]) -> Result<(), StoreError>;
    /// Read a chunk into `buf` (cleared first). Returns `false` when the
    /// chunk does not exist.
    fn read_chunk(&mut self, key: ChunkKey, buf: &mut Vec<u8>) -> Result<bool, StoreError>;
    /// Remove a chunk; returns whether it existed.
    fn delete_chunk(&mut self, key: ChunkKey) -> Result<bool, StoreError>;
    /// Does the chunk exist?
    fn contains(&self, key: ChunkKey) -> bool;
    /// Number of stored chunks.
    fn chunk_count(&self) -> usize;
}

/// In-memory backend: a `BTreeMap` of chunk bytes.
#[derive(Debug, Default)]
pub struct MemBackend {
    chunks: BTreeMap<ChunkKey, Vec<u8>>,
}

impl MemBackend {
    /// Empty in-memory backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }
}

impl ChunkBackend for MemBackend {
    fn write_chunk(&mut self, key: ChunkKey, data: &[u8]) -> Result<(), StoreError> {
        match self.chunks.get_mut(&key) {
            // Reuse the allocation on overwrite (the common case for a
            // versioned put): clear + extend instead of a fresh Vec.
            Some(slot) => {
                slot.clear();
                slot.extend_from_slice(data);
            }
            None => {
                self.chunks.insert(key, data.to_vec());
            }
        }
        Ok(())
    }

    fn read_chunk(&mut self, key: ChunkKey, buf: &mut Vec<u8>) -> Result<bool, StoreError> {
        buf.clear();
        match self.chunks.get(&key) {
            Some(data) => {
                buf.extend_from_slice(data);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn delete_chunk(&mut self, key: ChunkKey) -> Result<bool, StoreError> {
        Ok(self.chunks.remove(&key).is_some())
    }

    fn contains(&self, key: ChunkKey) -> bool {
        self.chunks.contains_key(&key)
    }

    fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

/// File-backed backend: one file per chunk under `root`, sharded into 256
/// subdirectories by the low byte of the key so no directory grows
/// unboundedly. A `BTreeSet` index mirrors the on-disk population (rebuilt
/// by scanning on open), keeping `contains` free of syscalls.
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
    present: BTreeSet<ChunkKey>,
    shards_created: BTreeSet<u8>,
}

impl FileBackend {
    /// Open (creating if needed) a chunk directory, scanning any existing
    /// chunk files into the index.
    pub fn open(root: impl Into<PathBuf>) -> Result<FileBackend, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let mut present = BTreeSet::new();
        for shard in std::fs::read_dir(&root)? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(shard.path())? {
                let entry = entry?;
                if let Some(key) = entry
                    .file_name()
                    .to_str()
                    .and_then(|n| n.strip_suffix(".chunk"))
                    .and_then(|n| n.parse::<u64>().ok())
                {
                    present.insert(key);
                }
            }
        }
        let shards_created = present.iter().map(|k| (k & 0xff) as u8).collect();
        Ok(FileBackend {
            root,
            present,
            shards_created,
        })
    }

    fn path_of(&self, key: ChunkKey) -> PathBuf {
        self.root
            .join(format!("{:02x}", key & 0xff))
            .join(format!("{key}.chunk"))
    }
}

impl ChunkBackend for FileBackend {
    fn write_chunk(&mut self, key: ChunkKey, data: &[u8]) -> Result<(), StoreError> {
        let path = self.path_of(key);
        if self.shards_created.insert((key & 0xff) as u8) {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(&path)?;
        f.write_all(data)?;
        self.present.insert(key);
        Ok(())
    }

    fn read_chunk(&mut self, key: ChunkKey, buf: &mut Vec<u8>) -> Result<bool, StoreError> {
        buf.clear();
        if !self.present.contains(&key) {
            return Ok(false);
        }
        let bytes = std::fs::read(self.path_of(key))?;
        buf.extend_from_slice(&bytes);
        Ok(true)
    }

    fn delete_chunk(&mut self, key: ChunkKey) -> Result<bool, StoreError> {
        if !self.present.remove(&key) {
            return Ok(false);
        }
        std::fs::remove_file(self.path_of(key))?;
        Ok(true)
    }

    fn contains(&self, key: ChunkKey) -> bool {
        self.present.contains(&key)
    }

    fn chunk_count(&self) -> usize {
        self.present.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_packing_round_trips() {
        for (stripe, row, col) in [(0u64, 0u32, 0u32), (7, 2, 5), (1 << 40, 63, 63)] {
            assert_eq!(key_parts(chunk_key(stripe, row, col)), (stripe, row, col));
        }
        // Keys order by (stripe, row, col) lexicographically.
        assert!(chunk_key(1, 0, 0) > chunk_key(0, 63, 63));
        assert!(chunk_key(3, 2, 0) > chunk_key(3, 1, 63));
    }

    #[test]
    fn mem_backend_round_trip() {
        let mut b = MemBackend::new();
        let k = chunk_key(5, 1, 2);
        assert!(!b.contains(k));
        b.write_chunk(k, b"hello").unwrap();
        let mut buf = vec![0xff; 3];
        assert!(b.read_chunk(k, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        b.write_chunk(k, b"overwritten").unwrap();
        assert!(b.read_chunk(k, &mut buf).unwrap());
        assert_eq!(buf, b"overwritten");
        assert_eq!(b.chunk_count(), 1);
        assert!(b.delete_chunk(k).unwrap());
        assert!(!b.delete_chunk(k).unwrap());
        assert!(!b.read_chunk(k, &mut buf).unwrap());
        assert!(buf.is_empty());
    }

    #[test]
    fn file_backend_round_trip_and_reopen() {
        let dir = std::env::temp_dir()
            .join("mlec-store-tests")
            .join(format!("backend-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut b = FileBackend::open(&dir).unwrap();
            b.write_chunk(chunk_key(1, 0, 0), b"aaa").unwrap();
            b.write_chunk(chunk_key(2, 1, 3), b"bbb").unwrap();
            assert_eq!(b.chunk_count(), 2);
        }
        // Reopen: the index is rebuilt from the directory scan.
        let mut b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.chunk_count(), 2);
        let mut buf = Vec::new();
        assert!(b.read_chunk(chunk_key(2, 1, 3), &mut buf).unwrap());
        assert_eq!(buf, b"bbb");
        assert!(b.delete_chunk(chunk_key(1, 0, 0)).unwrap());
        assert_eq!(b.chunk_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
