//! The trace-driven benchmark loop: batched prepare, epoch-sharded or
//! serial apply, per-phase tail-latency accounting.
//!
//! Each batch of trace ops is *prepared* in parallel ([`crate::iocore`]):
//! put payloads are synthesized and erasure-encoded, expected read-back
//! bytes regenerated for verification — all pure functions of
//! `(object, version)` via seed streams, so no payload is ever stored
//! twice. The ops are then *applied* against the store, which advances
//! virtual time, pumps the repair scheduler, and yields one latency
//! sample per op.
//!
//! Apply has two interchangeable engines, selected by `shards=`:
//!
//! * `shards == 0` — the monolithic reference path: every op runs in
//!   strict trace order through the store's full-stripe methods. This is
//!   the oracle the equivalence tests compare against.
//! * `shards >= 1` — the epoch scheduler ([`crate::epoch`]): a serial
//!   walk commits version bookkeeping and decomposes each clean op into
//!   per-rack row sub-ops; rack queues apply on `shards` clock-domain
//!   shards and completion times max-join back per op. Kills and any op
//!   during active repair (or a read of a repair-abandoned object) are
//!   barriers: queues flush, then the op runs on the monolithic path.
//!   Op logs and histograms are byte-identical to `shards == 0` for
//!   every `(shards, threads)` combination.
//!
//! Phases split at the failure injection: `steady` before the kill,
//! `rebuild` from the kill until the last queued stripe is rebuilt,
//! `recovered` after — the rebuild-vs-foreground interference measurement
//! is the comparison of the `rebuild` histogram against `steady`.

use crate::backend::{ChunkBackend, FileBackend, MemBackend};
use crate::epoch::{EpochQueues, SubAction, SubOp};
use crate::histogram::LatencyHistogram;
use crate::iocore::{batches, par_map};
use crate::loadgen::{KillSpec, LoadGen, LoadSpec, OpKind, TraceOp};
use crate::oplog::{OpLog, OpRecord};
use crate::store::{MlecStore, StoreConfig};
use crate::StoreError;
use mlec_ec::mlec::MlecStripe;
use mlec_runner::{SeedStream, SplitMix64};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Which chunk backend the benchmark runs against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendChoice {
    /// In-memory chunks (default: byte movement without filesystem noise).
    Mem,
    /// One directory per rack of one-file-per-chunk storage, under the
    /// given root.
    File(PathBuf),
}

/// Full benchmark specification.
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// Store deployment and environment.
    pub store: StoreConfig,
    /// Workload shape.
    pub load: LoadSpec,
    /// Optional mid-trace failure injection.
    pub kill: Option<KillSpec>,
    /// Prepare-phase threads (never affects results, only speed).
    pub threads: usize,
    /// Apply-phase rack shards: 0 for the monolithic serial reference
    /// path, `n >= 1` for the epoch scheduler with `n` clock-domain
    /// shards (never affects results, only speed).
    pub shards: usize,
    /// Ops prepared per batch.
    pub batch: usize,
    /// Verify read-back bytes on every op whose index is a multiple of
    /// this (0 disables inline verification; the final sweep always runs).
    pub verify_every: u64,
    /// Root seed for trace, payload, and placement derivation.
    pub seed: u64,
    /// Chunk backend.
    pub backend: BackendChoice,
    /// Optional JSONL op-log path.
    pub oplog: Option<PathBuf>,
    /// Optional external trace to replay instead of synthesizing.
    pub trace_text: Option<String>,
    /// Measure wall-clock replay throughput (reporting only; never part
    /// of deterministic artifacts).
    pub timing: bool,
}

impl BenchSpec {
    /// A small deterministic benchmark of `ops` operations.
    pub fn small(ops: u64) -> BenchSpec {
        BenchSpec {
            store: StoreConfig::small_test(),
            load: LoadSpec {
                ops,
                objects: 256,
                zipf_s: 1.0,
                put_pct: 10,
                delete_pct: 0,
                ops_per_sec: 50_000,
            },
            kill: None,
            threads: 1,
            shards: 0,
            batch: 1024,
            verify_every: 16,
            seed: 42,
            backend: BackendChoice::Mem,
            oplog: None,
            trace_text: None,
            timing: false,
        }
    }
}

/// Latency summary of one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSummary {
    /// `steady`, `rebuild`, or `recovered`.
    pub phase: &'static str,
    /// Ops completed in the phase.
    pub count: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: u64,
    /// 99th percentile latency, µs.
    pub p99_us: u64,
    /// 99.9th percentile latency, µs.
    pub p999_us: u64,
    /// Worst latency, µs.
    pub max_us: u64,
}

/// Everything a benchmark run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreBenchReport {
    /// Trace ops replayed.
    pub ops: u64,
    /// Puts applied.
    pub puts: u64,
    /// Gets applied (including misses).
    pub gets: u64,
    /// Deletes applied (including misses).
    pub deletes: u64,
    /// Gets/deletes of objects that did not exist at that point.
    pub misses: u64,
    /// Reads that decoded instead of reading directly.
    pub degraded_reads: u64,
    /// Reads that exceeded the code's tolerance.
    pub failed_gets: u64,
    /// Inline read-back verifications that passed.
    pub verified_inline: u64,
    /// Final-sweep verifications that passed.
    pub verified_final: u64,
    /// Per-phase latency summaries, in `steady`/`rebuild`/`recovered` order.
    pub phases: Vec<PhaseSummary>,
    /// Virtual time of the failure injection, if any.
    pub kill_time_us: Option<u64>,
    /// Chunks destroyed by the injection.
    pub lost_chunks: u64,
    /// Virtual time the rebuild finished, if damage was repaired.
    pub rebuild_done_us: Option<u64>,
    /// Stripes rebuilt.
    pub repaired_stripes: u64,
    /// Queued stripes that needed no work (overwritten or deleted).
    pub skipped_stripes: u64,
    /// Stripes beyond tolerance.
    pub unrecoverable_stripes: u64,
    /// Chunks repaired by local decode.
    pub repaired_local_chunks: u64,
    /// Chunks repaired over the network.
    pub repaired_network_chunks: u64,
    /// Chunk-cache hit rate over the run.
    pub cache_hit_rate: f64,
    /// Foreground `(ios, bytes)` through the bandwidth arbiter.
    pub foreground_ios: u64,
    /// Foreground bytes moved.
    pub foreground_bytes: u64,
    /// Repair I/Os through the arbiter.
    pub repair_ios: u64,
    /// Repair bytes moved.
    pub repair_bytes: u64,
    /// Records written to the op log (0 when not requested).
    pub oplog_records: u64,
    /// Wall-clock replay duration when `timing` was requested — reporting
    /// only, deliberately absent from deterministic comparisons.
    pub wall_secs: Option<f64>,
}

impl StoreBenchReport {
    /// The summary of `phase`, if any ops completed in it.
    pub fn phase(&self, name: &str) -> Option<&PhaseSummary> {
        self.phases.iter().find(|p| p.phase == name)
    }
}

/// The object payload for `(obj, version)` — a pure function, so
/// verification regenerates expected bytes instead of storing them.
pub fn payload_for(stream: &SeedStream, obj: u64, version: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(stream.derive(&[obj, version]));
    let mut out = Vec::with_capacity(len);
    while out.len() + 8 <= len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    while out.len() < len {
        out.push(rng.next_u64() as u8);
    }
    out
}

/// One op with its serially-assigned context, ready for parallel prepare.
struct PrepIn {
    op: TraceOp,
    /// Version a put will be assigned (predicted serially).
    put_version: Option<u64>,
    /// Version to verify a get against, when sampled for verification.
    verify_version: Option<u64>,
}

/// The pure prepare result for one op.
struct Prep {
    op: TraceOp,
    stripe: Option<MlecStripe>,
    expected: Option<Vec<u8>>,
}

/// What one applied op measured; stitched into histograms and the op log
/// in trace order regardless of which engine produced it.
#[derive(Debug, Clone, Copy)]
struct Outcome {
    latency_us: u64,
    degraded: bool,
    chunks_read: u64,
    phase: &'static str,
}

/// Op counters shared by both apply engines.
#[derive(Default)]
struct Tally {
    puts: u64,
    gets: u64,
    deletes: u64,
    misses: u64,
    failed_gets: u64,
    verified_inline: u64,
}

/// The phase an op at `at_us` completes in, given the kill time and the
/// current rebuild completion time.
fn phase_of(kill_time_us: Option<u64>, done_at: Option<u64>, at_us: u64) -> &'static str {
    match kill_time_us {
        None => "steady",
        Some(_) => match done_at {
            Some(done) if done <= at_us => "recovered",
            _ => "rebuild",
        },
    }
}

/// Run a store benchmark to completion.
pub fn run_store_bench(spec: &BenchSpec) -> Result<StoreBenchReport, StoreError> {
    spec.load.validate()?;
    match &spec.backend {
        BackendChoice::Mem => {
            let store = MlecStore::new(spec.store, |_| Ok(MemBackend::new()))?;
            run_inner(store, spec)
        }
        BackendChoice::File(dir) => {
            let store = MlecStore::new(spec.store, |rack| {
                FileBackend::open(dir.join(format!("rack{rack:03}")))
            })?;
            run_inner(store, spec)
        }
    }
}

/// Apply one op on the monolithic path: pump repairs to its arrival time,
/// then run it in full against the store. Used for every op when
/// `shards == 0`, and for barrier ops under the epoch scheduler.
fn apply_serial_op<B: ChunkBackend>(
    store: &mut MlecStore<B>,
    prep: &Prep,
    kill_time_us: Option<u64>,
    overhead: u64,
    tally: &mut Tally,
) -> Result<Outcome, StoreError> {
    let op = prep.op;
    store.pump_repairs(op.at_us);
    let phase = phase_of(kill_time_us, store.repair().done_at(), op.at_us);
    let (latency_us, degraded, chunks_read) = match op.kind {
        OpKind::Put => {
            tally.puts += 1;
            // PANICS: the prepare pass builds a stripe for every Put before replay starts.
            let stripe = prep.stripe.as_ref().expect("puts are prepared");
            let res = store.put_encoded(op.object, stripe, op.at_us)?;
            (res.latency_us, false, 0)
        }
        OpKind::Get => {
            tally.gets += 1;
            match store.get(op.object, op.at_us) {
                Ok(got) => {
                    if let Some(expected) = &prep.expected {
                        if &got.payload != expected {
                            return Err(StoreError::CorruptPayload(op.object));
                        }
                        tally.verified_inline += 1;
                    }
                    (got.latency_us, got.degraded, got.chunks_read)
                }
                Err(StoreError::UnknownObject(_)) => {
                    tally.misses += 1;
                    (overhead, false, 0)
                }
                Err(StoreError::Unrecoverable { .. }) => {
                    tally.failed_gets += 1;
                    (overhead, true, 0)
                }
                Err(other) => return Err(other),
            }
        }
        OpKind::Delete => {
            tally.deletes += 1;
            match store.delete(op.object, op.at_us) {
                Ok(latency) => (latency, false, 0),
                Err(StoreError::UnknownObject(_)) => {
                    tally.misses += 1;
                    (overhead, false, 0)
                }
                Err(other) => return Err(other),
            }
        }
    };
    Ok(Outcome {
        latency_us,
        degraded,
        chunks_read,
        phase,
    })
}

/// Flush the open epoch: apply the rack queues on the shards, max-join
/// the per-row completion times, and resolve every pending op's outcome.
/// The phase is computed at flush time from frozen kill/rebuild state —
/// repairs only advance on the serial path, so it is the same value the
/// serial engine would have computed op by op.
#[allow(clippy::too_many_arguments)]
fn flush_epoch<'a, B: ChunkBackend + Send>(
    store: &mut MlecStore<B>,
    queues: &mut EpochQueues<'a>,
    pending: &mut Vec<usize>,
    ends: &mut Vec<u64>,
    prepared: &'a [Prep],
    outcomes: &mut [Option<Outcome>],
    shards: usize,
    kill_time_us: Option<u64>,
    tally: &mut Tally,
    pending_verified: &mut u64,
) -> Result<(), StoreError> {
    if pending.is_empty() {
        return Ok(());
    }
    store.apply_epoch(queues, shards, ends)?;
    let done_at = store.repair().done_at();
    for (i, &slot) in pending.iter().enumerate() {
        // PANICS: `pending` holds slot indices handed out by this replay loop; both vectors are sized to the trace.
        let op = prepared[slot].op;
        // PANICS: `slot < outcomes.len()` (sized to the trace up front).
        outcomes[slot] = Some(Outcome {
            // PANICS: `apply_epoch` returns one end time per pending sub-op batch, index-aligned with `pending`.
            latency_us: ends[i] - op.at_us,
            degraded: false,
            chunks_read: 0,
            phase: phase_of(kill_time_us, done_at, op.at_us),
        });
    }
    tally.verified_inline += *pending_verified;
    *pending_verified = 0;
    pending.clear();
    ends.clear();
    queues.clear();
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn run_inner<B: ChunkBackend + Send>(
    mut store: MlecStore<B>,
    spec: &BenchSpec,
) -> Result<StoreBenchReport, StoreError> {
    let trace_stream = SeedStream::new(spec.seed, "store/trace");
    let pay_stream = SeedStream::new(spec.seed, "store/payload");
    let gen = match &spec.trace_text {
        Some(text) => LoadGen::replay(text, &spec.load)?,
        None => LoadGen::synthetic(spec.load, trace_stream)?,
    };
    let plen = store.config().payload_bytes();
    let chunk_bytes = store.config().chunk_bytes;
    // Cloned so prepare threads can encode without touching the store.
    let codec = store.codec().clone();
    let encode = |payload: &[u8]| -> MlecStripe {
        let chunks: Vec<&[u8]> = payload.chunks(chunk_bytes).collect();
        codec
            .encode(&chunks)
            // PANICS: the chunk split uses the codec's exact payload geometry; encode cannot reject it.
            .expect("payload length is exact by construction")
    };
    let stopwatch = spec.timing.then(crate::stopwatch::Stopwatch::start);

    // Pre-load every object at version 0 (uncharged: data that existed
    // before the measured window).
    let preload_batch = 512u64;
    for (lo, hi) in batches(spec.load.objects, preload_batch) {
        let objs: Vec<u64> = (lo..hi).collect();
        let encoded: Vec<(u64, MlecStripe)> = par_map(&objs, spec.threads, |&obj| {
            let payload = payload_for(&pay_stream, obj, 0, plen);
            (obj, encode(&payload))
        });
        for (obj, stripe) in &encoded {
            store.preload_encoded(*obj, stripe)?;
        }
    }

    let mut oplog = match &spec.oplog {
        Some(path) => Some(OpLog::create(path)?),
        None => None,
    };
    let mut hists: BTreeMap<&'static str, LatencyHistogram> = BTreeMap::new();
    let mut expected_versions: BTreeMap<u64, u64> =
        (0..spec.load.objects).map(|o| (o, 0)).collect();
    let overhead = store.config().overhead_us;
    let code = store.config().code;
    let (nw, kn) = (code.network_width(), code.kn);
    let row_bytes = code.kl as usize * chunk_bytes;
    let racks = store.arbiter().racks();

    let mut tally = Tally::default();
    let mut kill_time_us: Option<u64> = None;
    let mut lost_chunks = 0u64;
    // While true, every op runs serially: from the kill until the damage
    // is fully repaired or abandoned, op outcomes depend on repair
    // interleaving and must follow strict trace order.
    let mut serial_window = false;

    for (lo, hi) in batches(gen.len(), spec.batch as u64) {
        // Serial pre-pass: predict versions so prepare can be pure.
        let mut inputs: Vec<PrepIn> = Vec::with_capacity((hi - lo) as usize);
        for index in lo..hi {
            let op = gen.op(index);
            let (put_version, verify_version) = match op.kind {
                OpKind::Put => {
                    let v = expected_versions.get(&op.object).map_or(0, |v| v + 1);
                    expected_versions.insert(op.object, v);
                    (Some(v), None)
                }
                OpKind::Get => {
                    let live = expected_versions.get(&op.object).copied();
                    let sampled = spec.verify_every > 0 && index % spec.verify_every == 0;
                    (None, if sampled { live } else { None })
                }
                OpKind::Delete => {
                    expected_versions.remove(&op.object);
                    (None, None)
                }
            };
            inputs.push(PrepIn {
                op,
                put_version,
                verify_version,
            });
        }

        // Parallel prepare: pure payload synthesis + encode.
        let prepared: Vec<Prep> = par_map(&inputs, spec.threads, |inp| {
            let stripe = inp.put_version.map(|v| {
                let payload = payload_for(&pay_stream, inp.op.object, v, plen);
                encode(&payload)
            });
            let expected = inp
                .verify_version
                .map(|v| payload_for(&pay_stream, inp.op.object, v, plen));
            Prep {
                op: inp.op,
                stripe,
                expected,
            }
        });

        // Apply: the serial walk routes clean ops into per-rack epoch
        // queues and runs barriers (and everything, when shards == 0)
        // monolithically in trace order.
        let n = prepared.len();
        let mut outcomes: Vec<Option<Outcome>> = vec![None; n];
        let mut queues = EpochQueues::new(racks);
        let mut pending: Vec<usize> = Vec::new();
        let mut ends: Vec<u64> = Vec::new();
        let mut pending_verified = 0u64;

        for (slot, prep) in prepared.iter().enumerate() {
            let op = prep.op;
            // A kill is a forced epoch boundary: flush so the disk index
            // reflects every earlier write, then inject.
            if kill_time_us.is_none() {
                if let Some(kill) = &spec.kill {
                    if kill.at_op == op.index {
                        flush_epoch(
                            &mut store,
                            &mut queues,
                            &mut pending,
                            &mut ends,
                            &prepared,
                            &mut outcomes,
                            spec.shards,
                            kill_time_us,
                            &mut tally,
                            &mut pending_verified,
                        )?;
                        lost_chunks = inject_kill(&mut store, kill, op.at_us);
                        kill_time_us = Some(op.at_us);
                        serial_window = true;
                    }
                }
            }
            let barrier = spec.shards == 0
                || serial_window
                || (matches!(op.kind, OpKind::Get) && store.is_dead(op.object));
            if barrier {
                flush_epoch(
                    &mut store,
                    &mut queues,
                    &mut pending,
                    &mut ends,
                    &prepared,
                    &mut outcomes,
                    spec.shards,
                    kill_time_us,
                    &mut tally,
                    &mut pending_verified,
                )?;
                // PANICS: `slot` enumerates `prepared`, and `outcomes` is sized to match.
                outcomes[slot] = Some(apply_serial_op(
                    &mut store,
                    prep,
                    kill_time_us,
                    overhead,
                    &mut tally,
                )?);
                if serial_window && store.repair().pending() == 0 && store.lost_chunks() == 0 {
                    serial_window = false;
                }
                continue;
            }

            // Rack-decomposable: commit bookkeeping now (the serial walk
            // is the single source of routing truth), queue row sub-ops.
            let start = op.at_us + overhead;
            match op.kind {
                OpKind::Put => {
                    tally.puts += 1;
                    store.commit_put_version(op.object);
                    // PANICS: the prepare pass builds a stripe for every Put before replay starts.
                    let stripe = prep.stripe.as_ref().expect("puts are prepared");
                    for row in 0..nw {
                        let rack = store.rack_of_row(op.object, row) as usize;
                        // PANICS: `rack_of_row` maps into `0..racks`, the `by_rack` queue count.
                        queues.by_rack[rack].push(SubOp {
                            slot: pending.len() as u32,
                            obj: op.object,
                            row,
                            start,
                            // PANICS: `row < nw`, the stripe's row count.
                            action: SubAction::Put(&stripe[row as usize]),
                        });
                    }
                }
                OpKind::Get => {
                    tally.gets += 1;
                    if !store.exists(op.object) {
                        tally.misses += 1;
                        // PANICS: `slot` enumerates `prepared`, and `outcomes` is sized to match.
                        outcomes[slot] = Some(Outcome {
                            latency_us: overhead,
                            degraded: false,
                            chunks_read: 0,
                            phase: phase_of(kill_time_us, store.repair().done_at(), op.at_us),
                        });
                        continue;
                    }
                    if prep.expected.is_some() {
                        pending_verified += 1;
                    }
                    for row in 0..kn {
                        let rack = store.rack_of_row(op.object, row) as usize;
                        let verify = prep
                            .expected
                            .as_ref()
                            // PANICS: the expected buffer spans `nw * row_bytes` by construction, covering every row slice.
                            .map(|e| &e[row as usize * row_bytes..(row as usize + 1) * row_bytes]);
                        // PANICS: `rack_of_row` maps into `0..racks`, the `by_rack` queue count.
                        queues.by_rack[rack].push(SubOp {
                            slot: pending.len() as u32,
                            obj: op.object,
                            row,
                            start,
                            action: SubAction::Get { verify },
                        });
                    }
                }
                OpKind::Delete => {
                    tally.deletes += 1;
                    if !store.commit_delete(op.object) {
                        tally.misses += 1;
                        // PANICS: `slot` enumerates `prepared`, and `outcomes` is sized to match.
                        outcomes[slot] = Some(Outcome {
                            latency_us: overhead,
                            degraded: false,
                            chunks_read: 0,
                            phase: phase_of(kill_time_us, store.repair().done_at(), op.at_us),
                        });
                        continue;
                    }
                    for row in 0..nw {
                        let rack = store.rack_of_row(op.object, row) as usize;
                        // PANICS: `rack_of_row` maps into `0..racks`, the `by_rack` queue count.
                        queues.by_rack[rack].push(SubOp {
                            slot: pending.len() as u32,
                            obj: op.object,
                            row,
                            start,
                            action: SubAction::Delete,
                        });
                    }
                }
            }
            ends.push(start);
            pending.push(slot);
        }
        flush_epoch(
            &mut store,
            &mut queues,
            &mut pending,
            &mut ends,
            &prepared,
            &mut outcomes,
            spec.shards,
            kill_time_us,
            &mut tally,
            &mut pending_verified,
        )?;

        // Stitch: record histograms and the op log in trace-index order.
        let mut records: Vec<OpRecord> = Vec::with_capacity(if oplog.is_some() { n } else { 0 });
        for (slot, prep) in prepared.iter().enumerate() {
            // PANICS: every trace slot was filled exactly once by the replay loop above.
            let oc = outcomes[slot].take().expect("every op resolves an outcome");
            hists.entry(oc.phase).or_default().record(oc.latency_us);
            if oplog.is_some() {
                records.push(OpRecord {
                    op: prep.op.index,
                    at_us: prep.op.at_us,
                    kind: prep.op.kind,
                    object: prep.op.object,
                    latency_us: oc.latency_us,
                    degraded: oc.degraded,
                    chunks_read: oc.chunks_read,
                    phase: oc.phase,
                });
            }
        }
        if let Some(log) = &mut oplog {
            log.log_batch(&records, spec.threads)?;
        }
    }

    // Drain outstanding rebuilds, then verify every live object end to end.
    store.pump_repairs(u64::MAX);
    let end_of_time = gen
        .len()
        .saturating_mul(1_000_000 / spec.load.ops_per_sec.max(1))
        .max(store.repair().done_at().unwrap_or(0))
        + 1;
    let mut verified_final = 0u64;
    let live: Vec<(u64, u64)> = expected_versions.iter().map(|(&o, &v)| (o, v)).collect();
    for (obj, version) in live {
        let got = store.get(obj, end_of_time)?;
        if got.payload != payload_for(&pay_stream, obj, version, plen) {
            return Err(StoreError::CorruptPayload(obj));
        }
        verified_final += 1;
    }

    let oplog_records = match oplog {
        Some(log) => log.finish()?,
        None => 0,
    };
    let mut phases = Vec::new();
    for name in ["steady", "rebuild", "recovered"] {
        if let Some(h) = hists.get(name) {
            phases.push(PhaseSummary {
                phase: name,
                count: h.count(),
                mean_us: h.mean(),
                p50_us: h.quantile(0.5),
                p99_us: h.quantile(0.99),
                p999_us: h.quantile(0.999),
                max_us: h.max(),
            });
        }
    }
    let (foreground_ios, foreground_bytes) = store.arbiter().foreground_totals();
    let (repair_ios, repair_bytes) = store.arbiter().repair_totals();
    let (repaired_local_chunks, repaired_network_chunks) = store.repaired_chunks();
    Ok(StoreBenchReport {
        ops: gen.len(),
        puts: tally.puts,
        gets: tally.gets,
        deletes: tally.deletes,
        misses: tally.misses,
        degraded_reads: store.degraded_reads(),
        failed_gets: tally.failed_gets,
        verified_inline: tally.verified_inline,
        verified_final,
        phases,
        kill_time_us,
        lost_chunks,
        rebuild_done_us: store.repair().done_at().filter(|_| kill_time_us.is_some()),
        repaired_stripes: store.repair().repaired_stripes,
        skipped_stripes: store.repair().skipped_stripes,
        unrecoverable_stripes: store.repair().unrecoverable_stripes,
        repaired_local_chunks,
        repaired_network_chunks,
        cache_hit_rate: store.cache_hit_rate(),
        foreground_ios,
        foreground_bytes,
        repair_ios,
        repair_bytes,
        oplog_records,
        wall_secs: stopwatch.map(|sw| sw.elapsed_secs()),
    })
}

/// Apply a [`KillSpec`]: whole racks first, then leading disks of the
/// first surviving rack. Returns total chunks lost.
fn inject_kill<B: ChunkBackend>(store: &mut MlecStore<B>, kill: &KillSpec, at: u64) -> u64 {
    let geometry = store.config().geometry;
    let mut lost = store.kill_racks(kill.racks, at);
    if kill.disks > 0 {
        let rack = kill.racks.min(geometry.racks.saturating_sub(1));
        let disks: Vec<u32> = geometry
            .disks_in_rack(rack)
            .take(kill.disks as usize)
            .collect();
        lost += store.kill_disks(&disks, at);
    }
    lost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_run_completes_and_verifies() {
        let spec = BenchSpec::small(2_000);
        let report = run_store_bench(&spec).unwrap();
        assert_eq!(report.ops, 2_000);
        assert_eq!(report.puts + report.gets + report.deletes, 2_000);
        assert_eq!(report.misses, 0);
        assert_eq!(report.degraded_reads, 0);
        assert_eq!(report.failed_gets, 0);
        assert!(report.verified_inline > 0);
        assert_eq!(report.verified_final, 256);
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].phase, "steady");
        assert_eq!(report.phases[0].count, 2_000);
        assert!(report.phases[0].p50_us > 0);
        assert!(report.kill_time_us.is_none());
        assert!(report.rebuild_done_us.is_none());
        assert!(report.cache_hit_rate > 0.0, "Zipf reuse must hit the cache");
    }

    #[test]
    fn kill_produces_degraded_reads_and_a_rebuild() {
        let mut spec = BenchSpec::small(4_000);
        spec.kill = Some(KillSpec {
            at_op: 1_000,
            racks: 1,
            disks: 0,
        });
        let report = run_store_bench(&spec).unwrap();
        assert!(report.lost_chunks > 0);
        assert!(report.degraded_reads > 0, "reads must hit damaged stripes");
        assert_eq!(report.failed_gets, 0, "one rack is within tolerance");
        assert_eq!(report.unrecoverable_stripes, 0);
        assert!(report.rebuild_done_us.is_some(), "rebuild must finish");
        assert!(report.repaired_stripes > 0);
        assert!(report.repaired_local_chunks + report.repaired_network_chunks > 0);
        // All three phases appear and account for every op.
        let total: u64 = report.phases.iter().map(|p| p.count).sum();
        assert_eq!(total, 4_000);
        assert!(report.phase("steady").is_some());
        assert!(report.phase("rebuild").is_some());
        // Every live object still round-trips bit-exactly.
        assert_eq!(report.verified_final, 256);
    }

    #[test]
    fn identical_specs_give_identical_reports() {
        let mut spec = BenchSpec::small(1_500);
        spec.kill = Some(KillSpec {
            at_op: 500,
            racks: 1,
            disks: 0,
        });
        let a = run_store_bench(&spec).unwrap();
        let b = run_store_bench(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let mut spec = BenchSpec::small(1_500);
        spec.kill = Some(KillSpec {
            at_op: 400,
            racks: 1,
            disks: 0,
        });
        spec.threads = 1;
        let single = run_store_bench(&spec).unwrap();
        spec.threads = 8;
        let multi = run_store_bench(&spec).unwrap();
        assert_eq!(single, multi);
    }

    #[test]
    fn shard_count_never_changes_the_report() {
        let mut spec = BenchSpec::small(2_500);
        spec.kill = Some(KillSpec {
            at_op: 700,
            racks: 1,
            disks: 0,
        });
        spec.shards = 0;
        let serial = run_store_bench(&spec).unwrap();
        for shards in [1usize, 2, 4, 8] {
            spec.shards = shards;
            let sharded = run_store_bench(&spec).unwrap();
            assert_eq!(serial, sharded, "shards={shards}");
        }
    }

    #[test]
    fn sharded_apply_handles_deletes_and_misses_identically() {
        let mut spec = BenchSpec::small(2_000);
        spec.load.delete_pct = 20;
        spec.shards = 0;
        let serial = run_store_bench(&spec).unwrap();
        assert!(serial.misses > 0, "gets after deletes must miss");
        spec.shards = 4;
        let sharded = run_store_bench(&spec).unwrap();
        assert_eq!(serial, sharded);
    }

    #[test]
    fn replayed_trace_matches_synthetic() {
        let spec = BenchSpec::small(800);
        let stream = SeedStream::new(spec.seed, "store/trace");
        let gen = LoadGen::synthetic(spec.load, stream).unwrap();
        let mut replay_spec = spec.clone();
        replay_spec.trace_text = Some(gen.to_trace_text());
        let a = run_store_bench(&spec).unwrap();
        let b = run_store_bench(&replay_spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn deletes_produce_misses_not_failures() {
        let mut spec = BenchSpec::small(2_000);
        spec.load.delete_pct = 20;
        let report = run_store_bench(&spec).unwrap();
        assert!(report.deletes > 0);
        assert!(report.misses > 0, "gets after deletes must miss");
        assert_eq!(report.failed_gets, 0);
        // Final sweep only covers still-live objects.
        assert!(report.verified_final <= 256);
    }
}
