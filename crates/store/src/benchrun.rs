//! The trace-driven benchmark loop: batched prepare, serial apply,
//! per-phase tail-latency accounting.
//!
//! Each batch of trace ops is *prepared* in parallel ([`crate::iocore`]):
//! put payloads are synthesized and erasure-encoded, expected read-back
//! bytes regenerated for verification — all pure functions of
//! `(object, version)` via seed streams, so no payload is ever stored
//! twice. The ops are then *applied* serially in trace order against the
//! store, which advances virtual time, pumps the repair scheduler, and
//! yields one latency sample per op. Phases split at the failure
//! injection: `steady` before the kill, `rebuild` from the kill until the
//! last queued stripe is rebuilt, `recovered` after — the
//! rebuild-vs-foreground interference measurement is the comparison of
//! the `rebuild` histogram against `steady`.

use crate::backend::{ChunkBackend, FileBackend, MemBackend};
use crate::histogram::LatencyHistogram;
use crate::iocore::{batches, par_map};
use crate::loadgen::{KillSpec, LoadGen, LoadSpec, OpKind, TraceOp};
use crate::oplog::{OpLog, OpRecord};
use crate::store::{MlecStore, StoreConfig};
use crate::StoreError;
use mlec_ec::mlec::MlecStripe;
use mlec_runner::{SeedStream, SplitMix64};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Which chunk backend the benchmark runs against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendChoice {
    /// In-memory chunks (default: byte movement without filesystem noise).
    Mem,
    /// One file per chunk under the given directory.
    File(PathBuf),
}

/// Full benchmark specification.
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// Store deployment and environment.
    pub store: StoreConfig,
    /// Workload shape.
    pub load: LoadSpec,
    /// Optional mid-trace failure injection.
    pub kill: Option<KillSpec>,
    /// Prepare-phase threads (never affects results, only speed).
    pub threads: usize,
    /// Ops prepared per batch.
    pub batch: usize,
    /// Verify read-back bytes on every op whose index is a multiple of
    /// this (0 disables inline verification; the final sweep always runs).
    pub verify_every: u64,
    /// Root seed for trace, payload, and placement derivation.
    pub seed: u64,
    /// Chunk backend.
    pub backend: BackendChoice,
    /// Optional JSONL op-log path.
    pub oplog: Option<PathBuf>,
    /// Optional external trace to replay instead of synthesizing.
    pub trace_text: Option<String>,
    /// Measure wall-clock replay throughput (reporting only; never part
    /// of deterministic artifacts).
    pub timing: bool,
}

impl BenchSpec {
    /// A small deterministic benchmark of `ops` operations.
    pub fn small(ops: u64) -> BenchSpec {
        BenchSpec {
            store: StoreConfig::small_test(),
            load: LoadSpec {
                ops,
                objects: 256,
                zipf_s: 1.0,
                put_pct: 10,
                delete_pct: 0,
                ops_per_sec: 50_000,
            },
            kill: None,
            threads: 1,
            batch: 1024,
            verify_every: 16,
            seed: 42,
            backend: BackendChoice::Mem,
            oplog: None,
            trace_text: None,
            timing: false,
        }
    }
}

/// Latency summary of one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSummary {
    /// `steady`, `rebuild`, or `recovered`.
    pub phase: &'static str,
    /// Ops completed in the phase.
    pub count: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: u64,
    /// 99th percentile latency, µs.
    pub p99_us: u64,
    /// 99.9th percentile latency, µs.
    pub p999_us: u64,
    /// Worst latency, µs.
    pub max_us: u64,
}

/// Everything a benchmark run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreBenchReport {
    /// Trace ops replayed.
    pub ops: u64,
    /// Puts applied.
    pub puts: u64,
    /// Gets applied (including misses).
    pub gets: u64,
    /// Deletes applied (including misses).
    pub deletes: u64,
    /// Gets/deletes of objects that did not exist at that point.
    pub misses: u64,
    /// Reads that decoded instead of reading directly.
    pub degraded_reads: u64,
    /// Reads that exceeded the code's tolerance.
    pub failed_gets: u64,
    /// Inline read-back verifications that passed.
    pub verified_inline: u64,
    /// Final-sweep verifications that passed.
    pub verified_final: u64,
    /// Per-phase latency summaries, in `steady`/`rebuild`/`recovered` order.
    pub phases: Vec<PhaseSummary>,
    /// Virtual time of the failure injection, if any.
    pub kill_time_us: Option<u64>,
    /// Chunks destroyed by the injection.
    pub lost_chunks: u64,
    /// Virtual time the rebuild finished, if damage was repaired.
    pub rebuild_done_us: Option<u64>,
    /// Stripes rebuilt.
    pub repaired_stripes: u64,
    /// Queued stripes that needed no work (overwritten or deleted).
    pub skipped_stripes: u64,
    /// Stripes beyond tolerance.
    pub unrecoverable_stripes: u64,
    /// Chunks repaired by local decode.
    pub repaired_local_chunks: u64,
    /// Chunks repaired over the network.
    pub repaired_network_chunks: u64,
    /// Chunk-cache hit rate over the run.
    pub cache_hit_rate: f64,
    /// Foreground `(ios, bytes)` through the bandwidth arbiter.
    pub foreground_ios: u64,
    /// Foreground bytes moved.
    pub foreground_bytes: u64,
    /// Repair I/Os through the arbiter.
    pub repair_ios: u64,
    /// Repair bytes moved.
    pub repair_bytes: u64,
    /// Records written to the op log (0 when not requested).
    pub oplog_records: u64,
    /// Wall-clock replay duration when `timing` was requested — reporting
    /// only, deliberately absent from deterministic comparisons.
    pub wall_secs: Option<f64>,
}

impl StoreBenchReport {
    /// The summary of `phase`, if any ops completed in it.
    pub fn phase(&self, name: &str) -> Option<&PhaseSummary> {
        self.phases.iter().find(|p| p.phase == name)
    }
}

/// The object payload for `(obj, version)` — a pure function, so
/// verification regenerates expected bytes instead of storing them.
pub fn payload_for(stream: &SeedStream, obj: u64, version: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(stream.derive(&[obj, version]));
    let mut out = Vec::with_capacity(len);
    while out.len() + 8 <= len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    while out.len() < len {
        out.push(rng.next_u64() as u8);
    }
    out
}

/// One op with its serially-assigned context, ready for parallel prepare.
struct PrepIn {
    op: TraceOp,
    /// Version a put will be assigned (predicted serially).
    put_version: Option<u64>,
    /// Version to verify a get against, when sampled for verification.
    verify_version: Option<u64>,
}

/// The pure prepare result for one op.
struct Prep {
    op: TraceOp,
    stripe: Option<MlecStripe>,
    expected: Option<Vec<u8>>,
}

/// Run a store benchmark to completion.
pub fn run_store_bench(spec: &BenchSpec) -> Result<StoreBenchReport, StoreError> {
    spec.load.validate()?;
    match &spec.backend {
        BackendChoice::Mem => {
            let store = MlecStore::new(spec.store, MemBackend::new())?;
            run_inner(store, spec)
        }
        BackendChoice::File(dir) => {
            let store = MlecStore::new(spec.store, FileBackend::open(dir.clone())?)?;
            run_inner(store, spec)
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run_inner<B: ChunkBackend>(
    mut store: MlecStore<B>,
    spec: &BenchSpec,
) -> Result<StoreBenchReport, StoreError> {
    let trace_stream = SeedStream::new(spec.seed, "store/trace");
    let pay_stream = SeedStream::new(spec.seed, "store/payload");
    let gen = match &spec.trace_text {
        Some(text) => LoadGen::replay(text, &spec.load)?,
        None => LoadGen::synthetic(spec.load, trace_stream)?,
    };
    let plen = store.config().payload_bytes();
    let chunk_bytes = store.config().chunk_bytes;
    // Cloned so prepare threads can encode without touching the store.
    let codec = store.codec().clone();
    let encode = |payload: &[u8]| -> MlecStripe {
        let chunks: Vec<&[u8]> = payload.chunks(chunk_bytes).collect();
        codec
            .encode(&chunks)
            .expect("payload length is exact by construction")
    };
    let stopwatch = spec.timing.then(crate::stopwatch::Stopwatch::start);

    // Pre-load every object at version 0 (uncharged: data that existed
    // before the measured window).
    let preload_batch = 512u64;
    for (lo, hi) in batches(spec.load.objects, preload_batch) {
        let objs: Vec<u64> = (lo..hi).collect();
        let encoded: Vec<(u64, MlecStripe)> = par_map(&objs, spec.threads, |&obj| {
            let payload = payload_for(&pay_stream, obj, 0, plen);
            (obj, encode(&payload))
        });
        for (obj, stripe) in &encoded {
            store.preload_encoded(*obj, stripe)?;
        }
    }

    let mut oplog = match &spec.oplog {
        Some(path) => Some(OpLog::create(path)?),
        None => None,
    };
    let mut hists: BTreeMap<&'static str, LatencyHistogram> = BTreeMap::new();
    let mut expected_versions: BTreeMap<u64, u64> =
        (0..spec.load.objects).map(|o| (o, 0)).collect();
    let overhead = store.config().overhead_us;

    let (mut puts, mut gets, mut deletes, mut misses) = (0u64, 0u64, 0u64, 0u64);
    let mut failed_gets = 0u64;
    let mut verified_inline = 0u64;
    let mut kill_time_us: Option<u64> = None;
    let mut lost_chunks = 0u64;

    for (lo, hi) in batches(gen.len(), spec.batch as u64) {
        // Serial pre-pass: predict versions so prepare can be pure.
        let mut inputs: Vec<PrepIn> = Vec::with_capacity((hi - lo) as usize);
        for index in lo..hi {
            let op = gen.op(index);
            let (put_version, verify_version) = match op.kind {
                OpKind::Put => {
                    let v = expected_versions.get(&op.object).map_or(0, |v| v + 1);
                    expected_versions.insert(op.object, v);
                    (Some(v), None)
                }
                OpKind::Get => {
                    let live = expected_versions.get(&op.object).copied();
                    let sampled = spec.verify_every > 0 && index % spec.verify_every == 0;
                    (None, if sampled { live } else { None })
                }
                OpKind::Delete => {
                    expected_versions.remove(&op.object);
                    (None, None)
                }
            };
            inputs.push(PrepIn {
                op,
                put_version,
                verify_version,
            });
        }

        // Parallel prepare: pure payload synthesis + encode.
        let prepared: Vec<Prep> = par_map(&inputs, spec.threads, |inp| {
            let stripe = inp.put_version.map(|v| {
                let payload = payload_for(&pay_stream, inp.op.object, v, plen);
                encode(&payload)
            });
            let expected = inp
                .verify_version
                .map(|v| payload_for(&pay_stream, inp.op.object, v, plen));
            Prep {
                op: inp.op,
                stripe,
                expected,
            }
        });

        // Serial apply, strictly in trace order.
        for prep in &prepared {
            let op = prep.op;
            if kill_time_us.is_none() {
                if let Some(kill) = &spec.kill {
                    if kill.at_op == op.index {
                        lost_chunks = inject_kill(&mut store, kill, op.at_us);
                        kill_time_us = Some(op.at_us);
                    }
                }
            }
            store.pump_repairs(op.at_us);
            let phase: &'static str = match kill_time_us {
                None => "steady",
                Some(_) => match store.repair().done_at() {
                    Some(done) if done <= op.at_us => "recovered",
                    _ => "rebuild",
                },
            };

            let (latency, degraded, chunks_read) = match op.kind {
                OpKind::Put => {
                    puts += 1;
                    let stripe = prep.stripe.as_ref().expect("puts are prepared");
                    let res = store.put_encoded(op.object, stripe, op.at_us)?;
                    (res.latency_us, false, 0)
                }
                OpKind::Get => {
                    gets += 1;
                    match store.get(op.object, op.at_us) {
                        Ok(got) => {
                            if let Some(expected) = &prep.expected {
                                if &got.payload != expected {
                                    return Err(StoreError::CorruptPayload(op.object));
                                }
                                verified_inline += 1;
                            }
                            (got.latency_us, got.degraded, got.chunks_read)
                        }
                        Err(StoreError::UnknownObject(_)) => {
                            misses += 1;
                            (overhead, false, 0)
                        }
                        Err(StoreError::Unrecoverable { .. }) => {
                            failed_gets += 1;
                            (overhead, true, 0)
                        }
                        Err(other) => return Err(other),
                    }
                }
                OpKind::Delete => {
                    deletes += 1;
                    match store.delete(op.object, op.at_us) {
                        Ok(latency) => (latency, false, 0),
                        Err(StoreError::UnknownObject(_)) => {
                            misses += 1;
                            (overhead, false, 0)
                        }
                        Err(other) => return Err(other),
                    }
                }
            };
            hists.entry(phase).or_default().record(latency);
            if let Some(log) = &mut oplog {
                log.log(&OpRecord {
                    op: op.index,
                    at_us: op.at_us,
                    kind: op.kind,
                    object: op.object,
                    latency_us: latency,
                    degraded,
                    chunks_read,
                    phase,
                })?;
            }
        }
    }

    // Drain outstanding rebuilds, then verify every live object end to end.
    store.pump_repairs(u64::MAX);
    let end_of_time = gen
        .len()
        .saturating_mul(1_000_000 / spec.load.ops_per_sec.max(1))
        .max(store.repair().done_at().unwrap_or(0))
        + 1;
    let mut verified_final = 0u64;
    let live: Vec<(u64, u64)> = expected_versions.iter().map(|(&o, &v)| (o, v)).collect();
    for (obj, version) in live {
        let got = store.get(obj, end_of_time)?;
        if got.payload != payload_for(&pay_stream, obj, version, plen) {
            return Err(StoreError::CorruptPayload(obj));
        }
        verified_final += 1;
    }

    let oplog_records = match oplog {
        Some(log) => log.finish()?,
        None => 0,
    };
    let mut phases = Vec::new();
    for name in ["steady", "rebuild", "recovered"] {
        if let Some(h) = hists.get(name) {
            phases.push(PhaseSummary {
                phase: name,
                count: h.count(),
                mean_us: h.mean(),
                p50_us: h.quantile(0.5),
                p99_us: h.quantile(0.99),
                p999_us: h.quantile(0.999),
                max_us: h.max(),
            });
        }
    }
    let (foreground_ios, foreground_bytes) = store.arbiter().foreground_totals();
    let (repair_ios, repair_bytes) = store.arbiter().repair_totals();
    let (repaired_local_chunks, repaired_network_chunks) = store.repaired_chunks();
    Ok(StoreBenchReport {
        ops: gen.len(),
        puts,
        gets,
        deletes,
        misses,
        degraded_reads: store.degraded_reads(),
        failed_gets,
        verified_inline,
        verified_final,
        phases,
        kill_time_us,
        lost_chunks,
        rebuild_done_us: store.repair().done_at().filter(|_| kill_time_us.is_some()),
        repaired_stripes: store.repair().repaired_stripes,
        skipped_stripes: store.repair().skipped_stripes,
        unrecoverable_stripes: store.repair().unrecoverable_stripes,
        repaired_local_chunks,
        repaired_network_chunks,
        cache_hit_rate: store.cache().hit_rate(),
        foreground_ios,
        foreground_bytes,
        repair_ios,
        repair_bytes,
        oplog_records,
        wall_secs: stopwatch.map(|sw| sw.elapsed_secs()),
    })
}

/// Apply a [`KillSpec`]: whole racks first, then leading disks of the
/// first surviving rack. Returns total chunks lost.
fn inject_kill<B: ChunkBackend>(store: &mut MlecStore<B>, kill: &KillSpec, at: u64) -> u64 {
    let geometry = store.config().geometry;
    let mut lost = store.kill_racks(kill.racks, at);
    if kill.disks > 0 {
        let rack = kill.racks.min(geometry.racks.saturating_sub(1));
        let disks: Vec<u32> = geometry
            .disks_in_rack(rack)
            .take(kill.disks as usize)
            .collect();
        lost += store.kill_disks(&disks, at);
    }
    lost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_run_completes_and_verifies() {
        let spec = BenchSpec::small(2_000);
        let report = run_store_bench(&spec).unwrap();
        assert_eq!(report.ops, 2_000);
        assert_eq!(report.puts + report.gets + report.deletes, 2_000);
        assert_eq!(report.misses, 0);
        assert_eq!(report.degraded_reads, 0);
        assert_eq!(report.failed_gets, 0);
        assert!(report.verified_inline > 0);
        assert_eq!(report.verified_final, 256);
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].phase, "steady");
        assert_eq!(report.phases[0].count, 2_000);
        assert!(report.phases[0].p50_us > 0);
        assert!(report.kill_time_us.is_none());
        assert!(report.rebuild_done_us.is_none());
        assert!(report.cache_hit_rate > 0.0, "Zipf reuse must hit the cache");
    }

    #[test]
    fn kill_produces_degraded_reads_and_a_rebuild() {
        let mut spec = BenchSpec::small(4_000);
        spec.kill = Some(KillSpec {
            at_op: 1_000,
            racks: 1,
            disks: 0,
        });
        let report = run_store_bench(&spec).unwrap();
        assert!(report.lost_chunks > 0);
        assert!(report.degraded_reads > 0, "reads must hit damaged stripes");
        assert_eq!(report.failed_gets, 0, "one rack is within tolerance");
        assert_eq!(report.unrecoverable_stripes, 0);
        assert!(report.rebuild_done_us.is_some(), "rebuild must finish");
        assert!(report.repaired_stripes > 0);
        assert!(report.repaired_local_chunks + report.repaired_network_chunks > 0);
        // All three phases appear and account for every op.
        let total: u64 = report.phases.iter().map(|p| p.count).sum();
        assert_eq!(total, 4_000);
        assert!(report.phase("steady").is_some());
        assert!(report.phase("rebuild").is_some());
        // Every live object still round-trips bit-exactly.
        assert_eq!(report.verified_final, 256);
    }

    #[test]
    fn identical_specs_give_identical_reports() {
        let mut spec = BenchSpec::small(1_500);
        spec.kill = Some(KillSpec {
            at_op: 500,
            racks: 1,
            disks: 0,
        });
        let a = run_store_bench(&spec).unwrap();
        let b = run_store_bench(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let mut spec = BenchSpec::small(1_500);
        spec.kill = Some(KillSpec {
            at_op: 400,
            racks: 1,
            disks: 0,
        });
        spec.threads = 1;
        let single = run_store_bench(&spec).unwrap();
        spec.threads = 8;
        let multi = run_store_bench(&spec).unwrap();
        assert_eq!(single, multi);
    }

    #[test]
    fn replayed_trace_matches_synthetic() {
        let spec = BenchSpec::small(800);
        let stream = SeedStream::new(spec.seed, "store/trace");
        let gen = LoadGen::synthetic(spec.load, stream).unwrap();
        let mut replay_spec = spec.clone();
        replay_spec.trace_text = Some(gen.to_trace_text());
        let a = run_store_bench(&spec).unwrap();
        let b = run_store_bench(&replay_spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn deletes_produce_misses_not_failures() {
        let mut spec = BenchSpec::small(2_000);
        spec.load.delete_pct = 20;
        let report = run_store_bench(&spec).unwrap();
        assert!(report.deletes > 0);
        assert!(report.misses > 0, "gets after deletes must miss");
        assert_eq!(report.failed_gets, 0);
        // Final sweep only covers still-live objects.
        assert!(report.verified_final <= 256);
    }
}
