//! The online repair scheduler: detection delay, limited rebuild streams,
//! and duty-cycle pacing.
//!
//! When a failure strikes, every affected network stripe is enqueued with
//! a *ready* time (`kill + detection delay`, the store-scale analogue of
//! the paper's 30-minute detection window). A fixed number of rebuild
//! streams then drain the queue: each stream picks the earliest-ready
//! stripe, occupies shared disk/rack bandwidth for the rebuild (through
//! the same [`crate::arbiter::BandwidthArbiter`] foreground ops use —
//! that contention is the experiment), and must then idle long enough
//! that repair consumes at most the configured fraction of bandwidth
//! (§3: "disk and network traffics are both capped at 20%"). The
//! scheduler only decides *when and which stripe*; the store performs
//! the actual grid rebuild and reports back the I/O span.

use std::collections::BTreeSet;

/// Queue + stream bookkeeping for online rebuilds (virtual time).
#[derive(Debug)]
pub struct RepairScheduler {
    /// Pending stripes, ordered by `(ready_at, stripe)`.
    queue: BTreeSet<(u64, u64)>,
    /// Stripes currently enqueued (dedup guard).
    enqueued: BTreeSet<u64>,
    /// Per-stream next-free virtual time.
    streams: Vec<u64>,
    /// Stripes rebuilt (had lost chunks and reconstructed).
    pub repaired_stripes: u64,
    /// Stripes dequeued with nothing left to do (overwritten or deleted).
    pub skipped_stripes: u64,
    /// Stripes whose loss exceeded the code's tolerance.
    pub unrecoverable_stripes: u64,
    last_end: u64,
    done_at: Option<u64>,
}

impl RepairScheduler {
    /// Scheduler with `streams` concurrent rebuild streams.
    pub fn new(streams: u32) -> RepairScheduler {
        RepairScheduler {
            queue: BTreeSet::new(),
            enqueued: BTreeSet::new(),
            streams: vec![0; streams.max(1) as usize],
            repaired_stripes: 0,
            skipped_stripes: 0,
            unrecoverable_stripes: 0,
            last_end: 0,
            done_at: None,
        }
    }

    /// Queue `stripe` for rebuild once detection completes at `ready_at`.
    pub fn enqueue(&mut self, stripe: u64, ready_at: u64) {
        if self.enqueued.insert(stripe) {
            self.queue.insert((ready_at, stripe));
            // New damage: a previously recorded completion no longer holds.
            self.done_at = None;
        }
    }

    /// Claim the next rebuild startable by `deadline`: picks the idlest
    /// stream and the earliest-ready stripe. Returns
    /// `(stream, start, stripe)`, with the stripe removed from the queue —
    /// the caller must follow up with [`RepairScheduler::complete`].
    pub fn pop_ready(&mut self, deadline: u64) -> Option<(usize, u64, u64)> {
        let (stream, &free) = self
            .streams
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))?;
        let &(ready_at, stripe) = self.queue.iter().next()?;
        let start = free.max(ready_at);
        if start > deadline {
            return None;
        }
        self.queue.remove(&(ready_at, stripe));
        self.enqueued.remove(&stripe);
        Some((stream, start, stripe))
    }

    /// Record a rebuild that occupied `[.., end]` on `stream`; the stream
    /// then idles for `pacing_gap` to honor the repair bandwidth cap.
    pub fn complete(&mut self, stream: usize, end: u64, pacing_gap: u64) {
        // PANICS: `stream` was handed out by this planner from `0..streams.len()`.
        self.streams[stream] = end + pacing_gap;
        self.last_end = self.last_end.max(end);
        if self.queue.is_empty() {
            self.done_at = Some(self.last_end);
        }
    }

    /// Stripes still waiting for a stream.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Virtual time the last rebuild finished, once the queue is drained
    /// (`None` while damage is outstanding or nothing was ever enqueued).
    pub fn done_at(&self) -> Option<u64> {
        self.done_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_delay_holds_work_back() {
        let mut s = RepairScheduler::new(2);
        s.enqueue(5, 1_000);
        // Before the ready time nothing is startable.
        assert!(s.pop_ready(999).is_none());
        let (stream, start, stripe) = s.pop_ready(1_000).unwrap();
        assert_eq!((start, stripe), (1_000, 5));
        s.complete(stream, 1_500, 2_000);
        assert_eq!(s.done_at(), Some(1_500));
    }

    #[test]
    fn pacing_gap_delays_the_stream_not_the_clock() {
        let mut s = RepairScheduler::new(1);
        s.enqueue(1, 0);
        s.enqueue(2, 0);
        let (st, start, _) = s.pop_ready(u64::MAX).unwrap();
        assert_eq!(start, 0);
        s.complete(st, 100, 400); // stream free again at 500
        assert!(s.pop_ready(499).is_none());
        let (_, start, stripe) = s.pop_ready(500).unwrap();
        assert_eq!((start, stripe), (500, 2));
    }

    #[test]
    fn streams_drain_in_parallel() {
        let mut s = RepairScheduler::new(2);
        for stripe in 0..4u64 {
            s.enqueue(stripe, 0);
        }
        // Two claims both start at 0 (one per stream).
        let (a, start_a, _) = s.pop_ready(0).unwrap();
        s.complete(a, 50, 0);
        let (b, start_b, _) = s.pop_ready(0).unwrap();
        assert_eq!((start_a, start_b), (0, 0));
        assert_ne!(a, b);
        s.complete(b, 60, 0);
        assert_eq!(s.pending(), 2);
        assert!(s.done_at().is_none(), "queue not drained yet");
    }

    #[test]
    fn duplicate_enqueue_is_ignored_and_new_damage_clears_done() {
        let mut s = RepairScheduler::new(1);
        s.enqueue(9, 0);
        s.enqueue(9, 10);
        assert_eq!(s.pending(), 1);
        let (st, _, _) = s.pop_ready(0).unwrap();
        s.complete(st, 20, 0);
        assert_eq!(s.done_at(), Some(20));
        s.enqueue(11, 30);
        assert!(s.done_at().is_none(), "new damage reopens the rebuild");
    }
}
