//! Deterministic trace-driven load generation.
//!
//! The generator is a *pure function of the op index*: op `i`'s arrival
//! time, kind, and target object are all derived from
//! [`mlec_runner::SeedStream`] words keyed by `i`, never from mutable
//! generator state. That is what lets the batched I/O core synthesize ops
//! on any number of threads in any order and still produce the same trace
//! — and what makes a trace trivially resumable from any index.
//!
//! Object popularity follows a Zipf(`s`) distribution over `objects` ids
//! (drawn by binary search over precomputed cumulative weights), the
//! classic skew for datacenter object traffic; the put/delete mix is a
//! percentage split of the uniform kind draw. Traces can also be replayed
//! from a text file (one `put|get|del <object>` per line), in which case
//! arrival times are re-spaced at the configured rate.

use crate::StoreError;
use mlec_runner::SeedStream;

/// What a trace op does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Write (or overwrite) a whole object.
    Put,
    /// Read a whole object.
    Get,
    /// Remove an object.
    Delete,
}

/// One operation of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Index in the trace.
    pub index: u64,
    /// Virtual arrival time, µs from trace start.
    pub at_us: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Target object id in `[0, objects)`.
    pub object: u64,
}

/// Shape of the synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Total trace operations.
    pub ops: u64,
    /// Distinct objects (all pre-loaded before the trace runs).
    pub objects: u64,
    /// Zipf exponent of object popularity (0 = uniform).
    pub zipf_s: f64,
    /// Percent of ops that are puts.
    pub put_pct: u32,
    /// Percent of ops that are deletes (the rest are gets).
    pub delete_pct: u32,
    /// Virtual arrival rate, ops per second.
    pub ops_per_sec: u64,
}

impl LoadSpec {
    /// Validate the percentages and rates.
    pub fn validate(&self) -> Result<(), StoreError> {
        if self.put_pct + self.delete_pct > 100 {
            return Err(StoreError::BadSpec(format!(
                "put_pct {} + delete_pct {} exceeds 100",
                self.put_pct, self.delete_pct
            )));
        }
        if self.objects == 0 {
            return Err(StoreError::BadSpec("objects must be > 0".into()));
        }
        if self.ops_per_sec == 0 {
            return Err(StoreError::BadSpec("ops_per_sec must be > 0".into()));
        }
        Ok(())
    }
}

/// A realized trace source: synthetic (index-pure) or replayed.
#[derive(Debug, Clone)]
pub enum LoadGen {
    /// Ops derived on demand from the spec and a seed stream.
    Synthetic {
        /// Workload shape.
        spec: LoadSpec,
        /// Seed stream the per-op draws derive from.
        stream: SeedStream,
        /// Normalized cumulative Zipf weights over object ids.
        cum_weights: Vec<f64>,
    },
    /// Ops parsed from an external trace file.
    Replay(Vec<TraceOp>),
}

impl LoadGen {
    /// Synthetic generator for `spec`, drawing from `stream`.
    pub fn synthetic(spec: LoadSpec, stream: SeedStream) -> Result<LoadGen, StoreError> {
        spec.validate()?;
        let mut cum_weights = Vec::with_capacity(spec.objects as usize);
        let mut total = 0.0f64;
        for i in 0..spec.objects {
            total += (i as f64 + 1.0).powf(-spec.zipf_s);
            cum_weights.push(total);
        }
        for w in &mut cum_weights {
            *w /= total;
        }
        Ok(LoadGen::Synthetic {
            spec,
            stream,
            cum_weights,
        })
    }

    /// Parse a trace file: one `put|get|del <object>` per line; `#` starts
    /// a comment; blank lines are skipped. Arrival times are spaced at
    /// `ops_per_sec`; objects must be below `objects` so the pre-load
    /// covers them.
    pub fn replay(text: &str, spec: &LoadSpec) -> Result<LoadGen, StoreError> {
        spec.validate()?;
        let mut ops = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let verb = parts.next().unwrap_or("");
            let kind = match verb {
                "put" => OpKind::Put,
                "get" => OpKind::Get,
                "del" | "delete" => OpKind::Delete,
                other => {
                    return Err(StoreError::BadSpec(format!(
                        "trace line {}: unknown op `{other}`",
                        lineno + 1
                    )))
                }
            };
            let object = parts
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| {
                    StoreError::BadSpec(format!(
                        "trace line {}: missing/invalid object id",
                        lineno + 1
                    ))
                })?;
            if object >= spec.objects {
                return Err(StoreError::BadSpec(format!(
                    "trace line {}: object {object} >= objects {}",
                    lineno + 1,
                    spec.objects
                )));
            }
            let index = ops.len() as u64;
            ops.push(TraceOp {
                index,
                at_us: index * 1_000_000 / spec.ops_per_sec,
                kind,
                object,
            });
        }
        Ok(LoadGen::Replay(ops))
    }

    /// Number of ops in the trace.
    pub fn len(&self) -> u64 {
        match self {
            LoadGen::Synthetic { spec, .. } => spec.ops,
            LoadGen::Replay(ops) => ops.len() as u64,
        }
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Op `index` of the trace — a pure function, callable from any thread
    /// in any order.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    pub fn op(&self, index: u64) -> TraceOp {
        match self {
            LoadGen::Synthetic {
                spec,
                stream,
                cum_weights,
            } => {
                assert!(index < spec.ops, "op index out of range");
                let kind_draw = stream.derive(&[index, 0]) % 100;
                let kind = if kind_draw < u64::from(spec.put_pct) {
                    OpKind::Put
                } else if kind_draw < u64::from(spec.put_pct + spec.delete_pct) {
                    OpKind::Delete
                } else {
                    OpKind::Get
                };
                let u = to_unit(stream.derive(&[index, 1]));
                let object = cum_weights.partition_point(|&w| w < u) as u64;
                TraceOp {
                    index,
                    at_us: index * 1_000_000 / spec.ops_per_sec,
                    kind,
                    object: object.min(spec.objects - 1),
                }
            }
            // PANICS: replay traces are generated with `index < ops.len()` (the spec's op count).
            LoadGen::Replay(ops) => ops[index as usize],
        }
    }

    /// Render the whole trace in the replay file format.
    pub fn to_trace_text(&self) -> String {
        let mut out = String::new();
        for i in 0..self.len() {
            let op = self.op(i);
            let verb = match op.kind {
                OpKind::Put => "put",
                OpKind::Get => "get",
                OpKind::Delete => "del",
            };
            out.push_str(verb);
            out.push(' ');
            out.push_str(&op.object.to_string());
            out.push('\n');
        }
        out
    }
}

/// Mid-trace failure injection: at op `at_op`, kill the first `racks`
/// racks and (separately) `disks` leading disks of the first surviving
/// rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// Trace index at which the failure strikes (before the op runs).
    pub at_op: u64,
    /// Whole racks to kill (ids `0..racks`).
    pub racks: u32,
    /// Additional single disks to kill in the first surviving rack.
    pub disks: u32,
}

/// Map a uniform `u64` to `[0, 1)` with 53-bit precision.
fn to_unit(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LoadSpec {
        LoadSpec {
            ops: 10_000,
            objects: 64,
            zipf_s: 1.0,
            put_pct: 10,
            delete_pct: 0,
            ops_per_sec: 50_000,
        }
    }

    fn gen() -> LoadGen {
        LoadGen::synthetic(spec(), SeedStream::new(42, "store/trace")).unwrap()
    }

    #[test]
    fn ops_are_pure_functions_of_index() {
        let g = gen();
        let forward: Vec<TraceOp> = (0..g.len()).map(|i| g.op(i)).collect();
        // Any order, same values.
        for &i in &[9_999u64, 0, 5_000, 1] {
            assert_eq!(g.op(i), forward[i as usize]);
        }
        // Arrival times are evenly spaced at the configured rate.
        assert_eq!(forward[0].at_us, 0);
        assert_eq!(forward[1].at_us, 20);
        assert_eq!(forward[5_000].at_us, 100_000);
    }

    #[test]
    fn zipf_skews_toward_low_ids() {
        let g = gen();
        let mut counts = vec![0u64; 64];
        for i in 0..g.len() {
            counts[g.op(i).object as usize] += 1;
        }
        // Object 0 must dominate the tail object under s=1.0 skew.
        assert!(counts[0] > 10 * counts[63].max(1), "counts: {counts:?}");
        // Every object id stays in range (implicitly, via the index).
        assert_eq!(counts.iter().sum::<u64>(), g.len());
    }

    #[test]
    fn put_ratio_close_to_requested() {
        let g = gen();
        let puts = (0..g.len())
            .filter(|&i| g.op(i).kind == OpKind::Put)
            .count() as f64;
        let frac = puts / g.len() as f64;
        assert!((frac - 0.10).abs() < 0.02, "put fraction {frac}");
    }

    #[test]
    fn replay_round_trips_through_text() {
        let g = gen();
        let text = g.to_trace_text();
        let r = LoadGen::replay(&text, &spec()).unwrap();
        assert_eq!(r.len(), g.len());
        for i in 0..g.len() {
            assert_eq!(r.op(i), g.op(i));
        }
    }

    #[test]
    fn replay_rejects_garbage() {
        let s = spec();
        assert!(LoadGen::replay("frob 3\n", &s).is_err());
        assert!(LoadGen::replay("get notanumber\n", &s).is_err());
        assert!(LoadGen::replay("get 9999\n", &s).is_err());
        // Comments and blanks are fine.
        let ok = LoadGen::replay("# header\n\nget 3 # hot object\n", &s).unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok.op(0).object, 3);
    }

    #[test]
    fn bad_specs_are_rejected() {
        let mut s = spec();
        s.put_pct = 80;
        s.delete_pct = 30;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.objects = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.ops_per_sec = 0;
        assert!(s.validate().is_err());
    }
}
