//! JSONL per-op logging with a byte-stable format.
//!
//! One line per trace op, fields in a fixed order, integers only — so two
//! replays of the same trace produce *bit-identical* files regardless of
//! thread count or backend. The determinism tests compare these files
//! byte for byte; any formatting drift (field order, float rendering,
//! locale) would be a correctness bug, which is why records go through
//! this one serializer instead of ad-hoc `format!` calls.

use crate::loadgen::OpKind;
use crate::StoreError;
use std::io::{BufWriter, Write};
use std::path::Path;

/// One logged operation (all times virtual microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Trace index of the op.
    pub op: u64,
    /// Virtual arrival time.
    pub at_us: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Object id.
    pub object: u64,
    /// Virtual completion latency.
    pub latency_us: u64,
    /// Did the read take a degraded path?
    pub degraded: bool,
    /// Extra surviving chunks fetched to decode (0 for healthy ops).
    pub chunks_read: u64,
    /// Phase the op completed in: `steady`, `rebuild`, or `recovered`.
    pub phase: &'static str,
}

impl OpRecord {
    /// Render the record as its canonical JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let kind = match self.kind {
            OpKind::Put => "put",
            OpKind::Get => "get",
            OpKind::Delete => "del",
        };
        format!(
            "{{\"op\":{},\"t_us\":{},\"kind\":\"{}\",\"obj\":{},\"lat_us\":{},\
             \"degraded\":{},\"chunks\":{},\"phase\":\"{}\"}}",
            self.op,
            self.at_us,
            kind,
            self.object,
            self.latency_us,
            self.degraded,
            self.chunks_read,
            self.phase
        )
    }
}

/// Buffered JSONL op-log writer.
#[derive(Debug)]
pub struct OpLog {
    out: BufWriter<std::fs::File>,
    records: u64,
}

impl OpLog {
    /// Create (truncating) an op log at `path`.
    pub fn create(path: &Path) -> Result<OpLog, StoreError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(OpLog {
            out: BufWriter::new(std::fs::File::create(path)?),
            records: 0,
        })
    }

    /// Append one record as a JSON line.
    pub fn log(&mut self, rec: &OpRecord) -> Result<(), StoreError> {
        self.out.write_all(rec.to_json_line().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.records += 1;
        Ok(())
    }

    /// Render a batch of records on up to `threads` threads and append
    /// the lines in record order. The epoch scheduler collects one batch
    /// of per-shard outcomes, stitches them back in trace-index order,
    /// and hands them here — the bytes are exactly what `threads` calls
    /// to [`OpLog::log`] would have produced, so the serial and sharded
    /// paths stay file-identical.
    pub fn log_batch(&mut self, records: &[OpRecord], threads: usize) -> Result<(), StoreError> {
        let lines = crate::iocore::par_map(records, threads, OpRecord::to_json_line);
        for line in &lines {
            self.out.write_all(line.as_bytes())?;
            self.out.write_all(b"\n")?;
        }
        self.records += records.len() as u64;
        Ok(())
    }

    /// Flush and return how many records were written.
    pub fn finish(mut self) -> Result<u64, StoreError> {
        self.out.flush()?;
        Ok(self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_line_is_stable() {
        let rec = OpRecord {
            op: 7,
            at_us: 140,
            kind: OpKind::Get,
            object: 42,
            latency_us: 475,
            degraded: true,
            chunks_read: 3,
            phase: "rebuild",
        };
        assert_eq!(
            rec.to_json_line(),
            "{\"op\":7,\"t_us\":140,\"kind\":\"get\",\"obj\":42,\"lat_us\":475,\
             \"degraded\":true,\"chunks\":3,\"phase\":\"rebuild\"}"
        );
    }

    #[test]
    fn log_batch_bytes_match_per_record_logging() {
        let dir = std::env::temp_dir()
            .join("mlec-store-tests")
            .join(format!("oplog-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let records: Vec<OpRecord> = (0..64u64)
            .map(|op| OpRecord {
                op,
                at_us: op * 17,
                kind: if op % 3 == 0 {
                    OpKind::Put
                } else {
                    OpKind::Get
                },
                object: op % 5,
                latency_us: 100 + op,
                degraded: op % 7 == 0,
                chunks_read: op % 4,
                phase: if op < 32 { "steady" } else { "rebuild" },
            })
            .collect();
        let serial_path = dir.join("serial.jsonl");
        let mut serial = OpLog::create(&serial_path).unwrap();
        for rec in &records {
            serial.log(rec).unwrap();
        }
        assert_eq!(serial.finish().unwrap(), 64);
        for threads in [1usize, 4] {
            let path = dir.join(format!("batch-{threads}.jsonl"));
            let mut log = OpLog::create(&path).unwrap();
            log.log_batch(&records[..40], threads).unwrap();
            log.log_batch(&records[40..], threads).unwrap();
            assert_eq!(log.finish().unwrap(), 64);
            assert_eq!(
                std::fs::read(&path).unwrap(),
                std::fs::read(&serial_path).unwrap(),
                "threads={threads}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_round_trip_counts_records() {
        let dir = std::env::temp_dir()
            .join("mlec-store-tests")
            .join(format!("oplog-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ops.jsonl");
        let mut log = OpLog::create(&path).unwrap();
        for op in 0..3u64 {
            log.log(&OpRecord {
                op,
                at_us: op * 20,
                kind: OpKind::Put,
                object: op,
                latency_us: 100,
                degraded: false,
                chunks_read: 0,
                phase: "steady",
            })
            .unwrap();
        }
        assert_eq!(log.finish().unwrap(), 3);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.ends_with('\n'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
