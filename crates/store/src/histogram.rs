//! Streaming latency histograms with bounded error, HDR-style.
//!
//! Values (microseconds) land in buckets that are exact below 64 µs and
//! logarithmic above, with 32 sub-buckets per octave — ≤ ~1.6% relative
//! quantile error, constant memory, O(1) insert, and deterministic
//! mergeable state. This is what lets a million-op run keep p50/p99/p999
//! per phase without storing per-op samples.

/// Sub-buckets per octave above the exact range.
const SUBS: u64 = 32;
/// Values below `2 * SUBS` get exact (1 µs) buckets.
const EXACT: u64 = 2 * SUBS;
/// Total buckets: exact range + 58 octaves × 32 subs covers all of `u64`.
const BUCKETS: usize = (EXACT + 58 * SUBS) as usize;

/// Streaming log-bucketed histogram of microsecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= 6 here
    let sub = (v >> (msb - 5)) & (SUBS - 1);
    ((msb - 5) * SUBS + EXACT - SUBS + sub) as usize
}

/// Midpoint representative of bucket `i`: the center of the bucket's value
/// range, so quantile estimates are unbiased within a bucket (worst-case
/// relative error `width/2 / lower_edge <= 1/64` in the log range). Exact
/// buckets represent themselves.
fn representative(i: usize) -> u64 {
    let i = i as u64;
    if i < EXACT {
        return i;
    }
    let octave = (i - EXACT) / SUBS; // 0-based above the exact range
    let sub = (i - EXACT) % SUBS;
    let base = 1u64 << (octave + 6);
    let width = base / SUBS;
    base + sub * width + width / 2
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one latency (µs).
    pub fn record(&mut self, us: u64) {
        // PANICS: `bucket_of` saturates into the fixed bucket array.
        self.counts[bucket_of(us)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(us);
        self.max = self.max.max(us);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency (µs); 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0 < q <= 1`) as the representative of the bucket
    /// holding the `ceil(q * n)`-th smallest sample; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        if rank == self.total {
            return self.max; // the top sample is tracked exactly
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return representative(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_64us() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.quantile(0.5), 31);
        assert_eq!(h.quantile(1.0), 63);
    }

    #[test]
    fn bounded_relative_error_above() {
        // Every bucket representative is within ~1/32 of the true value.
        for v in [100u64, 999, 12_345, 1_000_000, 123_456_789] {
            let r = representative(bucket_of(v)) as f64;
            let rel = (r - v as f64).abs() / v as f64;
            assert!(rel < 0.04, "v={v} repr={r} rel={rel}");
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 990 samples at ~1ms, 10 at ~100ms.
        for _ in 0..990 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        assert!((p50 as f64 - 1_000.0).abs() / 1_000.0 < 0.05, "p50={p50}");
        assert!((p99 as f64 - 1_000.0).abs() / 1_000.0 < 0.05, "p99={p99}");
        assert!(
            (p999 as f64 - 100_000.0).abs() / 100_000.0 < 0.05,
            "p999={p999}"
        );
        assert_eq!(h.max(), 100_000);
    }

    #[test]
    fn merge_matches_pooled_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut pooled = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 37 % 50_000;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            pooled.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), pooled.count());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), pooled.quantile(q));
        }
        assert!((a.mean() - pooled.mean()).abs() < 1e-9);
    }

    #[test]
    fn representative_round_trips_every_bucket() {
        // Exhaustive over all 1920 buckets: the representative must land
        // back in its own bucket (midpoint, not the upper edge — the upper
        // edge of the top octave would overflow u64), the bucket edges
        // derived from first principles must map to the bucket, and the
        // midpoint's relative error against either edge stays <= 1/32.
        for i in 0..BUCKETS {
            let rep = representative(i);
            assert_eq!(bucket_of(rep), i, "representative({i})={rep} escapes");

            let (lower, upper) = if (i as u64) < EXACT {
                (i as u64, i as u64)
            } else {
                let octave = (i as u64 - EXACT) / SUBS;
                let sub = (i as u64 - EXACT) % SUBS;
                let base = 1u64 << (octave + 6);
                let width = base / SUBS;
                let lower = base + sub * width;
                (lower, lower + (width - 1))
            };
            assert_eq!(bucket_of(lower), i, "lower edge {lower} of bucket {i}");
            assert_eq!(bucket_of(upper), i, "upper edge {upper} of bucket {i}");
            assert!(
                lower <= rep && rep <= upper,
                "rep {rep} outside [{lower}, {upper}]"
            );

            // Relative error bound at both edges (1/32 claimed, 1/64 actual).
            if lower > 0 {
                let err_low = (rep - lower) as f64 / lower as f64;
                let err_high = (upper - rep) as f64 / upper as f64;
                assert!(err_low <= 1.0 / 32.0, "bucket {i}: err_low={err_low}");
                assert!(err_high <= 1.0 / 32.0, "bucket {i}: err_high={err_high}");
            }
        }
        // Top bucket covers up to u64::MAX exactly, with no arithmetic
        // overflow anywhere in the sweep above.
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn representative_is_strictly_monotonic() {
        let mut prev = representative(0);
        for i in 1..BUCKETS {
            let r = representative(i);
            assert!(r > prev, "representative not increasing at bucket {i}");
            prev = r;
        }
    }

    #[test]
    fn giant_values_do_not_overflow_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
