//! The batched I/O core: deterministic parallelism for the serving path.
//!
//! The store's state machine (backend, cache, bandwidth clocks, repair
//! queue) must be mutated strictly in op order or virtual time stops being
//! a pure function of the trace. What *can* run on many threads is the
//! pure per-op work: synthesizing put payloads, erasure-encoding stripes,
//! and verifying read-back bytes. This module provides that split:
//! [`par_map`] fans a batch of items over a scoped thread pool in
//! contiguous slices and reassembles results in input order, so the output
//! is identical for any thread count — including 1 — which is exactly the
//! property the op-log determinism test pins down.

/// Map `f` over `items` on up to `threads` scoped threads, preserving
/// input order exactly.
///
/// Items are split into contiguous slices (one per thread); each thread
/// writes its results straight into the pre-sized output slots for its
/// slice, so there is no per-thread intermediate `Vec` and no re-extend
/// pass. `f` must be pure for the thread-count invariance to mean
/// anything — nothing enforces that here beyond the `Fn(&T)` signature.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(items.len());
    let slots = out.spare_capacity_mut();
    // Pair each input slice with the output slot slice it will fill; the
    // split is positional, so slot i always receives f(items[i]) no matter
    // which thread computes it.
    let mut rest = slots;
    std::thread::scope(|scope| {
        for slice in items.chunks(chunk) {
            let (head, tail) = rest.split_at_mut(slice.len());
            rest = tail;
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in slice.iter().zip(head.iter_mut()) {
                    slot.write(f(item));
                }
            });
        }
        // The scope joins every thread (propagating panics) before we
        // assert initialization below.
    });
    // SAFETY: the slices handed to the threads partition slots 0..len
    // exactly (chunks() covers items exactly, and each thread writes one
    // slot per item via MaybeUninit::write). The scope above has joined
    // every worker, so all len slots are initialized; a worker panic
    // propagates out of scope() before set_len runs, leaving out at its
    // original length 0 with no elements to drop.
    unsafe {
        out.set_len(items.len());
    }
    out
}

/// Batch boundaries for a trace of `total` ops in batches of `batch`:
/// yields `(start, end)` index pairs covering `0..total`.
pub fn batches(total: u64, batch: u64) -> impl Iterator<Item = (u64, u64)> {
    let batch = batch.max(1);
    (0..total.div_ceil(batch)).map(move |i| (i * batch, ((i + 1) * batch).min(total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 7, 16, 64] {
            let got = par_map(&items, threads, |&x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_with_more_threads_than_items() {
        // threads > items.len(): chunks(1) spawns one thread per item and
        // the slot partition must still cover the output exactly.
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(par_map(&items, 64, |&x| x * 10), vec![0, 10, 20]);
        // Two items, odd thread count.
        assert_eq!(par_map(&[5u32, 6], 7, |&x| x + 1), vec![6, 7]);
    }

    #[test]
    fn par_map_results_are_dropped_exactly_once() {
        // Heap-owning results exercise the MaybeUninit path: a double
        // drop or a leak would trip ASan/Miri and usually crashes plain
        // test runs too.
        let items: Vec<u64> = (0..100).collect();
        let got = par_map(&items, 8, |&x| vec![x; 3]);
        assert_eq!(got.len(), 100);
        assert!(got.iter().enumerate().all(|(i, v)| v == &vec![i as u64; 3]));
    }

    #[test]
    fn batches_cover_the_range_exactly() {
        let got: Vec<(u64, u64)> = batches(10, 4).collect();
        assert_eq!(got, vec![(0, 4), (4, 8), (8, 10)]);
        let whole: Vec<(u64, u64)> = batches(5, 100).collect();
        assert_eq!(whole, vec![(0, 5)]);
        assert_eq!(batches(0, 4).count(), 0);
        // batch=0 is clamped rather than looping forever.
        assert_eq!(batches(3, 0).count(), 3);
    }
}
