//! The batched I/O core: deterministic parallelism for the serving path.
//!
//! The store's state machine (backend, cache, bandwidth clocks, repair
//! queue) must be mutated strictly in op order or virtual time stops being
//! a pure function of the trace. What *can* run on many threads is the
//! pure per-op work: synthesizing put payloads, erasure-encoding stripes,
//! and verifying read-back bytes. This module provides that split:
//! [`par_map`] fans a batch of items over a scoped thread pool in
//! contiguous slices and reassembles results in input order, so the output
//! is identical for any thread count — including 1 — which is exactly the
//! property the op-log determinism test pins down.

/// Map `f` over `items` on up to `threads` scoped threads, preserving
/// input order exactly.
///
/// Items are split into contiguous slices (one per thread); each thread
/// maps its slice independently and the results are concatenated in slice
/// order. `f` must be pure for the thread-count invariance to mean
/// anything — nothing enforces that here beyond the `Fn(&T)` signature.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for slice in items.chunks(chunk) {
            let f = &f;
            handles.push(scope.spawn(move || slice.iter().map(f).collect::<Vec<R>>()));
        }
        for handle in handles {
            out.extend(handle.join().expect("prepare thread panicked"));
        }
    });
    out
}

/// Batch boundaries for a trace of `total` ops in batches of `batch`:
/// yields `(start, end)` index pairs covering `0..total`.
pub fn batches(total: u64, batch: u64) -> impl Iterator<Item = (u64, u64)> {
    let batch = batch.max(1);
    (0..total.div_ceil(batch)).map(move |i| (i * batch, ((i + 1) * batch).min(total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 7, 16, 64] {
            let got = par_map(&items, threads, |&x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn batches_cover_the_range_exactly() {
        let got: Vec<(u64, u64)> = batches(10, 4).collect();
        assert_eq!(got, vec![(0, 4), (4, 8), (8, 10)]);
        let whole: Vec<(u64, u64)> = batches(5, 100).collect();
        assert_eq!(whole, vec![(0, 5)]);
        assert_eq!(batches(0, 4).count(), 0);
        // batch=0 is clamped rather than looping forever.
        assert_eq!(batches(3, 0).count(), 3);
    }
}
