//! Wall-clock stopwatch for throughput reporting — the store's only
//! contact with real time.
//!
//! Everything the benchmark *records* (op latencies, phases, the op log)
//! is virtual time from the [`crate::arbiter`]; this stopwatch exists only
//! so `store_bench timing=1` can print how fast the replay itself ran
//! (ops/sec of the harness, not of the modeled system). It is a
//! measurement surface, never a result path: nothing derived from it may
//! enter artifacts, gates, or logs that determinism tests compare. The
//! `no-wall-clock` lint allowlists exactly this file for that reason.

use std::time::Instant;

/// A started wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
