//! The deterministic epoch executor: parallel rack-sharded apply.
//!
//! An *epoch* is a maximal run of trace ops that are rack-decomposable:
//! puts, healthy gets, and deletes of stripes whose loss state is clean
//! (`lost` empty, object not dead). The scheduler in
//! [`crate::benchrun`] walks the trace serially, commits version
//! bookkeeping op by op, decomposes each such op into per-row
//! `SubOp`s — a row is entirely rack-local, see
//! [`crate::store`] — and appends them to the owning rack's queue.
//! Anything order-sensitive (kill injection, any op while chunks are
//! lost or repairs queued, gets of dead objects) closes the epoch: the
//! queues flush first, then the barrier op runs on the monolithic path.
//!
//! Why the flush is deterministic for any `(shards, threads)`:
//!
//! 1. Routing happens in the serial walk, so which ops land in which
//!    rack queue — and in what order — is a pure function of the trace.
//! 2. A sub-op touches only its rack's clock domain, cache shard,
//!    backend, and disk index. Sub-ops in *different* racks share no
//!    state, so shard interleaving cannot change any outcome; sub-ops in
//!    the *same* rack run in queue (= trace) order on one shard.
//! 3. Per-op completion is the max over its rows' end times — a
//!    commutative, associative join, so the merge order is irrelevant.
//!
//! Racks are striped over shards (`rack % shards`); each worker applies
//! its racks ascending and reports `(slot, end)` pairs that the caller
//! max-joins into per-op completion times, in slot order.

use crate::arbiter::{RackClock, RateCard};
use crate::backend::ChunkBackend;
use crate::store::{MlecStore, RackCtx, RackLane};
use crate::StoreError;
use mlec_topology::objectmap::ObjectMapper;

/// What one trace op does inside one rack (always a single row).
#[derive(Debug)]
pub(crate) enum SubAction<'a> {
    /// Write the row's encoded chunks (all `lw` columns).
    Put(&'a [Vec<u8>]),
    /// Read the row's data chunks; `verify` holds the row's expected
    /// bytes when the trace samples this get for verification.
    Get { verify: Option<&'a [u8]> },
    /// Remove the row's chunks (all `lw` columns).
    Delete,
}

/// One rack-confined slice of a trace op.
#[derive(Debug)]
pub(crate) struct SubOp<'a> {
    /// Epoch-local op slot; completion times merge into `ends[slot]`.
    pub(crate) slot: u32,
    pub(crate) obj: u64,
    pub(crate) row: u32,
    /// Op start time (arrival + software overhead), µs.
    pub(crate) start: u64,
    pub(crate) action: SubAction<'a>,
}

/// Per-rack sub-op queues for one epoch, each in slot order.
#[derive(Debug)]
pub(crate) struct EpochQueues<'a> {
    pub(crate) by_rack: Vec<Vec<SubOp<'a>>>,
}

impl<'a> EpochQueues<'a> {
    pub(crate) fn new(racks: usize) -> EpochQueues<'a> {
        EpochQueues {
            by_rack: (0..racks).map(|_| Vec::new()).collect(),
        }
    }

    pub(crate) fn clear(&mut self) {
        for q in &mut self.by_rack {
            q.clear();
        }
    }
}

/// Drain one rack's queue through the shared row helpers, reporting each
/// sub-op's completion time.
#[allow(clippy::too_many_arguments)]
fn drain_rack<B: ChunkBackend>(
    rates: &RateCard,
    mapper: &ObjectMapper,
    clock: &mut RackClock,
    lane: &mut RackLane<B>,
    queue: &[SubOp<'_>],
    kl: u32,
    lw: u32,
    chunk_bytes: usize,
    outs: &mut Vec<(u32, u64)>,
) -> Result<(), StoreError> {
    let mut ctx = RackCtx {
        rates,
        clock,
        lane,
        mapper,
    };
    for sub in queue {
        let end = match &sub.action {
            SubAction::Put(chunks) => ctx.put_row(sub.obj, sub.row, chunks, sub.start)?,
            SubAction::Get { verify } => {
                ctx.get_row(sub.obj, sub.row, kl, chunk_bytes, sub.start, *verify, None)?
            }
            SubAction::Delete => ctx.delete_row(sub.obj, sub.row, lw, sub.start)?,
        };
        outs.push((sub.slot, end));
    }
    Ok(())
}

/// One rack's apply work: its clock domain, its lane, its queued sub-ops.
type RackWork<'s, 'a, B> = (&'s mut RackClock, &'s mut RackLane<B>, &'s [SubOp<'a>]);

impl<B: ChunkBackend + Send> MlecStore<B> {
    /// Apply one epoch's queues over `shards` rack shards and max-join the
    /// per-row completion times into `ends` (indexed by slot, pre-seeded
    /// with each op's start time). `shards == 1` runs inline; more shards
    /// use one scoped worker per non-empty shard.
    pub(crate) fn apply_epoch(
        &mut self,
        queues: &EpochQueues<'_>,
        shards: usize,
        ends: &mut [u64],
    ) -> Result<(), StoreError> {
        debug_assert_eq!(queues.by_rack.len(), self.lanes.len());
        let shards = shards.max(1);
        let kl = self.cfg.code.kl;
        let lw = self.cfg.code.local_width();
        let chunk_bytes = self.cfg.chunk_bytes;
        let mapper = &self.mapper;
        let (rates, clocks) = self.arbiter.split();

        // Stripe the (clock, lane, queue) rack triples over the shards.
        let mut shard_work: Vec<Vec<RackWork<'_, '_, B>>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (rack, ((clock, lane), queue)) in clocks
            .iter_mut()
            .zip(self.lanes.iter_mut())
            .zip(queues.by_rack.iter())
            .enumerate()
        {
            if queue.is_empty() {
                continue;
            }
            // PANICS: `% shards` keeps the index in range; `shard_work` was built with `shards` buckets.
            shard_work[rack % shards].push((clock, lane, queue.as_slice()));
        }

        let mut merge = |outs: Vec<(u32, u64)>| {
            for (slot, end) in outs {
                // PANICS: sub-op `slot`s were assigned from `0..ends.len()` when the epoch was queued.
                let e = &mut ends[slot as usize];
                *e = (*e).max(end);
            }
        };

        if shards == 1 {
            for bucket in shard_work {
                for (clock, lane, queue) in bucket {
                    let mut outs = Vec::with_capacity(queue.len());
                    drain_rack(
                        rates,
                        mapper,
                        clock,
                        lane,
                        queue,
                        kl,
                        lw,
                        chunk_bytes,
                        &mut outs,
                    )?;
                    merge(outs);
                }
            }
            return Ok(());
        }

        let results: Vec<Result<Vec<(u32, u64)>, StoreError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_work
                .into_iter()
                .filter(|bucket| !bucket.is_empty())
                .map(|bucket| {
                    scope.spawn(move || {
                        let mut outs = Vec::new();
                        for (clock, lane, queue) in bucket {
                            drain_rack(
                                rates,
                                mapper,
                                clock,
                                lane,
                                queue,
                                kl,
                                lw,
                                chunk_bytes,
                                &mut outs,
                            )?;
                        }
                        Ok(outs)
                    })
                })
                .collect();
            handles
                .into_iter()
                // PANICS: a panicked shard worker means a poisoned epoch; re-raising on the coordinator is correct.
                .map(|h| h.join().expect("epoch shard worker panicked"))
                .collect()
        });
        for result in results {
            merge(result?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::store::StoreConfig;

    fn store() -> MlecStore<MemBackend> {
        MlecStore::new(StoreConfig::small_test(), |_| Ok(MemBackend::new())).unwrap()
    }

    fn payload(cfg: &StoreConfig, tag: u8) -> Vec<u8> {
        (0..cfg.payload_bytes())
            .map(|i| (i as u8).wrapping_mul(17).wrapping_add(tag))
            .collect()
    }

    /// Decompose a put/get/delete sequence into sub-ops, apply it through
    /// the epoch machinery at several shard counts, and require end times
    /// identical to the monolithic path.
    #[test]
    fn epoch_apply_matches_monolithic_end_times() {
        // Reference: monolithic ops on a fresh store.
        let cfg = StoreConfig::small_test();
        let mut reference = store();
        let objects: Vec<u64> = (0..12).collect();
        let stripes: Vec<_> = objects
            .iter()
            .map(|&o| reference.encode_payload(&payload(&cfg, o as u8)).unwrap())
            .collect();
        let mut want = Vec::new();
        for (i, &obj) in objects.iter().enumerate() {
            let now = i as u64 * 1_000;
            want.push(
                now + reference
                    .put_encoded(obj, &stripes[i], now)
                    .unwrap()
                    .latency_us,
            );
        }
        for (i, &obj) in objects.iter().enumerate() {
            let now = 100_000 + i as u64 * 1_000;
            want.push(now + reference.get(obj, now).unwrap().latency_us);
        }

        for shards in [1usize, 2, 4, 8] {
            let mut s = store();
            let (nw, kn) = (cfg.code.network_width(), cfg.code.kn);
            let mut queues = EpochQueues::new(s.arbiter().racks());
            let mut ends = Vec::new();
            let mut slot = 0u32;
            for (i, &obj) in objects.iter().enumerate() {
                let now = i as u64 * 1_000;
                let start = now + cfg.overhead_us;
                s.commit_put_version(obj);
                for row in 0..nw {
                    let rack = s.rack_of_row(obj, row) as usize;
                    queues.by_rack[rack].push(SubOp {
                        slot,
                        obj,
                        row,
                        start,
                        action: SubAction::Put(&stripes[i][row as usize]),
                    });
                }
                ends.push(start);
                slot += 1;
            }
            for (i, &obj) in objects.iter().enumerate() {
                let now = 100_000 + i as u64 * 1_000;
                let start = now + cfg.overhead_us;
                for row in 0..kn {
                    let rack = s.rack_of_row(obj, row) as usize;
                    queues.by_rack[rack].push(SubOp {
                        slot,
                        obj,
                        row,
                        start,
                        action: SubAction::Get { verify: None },
                    });
                }
                ends.push(start);
                slot += 1;
            }
            s.apply_epoch(&queues, shards, &mut ends).unwrap();
            assert_eq!(ends, want, "shards={shards}");
            assert_eq!(s.chunk_count(), reference.chunk_count());
        }
    }

    /// Verification bytes are checked on the sharded path too.
    #[test]
    fn epoch_get_row_verifies_payload_bytes() {
        let cfg = StoreConfig::small_test();
        let mut s = store();
        let p = payload(&cfg, 9);
        let stripe = s.encode_payload(&p).unwrap();
        s.put_encoded(0, &stripe, 0).unwrap();
        let kl = cfg.code.kl;
        let row_bytes = kl as usize * cfg.chunk_bytes;

        let ok_queue = {
            let mut q = EpochQueues::new(s.arbiter().racks());
            let rack = s.rack_of_row(0, 0) as usize;
            q.by_rack[rack].push(SubOp {
                slot: 0,
                obj: 0,
                row: 0,
                start: 10_000,
                action: SubAction::Get {
                    verify: Some(&p[..row_bytes]),
                },
            });
            q
        };
        let mut ends = vec![10_000u64];
        s.apply_epoch(&ok_queue, 2, &mut ends).unwrap();
        assert!(ends[0] > 10_000);

        // A wrong expectation must surface CorruptPayload from the worker.
        let wrong = vec![0xAAu8; row_bytes];
        let bad_queue = {
            let mut q = EpochQueues::new(s.arbiter().racks());
            let rack = s.rack_of_row(0, 0) as usize;
            q.by_rack[rack].push(SubOp {
                slot: 0,
                obj: 0,
                row: 0,
                start: 20_000,
                action: SubAction::Get {
                    verify: Some(&wrong),
                },
            });
            q
        };
        let mut ends = vec![20_000u64];
        let err = s.apply_epoch(&bad_queue, 2, &mut ends).unwrap_err();
        assert!(matches!(err, StoreError::CorruptPayload(0)), "{err:?}");
    }
}
