//! The shared bandwidth arbiter: virtual-time token accounting for disks
//! and rack uplinks.
//!
//! Foreground serving and online repair compete for the *same* physical
//! resources, parameterized exactly like the system simulator
//! ([`mlec_sim::SimConfig`]): per-disk raw bandwidth (§3: 200 MB/s), per-rack
//! cross-rack bandwidth (10 Gbps), and the repair throttle fraction (20%).
//! Each disk and each rack uplink is modeled as a FIFO server with a
//! `busy_until` clock in virtual microseconds; a transfer reserves
//! `seek + bytes/rate` on the device starting at
//! `max(now, busy_until)`. Repair transfers use the same clocks — that is
//! the point: a foreground read landing behind a rebuild read waits, which
//! is where rebuild-phase tail latency comes from. The repair *throttle*
//! (20% duty cycle) is enforced by the repair scheduler pacing its
//! streams, not by a second set of clocks, mirroring the paper's
//! "repair traffic capped at 20%" semantics.
//!
//! All arithmetic is integer/deterministic: virtual time is a pure
//! function of the op trace, never of the machine running it.

use mlec_sim::SimConfig;
use mlec_topology::{DiskId, RackId};
use std::collections::BTreeMap;

/// Who is asking for bandwidth (accounting only; both lanes share clocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Client-facing put/get/delete traffic.
    Foreground,
    /// Rebuild reads/writes issued by the repair scheduler.
    Repair,
}

/// Per-device virtual-time bandwidth accounting.
#[derive(Debug)]
pub struct BandwidthArbiter {
    disk_busy_until: BTreeMap<DiskId, u64>,
    rack_busy_until: BTreeMap<RackId, u64>,
    /// Disk throughput in bytes per virtual microsecond (= MB/s).
    disk_bytes_per_us: f64,
    /// Rack uplink throughput in bytes per virtual microsecond.
    rack_bytes_per_us: f64,
    /// Fixed per-I/O positioning cost on a disk, µs.
    seek_us: u64,
    /// Fraction of device bandwidth repair may consume (scheduler pacing).
    repair_fraction: f64,
    foreground_ios: u64,
    repair_ios: u64,
    foreground_bytes: u64,
    repair_bytes: u64,
}

impl BandwidthArbiter {
    /// Arbiter over the §3 bandwidth parameters plus a per-I/O seek cost.
    pub fn new(sim: &SimConfig, seek_us: u64) -> BandwidthArbiter {
        BandwidthArbiter {
            disk_busy_until: BTreeMap::new(),
            rack_busy_until: BTreeMap::new(),
            // MB/s is numerically bytes/µs.
            disk_bytes_per_us: sim.disk_bw_mbs,
            rack_bytes_per_us: sim.rack_net_gbps * 1e9 / 8.0 / 1e6,
            seek_us,
            repair_fraction: sim.repair_fraction,
            foreground_ios: 0,
            repair_ios: 0,
            foreground_bytes: 0,
            repair_bytes: 0,
        }
    }

    /// Duration of one disk I/O of `bytes`, µs (seek + transfer).
    pub fn disk_io_us(&self, bytes: usize) -> u64 {
        self.seek_us + (bytes as f64 / self.disk_bytes_per_us).ceil() as u64
    }

    /// Reserve a disk I/O starting no earlier than `now`; returns the
    /// completion time. The disk is busy until then.
    pub fn disk_io(&mut self, disk: DiskId, bytes: usize, now: u64, lane: Lane) -> u64 {
        let free = self.disk_busy_until.get(&disk).copied().unwrap_or(0);
        let start = free.max(now);
        let end = start + self.disk_io_us(bytes);
        self.disk_busy_until.insert(disk, end);
        match lane {
            Lane::Foreground => {
                self.foreground_ios += 1;
                self.foreground_bytes += bytes as u64;
            }
            Lane::Repair => {
                self.repair_ios += 1;
                self.repair_bytes += bytes as u64;
            }
        }
        end
    }

    /// Reserve a cross-rack transfer of `bytes` on `rack`'s uplink
    /// starting no earlier than `now`; returns the completion time.
    pub fn rack_xfer(&mut self, rack: RackId, bytes: usize, now: u64) -> u64 {
        let free = self.rack_busy_until.get(&rack).copied().unwrap_or(0);
        let start = free.max(now);
        let end = start + (bytes as f64 / self.rack_bytes_per_us).ceil() as u64;
        self.rack_busy_until.insert(rack, end);
        end
    }

    /// Pacing gap the repair scheduler must leave idle after occupying a
    /// device for `busy_us`, so repair consumes at most `repair_fraction`
    /// of the device: `busy * (1/f - 1)`.
    pub fn repair_pacing_gap_us(&self, busy_us: u64) -> u64 {
        if self.repair_fraction >= 1.0 {
            return 0;
        }
        (busy_us as f64 * (1.0 / self.repair_fraction - 1.0)).ceil() as u64
    }

    /// `(ios, bytes)` moved by the foreground lane.
    pub fn foreground_totals(&self) -> (u64, u64) {
        (self.foreground_ios, self.foreground_bytes)
    }

    /// `(ios, bytes)` moved by the repair lane.
    pub fn repair_totals(&self) -> (u64, u64) {
        (self.repair_ios, self.repair_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arbiter() -> BandwidthArbiter {
        BandwidthArbiter::new(&SimConfig::paper_default(), 400)
    }

    #[test]
    fn disk_fifo_queues_back_to_back() {
        let mut a = arbiter();
        // 200 MB/s: a 4 KiB transfer is ceil(4096/200) = 21 µs + 400 seek.
        let end1 = a.disk_io(3, 4096, 1_000, Lane::Foreground);
        assert_eq!(end1, 1_000 + 400 + 21);
        // Second I/O on the same disk queues behind the first.
        let end2 = a.disk_io(3, 4096, 1_000, Lane::Foreground);
        assert_eq!(end2, end1 + 421);
        // A different disk is idle.
        let end3 = a.disk_io(4, 4096, 1_000, Lane::Repair);
        assert_eq!(end3, 1_421);
        assert_eq!(a.foreground_totals(), (2, 8192));
        assert_eq!(a.repair_totals(), (1, 4096));
    }

    #[test]
    fn rack_uplink_shares_one_clock() {
        let mut a = arbiter();
        // 10 Gbps = 1250 bytes/µs: 125_000 bytes take 100 µs.
        let end1 = a.rack_xfer(0, 125_000, 0);
        assert_eq!(end1, 100);
        let end2 = a.rack_xfer(0, 125_000, 0);
        assert_eq!(end2, 200);
    }

    #[test]
    fn repair_pacing_enforces_duty_cycle() {
        let a = arbiter();
        // 20% fraction: 100 µs busy needs 400 µs idle.
        assert_eq!(a.repair_pacing_gap_us(100), 400);
    }

    #[test]
    fn idle_device_starts_at_now() {
        let mut a = arbiter();
        let end = a.disk_io(7, 0, 5_000, Lane::Foreground);
        assert_eq!(end, 5_400); // seek only
    }
}
