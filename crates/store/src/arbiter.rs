//! The sharded bandwidth arbiter: virtual-time token accounting for disks
//! and rack uplinks, partitioned into per-rack clock domains.
//!
//! Foreground serving and online repair compete for the *same* physical
//! resources, parameterized exactly like the system simulator
//! ([`mlec_sim::SimConfig`]): per-disk raw bandwidth (§3: 200 MB/s), per-rack
//! cross-rack bandwidth (10 Gbps), and the repair throttle fraction (20%).
//! Each disk and each rack uplink is modeled as a FIFO server with a
//! `busy_until` clock in virtual microseconds; a transfer reserves
//! `seek + bytes/rate` on the device starting at
//! `max(now, busy_until)`. Repair transfers use the same clocks — that is
//! the point: a foreground read landing behind a rebuild read waits, which
//! is where rebuild-phase tail latency comes from. The repair *throttle*
//! (20% duty cycle) is enforced by the repair scheduler pacing its
//! streams, not by a second set of clocks, mirroring the paper's
//! "repair traffic capped at 20%" semantics.
//!
//! The state is split along rack boundaries: every disk clock and the
//! uplink clock of rack `r` live together in one [`RackClock`] domain, and
//! nothing else. A charge against rack `r` reads and writes only domain
//! `r`, so charges against distinct racks commute — the invariant the
//! epoch-sharded apply in [`crate::epoch`] is built on. [`ShardedArbiter`]
//! is the facade over the domain vector: single-threaded callers keep the
//! exact `disk_io`/`rack_xfer` API the old monolithic arbiter had, while
//! the epoch executor borrows the domains mutably, disjointly, one per
//! shard, via [`ShardedArbiter::split`].
//!
//! All arithmetic on the virtual clocks is integer/deterministic: virtual
//! time is a pure function of the op trace, never of the machine running
//! it. The repair pacing gap in particular is exact integer rational
//! arithmetic over the throttle fraction — no float rounding in a path
//! that feeds back into stream schedules.

use mlec_sim::SimConfig;
use mlec_topology::{DiskId, Geometry, RackId};
use mlec_units::Bandwidth;
use std::collections::BTreeMap;

/// Who is asking for bandwidth (accounting only; both lanes share clocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Client-facing put/get/delete traffic.
    Foreground,
    /// Rebuild reads/writes issued by the repair scheduler.
    Repair,
}

/// The immutable rate environment every clock domain shares: transfer
/// rates, seek cost, and the repair throttle as an exact rational.
#[derive(Debug, Clone, Copy)]
pub struct RateCard {
    /// Disk throughput; MB/s is numerically bytes per virtual microsecond.
    disk_rate: Bandwidth,
    /// Rack uplink throughput.
    rack_rate: Bandwidth,
    /// Fixed per-I/O positioning cost on a disk, µs.
    seek_us: u64,
    /// Repair throttle fraction as a reduced rational `num/den`.
    repair_num: u64,
    repair_den: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

impl RateCard {
    /// Rates from the §3 bandwidth parameters plus a per-I/O seek cost.
    pub fn new(sim: &SimConfig, seek_us: u64) -> RateCard {
        // The throttle fraction arrives as an f64 config knob; snap it to
        // a rational with a fixed 1e9 denominator once, here, so every
        // downstream pacing computation is exact integer arithmetic.
        let num = (sim.repair_fraction.clamp(0.0, 1.0) * 1e9).round() as u64;
        let den = 1_000_000_000u64;
        let g = gcd(num, den);
        RateCard {
            disk_rate: Bandwidth::from_mbs(sim.disk_bw_mbs),
            rack_rate: Bandwidth::from_gbps(sim.rack_net_gbps),
            seek_us,
            repair_num: num / g,
            repair_den: den / g,
        }
    }

    /// Duration of one disk I/O of `bytes`, µs (seek + transfer).
    pub fn disk_io_us(&self, bytes: usize) -> u64 {
        self.seek_us + (bytes as f64 / self.disk_rate.bytes_per_us()).ceil() as u64
    }

    /// Duration of one uplink transfer of `bytes`, µs.
    pub fn rack_xfer_us(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.rack_rate.bytes_per_us()).ceil() as u64
    }

    /// Pacing gap the repair scheduler must leave idle after occupying a
    /// device for `busy_us`, so repair consumes at most its throttle
    /// fraction `f = num/den` of the device: `ceil(busy * (den-num)/num)`,
    /// the exact integer form of `busy * (1/f - 1)`.
    pub fn repair_pacing_gap_us(&self, busy_us: u64) -> u64 {
        if self.repair_num >= self.repair_den {
            return 0;
        }
        if self.repair_num == 0 {
            // A zero throttle admits no repair bandwidth at all: the
            // stream never becomes free again.
            return u64::MAX;
        }
        let idle = u128::from(busy_us) * u128::from(self.repair_den - self.repair_num);
        let gap = idle.div_ceil(u128::from(self.repair_num));
        u64::try_from(gap).unwrap_or(u64::MAX)
    }

    /// The repair throttle as its reduced rational `(num, den)`.
    pub fn repair_fraction(&self) -> (u64, u64) {
        (self.repair_num, self.repair_den)
    }
}

/// One rack's clock domain: the uplink clock, the clocks of every disk in
/// the rack, and the lane totals those devices accumulated. All mutation
/// of `busy_until` state in the store goes through this type, and each
/// instance is owned by exactly one shard during an epoch — which is why
/// charges against different racks can run on different threads and still
/// produce bit-identical virtual time.
#[derive(Debug, Default)]
pub struct RackClock {
    uplink_busy_until: u64,
    disk_busy_until: BTreeMap<DiskId, u64>,
    foreground_ios: u64,
    repair_ios: u64,
    foreground_bytes: u64,
    repair_bytes: u64,
}

impl RackClock {
    /// Reserve a disk I/O starting no earlier than `now`; returns the
    /// completion time. The disk is busy until then.
    pub fn disk_io(
        &mut self,
        rates: &RateCard,
        disk: DiskId,
        bytes: usize,
        now: u64,
        lane: Lane,
    ) -> u64 {
        let free = self.disk_busy_until.get(&disk).copied().unwrap_or(0);
        let start = free.max(now);
        let end = start + rates.disk_io_us(bytes);
        self.disk_busy_until.insert(disk, end);
        match lane {
            Lane::Foreground => {
                self.foreground_ios += 1;
                self.foreground_bytes += bytes as u64;
            }
            Lane::Repair => {
                self.repair_ios += 1;
                self.repair_bytes += bytes as u64;
            }
        }
        end
    }

    /// Reserve a cross-rack transfer of `bytes` on this rack's uplink
    /// starting no earlier than `now`; returns the completion time.
    pub fn rack_xfer(&mut self, rates: &RateCard, bytes: usize, now: u64) -> u64 {
        let start = self.uplink_busy_until.max(now);
        let end = start + rates.rack_xfer_us(bytes);
        self.uplink_busy_until = end;
        end
    }
}

/// Per-device virtual-time bandwidth accounting, sharded by rack.
///
/// The facade preserves the old monolithic arbiter's API — `disk_io`
/// routes to the owning rack's domain by integer division — so the
/// single-threaded store paths (degraded reads, rebuild, the reference
/// serial apply) are unchanged callers. The epoch executor instead takes
/// the domains apart with [`ShardedArbiter::split`].
#[derive(Debug)]
pub struct ShardedArbiter {
    rates: RateCard,
    disks_per_rack: u32,
    clocks: Vec<RackClock>,
}

/// The historical name: every existing caller sees the same API.
pub type BandwidthArbiter = ShardedArbiter;

impl ShardedArbiter {
    /// Arbiter over `geometry`'s racks with the §3 bandwidth parameters
    /// plus a per-I/O seek cost.
    pub fn new(geometry: &Geometry, sim: &SimConfig, seek_us: u64) -> ShardedArbiter {
        ShardedArbiter {
            rates: RateCard::new(sim, seek_us),
            disks_per_rack: geometry.disks_per_rack().max(1),
            clocks: (0..geometry.racks.max(1))
                .map(|_| RackClock::default())
                .collect(),
        }
    }

    /// The rack whose clock domain owns `disk`.
    pub fn rack_of(&self, disk: DiskId) -> RackId {
        (disk / self.disks_per_rack).min(self.clocks.len() as u32 - 1)
    }

    /// Number of rack clock domains.
    pub fn racks(&self) -> usize {
        self.clocks.len()
    }

    /// The shared rate environment.
    pub fn rates(&self) -> &RateCard {
        &self.rates
    }

    /// Split into the shared rates and the per-rack clock domains — the
    /// epoch executor hands disjoint `&mut RackClock`s to its shards.
    pub fn split(&mut self) -> (&RateCard, &mut [RackClock]) {
        (&self.rates, &mut self.clocks)
    }

    /// Duration of one disk I/O of `bytes`, µs (seek + transfer).
    pub fn disk_io_us(&self, bytes: usize) -> u64 {
        self.rates.disk_io_us(bytes)
    }

    /// Reserve a disk I/O starting no earlier than `now`; returns the
    /// completion time. The disk is busy until then.
    pub fn disk_io(&mut self, disk: DiskId, bytes: usize, now: u64, lane: Lane) -> u64 {
        let rack = self.rack_of(disk) as usize;
        // PANICS: `rack_of` maps any disk id into `0..racks`, the clock-shard count.
        self.clocks[rack].disk_io(&self.rates, disk, bytes, now, lane)
    }

    /// Reserve a cross-rack transfer of `bytes` on `rack`'s uplink
    /// starting no earlier than `now`; returns the completion time.
    pub fn rack_xfer(&mut self, rack: RackId, bytes: usize, now: u64) -> u64 {
        let rack = (rack as usize).min(self.clocks.len() - 1);
        // PANICS: the index was just clamped to `clocks.len() - 1`, and the arbiter always has at least one rack clock.
        self.clocks[rack].rack_xfer(&self.rates, bytes, now)
    }

    /// Exact integer pacing gap for a repair that occupied a device for
    /// `busy_us` (see [`RateCard::repair_pacing_gap_us`]).
    pub fn repair_pacing_gap_us(&self, busy_us: u64) -> u64 {
        self.rates.repair_pacing_gap_us(busy_us)
    }

    /// `(ios, bytes)` moved by the foreground lane, over all racks.
    pub fn foreground_totals(&self) -> (u64, u64) {
        self.clocks.iter().fold((0, 0), |(i, b), c| {
            (i + c.foreground_ios, b + c.foreground_bytes)
        })
    }

    /// `(ios, bytes)` moved by the repair lane, over all racks.
    pub fn repair_totals(&self) -> (u64, u64) {
        self.clocks
            .iter()
            .fold((0, 0), |(i, b), c| (i + c.repair_ios, b + c.repair_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arbiter() -> BandwidthArbiter {
        BandwidthArbiter::new(&Geometry::small_test(), &SimConfig::paper_default(), 400)
    }

    #[test]
    fn disk_fifo_queues_back_to_back() {
        let mut a = arbiter();
        // 200 MB/s: a 4 KiB transfer is ceil(4096/200) = 21 µs + 400 seek.
        let end1 = a.disk_io(3, 4096, 1_000, Lane::Foreground);
        assert_eq!(end1, 1_000 + 400 + 21);
        // Second I/O on the same disk queues behind the first.
        let end2 = a.disk_io(3, 4096, 1_000, Lane::Foreground);
        assert_eq!(end2, end1 + 421);
        // A different disk is idle.
        let end3 = a.disk_io(4, 4096, 1_000, Lane::Repair);
        assert_eq!(end3, 1_421);
        assert_eq!(a.foreground_totals(), (2, 8192));
        assert_eq!(a.repair_totals(), (1, 4096));
    }

    #[test]
    fn rack_uplink_shares_one_clock() {
        let mut a = arbiter();
        // 10 Gbps = 1250 bytes/µs: 125_000 bytes take 100 µs.
        let end1 = a.rack_xfer(0, 125_000, 0);
        assert_eq!(end1, 100);
        let end2 = a.rack_xfer(0, 125_000, 0);
        assert_eq!(end2, 200);
    }

    #[test]
    fn repair_pacing_enforces_duty_cycle() {
        let a = arbiter();
        // 20% fraction: 100 µs busy needs 400 µs idle.
        assert_eq!(a.repair_pacing_gap_us(100), 400);
    }

    #[test]
    fn idle_device_starts_at_now() {
        let mut a = arbiter();
        let end = a.disk_io(7, 0, 5_000, Lane::Foreground);
        assert_eq!(end, 5_400); // seek only
    }

    #[test]
    fn disks_of_different_racks_live_in_different_domains() {
        let mut a = arbiter();
        let per_rack = Geometry::small_test().disks_per_rack();
        // Same-rack disks share totals through one domain; a disk in the
        // next rack must not see the first rack's uplink queueing.
        a.rack_xfer(0, 1_250_000, 0); // rack 0 uplink busy until 1000
        assert_eq!(a.rack_xfer(1, 1_250, 0), 1); // rack 1 idle
        assert_eq!(a.rack_of(0), 0);
        assert_eq!(a.rack_of(per_rack), 1);
        assert_eq!(a.racks(), Geometry::small_test().racks as usize);
    }

    #[test]
    fn pacing_gap_is_exact_rational_arithmetic() {
        // The paper's default throttle: f = 0.2 = 1/5 exactly.
        let sim = SimConfig::paper_default();
        let rates = RateCard::new(&sim, 400);
        assert_eq!(rates.repair_fraction(), (1, 5));
        assert_eq!(rates.repair_pacing_gap_us(100), 400);
        assert_eq!(rates.repair_pacing_gap_us(1), 4);
        assert_eq!(rates.repair_pacing_gap_us(0), 0);
        // f = 0.3 → 3/10: gap(100) = ceil(100 * 7/3) = 234. The old f64
        // path computed 233.333…; any rounding drift here would shift
        // every later repair start time in the trace.
        let mut sim3 = sim;
        sim3.repair_fraction = 0.3;
        let rates3 = RateCard::new(&sim3, 400);
        assert_eq!(rates3.repair_fraction(), (3, 10));
        assert_eq!(rates3.repair_pacing_gap_us(100), 234);
        assert_eq!(rates3.repair_pacing_gap_us(3), 7);
        // f = 0.25 → 1/4: gap is exactly 3× busy.
        let mut sim4 = sim;
        sim4.repair_fraction = 0.25;
        assert_eq!(RateCard::new(&sim4, 400).repair_pacing_gap_us(100), 300);
        // Degenerate fractions: no throttle, and a total throttle.
        let mut sim_one = sim;
        sim_one.repair_fraction = 1.0;
        assert_eq!(RateCard::new(&sim_one, 400).repair_pacing_gap_us(100), 0);
        let mut sim_zero = sim;
        sim_zero.repair_fraction = 0.0;
        assert_eq!(
            RateCard::new(&sim_zero, 400).repair_pacing_gap_us(100),
            u64::MAX
        );
        // Huge busy spans must not overflow: the u128 intermediate keeps
        // the ceiling exact right up to the u64 saturation point.
        assert_eq!(rates.repair_pacing_gap_us(u64::MAX / 8), u64::MAX / 8 * 4);
    }
}
