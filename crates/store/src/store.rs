//! The object store proper: put/get/degraded-get/delete over the
//! two-level codec, with failure injection and online repair.
//!
//! One object occupies exactly one network stripe (object id == network
//! stripe index), placed by the deterministic
//! [`mlec_topology::objectmap::ObjectMapper`] and stored chunk-by-chunk in
//! a pluggable [`crate::backend::ChunkBackend`]. Every byte moved charges
//! the [`crate::arbiter::BandwidthArbiter`]'s virtual clocks, so op
//! latencies are a pure function of the op sequence — never of threads,
//! backend speed, or wall time.
//!
//! Failure model: killing a disk (or a whole rack) *loses* its chunks —
//! they are removed from the backend and tracked in a `lost` set — and the
//! disk is immediately replaced by an empty spare with the same id, so
//! later writes land normally. Reads of a damaged stripe take a degraded
//! path mirroring the codec's preference order: decode within the row
//! when the row is locally recoverable (cheap, rack-local), else decode
//! the column over the network, else fetch the whole surviving grid and
//! reconstruct. Affected stripes are queued on the
//! [`crate::repair::RepairScheduler`] and rebuilt in the background,
//! competing with foreground traffic for the same bandwidth.

use crate::arbiter::{BandwidthArbiter, Lane};
use crate::backend::{chunk_key, ChunkBackend, ChunkKey};
use crate::cache::ChunkCache;
use crate::repair::RepairScheduler;
use crate::StoreError;
use mlec_ec::mlec::MlecStripe;
use mlec_ec::MlecCodec;
use mlec_sim::SimConfig;
use mlec_topology::objectmap::{ChunkLocation, MapperCode, ObjectMapper};
use mlec_topology::{DiskId, Geometry, MlecScheme};
use std::collections::{BTreeMap, BTreeSet};

/// Everything that shapes a store instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Physical shape of the deployment.
    pub geometry: Geometry,
    /// `(k_n + p_n) / (k_l + p_l)` code parameters.
    pub code: MapperCode,
    /// Placement scheme for both levels.
    pub scheme: MlecScheme,
    /// §3 bandwidth/throttle environment shared with the simulators.
    pub sim: SimConfig,
    /// Chunk payload size in bytes.
    pub chunk_bytes: usize,
    /// LRU cache capacity in chunks (0 disables).
    pub cache_chunks: usize,
    /// Per-I/O disk positioning cost, µs.
    pub seek_us: u64,
    /// Fixed software overhead added to every op, µs.
    pub overhead_us: u64,
    /// Failure detection delay before repair may start, µs (the
    /// store-scale analogue of the paper's 30-minute window).
    pub detect_us: u64,
    /// Concurrent rebuild streams.
    pub repair_streams: u32,
    /// Seed of the deterministic declustered placement.
    pub placement_seed: u64,
}

impl StoreConfig {
    /// A small fast deployment for benchmarks and tests: 864 disks
    /// (6 racks × 2 × 12), a `(2+1)/(4+2)` code, declustered at both
    /// levels, 4 KiB chunks.
    pub fn small_test() -> StoreConfig {
        StoreConfig {
            geometry: Geometry::small_test(),
            code: MapperCode {
                kn: 2,
                pn: 1,
                kl: 4,
                pl: 2,
            },
            scheme: MlecScheme::DD,
            sim: SimConfig::paper_default(),
            chunk_bytes: 4096,
            cache_chunks: 4096,
            seek_us: 400,
            overhead_us: 50,
            detect_us: 200_000,
            repair_streams: 4,
            placement_seed: 0x510e,
        }
    }

    /// Bytes of data per object (`k_n * k_l * chunk_bytes`).
    pub fn payload_bytes(&self) -> usize {
        self.code.kn as usize * self.code.kl as usize * self.chunk_bytes
    }
}

/// Outcome of a put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutResult {
    /// Version written (0 for the first put of an object).
    pub version: u64,
    /// Virtual completion latency, µs.
    pub latency_us: u64,
}

/// Outcome of a get.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetResult {
    /// The object's bytes.
    pub payload: Vec<u8>,
    /// Virtual completion latency, µs.
    pub latency_us: u64,
    /// Whether any chunk had to be decoded rather than read.
    pub degraded: bool,
    /// Surviving chunks fetched beyond the object's own present data
    /// chunks (0 for a healthy read).
    pub chunks_read: u64,
}

/// The MLEC object store over a chunk backend.
#[derive(Debug)]
pub struct MlecStore<B: ChunkBackend> {
    cfg: StoreConfig,
    mapper: ObjectMapper,
    codec: MlecCodec,
    backend: B,
    cache: ChunkCache,
    arbiter: BandwidthArbiter,
    repair: RepairScheduler,
    /// Current version per live object.
    versions: BTreeMap<u64, u64>,
    /// Which chunks each disk holds (drives kill + rebuild bookkeeping).
    by_disk: BTreeMap<DiskId, BTreeSet<ChunkKey>>,
    /// Chunks destroyed by failures and not yet rebuilt.
    lost: BTreeSet<ChunkKey>,
    degraded_reads: u64,
    repaired_local_chunks: u64,
    repaired_network_chunks: u64,
    read_buf: Vec<u8>,
}

impl<B: ChunkBackend> MlecStore<B> {
    /// Build a store over `backend`.
    pub fn new(cfg: StoreConfig, backend: B) -> Result<MlecStore<B>, StoreError> {
        let mapper = ObjectMapper::new(
            cfg.geometry,
            cfg.code,
            cfg.scheme,
            cfg.chunk_bytes as u64,
            cfg.placement_seed,
        );
        let codec = MlecCodec::new(
            cfg.code.kn as usize,
            cfg.code.pn as usize,
            cfg.code.kl as usize,
            cfg.code.pl as usize,
        )?;
        Ok(MlecStore {
            cache: ChunkCache::new(cfg.cache_chunks),
            arbiter: BandwidthArbiter::new(&cfg.sim, cfg.seek_us),
            repair: RepairScheduler::new(cfg.repair_streams),
            cfg,
            mapper,
            codec,
            backend,
            versions: BTreeMap::new(),
            by_disk: BTreeMap::new(),
            lost: BTreeSet::new(),
            degraded_reads: 0,
            repaired_local_chunks: 0,
            repaired_network_chunks: 0,
            read_buf: Vec::new(),
        })
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// The codec (for encoding payloads off-thread).
    pub fn codec(&self) -> &MlecCodec {
        &self.codec
    }

    /// Encode a payload into a stripe grid — pure, callable off-thread.
    pub fn encode_payload(&self, payload: &[u8]) -> Result<MlecStripe, StoreError> {
        if payload.len() != self.cfg.payload_bytes() {
            return Err(StoreError::BadSpec(format!(
                "payload is {} bytes, expected {}",
                payload.len(),
                self.cfg.payload_bytes()
            )));
        }
        let chunks: Vec<&[u8]> = payload.chunks(self.cfg.chunk_bytes).collect();
        Ok(self.codec.encode(&chunks)?)
    }

    /// Write object `obj` from a pre-encoded stripe grid. Returns the new
    /// version and the virtual latency.
    pub fn put_encoded(
        &mut self,
        obj: u64,
        stripe: &MlecStripe,
        now: u64,
    ) -> Result<PutResult, StoreError> {
        let (nw, lw) = (self.cfg.code.network_width(), self.cfg.code.local_width());
        if stripe.len() != nw as usize || stripe.iter().any(|r| r.len() != lw as usize) {
            return Err(StoreError::BadSpec(format!(
                "stripe grid is not {nw} x {lw}"
            )));
        }
        let start = now + self.cfg.overhead_us;
        let mut end = start;
        for row in 0..nw {
            for col in 0..lw {
                let loc = self.mapper.chunk_at(obj, row, col);
                let key = chunk_key(obj, row, col);
                let data = &stripe[row as usize][col as usize];
                // Chunk travels the rack uplink, then lands on the disk.
                let rack = self.mapper.rack_of(&loc);
                let arrived = self.arbiter.rack_xfer(rack, data.len(), start);
                end =
                    end.max(
                        self.arbiter
                            .disk_io(loc.disk, data.len(), arrived, Lane::Foreground),
                    );
                self.backend.write_chunk(key, data)?;
                self.cache.invalidate(key);
                self.by_disk.entry(loc.disk).or_default().insert(key);
                // Overwriting heals any lost chunks of this stripe.
                self.lost.remove(&key);
            }
        }
        let version = self.versions.get(&obj).map_or(0, |v| v + 1);
        self.versions.insert(obj, version);
        Ok(PutResult {
            version,
            latency_us: end - now,
        })
    }

    /// Encode and write object `obj`.
    pub fn put(&mut self, obj: u64, payload: &[u8], now: u64) -> Result<PutResult, StoreError> {
        let stripe = self.encode_payload(payload)?;
        self.put_encoded(obj, &stripe, now)
    }

    /// Bulk-load an object without charging the bandwidth clocks: the
    /// benchmark's pre-population step, which models data that existed
    /// before the measured window opened. Indistinguishable from a put at
    /// version 0 in every other respect.
    pub fn preload_encoded(&mut self, obj: u64, stripe: &MlecStripe) -> Result<(), StoreError> {
        let (nw, lw) = (self.cfg.code.network_width(), self.cfg.code.local_width());
        if stripe.len() != nw as usize || stripe.iter().any(|r| r.len() != lw as usize) {
            return Err(StoreError::BadSpec(format!(
                "stripe grid is not {nw} x {lw}"
            )));
        }
        for row in 0..nw {
            for col in 0..lw {
                let loc = self.mapper.chunk_at(obj, row, col);
                let key = chunk_key(obj, row, col);
                self.backend
                    .write_chunk(key, &stripe[row as usize][col as usize])?;
                self.by_disk.entry(loc.disk).or_default().insert(key);
            }
        }
        self.versions.insert(obj, 0);
        Ok(())
    }

    /// Read object `obj`, taking a degraded path when chunks are lost.
    pub fn get(&mut self, obj: u64, now: u64) -> Result<GetResult, StoreError> {
        if !self.versions.contains_key(&obj) {
            return Err(StoreError::UnknownObject(obj));
        }
        let (kn, kl) = (self.cfg.code.kn, self.cfg.code.kl);
        let start = now + self.cfg.overhead_us;
        let any_lost =
            (0..kn).any(|row| (0..kl).any(|col| self.lost.contains(&chunk_key(obj, row, col))));
        if !any_lost {
            return self.get_healthy(obj, now, start);
        }
        self.degraded_reads += 1;
        self.get_degraded(obj, now, start)
    }

    /// Fast path: every data chunk is present.
    fn get_healthy(&mut self, obj: u64, now: u64, start: u64) -> Result<GetResult, StoreError> {
        let (kn, kl) = (self.cfg.code.kn, self.cfg.code.kl);
        let mut payload = Vec::with_capacity(self.cfg.payload_bytes());
        let mut end = start;
        for row in 0..kn {
            for col in 0..kl {
                let key = chunk_key(obj, row, col);
                if let Some(bytes) = self.cache.get(key) {
                    payload.extend_from_slice(bytes);
                    continue;
                }
                let loc = self.mapper.chunk_at(obj, row, col);
                if !self.backend.read_chunk(key, &mut self.read_buf)? {
                    return Err(StoreError::Unrecoverable {
                        object: obj,
                        detail: format!("chunk ({row}, {col}) missing without a recorded loss"),
                    });
                }
                end = end.max(self.charge_read(&loc, self.read_buf.len(), start, Lane::Foreground));
                self.cache.insert(key, &self.read_buf);
                payload.extend_from_slice(&self.read_buf);
            }
        }
        Ok(GetResult {
            payload,
            latency_us: end - now,
            degraded: false,
            chunks_read: 0,
        })
    }

    /// Degraded path: plan the minimal survivor fetch, fall back to a full
    /// grid reconstruct when the simple row/column paths don't suffice.
    fn get_degraded(&mut self, obj: u64, now: u64, start: u64) -> Result<GetResult, StoreError> {
        let code = self.cfg.code;
        let (nw, lw) = (code.network_width(), code.local_width());
        let lost_at = |lost: &BTreeSet<ChunkKey>, row: u32, col: u32| {
            lost.contains(&chunk_key(obj, row, col))
        };
        // Survivors to fetch, beyond the present data chunks.
        let mut need: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut simple = true;
        for row in 0..code.kn {
            for col in 0..code.kl {
                if !lost_at(&self.lost, row, col) {
                    need.insert((row, col));
                    continue;
                }
                let row_missing = (0..lw).filter(|&c| lost_at(&self.lost, row, c)).count() as u32;
                if lw - row_missing >= code.kl {
                    // Local path: any kl survivors of the row suffice.
                    let mut taken = 0;
                    for c in 0..lw {
                        if !lost_at(&self.lost, row, c) && taken < code.kl {
                            need.insert((row, c));
                            taken += 1;
                        }
                    }
                } else {
                    // Network path: the column's survivors across all rows.
                    let col_present: Vec<u32> =
                        (0..nw).filter(|&r| !lost_at(&self.lost, r, col)).collect();
                    if col_present.len() as u32 >= code.kn {
                        for &r in &col_present {
                            need.insert((r, col));
                        }
                    } else {
                        simple = false;
                    }
                }
            }
        }
        if !simple {
            // Worst case: fetch every survivor and reconstruct the grid.
            need = (0..nw)
                .flat_map(|r| (0..lw).map(move |c| (r, c)))
                .filter(|&(r, c)| !lost_at(&self.lost, r, c))
                .collect();
        }

        // Fetch the survivors into a grid of Options.
        let mut grid: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; lw as usize]; nw as usize];
        let mut end = start;
        let mut fetched = 0u64;
        for &(row, col) in &need {
            let key = chunk_key(obj, row, col);
            if let Some(bytes) = self.cache.get(key) {
                grid[row as usize][col as usize] = Some(bytes.to_vec());
                fetched += 1;
                continue;
            }
            let loc = self.mapper.chunk_at(obj, row, col);
            if !self.backend.read_chunk(key, &mut self.read_buf)? {
                continue; // inconsistent survivor: let the decoder decide
            }
            end = end.max(self.charge_read(&loc, self.read_buf.len(), start, Lane::Foreground));
            self.cache.insert(key, &self.read_buf);
            grid[row as usize][col as usize] = Some(self.read_buf.clone());
            fetched += 1;
        }

        if !simple {
            self.codec.reconstruct(&mut grid).map_err(|e| match e {
                mlec_ec::EcError::TooManyErasures { present, needed } => {
                    StoreError::Unrecoverable {
                        object: obj,
                        detail: format!("{present} survivors where {needed} are needed"),
                    }
                }
                other => StoreError::Codec(other),
            })?;
        }

        // Assemble the payload; decode what is missing.
        let mut payload = Vec::with_capacity(self.cfg.payload_bytes());
        for row in 0..code.kn {
            for col in 0..code.kl {
                if let Some(bytes) = &grid[row as usize][col as usize] {
                    payload.extend_from_slice(bytes);
                    continue;
                }
                let (bytes, _) = self
                    .codec
                    .read_degraded(&grid, row as usize, col as usize)?;
                payload.extend_from_slice(&bytes);
            }
        }
        // Extra survivors = everything fetched that is not the object's own
        // present data (those would have been read anyway).
        let present_data = (0..code.kn)
            .flat_map(|r| (0..code.kl).map(move |c| (r, c)))
            .filter(|&(r, c)| !lost_at(&self.lost, r, c))
            .count() as u64;
        Ok(GetResult {
            payload,
            latency_us: end - now,
            degraded: true,
            chunks_read: fetched.saturating_sub(present_data),
        })
    }

    /// Remove object `obj`; returns the virtual latency.
    pub fn delete(&mut self, obj: u64, now: u64) -> Result<u64, StoreError> {
        if self.versions.remove(&obj).is_none() {
            return Err(StoreError::UnknownObject(obj));
        }
        let (nw, lw) = (self.cfg.code.network_width(), self.cfg.code.local_width());
        let start = now + self.cfg.overhead_us;
        let mut end = start;
        for row in 0..nw {
            for col in 0..lw {
                let key = chunk_key(obj, row, col);
                let loc = self.mapper.chunk_at(obj, row, col);
                if self.backend.delete_chunk(key)? {
                    // Metadata-only touch: seek, no payload transfer.
                    end = end.max(self.arbiter.disk_io(loc.disk, 0, start, Lane::Foreground));
                }
                self.cache.invalidate(key);
                if let Some(set) = self.by_disk.get_mut(&loc.disk) {
                    set.remove(&key);
                }
                self.lost.remove(&key);
            }
        }
        Ok(end - now)
    }

    /// Kill the first `n` racks at virtual time `now`; returns chunks lost.
    pub fn kill_racks(&mut self, n: u32, now: u64) -> u64 {
        let mut disks: Vec<DiskId> = Vec::new();
        for rack in 0..n.min(self.cfg.geometry.racks) {
            disks.extend(self.cfg.geometry.disks_in_rack(rack));
        }
        self.kill_disks(&disks, now)
    }

    /// Kill specific disks at virtual time `now`; every chunk they held is
    /// lost, affected stripes are queued for rebuild after the detection
    /// delay, and the disks are replaced by empty spares (same ids).
    pub fn kill_disks(&mut self, disks: &[DiskId], now: u64) -> u64 {
        let mut affected: BTreeSet<u64> = BTreeSet::new();
        let mut lost_chunks = 0u64;
        for &disk in disks {
            let Some(keys) = self.by_disk.remove(&disk) else {
                continue;
            };
            for key in keys {
                let _ = self.backend.delete_chunk(key);
                self.cache.invalidate(key);
                self.lost.insert(key);
                affected.insert(key >> 12);
                lost_chunks += 1;
            }
        }
        let ready_at = now + self.cfg.detect_us;
        for stripe in affected {
            self.repair.enqueue(stripe, ready_at);
        }
        lost_chunks
    }

    /// Run queued rebuilds whose start time falls at or before `deadline`.
    /// Call with `u64::MAX` to drain the queue completely.
    pub fn pump_repairs(&mut self, deadline: u64) {
        while let Some((stream, start, stripe)) = self.repair.pop_ready(deadline) {
            let end = self.repair_stripe(stripe, start);
            let gap = self.arbiter.repair_pacing_gap_us(end.saturating_sub(start));
            self.repair.complete(stream, end, gap);
        }
    }

    /// Rebuild one stripe: read the surviving grid, reconstruct, write the
    /// lost chunks back to the replacement disks. Returns the finish time.
    fn repair_stripe(&mut self, stripe: u64, start: u64) -> u64 {
        let (nw, lw) = (self.cfg.code.network_width(), self.cfg.code.local_width());
        let lost_keys: Vec<ChunkKey> = self
            .lost
            .range(chunk_key(stripe, 0, 0)..=chunk_key(stripe, nw - 1, lw - 1))
            .copied()
            .collect();
        if lost_keys.is_empty() {
            // Overwritten or deleted while queued: nothing to rebuild.
            self.repair.skipped_stripes += 1;
            return start;
        }
        // Read every survivor (R_FCO-style full-grid rebuild).
        let mut grid: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; lw as usize]; nw as usize];
        let mut read_end = start;
        for row in 0..nw {
            for col in 0..lw {
                let key = chunk_key(stripe, row, col);
                if self.lost.contains(&key) {
                    continue;
                }
                if self
                    .backend
                    .read_chunk(key, &mut self.read_buf)
                    .unwrap_or(false)
                {
                    let loc = self.mapper.chunk_at(stripe, row, col);
                    read_end = read_end.max(self.charge_read(
                        &loc,
                        self.read_buf.len(),
                        start,
                        Lane::Repair,
                    ));
                    grid[row as usize][col as usize] = Some(self.read_buf.clone());
                }
            }
        }
        match self.codec.reconstruct(&mut grid) {
            Ok((local, network)) => {
                self.repaired_local_chunks += local as u64;
                self.repaired_network_chunks += network as u64;
            }
            Err(_) => {
                // Beyond tolerance: give up on this stripe for good.
                self.repair.unrecoverable_stripes += 1;
                for key in lost_keys {
                    self.lost.remove(&key);
                }
                return read_end;
            }
        }
        // Write the rebuilt chunks after the decode fan-in completes.
        let mut end = read_end;
        for key in lost_keys {
            let (_, row, col) = crate::backend::key_parts(key);
            let Some(bytes) = grid[row as usize][col as usize].take() else {
                continue;
            };
            let loc = self.mapper.chunk_at(stripe, row, col);
            let rack = self.mapper.rack_of(&loc);
            let arrived = self.arbiter.rack_xfer(rack, bytes.len(), read_end);
            end = end.max(
                self.arbiter
                    .disk_io(loc.disk, bytes.len(), arrived, Lane::Repair),
            );
            if self.backend.write_chunk(key, &bytes).is_ok() {
                self.by_disk.entry(loc.disk).or_default().insert(key);
                self.lost.remove(&key);
            }
        }
        self.repair.repaired_stripes += 1;
        end
    }

    /// Disk read then cross-rack hop; returns the delivery time.
    fn charge_read(&mut self, loc: &ChunkLocation, bytes: usize, start: u64, lane: Lane) -> u64 {
        let read_done = self.arbiter.disk_io(loc.disk, bytes, start, lane);
        let rack = self.mapper.rack_of(loc);
        self.arbiter.rack_xfer(rack, bytes, read_done)
    }

    /// Current version of `obj`, if live.
    pub fn version_of(&self, obj: u64) -> Option<u64> {
        self.versions.get(&obj).copied()
    }

    /// Live object count.
    pub fn live_objects(&self) -> usize {
        self.versions.len()
    }

    /// Chunks currently lost to failures and not yet rebuilt.
    pub fn lost_chunks(&self) -> usize {
        self.lost.len()
    }

    /// Degraded reads served so far.
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads
    }

    /// `(locally_repaired, network_repaired)` chunk counts from rebuilds.
    pub fn repaired_chunks(&self) -> (u64, u64) {
        (self.repaired_local_chunks, self.repaired_network_chunks)
    }

    /// The repair scheduler (queue depth, completion time, stripe counts).
    pub fn repair(&self) -> &RepairScheduler {
        &self.repair
    }

    /// The chunk cache (hit statistics).
    pub fn cache(&self) -> &ChunkCache {
        &self.cache
    }

    /// The bandwidth arbiter (lane totals).
    pub fn arbiter(&self) -> &BandwidthArbiter {
        &self.arbiter
    }

    /// The backend (chunk counts; tests inspect it directly).
    pub fn backend(&self) -> &B {
        &self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn store() -> MlecStore<MemBackend> {
        MlecStore::new(StoreConfig::small_test(), MemBackend::new()).unwrap()
    }

    fn payload(cfg: &StoreConfig, tag: u8) -> Vec<u8> {
        (0..cfg.payload_bytes())
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(tag))
            .collect()
    }

    #[test]
    fn put_get_round_trip() {
        let mut s = store();
        let p = payload(s.config(), 7);
        let put = s.put(3, &p, 0).unwrap();
        assert_eq!(put.version, 0);
        assert!(put.latency_us > 0);
        let got = s.get(3, 10_000).unwrap();
        assert_eq!(got.payload, p);
        assert!(!got.degraded);
        assert_eq!(got.chunks_read, 0);
        // A second put bumps the version.
        assert_eq!(s.put(3, &p, 20_000).unwrap().version, 1);
        assert_eq!(s.version_of(3), Some(1));
    }

    #[test]
    fn get_and_delete_of_unknown_object_fail() {
        let mut s = store();
        assert!(matches!(s.get(9, 0), Err(StoreError::UnknownObject(9))));
        assert!(matches!(s.delete(9, 0), Err(StoreError::UnknownObject(9))));
    }

    #[test]
    fn rack_kill_forces_degraded_reads_then_repair_heals() {
        let mut s = store();
        let p = payload(s.config(), 3);
        for obj in 0..8u64 {
            s.put(obj, &p, obj * 1_000).unwrap();
        }
        let lost = s.kill_racks(1, 100_000);
        assert!(lost > 0, "a rack kill must lose chunks");

        // Reads still return the exact bytes; damaged stripes go degraded.
        let mut degraded = 0;
        for obj in 0..8u64 {
            let got = s.get(obj, 200_000).unwrap();
            assert_eq!(got.payload, p, "object {obj}");
            if got.degraded {
                degraded += 1;
                assert!(got.chunks_read > 0);
            }
        }
        assert!(degraded > 0, "some stripe must touch the killed rack");
        assert_eq!(s.degraded_reads(), degraded);

        // Drain the rebuild; everything heals.
        s.pump_repairs(u64::MAX);
        assert_eq!(s.lost_chunks(), 0);
        assert!(s.repair().done_at().is_some());
        assert!(s.repair().repaired_stripes > 0);
        let (l, n) = s.repaired_chunks();
        assert_eq!(l + n, lost);
        // Post-repair reads are healthy again.
        let t = s.repair().done_at().unwrap() + 1;
        for obj in 0..8u64 {
            let got = s.get(obj, t).unwrap();
            assert_eq!(got.payload, p);
            assert!(!got.degraded, "object {obj} should be healed");
        }
    }

    #[test]
    fn detection_delay_gates_repair_start() {
        let mut s = store();
        let p = payload(s.config(), 1);
        for obj in 0..8u64 {
            s.put(obj, &p, 0).unwrap();
        }
        let lost = s.kill_racks(1, 50_000);
        assert!(lost > 0, "eight stripes must touch the killed rack");
        let detect = s.config().detect_us;
        // Nothing may start before the detection window elapses.
        s.pump_repairs(50_000 + detect - 1);
        assert_eq!(s.repair().repaired_stripes + s.repair().skipped_stripes, 0);
        s.pump_repairs(u64::MAX);
        assert_eq!(s.lost_chunks(), 0);
        assert!(s.repair().done_at().unwrap() > 50_000 + detect);
    }

    #[test]
    fn overwrite_heals_lost_chunks_without_repair() {
        let mut s = store();
        let p = payload(s.config(), 5);
        s.put(0, &p, 0).unwrap();
        s.kill_racks(1, 10_000);
        if s.lost_chunks() == 0 {
            return; // placement missed rack 0 entirely — nothing to check
        }
        let p2 = payload(s.config(), 6);
        s.put(0, &p2, 20_000).unwrap();
        assert_eq!(s.lost_chunks(), 0, "overwrite re-creates every chunk");
        let got = s.get(0, 30_000).unwrap();
        assert_eq!(got.payload, p2);
        assert!(!got.degraded);
        // The queued repair finds nothing to do.
        s.pump_repairs(u64::MAX);
        assert_eq!(s.repair().repaired_stripes, 0);
        assert!(s.repair().skipped_stripes > 0);
    }

    #[test]
    fn delete_removes_all_chunks_and_latency_is_positive() {
        let mut s = store();
        let p = payload(s.config(), 9);
        s.put(4, &p, 0).unwrap();
        let total = s.config().code.network_width() * s.config().code.local_width();
        assert_eq!(s.backend().chunk_count(), total as usize);
        let lat = s.delete(4, 10_000).unwrap();
        assert!(lat > 0);
        assert_eq!(s.backend().chunk_count(), 0);
        assert_eq!(s.live_objects(), 0);
    }

    #[test]
    fn beyond_tolerance_reads_report_unrecoverable() {
        let mut s = store();
        let p = payload(s.config(), 2);
        s.put(0, &p, 0).unwrap();
        // Killing two racks exceeds p_n = 1 for stripes with two rows
        // there; killing ALL racks certainly kills every stripe.
        s.kill_racks(s.config().geometry.racks, 1_000);
        match s.get(0, 2_000) {
            Err(StoreError::Unrecoverable { object, .. }) => assert_eq!(object, 0),
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }
}
