//! The object store proper: put/get/degraded-get/delete over the
//! two-level codec, with failure injection and online repair.
//!
//! One object occupies exactly one network stripe (object id == network
//! stripe index), placed by the deterministic
//! [`mlec_topology::objectmap::ObjectMapper`] and stored chunk-by-chunk in
//! a pluggable [`crate::backend::ChunkBackend`]. Every byte moved charges
//! the [`crate::arbiter::ShardedArbiter`]'s virtual clocks, so op
//! latencies are a pure function of the op sequence — never of threads,
//! backend speed, or wall time.
//!
//! The mutable state is partitioned along rack boundaries. Placement puts
//! every column of a stripe row inside one rack (the local stripe is
//! rack-local by construction, for every placement scheme), so a row is
//! the natural unit of rack-confined work: all of its backend chunks, its
//! cache entries, its disk clocks, and its uplink clock live in that
//! rack's `RackLane` + [`crate::arbiter::RackClock`] pair. The row
//! helpers on `RackCtx` are the single implementation of per-row
//! charging — the monolithic `put`/`get`/`delete` methods drive them row
//! by row, and the epoch executor ([`crate::epoch`]) drives the *same*
//! helpers from per-rack shard queues, which is what makes the parallel
//! apply bit-identical to the serial one.
//!
//! Failure model: killing a disk (or a whole rack) *loses* its chunks —
//! they are removed from the backend and tracked in a `lost` set — and the
//! disk is immediately replaced by an empty spare with the same id, so
//! later writes land normally. Reads of a damaged stripe take a degraded
//! path mirroring the codec's preference order: decode within the row
//! when the row is locally recoverable (cheap, rack-local), else decode
//! the column over the network, else fetch the whole surviving grid and
//! reconstruct. Affected stripes are queued on the
//! [`crate::repair::RepairScheduler`] and rebuilt in the background,
//! competing with foreground traffic for the same bandwidth. Repair and
//! degraded reads are inherently cross-rack (decode fan-in), so they stay
//! on the monolithic single-threaded paths — the epoch scheduler treats
//! them as barriers.

use crate::arbiter::{Lane, RackClock, RateCard, ShardedArbiter};
use crate::backend::{chunk_key, ChunkBackend, ChunkKey};
use crate::cache::ChunkCache;
use crate::repair::RepairScheduler;
use crate::StoreError;
use mlec_ec::mlec::MlecStripe;
use mlec_ec::MlecCodec;
use mlec_sim::SimConfig;
use mlec_topology::objectmap::{ChunkLocation, MapperCode, ObjectMapper};
use mlec_topology::{DiskId, Geometry, MlecScheme, RackId};
use std::collections::{BTreeMap, BTreeSet};

/// Everything that shapes a store instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Physical shape of the deployment.
    pub geometry: Geometry,
    /// `(k_n + p_n) / (k_l + p_l)` code parameters.
    pub code: MapperCode,
    /// Placement scheme for both levels.
    pub scheme: MlecScheme,
    /// §3 bandwidth/throttle environment shared with the simulators.
    pub sim: SimConfig,
    /// Chunk payload size in bytes.
    pub chunk_bytes: usize,
    /// Total LRU cache capacity in chunks, divided evenly across the
    /// per-rack cache shards (0 disables caching).
    pub cache_chunks: usize,
    /// Per-I/O disk positioning cost, µs.
    pub seek_us: u64,
    /// Fixed software overhead added to every op, µs.
    pub overhead_us: u64,
    /// Failure detection delay before repair may start, µs (the
    /// store-scale analogue of the paper's 30-minute window).
    pub detect_us: u64,
    /// Concurrent rebuild streams.
    pub repair_streams: u32,
    /// Seed of the deterministic declustered placement.
    pub placement_seed: u64,
}

impl StoreConfig {
    /// A small fast deployment for benchmarks and tests: 864 disks
    /// (6 racks × 2 × 12), a `(2+1)/(4+2)` code, declustered at both
    /// levels, 4 KiB chunks.
    pub fn small_test() -> StoreConfig {
        StoreConfig {
            geometry: Geometry::small_test(),
            code: MapperCode {
                kn: 2,
                pn: 1,
                kl: 4,
                pl: 2,
            },
            scheme: MlecScheme::DD,
            sim: SimConfig::paper_default(),
            chunk_bytes: 4096,
            cache_chunks: 4096,
            seek_us: 400,
            overhead_us: 50,
            detect_us: 200_000,
            repair_streams: 4,
            placement_seed: 0x510e,
        }
    }

    /// Bytes of data per object (`k_n * k_l * chunk_bytes`).
    pub fn payload_bytes(&self) -> usize {
        self.code.kn as usize * self.code.kl as usize * self.chunk_bytes
    }
}

/// Outcome of a put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutResult {
    /// Version written (0 for the first put of an object).
    pub version: u64,
    /// Virtual completion latency, µs.
    pub latency_us: u64,
}

/// Outcome of a get.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetResult {
    /// The object's bytes.
    pub payload: Vec<u8>,
    /// Virtual completion latency, µs.
    pub latency_us: u64,
    /// Whether any chunk had to be decoded rather than read.
    pub degraded: bool,
    /// Surviving chunks fetched beyond the object's own present data
    /// chunks (0 for a healthy read).
    pub chunks_read: u64,
}

/// One rack's share of the store state: its chunks, its cache shard, its
/// disk→chunk index, and a scratch read buffer. Exactly one shard owns a
/// lane during an epoch, mirroring the clock-domain split in the arbiter.
#[derive(Debug)]
pub(crate) struct RackLane<B> {
    pub(crate) backend: B,
    pub(crate) cache: ChunkCache,
    pub(crate) by_disk: BTreeMap<DiskId, BTreeSet<ChunkKey>>,
    pub(crate) read_buf: Vec<u8>,
}

/// A borrowed single-rack execution context: the shared rate card, the
/// rack's clock domain, its lane, and the (immutable) placement mapper.
/// The row helpers below are the one implementation of per-row charging;
/// both the monolithic store methods and the epoch shards go through them.
pub(crate) struct RackCtx<'a, B> {
    pub(crate) rates: &'a RateCard,
    pub(crate) clock: &'a mut RackClock,
    pub(crate) lane: &'a mut RackLane<B>,
    pub(crate) mapper: &'a ObjectMapper,
}

impl<B: ChunkBackend> RackCtx<'_, B> {
    /// Disk read then cross-rack hop; returns the delivery time.
    fn charge_read(&mut self, loc: &ChunkLocation, bytes: usize, start: u64, lane: Lane) -> u64 {
        let read_done = self.clock.disk_io(self.rates, loc.disk, bytes, start, lane);
        self.clock.rack_xfer(self.rates, bytes, read_done)
    }

    /// Write one row's chunks: each travels the rack uplink, then lands on
    /// its disk. Returns the completion time of the slowest chunk. Does
    /// not touch the (store-global) `lost` set — the monolithic caller
    /// heals it; epoch callers only run while it is empty.
    pub(crate) fn put_row(
        &mut self,
        obj: u64,
        row: u32,
        chunks: &[Vec<u8>],
        start: u64,
    ) -> Result<u64, StoreError> {
        let mut end = start;
        for (col, data) in chunks.iter().enumerate() {
            let col = col as u32;
            let loc = self.mapper.chunk_at(obj, row, col);
            let key = chunk_key(obj, row, col);
            let arrived = self.clock.rack_xfer(self.rates, data.len(), start);
            end = end.max(self.clock.disk_io(
                self.rates,
                loc.disk,
                data.len(),
                arrived,
                Lane::Foreground,
            ));
            self.lane.backend.write_chunk(key, data)?;
            self.lane.cache.invalidate(key);
            self.lane.by_disk.entry(loc.disk).or_default().insert(key);
        }
        Ok(end)
    }

    /// Read one healthy row's data chunks. Cache hits cost no virtual
    /// time; misses charge disk + uplink and populate the cache. When
    /// `out` is `None` the payload bytes are not materialized (replay
    /// mode: latency depends only on hit/miss and the clocks, so skipping
    /// the copies cannot change the op log). `verify` carries this row's
    /// expected bytes and is checked hit or miss.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn get_row(
        &mut self,
        obj: u64,
        row: u32,
        kl: u32,
        chunk_bytes: usize,
        start: u64,
        verify: Option<&[u8]>,
        mut out: Option<&mut Vec<u8>>,
    ) -> Result<u64, StoreError> {
        let mut end = start;
        for col in 0..kl {
            let key = chunk_key(obj, row, col);
            // PANICS: the verify buffer spans `k_l * chunk_bytes` by construction, covering every column slice.
            let expected =
                verify.map(|v| &v[col as usize * chunk_bytes..(col as usize + 1) * chunk_bytes]);
            if let Some(bytes) = self.lane.cache.get(key) {
                if let Some(exp) = expected {
                    if bytes != exp {
                        return Err(StoreError::CorruptPayload(obj));
                    }
                }
                if let Some(dst) = out.as_deref_mut() {
                    dst.extend_from_slice(bytes);
                }
                continue;
            }
            let loc = self.mapper.chunk_at(obj, row, col);
            let lane = &mut *self.lane;
            if !lane.backend.read_chunk(key, &mut lane.read_buf)? {
                return Err(StoreError::Unrecoverable {
                    object: obj,
                    detail: format!("chunk ({row}, {col}) missing without a recorded loss"),
                });
            }
            let bytes = self.lane.read_buf.len();
            end = end.max(self.charge_read(&loc, bytes, start, Lane::Foreground));
            self.lane.cache.insert(key, &self.lane.read_buf);
            if let Some(exp) = expected {
                if self.lane.read_buf.as_slice() != exp {
                    return Err(StoreError::CorruptPayload(obj));
                }
            }
            if let Some(dst) = out.as_deref_mut() {
                dst.extend_from_slice(&self.lane.read_buf);
            }
        }
        Ok(end)
    }

    /// Delete one row's chunks (all `lw` columns, data and parity).
    /// Present chunks cost a metadata-only seek. Does not touch the
    /// store-global `lost` set (see [`RackCtx::put_row`]).
    pub(crate) fn delete_row(
        &mut self,
        obj: u64,
        row: u32,
        lw: u32,
        start: u64,
    ) -> Result<u64, StoreError> {
        let mut end = start;
        for col in 0..lw {
            let key = chunk_key(obj, row, col);
            let loc = self.mapper.chunk_at(obj, row, col);
            if self.lane.backend.delete_chunk(key)? {
                end = end.max(
                    self.clock
                        .disk_io(self.rates, loc.disk, 0, start, Lane::Foreground),
                );
            }
            self.lane.cache.invalidate(key);
            if let Some(set) = self.lane.by_disk.get_mut(&loc.disk) {
                set.remove(&key);
            }
        }
        Ok(end)
    }
}

/// The MLEC object store over a chunk backend.
#[derive(Debug)]
pub struct MlecStore<B: ChunkBackend> {
    pub(crate) cfg: StoreConfig,
    pub(crate) mapper: ObjectMapper,
    codec: MlecCodec,
    pub(crate) lanes: Vec<RackLane<B>>,
    pub(crate) arbiter: ShardedArbiter,
    repair: RepairScheduler,
    /// Current version per live object.
    versions: BTreeMap<u64, u64>,
    /// Chunks destroyed by failures and not yet rebuilt.
    lost: BTreeSet<ChunkKey>,
    /// Objects whose stripe loss exceeded the code's tolerance: repair
    /// gave up on them, so reads fail until an overwrite or delete.
    /// The epoch scheduler barriers gets on these (their partial charging
    /// is order-dependent).
    dead_objects: BTreeSet<u64>,
    degraded_reads: u64,
    repaired_local_chunks: u64,
    repaired_network_chunks: u64,
}

impl<B: ChunkBackend> MlecStore<B> {
    /// Build a store with one backend per rack, from `backend_for(rack)`.
    pub fn new<F>(cfg: StoreConfig, mut backend_for: F) -> Result<MlecStore<B>, StoreError>
    where
        F: FnMut(RackId) -> Result<B, StoreError>,
    {
        let mapper = ObjectMapper::new(
            cfg.geometry,
            cfg.code,
            cfg.scheme,
            cfg.chunk_bytes as u64,
            cfg.placement_seed,
        );
        let codec = MlecCodec::new(
            cfg.code.kn as usize,
            cfg.code.pn as usize,
            cfg.code.kl as usize,
            cfg.code.pl as usize,
        )?;
        let racks = cfg.geometry.racks.max(1);
        let cache_per_rack = if cfg.cache_chunks == 0 {
            0
        } else {
            cfg.cache_chunks.div_ceil(racks as usize)
        };
        let mut lanes = Vec::with_capacity(racks as usize);
        for rack in 0..racks {
            lanes.push(RackLane {
                backend: backend_for(rack)?,
                cache: ChunkCache::new(cache_per_rack),
                by_disk: BTreeMap::new(),
                read_buf: Vec::new(),
            });
        }
        Ok(MlecStore {
            arbiter: ShardedArbiter::new(&cfg.geometry, &cfg.sim, cfg.seek_us),
            repair: RepairScheduler::new(cfg.repair_streams),
            cfg,
            mapper,
            codec,
            lanes,
            versions: BTreeMap::new(),
            lost: BTreeSet::new(),
            dead_objects: BTreeSet::new(),
            degraded_reads: 0,
            repaired_local_chunks: 0,
            repaired_network_chunks: 0,
        })
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// The codec (for encoding payloads off-thread).
    pub fn codec(&self) -> &MlecCodec {
        &self.codec
    }

    /// The rack hosting row `row` of object `obj` — every column of a row
    /// lives in one rack, which is what makes rows the unit of sharding.
    pub(crate) fn rack_of_row(&self, obj: u64, row: u32) -> RackId {
        self.mapper.rack_of(&self.mapper.chunk_at(obj, row, 0))
    }

    /// Borrow the single-rack context for `rack`: its clock domain, its
    /// lane, and the shared rates/mapper.
    pub(crate) fn rack_ctx(&mut self, rack: RackId) -> RackCtx<'_, B> {
        let (rates, clocks) = self.arbiter.split();
        RackCtx {
            rates,
            // PANICS: `rack` comes from the geometry's rack mapping, bounded by the per-rack clock/lane counts.
            clock: &mut clocks[rack as usize],
            lane: &mut self.lanes[rack as usize],
            mapper: &self.mapper,
        }
    }

    /// Is `obj` live (has a version)?
    pub(crate) fn exists(&self, obj: u64) -> bool {
        self.versions.contains_key(&obj)
    }

    /// Has repair given up on `obj`'s stripe?
    pub(crate) fn is_dead(&self, obj: u64) -> bool {
        self.dead_objects.contains(&obj)
    }

    /// Commit a put's version bump (the epoch scheduler does bookkeeping
    /// serially at routing time; the chunk writes follow in the shards).
    /// Mirrors the version arithmetic of [`MlecStore::put_encoded`].
    pub(crate) fn commit_put_version(&mut self, obj: u64) -> u64 {
        let version = self.versions.get(&obj).map_or(0, |v| v + 1);
        self.versions.insert(obj, version);
        self.dead_objects.remove(&obj);
        version
    }

    /// Commit a delete's liveness change; `false` means the object did
    /// not exist (a miss — nothing to queue).
    pub(crate) fn commit_delete(&mut self, obj: u64) -> bool {
        self.dead_objects.remove(&obj);
        self.versions.remove(&obj).is_some()
    }

    /// Encode a payload into a stripe grid — pure, callable off-thread.
    pub fn encode_payload(&self, payload: &[u8]) -> Result<MlecStripe, StoreError> {
        if payload.len() != self.cfg.payload_bytes() {
            return Err(StoreError::BadSpec(format!(
                "payload is {} bytes, expected {}",
                payload.len(),
                self.cfg.payload_bytes()
            )));
        }
        let chunks: Vec<&[u8]> = payload.chunks(self.cfg.chunk_bytes).collect();
        Ok(self.codec.encode(&chunks)?)
    }

    /// Write object `obj` from a pre-encoded stripe grid. Returns the new
    /// version and the virtual latency.
    pub fn put_encoded(
        &mut self,
        obj: u64,
        stripe: &MlecStripe,
        now: u64,
    ) -> Result<PutResult, StoreError> {
        let (nw, lw) = (self.cfg.code.network_width(), self.cfg.code.local_width());
        if stripe.len() != nw as usize || stripe.iter().any(|r| r.len() != lw as usize) {
            return Err(StoreError::BadSpec(format!(
                "stripe grid is not {nw} x {lw}"
            )));
        }
        let start = now + self.cfg.overhead_us;
        let mut end = start;
        for row in 0..nw {
            let rack = self.rack_of_row(obj, row);
            let row_end = self
                .rack_ctx(rack)
                // PANICS: `row < n_w`, the stripe's row count (encoded by this store's own codec).
                .put_row(obj, row, &stripe[row as usize], start)?;
            end = end.max(row_end);
            // Overwriting heals any lost chunks of this row.
            for col in 0..lw {
                self.lost.remove(&chunk_key(obj, row, col));
            }
        }
        let version = self.commit_put_version(obj);
        Ok(PutResult {
            version,
            latency_us: end - now,
        })
    }

    /// Encode and write object `obj`.
    pub fn put(&mut self, obj: u64, payload: &[u8], now: u64) -> Result<PutResult, StoreError> {
        let stripe = self.encode_payload(payload)?;
        self.put_encoded(obj, &stripe, now)
    }

    /// Bulk-load an object without charging the bandwidth clocks: the
    /// benchmark's pre-population step, which models data that existed
    /// before the measured window opened. Indistinguishable from a put at
    /// version 0 in every other respect.
    pub fn preload_encoded(&mut self, obj: u64, stripe: &MlecStripe) -> Result<(), StoreError> {
        let (nw, lw) = (self.cfg.code.network_width(), self.cfg.code.local_width());
        if stripe.len() != nw as usize || stripe.iter().any(|r| r.len() != lw as usize) {
            return Err(StoreError::BadSpec(format!(
                "stripe grid is not {nw} x {lw}"
            )));
        }
        for row in 0..nw {
            let rack = self.rack_of_row(obj, row) as usize;
            for col in 0..lw {
                let loc = self.mapper.chunk_at(obj, row, col);
                let key = chunk_key(obj, row, col);
                // PANICS: `rack_of_row` maps into `0..racks`; `row`/`col` are bounded by the stripe geometry.
                let lane = &mut self.lanes[rack];
                lane.backend
                    // PANICS: `row < n_w` and `col < k_l`, the encoded stripe's dimensions.
                    .write_chunk(key, &stripe[row as usize][col as usize])?;
                lane.by_disk.entry(loc.disk).or_default().insert(key);
            }
        }
        self.versions.insert(obj, 0);
        Ok(())
    }

    /// Read object `obj`, taking a degraded path when chunks are lost.
    pub fn get(&mut self, obj: u64, now: u64) -> Result<GetResult, StoreError> {
        if !self.versions.contains_key(&obj) {
            return Err(StoreError::UnknownObject(obj));
        }
        let (kn, kl) = (self.cfg.code.kn, self.cfg.code.kl);
        let start = now + self.cfg.overhead_us;
        let any_lost =
            (0..kn).any(|row| (0..kl).any(|col| self.lost.contains(&chunk_key(obj, row, col))));
        if !any_lost {
            return self.get_healthy(obj, now, start);
        }
        self.degraded_reads += 1;
        self.get_degraded(obj, now, start)
    }

    /// Fast path: every data chunk is present.
    fn get_healthy(&mut self, obj: u64, now: u64, start: u64) -> Result<GetResult, StoreError> {
        let (kn, kl) = (self.cfg.code.kn, self.cfg.code.kl);
        let chunk_bytes = self.cfg.chunk_bytes;
        let mut payload = Vec::with_capacity(self.cfg.payload_bytes());
        let mut end = start;
        for row in 0..kn {
            let rack = self.rack_of_row(obj, row);
            let row_end = self.rack_ctx(rack).get_row(
                obj,
                row,
                kl,
                chunk_bytes,
                start,
                None,
                Some(&mut payload),
            )?;
            end = end.max(row_end);
        }
        Ok(GetResult {
            payload,
            latency_us: end - now,
            degraded: false,
            chunks_read: 0,
        })
    }

    /// Degraded path: plan the minimal survivor fetch, fall back to a full
    /// grid reconstruct when the simple row/column paths don't suffice.
    fn get_degraded(&mut self, obj: u64, now: u64, start: u64) -> Result<GetResult, StoreError> {
        let code = self.cfg.code;
        let (nw, lw) = (code.network_width(), code.local_width());
        let lost_at = |lost: &BTreeSet<ChunkKey>, row: u32, col: u32| {
            lost.contains(&chunk_key(obj, row, col))
        };
        // Survivors to fetch, beyond the present data chunks.
        let mut need: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut simple = true;
        for row in 0..code.kn {
            for col in 0..code.kl {
                if !lost_at(&self.lost, row, col) {
                    need.insert((row, col));
                    continue;
                }
                let row_missing = (0..lw).filter(|&c| lost_at(&self.lost, row, c)).count() as u32;
                if lw - row_missing >= code.kl {
                    // Local path: any kl survivors of the row suffice.
                    let mut taken = 0;
                    for c in 0..lw {
                        if !lost_at(&self.lost, row, c) && taken < code.kl {
                            need.insert((row, c));
                            taken += 1;
                        }
                    }
                } else {
                    // Network path: the column's survivors across all rows.
                    let col_present: Vec<u32> =
                        (0..nw).filter(|&r| !lost_at(&self.lost, r, col)).collect();
                    if col_present.len() as u32 >= code.kn {
                        for &r in &col_present {
                            need.insert((r, col));
                        }
                    } else {
                        simple = false;
                    }
                }
            }
        }
        if !simple {
            // Worst case: fetch every survivor and reconstruct the grid.
            need = (0..nw)
                .flat_map(|r| (0..lw).map(move |c| (r, c)))
                .filter(|&(r, c)| !lost_at(&self.lost, r, c))
                .collect();
        }

        // Fetch the survivors into a grid of Options.
        let mut grid: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; lw as usize]; nw as usize];
        let mut end = start;
        let mut fetched = 0u64;
        for &(row, col) in &need {
            let key = chunk_key(obj, row, col);
            let rack = self.rack_of_row(obj, row);
            let mut ctx = self.rack_ctx(rack);
            if let Some(bytes) = ctx.lane.cache.get(key) {
                // PANICS: `grid` is an `n_w x w_l` matrix indexed by the same code geometry as the loop bounds.
                grid[row as usize][col as usize] = Some(bytes.to_vec());
                fetched += 1;
                continue;
            }
            let loc = ctx.mapper.chunk_at(obj, row, col);
            let lane = &mut *ctx.lane;
            if !lane.backend.read_chunk(key, &mut lane.read_buf)? {
                continue; // inconsistent survivor: let the decoder decide
            }
            let bytes = ctx.lane.read_buf.len();
            end = end.max(ctx.charge_read(&loc, bytes, start, Lane::Foreground));
            ctx.lane.cache.insert(key, &ctx.lane.read_buf);
            // PANICS: same grid bounds: `row < k_n`, `col < k_l` within the code geometry.
            grid[row as usize][col as usize] = Some(ctx.lane.read_buf.clone());
            fetched += 1;
        }

        if !simple {
            self.codec.reconstruct(&mut grid).map_err(|e| match e {
                mlec_ec::EcError::TooManyErasures { present, needed } => {
                    StoreError::Unrecoverable {
                        object: obj,
                        detail: format!("{present} survivors where {needed} are needed"),
                    }
                }
                other => StoreError::Codec(other),
            })?;
        }

        // Assemble the payload; decode what is missing.
        let mut payload = Vec::with_capacity(self.cfg.payload_bytes());
        for row in 0..code.kn {
            for col in 0..code.kl {
                // PANICS: same grid bounds as the fetch loop above.
                if let Some(bytes) = &grid[row as usize][col as usize] {
                    payload.extend_from_slice(bytes);
                    continue;
                }
                let (bytes, _) = self
                    .codec
                    .read_degraded(&grid, row as usize, col as usize)?;
                payload.extend_from_slice(&bytes);
            }
        }
        // Extra survivors = everything fetched that is not the object's own
        // present data (those would have been read anyway).
        let present_data = (0..code.kn)
            .flat_map(|r| (0..code.kl).map(move |c| (r, c)))
            .filter(|&(r, c)| !lost_at(&self.lost, r, c))
            .count() as u64;
        Ok(GetResult {
            payload,
            latency_us: end - now,
            degraded: true,
            chunks_read: fetched.saturating_sub(present_data),
        })
    }

    /// Remove object `obj`; returns the virtual latency.
    pub fn delete(&mut self, obj: u64, now: u64) -> Result<u64, StoreError> {
        if !self.commit_delete(obj) {
            return Err(StoreError::UnknownObject(obj));
        }
        let (nw, lw) = (self.cfg.code.network_width(), self.cfg.code.local_width());
        let start = now + self.cfg.overhead_us;
        let mut end = start;
        for row in 0..nw {
            let rack = self.rack_of_row(obj, row);
            let row_end = self.rack_ctx(rack).delete_row(obj, row, lw, start)?;
            end = end.max(row_end);
            for col in 0..lw {
                self.lost.remove(&chunk_key(obj, row, col));
            }
        }
        Ok(end - now)
    }

    /// Kill the first `n` racks at virtual time `now`; returns chunks lost.
    pub fn kill_racks(&mut self, n: u32, now: u64) -> u64 {
        let mut disks: Vec<DiskId> = Vec::new();
        for rack in 0..n.min(self.cfg.geometry.racks) {
            disks.extend(self.cfg.geometry.disks_in_rack(rack));
        }
        self.kill_disks(&disks, now)
    }

    /// Kill specific disks at virtual time `now`; every chunk they held is
    /// lost, affected stripes are queued for rebuild after the detection
    /// delay, and the disks are replaced by empty spares (same ids).
    pub fn kill_disks(&mut self, disks: &[DiskId], now: u64) -> u64 {
        let mut affected: BTreeSet<u64> = BTreeSet::new();
        let mut lost_chunks = 0u64;
        for &disk in disks {
            let rack = self.cfg.geometry.rack_of(disk) as usize;
            // PANICS: `rack_of` maps any disk id into `0..racks`, the lane count.
            let lane = &mut self.lanes[rack];
            let Some(keys) = lane.by_disk.remove(&disk) else {
                continue;
            };
            for key in keys {
                let _ = lane.backend.delete_chunk(key);
                lane.cache.invalidate(key);
                self.lost.insert(key);
                affected.insert(key >> 12);
                lost_chunks += 1;
            }
        }
        let ready_at = now + self.cfg.detect_us;
        for stripe in affected {
            self.repair.enqueue(stripe, ready_at);
        }
        lost_chunks
    }

    /// Run queued rebuilds whose start time falls at or before `deadline`.
    /// Call with `u64::MAX` to drain the queue completely.
    pub fn pump_repairs(&mut self, deadline: u64) {
        while let Some((stream, start, stripe)) = self.repair.pop_ready(deadline) {
            let end = self.repair_stripe(stripe, start);
            let gap = self.arbiter.repair_pacing_gap_us(end.saturating_sub(start));
            self.repair.complete(stream, end, gap);
        }
    }

    /// Rebuild one stripe: read the surviving grid, reconstruct, write the
    /// lost chunks back to the replacement disks. Returns the finish time.
    fn repair_stripe(&mut self, stripe: u64, start: u64) -> u64 {
        let (nw, lw) = (self.cfg.code.network_width(), self.cfg.code.local_width());
        let lost_keys: Vec<ChunkKey> = self
            .lost
            .range(chunk_key(stripe, 0, 0)..=chunk_key(stripe, nw - 1, lw - 1))
            .copied()
            .collect();
        if lost_keys.is_empty() {
            // Overwritten or deleted while queued: nothing to rebuild.
            self.repair.skipped_stripes += 1;
            return start;
        }
        // Read every survivor (R_FCO-style full-grid rebuild).
        let mut grid: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; lw as usize]; nw as usize];
        let mut read_end = start;
        for row in 0..nw {
            let rack = self.rack_of_row(stripe, row);
            for col in 0..lw {
                let key = chunk_key(stripe, row, col);
                if self.lost.contains(&key) {
                    continue;
                }
                let mut ctx = self.rack_ctx(rack);
                let loc = ctx.mapper.chunk_at(stripe, row, col);
                let lane = &mut *ctx.lane;
                if lane
                    .backend
                    .read_chunk(key, &mut lane.read_buf)
                    .unwrap_or(false)
                {
                    let bytes = ctx.lane.read_buf.len();
                    read_end = read_end.max(ctx.charge_read(&loc, bytes, start, Lane::Repair));
                    // PANICS: `row`/`col` come from `chunk_at` locations within the code geometry, matching the grid dimensions.
                    grid[row as usize][col as usize] = Some(ctx.lane.read_buf.clone());
                }
            }
        }
        match self.codec.reconstruct(&mut grid) {
            Ok((local, network)) => {
                self.repaired_local_chunks += local as u64;
                self.repaired_network_chunks += network as u64;
            }
            Err(_) => {
                // Beyond tolerance: give up on this stripe for good. Reads
                // of the object now fail until it is overwritten, and the
                // epoch scheduler must barrier them — mark it dead.
                self.repair.unrecoverable_stripes += 1;
                self.dead_objects.insert(stripe);
                for key in lost_keys {
                    self.lost.remove(&key);
                }
                return read_end;
            }
        }
        // Write the rebuilt chunks after the decode fan-in completes.
        let mut end = read_end;
        for key in lost_keys {
            let (_, row, col) = crate::backend::key_parts(key);
            // PANICS: `key_parts` round-trips keys this store minted, so `row`/`col` sit inside the grid.
            let Some(bytes) = grid[row as usize][col as usize].take() else {
                continue;
            };
            let rack = self.rack_of_row(stripe, row);
            let ctx = self.rack_ctx(rack);
            let loc = ctx.mapper.chunk_at(stripe, row, col);
            let arrived = ctx.clock.rack_xfer(ctx.rates, bytes.len(), read_end);
            end =
                end.max(
                    ctx.clock
                        .disk_io(ctx.rates, loc.disk, bytes.len(), arrived, Lane::Repair),
                );
            if ctx.lane.backend.write_chunk(key, &bytes).is_ok() {
                ctx.lane.by_disk.entry(loc.disk).or_default().insert(key);
                self.lost.remove(&key);
            }
        }
        self.repair.repaired_stripes += 1;
        end
    }

    /// Current version of `obj`, if live.
    pub fn version_of(&self, obj: u64) -> Option<u64> {
        self.versions.get(&obj).copied()
    }

    /// Live object count.
    pub fn live_objects(&self) -> usize {
        self.versions.len()
    }

    /// Chunks currently lost to failures and not yet rebuilt.
    pub fn lost_chunks(&self) -> usize {
        self.lost.len()
    }

    /// Degraded reads served so far.
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads
    }

    /// `(locally_repaired, network_repaired)` chunk counts from rebuilds.
    pub fn repaired_chunks(&self) -> (u64, u64) {
        (self.repaired_local_chunks, self.repaired_network_chunks)
    }

    /// The repair scheduler (queue depth, completion time, stripe counts).
    pub fn repair(&self) -> &RepairScheduler {
        &self.repair
    }

    /// Aggregate cache hit rate over all rack cache shards, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let (mut hits, mut misses) = (0u64, 0u64);
        for lane in &self.lanes {
            let (h, m) = lane.cache.stats();
            hits += h;
            misses += m;
        }
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Chunks currently cached, over all rack cache shards.
    pub fn cached_chunks(&self) -> usize {
        self.lanes.iter().map(|l| l.cache.len()).sum()
    }

    /// The bandwidth arbiter (lane totals).
    pub fn arbiter(&self) -> &ShardedArbiter {
        &self.arbiter
    }

    /// Chunks stored, over all rack backends.
    pub fn chunk_count(&self) -> usize {
        self.lanes.iter().map(|l| l.backend.chunk_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn store() -> MlecStore<MemBackend> {
        MlecStore::new(StoreConfig::small_test(), |_| Ok(MemBackend::new())).unwrap()
    }

    fn payload(cfg: &StoreConfig, tag: u8) -> Vec<u8> {
        (0..cfg.payload_bytes())
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(tag))
            .collect()
    }

    #[test]
    fn put_get_round_trip() {
        let mut s = store();
        let p = payload(s.config(), 7);
        let put = s.put(3, &p, 0).unwrap();
        assert_eq!(put.version, 0);
        assert!(put.latency_us > 0);
        let got = s.get(3, 10_000).unwrap();
        assert_eq!(got.payload, p);
        assert!(!got.degraded);
        assert_eq!(got.chunks_read, 0);
        // A second put bumps the version.
        assert_eq!(s.put(3, &p, 20_000).unwrap().version, 1);
        assert_eq!(s.version_of(3), Some(1));
    }

    #[test]
    fn get_and_delete_of_unknown_object_fail() {
        let mut s = store();
        assert!(matches!(s.get(9, 0), Err(StoreError::UnknownObject(9))));
        assert!(matches!(s.delete(9, 0), Err(StoreError::UnknownObject(9))));
    }

    #[test]
    fn rows_of_a_stripe_land_in_distinct_racks() {
        // The sharding invariant: every column of a row shares one rack,
        // and the rows of a stripe spread over distinct racks.
        let s = store();
        let (nw, lw) = (
            s.config().code.network_width(),
            s.config().code.local_width(),
        );
        for obj in 0..32u64 {
            let mut row_racks = Vec::new();
            for row in 0..nw {
                let rack = s.rack_of_row(obj, row);
                for col in 0..lw {
                    let loc = s.mapper.chunk_at(obj, row, col);
                    assert_eq!(
                        s.mapper.rack_of(&loc),
                        rack,
                        "obj {obj} row {row} col {col}"
                    );
                }
                row_racks.push(rack);
            }
            row_racks.sort_unstable();
            row_racks.dedup();
            assert_eq!(row_racks.len(), nw as usize, "obj {obj} rows share a rack");
        }
    }

    #[test]
    fn rack_kill_forces_degraded_reads_then_repair_heals() {
        let mut s = store();
        let p = payload(s.config(), 3);
        for obj in 0..8u64 {
            s.put(obj, &p, obj * 1_000).unwrap();
        }
        let lost = s.kill_racks(1, 100_000);
        assert!(lost > 0, "a rack kill must lose chunks");

        // Reads still return the exact bytes; damaged stripes go degraded.
        let mut degraded = 0;
        for obj in 0..8u64 {
            let got = s.get(obj, 200_000).unwrap();
            assert_eq!(got.payload, p, "object {obj}");
            if got.degraded {
                degraded += 1;
                assert!(got.chunks_read > 0);
            }
        }
        assert!(degraded > 0, "some stripe must touch the killed rack");
        assert_eq!(s.degraded_reads(), degraded);

        // Drain the rebuild; everything heals.
        s.pump_repairs(u64::MAX);
        assert_eq!(s.lost_chunks(), 0);
        assert!(s.repair().done_at().is_some());
        assert!(s.repair().repaired_stripes > 0);
        let (l, n) = s.repaired_chunks();
        assert_eq!(l + n, lost);
        // Post-repair reads are healthy again.
        let t = s.repair().done_at().unwrap() + 1;
        for obj in 0..8u64 {
            let got = s.get(obj, t).unwrap();
            assert_eq!(got.payload, p);
            assert!(!got.degraded, "object {obj} should be healed");
        }
    }

    #[test]
    fn detection_delay_gates_repair_start() {
        let mut s = store();
        let p = payload(s.config(), 1);
        for obj in 0..8u64 {
            s.put(obj, &p, 0).unwrap();
        }
        let lost = s.kill_racks(1, 50_000);
        assert!(lost > 0, "eight stripes must touch the killed rack");
        let detect = s.config().detect_us;
        // Nothing may start before the detection window elapses.
        s.pump_repairs(50_000 + detect - 1);
        assert_eq!(s.repair().repaired_stripes + s.repair().skipped_stripes, 0);
        s.pump_repairs(u64::MAX);
        assert_eq!(s.lost_chunks(), 0);
        assert!(s.repair().done_at().unwrap() > 50_000 + detect);
    }

    #[test]
    fn overwrite_heals_lost_chunks_without_repair() {
        let mut s = store();
        let p = payload(s.config(), 5);
        s.put(0, &p, 0).unwrap();
        s.kill_racks(1, 10_000);
        if s.lost_chunks() == 0 {
            return; // placement missed rack 0 entirely — nothing to check
        }
        let p2 = payload(s.config(), 6);
        s.put(0, &p2, 20_000).unwrap();
        assert_eq!(s.lost_chunks(), 0, "overwrite re-creates every chunk");
        let got = s.get(0, 30_000).unwrap();
        assert_eq!(got.payload, p2);
        assert!(!got.degraded);
        // The queued repair finds nothing to do.
        s.pump_repairs(u64::MAX);
        assert_eq!(s.repair().repaired_stripes, 0);
        assert!(s.repair().skipped_stripes > 0);
    }

    #[test]
    fn delete_removes_all_chunks_and_latency_is_positive() {
        let mut s = store();
        let p = payload(s.config(), 9);
        s.put(4, &p, 0).unwrap();
        let total = s.config().code.network_width() * s.config().code.local_width();
        assert_eq!(s.chunk_count(), total as usize);
        let lat = s.delete(4, 10_000).unwrap();
        assert!(lat > 0);
        assert_eq!(s.chunk_count(), 0);
        assert_eq!(s.live_objects(), 0);
    }

    #[test]
    fn beyond_tolerance_reads_report_unrecoverable() {
        let mut s = store();
        let p = payload(s.config(), 2);
        s.put(0, &p, 0).unwrap();
        // Killing two racks exceeds p_n = 1 for stripes with two rows
        // there; killing ALL racks certainly kills every stripe.
        s.kill_racks(s.config().geometry.racks, 1_000);
        match s.get(0, 2_000) {
            Err(StoreError::Unrecoverable { object, .. }) => assert_eq!(object, 0),
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn unrecoverable_stripe_is_marked_dead_after_repair_gives_up() {
        let mut s = store();
        let p = payload(s.config(), 4);
        s.put(0, &p, 0).unwrap();
        s.kill_racks(s.config().geometry.racks, 1_000);
        assert!(!s.is_dead(0), "deadness is decided by repair, not the kill");
        s.pump_repairs(u64::MAX);
        assert!(s.is_dead(0));
        assert_eq!(s.lost_chunks(), 0, "repair abandons the lost records");
        assert!(s.repair().unrecoverable_stripes > 0);
        // An overwrite revives the object.
        s.put(0, &p, 2_000_000).unwrap();
        assert!(!s.is_dead(0));
        let got = s.get(0, 3_000_000).unwrap();
        assert_eq!(got.payload, p);
    }
}
