//! `mlec-store` — the serving path on top of the MLEC two-level codec
//! (ROADMAP item 3): an object store whose degraded reads and repair
//! traffic compete with foreground I/O for the same bandwidth model the
//! system simulator uses.
//!
//! The paper evaluates MLEC as a data-center storage *design*; this crate
//! promotes the reproduction into a *system*. Objects map 1:1 onto network
//! stripes via [`mlec_topology::objectmap::ObjectMapper`], chunks live in a
//! pluggable [`backend::ChunkBackend`] (in-memory or file-backed) behind a
//! bounded deterministic LRU [`cache::ChunkCache`], and every byte moved —
//! foreground reads/writes, degraded-read decode fan-in, online rebuild —
//! reserves capacity on the [`arbiter::ShardedArbiter`]'s per-disk and
//! per-rack clocks. Latency is therefore *virtual* (a pure function of the
//! op trace, the placement seed, and the §3 bandwidth parameters), which is
//! what makes op logs bit-identical across thread and shard counts: threads
//! parallelize the pure prepare work (payload synthesis, stripe encode,
//! verification) inside the batched I/O core ([`iocore`]), and the epoch
//! scheduler ([`epoch`]) applies rack-confined state mutation on per-rack
//! shards whose clock domains never interact, merging completion times
//! with a deterministic max-join. Order-sensitive ops (kills, anything
//! under active repair) are epoch barriers and run on the monolithic path.
//!
//! The crate is driven by a deterministic trace-driven load generator
//! ([`loadgen`], Zipf object popularity seeded via `mlec-runner` seed
//! streams) with mid-trace failure injection, and measured with streaming
//! p50/p99/p999 [`histogram::LatencyHistogram`]s — the
//! rebuild-vs-foreground tail-latency scenario of Rashmi et al.'s
//! Facebook-warehouse study, made concrete. `mlec run store_bench` is the
//! registry entry point.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod arbiter;
pub mod backend;
pub mod benchrun;
pub mod cache;
pub mod epoch;
pub mod histogram;
pub mod iocore;
pub mod loadgen;
pub mod oplog;
pub mod repair;
pub mod stopwatch;
pub mod store;

pub use arbiter::{BandwidthArbiter, Lane, RackClock, RateCard, ShardedArbiter};
pub use backend::{ChunkBackend, ChunkKey, FileBackend, MemBackend};
pub use benchrun::{
    payload_for, run_store_bench, BackendChoice, BenchSpec, PhaseSummary, StoreBenchReport,
};
pub use cache::ChunkCache;
pub use histogram::LatencyHistogram;
pub use loadgen::{KillSpec, LoadGen, LoadSpec, OpKind, TraceOp};
pub use store::{GetResult, MlecStore, PutResult, StoreConfig};

use std::fmt;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// `get`/`delete` of an object that was never `put` (or was deleted).
    UnknownObject(u64),
    /// Too many chunks of the object's stripe are gone: the failure
    /// exceeded the code's tolerance.
    Unrecoverable {
        /// The object whose stripe cannot be decoded.
        object: u64,
        /// Chunks still present vs. needed, for the message.
        detail: String,
    },
    /// A payload read back differs from what was written (verification).
    CorruptPayload(u64),
    /// Codec-level failure (shape mismatch, singular decode…).
    Codec(mlec_ec::EcError),
    /// File-backend I/O failure.
    Io(std::io::Error),
    /// Malformed benchmark/trace specification.
    BadSpec(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownObject(o) => write!(f, "unknown object {o}"),
            StoreError::Unrecoverable { object, detail } => {
                write!(f, "object {object} unrecoverable: {detail}")
            }
            StoreError::CorruptPayload(o) => {
                write!(f, "object {o}: read-back bytes differ from the put payload")
            }
            StoreError::Codec(e) => write!(f, "codec: {e}"),
            StoreError::Io(e) => write!(f, "backend I/O: {e}"),
            StoreError::BadSpec(s) => write!(f, "bad spec: {s}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<mlec_ec::EcError> for StoreError {
    fn from(e: mlec_ec::EcError) -> StoreError {
        StoreError::Codec(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}
