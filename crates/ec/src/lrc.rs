//! Azure-style `(k, l, r)` Locally Repairable Codes (paper §5.2, Fig. 14).
//!
//! The `k` data chunks are split into `l` local groups; each group gets one
//! XOR local parity (cheap single-failure repair reads only the group), and
//! `r` Reed–Solomon global parities are computed over all `k` data chunks.
//!
//! Chunk index layout: `[0, k)` data, `[k, k+l)` local parities,
//! `[k+l, k+l+r)` global parities.
//!
//! Decodability of an erasure pattern is decided *exactly* by a rank test on
//! the surviving rows of the generator matrix (memoized, since the burst
//! analysis evaluates millions of patterns). This captures both the
//! guaranteed patterns (any `r+1` failures with at most one per group are
//! always recoverable) and the probabilistic ones the paper's PDL analysis
//! relies on.

use crate::EcError;
use mlec_gf::field::gf_inv;
use mlec_gf::matrix::Matrix;
use mlec_gf::slice::dot_into;
use std::collections::HashMap;
use std::sync::Mutex;

/// A `(k, l, r)` LRC codec with exact decodability testing.
pub struct Lrc {
    k: usize,
    l: usize,
    r: usize,
    /// `n x k` generator matrix (`n = k + l + r`).
    generator: Matrix,
    /// Data-chunk indices of each local group.
    groups: Vec<Vec<usize>>,
    /// Memoized decodability verdicts keyed by erasure bitmask words.
    memo: Mutex<HashMap<Vec<u64>, bool>>,
}

impl Clone for Lrc {
    fn clone(&self) -> Lrc {
        Lrc {
            k: self.k,
            l: self.l,
            r: self.r,
            generator: self.generator.clone(),
            groups: self.groups.clone(),
            memo: Mutex::new(HashMap::new()),
        }
    }
}

impl Lrc {
    /// Create a `(k, l, r)` LRC. `k` need not be divisible by `l`; groups
    /// are balanced to within one chunk.
    ///
    /// # Errors
    /// [`EcError::InvalidParameters`] if any parameter is zero, `l > k`, or
    /// the total width `k + l + r` exceeds 256.
    pub fn new(k: usize, l: usize, r: usize) -> Result<Lrc, EcError> {
        if k == 0 || l == 0 || r == 0 {
            return Err(EcError::InvalidParameters(
                "k, l, r must all be positive".into(),
            ));
        }
        if l > k {
            return Err(EcError::InvalidParameters(format!(
                "cannot split {k} data chunks into {l} local groups"
            )));
        }
        if k + l + r > 256 {
            return Err(EcError::InvalidParameters(format!(
                "total width {} exceeds 256",
                k + l + r
            )));
        }

        // Balanced group assignment: first (k % l) groups get one extra.
        let base = k / l;
        let extra = k % l;
        let mut groups = Vec::with_capacity(l);
        let mut next = 0;
        for g in 0..l {
            let size = base + usize::from(g < extra);
            groups.push((next..next + size).collect::<Vec<_>>());
            next += size;
        }

        let mut generator = Matrix::identity(k);
        // Local parity rows: XOR of the group's data chunks.
        let mut local = Matrix::zero(l, k);
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                local.set(g, m, 1);
            }
        }
        generator = generator.stack(&local);
        // Global parity rows: *non-normalized* Cauchy rows over points
        // disjoint from the data columns. (A normalized construction would
        // make the first global row all ones — linearly dependent on the sum
        // of the XOR local-parity rows, destroying recoverability of
        // concentrated failures.)
        let mut global = Matrix::zero(r, k);
        for gi in 0..r {
            for j in 0..k {
                global.set(gi, j, gf_inv(((k + gi) as u8) ^ (j as u8)));
            }
        }
        generator = generator.stack(&global);

        Ok(Lrc {
            k,
            l,
            r,
            generator,
            groups,
            memo: Mutex::new(HashMap::new()),
        })
    }

    /// Number of data chunks.
    pub fn data_chunks(&self) -> usize {
        self.k
    }

    /// Number of local groups / local parities.
    pub fn local_groups(&self) -> usize {
        self.l
    }

    /// Number of global parities.
    pub fn global_parities(&self) -> usize {
        self.r
    }

    /// Total chunks per stripe (`k + l + r`).
    pub fn total_chunks(&self) -> usize {
        self.k + self.l + self.r
    }

    /// Storage overhead: parity bytes / data bytes.
    pub fn parity_overhead(&self) -> f64 {
        (self.l + self.r) as f64 / self.k as f64
    }

    /// The data-chunk indices belonging to local group `g`.
    pub fn group_members(&self, g: usize) -> &[usize] {
        &self.groups[g]
    }

    /// The local group that chunk `idx` belongs to, or `None` for global
    /// parities.
    pub fn group_of(&self, idx: usize) -> Option<usize> {
        if idx < self.k {
            self.groups.iter().position(|g| g.contains(&idx))
        } else if idx < self.k + self.l {
            Some(idx - self.k)
        } else {
            None
        }
    }

    /// Chunks read to repair a *single* failed chunk: group repair for data
    /// and local parities (group size), global decode (`k` chunks) for a
    /// global parity. This is the §5.2.4 repair-traffic primitive.
    pub fn single_repair_cost(&self, idx: usize) -> usize {
        match self.group_of(idx) {
            Some(g) => self.groups[g].len(),
            None => self.k,
        }
    }

    /// Encode `k` data chunks into `k + l + r` chunks.
    pub fn encode<T: AsRef<[u8]>>(&self, data: &[T]) -> Result<Vec<Vec<u8>>, EcError> {
        if data.len() != self.k {
            return Err(EcError::ShapeMismatch(format!(
                "expected {} data chunks, got {}",
                self.k,
                data.len()
            )));
        }
        let len = data[0].as_ref().len();
        if data.iter().any(|d| d.as_ref().len() != len) {
            return Err(EcError::ShapeMismatch(
                "data chunks differ in length".into(),
            ));
        }
        let refs: Vec<&[u8]> = data.iter().map(std::convert::AsRef::as_ref).collect();
        let mut out: Vec<Vec<u8>> = data.iter().map(|d| d.as_ref().to_vec()).collect();
        for row in self.k..self.total_chunks() {
            let mut chunk = vec![0u8; len];
            dot_into(self.generator.row(row), &refs, &mut chunk);
            out.push(chunk);
        }
        Ok(out)
    }

    /// Exact decodability test: can the data be recovered when exactly the
    /// chunks flagged in `erased` are lost?
    ///
    /// # Panics
    /// Panics if `erased.len() != self.total_chunks()`.
    pub fn decodable(&self, erased: &[bool]) -> bool {
        assert_eq!(erased.len(), self.total_chunks(), "erasure mask length");
        let words = mask_words(erased);
        if let Some(&v) = self.memo.lock().unwrap().get(&words) {
            return v;
        }
        let surviving: Vec<usize> = (0..self.total_chunks()).filter(|&i| !erased[i]).collect();
        let verdict = if surviving.len() < self.k {
            false
        } else {
            self.generator.select_rows(&surviving).rank() == self.k
        };
        self.memo.lock().unwrap().insert(words, verdict);
        verdict
    }

    /// Fast sufficient check used as a pre-filter: decodable for sure if,
    /// after letting each local group fix one of its own erasures, at most
    /// `r` erasures remain. (The rank test is the authority; this mirrors
    /// the "information-theoretically decodable" intuition in the paper's
    /// references.)
    pub fn decodable_heuristic(&self, erased: &[bool]) -> bool {
        // Each group whose local parity survives can fix one of its own data
        // erasures for free; every remaining data erasure consumes one
        // *surviving* global parity. Lost parities are recomputable once the
        // data is back, so they never consume budget themselves.
        let mut remaining_data = 0usize;
        for (g, members) in self.groups.iter().enumerate() {
            let d = members.iter().filter(|&&m| erased[m]).count();
            let parity_lost = erased[self.k + g];
            remaining_data += if parity_lost { d } else { d.saturating_sub(1) };
        }
        let globals_lost = (0..self.r)
            .filter(|&gi| erased[self.k + self.l + gi])
            .count();
        remaining_data <= self.r - globals_lost.min(self.r)
    }

    /// Plan the minimal-read repair of an erasure pattern: which surviving
    /// chunks each lost chunk should be decoded from. Local-group decodes
    /// (group-size reads, the LRC selling point) are used wherever a group
    /// has exactly one erasure and a surviving parity; everything else falls
    /// back to a shared global decode reading `k` independent survivors.
    ///
    /// Returns `(per-chunk plans, total distinct chunks read)` or `None`
    /// when the pattern is undecodable.
    pub fn plan_repair(&self, erased: &[bool]) -> Option<(Vec<RepairPlanEntry>, usize)> {
        assert_eq!(erased.len(), self.total_chunks(), "erasure mask length");
        if !self.decodable(erased) {
            return None;
        }
        let mut plans = Vec::new();
        let mut global_targets: Vec<usize> = Vec::new();

        // Group-local repairs: one erasure within a group whose other
        // members (incl. parity) survive.
        for (g, members) in self.groups.iter().enumerate() {
            let parity = self.k + g;
            let mut lost: Vec<usize> = members.iter().copied().filter(|&m| erased[m]).collect();
            if erased[parity] {
                lost.push(parity);
            }
            match lost.len() {
                0 => {}
                1 => {
                    let target = lost[0];
                    let reads: Vec<usize> = members
                        .iter()
                        .copied()
                        .chain(std::iter::once(parity))
                        .filter(|&c| c != target)
                        .collect();
                    plans.push(RepairPlanEntry {
                        target,
                        reads,
                        local: true,
                    });
                }
                _ => global_targets.extend(lost),
            }
        }
        // Global parities are re-encoded from data; lost globals join the
        // global phase.
        for gi in 0..self.r {
            if erased[self.k + self.l + gi] {
                global_targets.push(self.k + self.l + gi);
            }
        }

        if !global_targets.is_empty() {
            // One shared global decode: k independent surviving rows.
            let surviving: Vec<usize> = (0..self.total_chunks()).filter(|&i| !erased[i]).collect();
            let mut chosen: Vec<usize> = Vec::with_capacity(self.k);
            for &s in &surviving {
                if chosen.len() == self.k {
                    break;
                }
                let mut cand = chosen.clone();
                cand.push(s);
                if self.generator.select_rows(&cand).rank() == cand.len() {
                    chosen = cand;
                }
            }
            debug_assert_eq!(chosen.len(), self.k);
            for &target in &global_targets {
                plans.push(RepairPlanEntry {
                    target,
                    reads: chosen.clone(),
                    local: false,
                });
            }
        }

        let mut read_set: Vec<usize> = plans.iter().flat_map(|p| p.reads.clone()).collect();
        read_set.sort_unstable();
        read_set.dedup();
        Some((plans, read_set.len()))
    }

    /// Reconstruct all missing chunks in place, or report failure.
    ///
    /// # Errors
    /// [`EcError::TooManyErasures`] when the pattern is not decodable.
    pub fn reconstruct(&self, chunks: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        if chunks.len() != self.total_chunks() {
            return Err(EcError::ShapeMismatch(format!(
                "expected {} chunk slots, got {}",
                self.total_chunks(),
                chunks.len()
            )));
        }
        let erased: Vec<bool> = chunks.iter().map(std::option::Option::is_none).collect();
        if erased.iter().all(|&e| !e) {
            return Ok(());
        }
        if !self.decodable(&erased) {
            let present = erased.iter().filter(|&&e| !e).count();
            return Err(EcError::TooManyErasures {
                present,
                needed: self.k,
            });
        }
        let surviving: Vec<usize> = (0..chunks.len()).filter(|&i| !erased[i]).collect();
        // Pick k independent surviving rows by greedy rank growth.
        let mut chosen: Vec<usize> = Vec::with_capacity(self.k);
        for &s in &surviving {
            if chosen.len() == self.k {
                break;
            }
            let mut cand = chosen.clone();
            cand.push(s);
            if self.generator.select_rows(&cand).rank() == cand.len() {
                chosen = cand;
            }
        }
        debug_assert_eq!(chosen.len(), self.k, "decodable pattern must yield k rows");
        let sub = self.generator.select_rows(&chosen);
        let inv = sub.invert().expect("chosen rows are independent");
        let len = chunks[chosen[0]].as_ref().unwrap().len();
        let helper_refs: Vec<&[u8]> = chosen
            .iter()
            .map(|&i| chunks[i].as_deref().unwrap())
            .collect();
        // Rebuild the data chunks first.
        let mut data: Vec<Vec<u8>> = Vec::with_capacity(self.k);
        for (d, chunk) in chunks.iter().enumerate().take(self.k) {
            if let Some(buf) = chunk {
                data.push(buf.clone());
            } else {
                let mut out = vec![0u8; len];
                dot_into(inv.row(d), &helper_refs, &mut out);
                data.push(out);
            }
        }
        let data_refs: Vec<&[u8]> = data.iter().map(std::vec::Vec::as_slice).collect();
        for i in 0..self.total_chunks() {
            if chunks[i].is_none() {
                if i < self.k {
                    chunks[i] = Some(data[i].clone());
                } else {
                    let mut out = vec![0u8; len];
                    dot_into(self.generator.row(i), &data_refs, &mut out);
                    chunks[i] = Some(out);
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Lrc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Lrc({},{},{})", self.k, self.l, self.r)
    }
}

/// One step of an LRC repair plan (see [`Lrc::plan_repair`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPlanEntry {
    /// The lost chunk to rebuild.
    pub target: usize,
    /// Chunks to read.
    pub reads: Vec<usize>,
    /// True for a group-local decode (cheap), false for a global decode.
    pub local: bool,
}

fn mask_words(erased: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; erased.len().div_ceil(64)];
    for (i, &e) in erased.iter().enumerate() {
        if e {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|s| {
                (0..len)
                    .map(|i| ((s * 59 + i * 13 + 1) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Lrc::new(0, 1, 1).is_err());
        assert!(Lrc::new(4, 0, 1).is_err());
        assert!(Lrc::new(4, 2, 0).is_err());
        assert!(Lrc::new(4, 5, 1).is_err());
        assert!(Lrc::new(250, 4, 4).is_err());
    }

    #[test]
    fn figure14_layout_422() {
        // The paper's Fig. 14: (4,2,2) LRC. Groups {0,1} and {2,3}, local
        // parities are XORs of their groups.
        let lrc = Lrc::new(4, 2, 2).unwrap();
        assert_eq!(lrc.total_chunks(), 8);
        assert_eq!(lrc.group_members(0), &[0, 1]);
        assert_eq!(lrc.group_members(1), &[2, 3]);
        let data = sample_data(4, 16);
        let chunks = lrc.encode(&data).unwrap();
        for i in 0..16 {
            assert_eq!(chunks[4][i], data[0][i] ^ data[1][i], "local parity 0");
            assert_eq!(chunks[5][i], data[2][i] ^ data[3][i], "local parity 1");
        }
    }

    #[test]
    fn unbalanced_groups() {
        let lrc = Lrc::new(5, 2, 1).unwrap();
        assert_eq!(lrc.group_members(0), &[0, 1, 2]);
        assert_eq!(lrc.group_members(1), &[3, 4]);
        assert_eq!(lrc.group_of(4), Some(1));
        assert_eq!(lrc.group_of(5), Some(0)); // local parity 0
        assert_eq!(lrc.group_of(7), None); // global parity
    }

    #[test]
    fn single_failure_repair_costs() {
        let lrc = Lrc::new(14, 2, 4).unwrap();
        // Data chunk: read the rest of its 7-chunk group (cost = group size).
        assert_eq!(lrc.single_repair_cost(0), 7);
        // Local parity: same.
        assert_eq!(lrc.single_repair_cost(14), 7);
        // Global parity: needs all k data chunks.
        assert_eq!(lrc.single_repair_cost(16), 14);
    }

    #[test]
    fn any_single_failure_decodable_via_local_group() {
        let lrc = Lrc::new(6, 2, 2).unwrap();
        for i in 0..lrc.total_chunks() {
            let mut erased = vec![false; lrc.total_chunks()];
            erased[i] = true;
            assert!(lrc.decodable(&erased), "chunk {i}");
        }
    }

    #[test]
    fn r_plus_one_spread_failures_decodable() {
        // One failure per group plus up to r elsewhere is decodable.
        let lrc = Lrc::new(6, 2, 2).unwrap();
        let mut erased = vec![false; 10];
        erased[0] = true; // group 0
        erased[3] = true; // group 1
        erased[8] = true; // global parity
        assert!(lrc.decodable(&erased));
    }

    #[test]
    fn concentrated_failures_beyond_tolerance_fail() {
        // (4,2,2): losing all of group 0's data plus its parity plus a
        // global exceeds what one local + two globals can fix.
        let lrc = Lrc::new(4, 2, 2).unwrap();
        let mut erased = vec![false; 8];
        erased[0] = true;
        erased[1] = true;
        erased[4] = true; // group-0 parity
        erased[6] = true; // global parity
        assert!(!lrc.decodable(&erased));
    }

    #[test]
    fn reconstruct_round_trips_all_small_patterns() {
        let lrc = Lrc::new(4, 2, 2).unwrap();
        let data = sample_data(4, 12);
        let encoded = lrc.encode(&data).unwrap();
        let n = lrc.total_chunks();
        for mask in 0u32..(1 << n) {
            if mask.count_ones() > 4 {
                continue;
            }
            let erased: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let mut chunks: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
            for i in 0..n {
                if erased[i] {
                    chunks[i] = None;
                }
            }
            if lrc.decodable(&erased) {
                lrc.reconstruct(&mut chunks).unwrap();
                for i in 0..n {
                    assert_eq!(chunks[i].as_ref().unwrap(), &encoded[i], "mask={mask:b}");
                }
            } else {
                assert!(lrc.reconstruct(&mut chunks).is_err(), "mask={mask:b}");
            }
        }
    }

    #[test]
    fn decodability_fraction_of_4_failures_matches_known_azure_shape() {
        // Azure's (12,2,2)-like behavior: all 3-failure patterns decodable,
        // most (not all) 4-failure patterns decodable. We check the
        // qualitative property for (12,2,2): every 3-pattern decodable.
        let lrc = Lrc::new(12, 2, 2).unwrap();
        let n = lrc.total_chunks();
        let mut all3 = true;
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let mut erased = vec![false; n];
                    erased[a] = true;
                    erased[b] = true;
                    erased[c] = true;
                    if !lrc.decodable(&erased) {
                        all3 = false;
                    }
                }
            }
        }
        assert!(
            all3,
            "every 3-failure pattern must be decodable for (12,2,2)"
        );
    }

    #[test]
    fn repair_plan_uses_local_groups_for_single_failures() {
        let lrc = Lrc::new(14, 2, 4).unwrap();
        let mut erased = vec![false; 20];
        erased[0] = true; // one data chunk in group 0
        let (plans, total_reads) = lrc.plan_repair(&erased).unwrap();
        assert_eq!(plans.len(), 1);
        assert!(plans[0].local);
        assert_eq!(plans[0].reads.len(), 7, "group-size reads");
        assert_eq!(total_reads, 7);
        // Paper §5.2.4: far fewer than the k = 14 a global decode needs.
        assert!(total_reads < 14);
    }

    #[test]
    fn repair_plan_escalates_multi_failure_groups() {
        let lrc = Lrc::new(14, 2, 4).unwrap();
        let mut erased = vec![false; 20];
        erased[0] = true;
        erased[1] = true; // two failures in group 0: local parity can't fix
        let (plans, total_reads) = lrc.plan_repair(&erased).unwrap();
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|p| !p.local));
        assert_eq!(total_reads, 14, "one shared global decode");
    }

    #[test]
    fn repair_plan_mixes_local_and_global() {
        let lrc = Lrc::new(14, 2, 4).unwrap();
        let mut erased = vec![false; 20];
        erased[0] = true; // group 0: single -> local
        erased[7] = true;
        erased[8] = true; // group 1: double -> global
        let (plans, _) = lrc.plan_repair(&erased).unwrap();
        let locals = plans.iter().filter(|p| p.local).count();
        let globals = plans.iter().filter(|p| !p.local).count();
        assert_eq!((locals, globals), (1, 2));
        // Plans never read erased chunks.
        for p in &plans {
            assert!(p.reads.iter().all(|&r| !erased[r]), "{p:?}");
        }
    }

    #[test]
    fn repair_plan_rejects_undecodable() {
        let lrc = Lrc::new(4, 2, 2).unwrap();
        let mut erased = vec![false; 8];
        erased[0] = true;
        erased[1] = true;
        erased[4] = true;
        erased[6] = true;
        assert!(lrc.plan_repair(&erased).is_none());
    }

    #[test]
    fn parity_overhead() {
        let lrc = Lrc::new(14, 2, 4).unwrap();
        assert!((lrc.parity_overhead() - 6.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn memoization_is_consistent() {
        let lrc = Lrc::new(6, 2, 2).unwrap();
        let mut erased = vec![false; 10];
        erased[2] = true;
        erased[7] = true;
        let first = lrc.decodable(&erased);
        let second = lrc.decodable(&erased);
        assert_eq!(first, second);
    }
}
