//! Single-core encoding-throughput measurement (paper Fig. 11).
//!
//! The paper measured Intel ISA-L on a Xeon Gold 6240R. We measure our own
//! GF(2^8) kernels instead (see DESIGN.md substitution table); absolute MB/s
//! differ but the *shape* of the `(k, p)` surface — throughput falling with
//! more parities and wider stripes — is the reproduced result.
//!
//! Measurement discipline: wall-clock timing of repeated `encode_into` calls
//! over pre-allocated buffers (no allocation in the timed region), with a
//! warm-up pass, reporting data MB processed per second.

use crate::mlec::MlecCodec;
use crate::rs::ReedSolomon;
use crate::scheme::{EcScheme, LrcParams, MlecParams, SlecParams};
use crate::Lrc;
use std::time::Instant;

/// Default chunk size used by the paper's setup (§3): 128 KB.
pub const PAPER_CHUNK_BYTES: usize = 128 * 1024;

/// One measured point of the throughput surface.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Data chunks.
    pub k: usize,
    /// Parity chunks (or `l + r` for LRC).
    pub p: usize,
    /// Measured single-core encoding throughput in MB of *data* per second.
    pub mb_per_s: f64,
}

/// Measure SLEC `(k + p)` encoding throughput with `chunk_bytes` chunks.
///
/// `min_bytes` controls how much data is pushed through the encoder (larger
/// = steadier numbers, longer runtime).
pub fn measure_slec(k: usize, p: usize, chunk_bytes: usize, min_bytes: usize) -> ThroughputPoint {
    let rs = ReedSolomon::new(k, p).expect("valid (k, p)");
    let data: Vec<Vec<u8>> = (0..k)
        .map(|s| {
            (0..chunk_bytes)
                .map(|i| ((s * 31 + i) % 256) as u8)
                .collect()
        })
        .collect();
    let mut parity = vec![vec![0u8; chunk_bytes]; p];

    // Warm-up: populate caches and page in the buffers.
    rs.encode_into(&data, &mut parity).unwrap();

    let stripe_data_bytes = k * chunk_bytes;
    let iters = (min_bytes / stripe_data_bytes).max(1);
    let start = Instant::now();
    for _ in 0..iters {
        rs.encode_into(&data, &mut parity).unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(&parity);
    ThroughputPoint {
        k,
        p,
        mb_per_s: (iters * stripe_data_bytes) as f64 / 1e6 / elapsed,
    }
}

/// Measure MLEC two-level encoding throughput (both levels timed together,
/// as a storage server + enclosure controller pipeline would see it).
pub fn measure_mlec(params: MlecParams, chunk_bytes: usize, min_bytes: usize) -> ThroughputPoint {
    let codec = MlecCodec::new(
        params.network.k,
        params.network.p,
        params.local.k,
        params.local.p,
    )
    .expect("valid MLEC params");
    let nd = codec.data_chunks();
    let data: Vec<Vec<u8>> = (0..nd)
        .map(|s| {
            (0..chunk_bytes)
                .map(|i| ((s * 31 + i) % 256) as u8)
                .collect()
        })
        .collect();

    let _ = codec.encode(&data).unwrap(); // warm-up

    let stripe_data_bytes = nd * chunk_bytes;
    let iters = (min_bytes / stripe_data_bytes).max(1);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(codec.encode(&data).unwrap());
    }
    let elapsed = start.elapsed().as_secs_f64();
    ThroughputPoint {
        k: params.data_chunks(),
        p: params.total_chunks() - params.data_chunks(),
        mb_per_s: (iters * stripe_data_bytes) as f64 / 1e6 / elapsed,
    }
}

/// Measure LRC `(k, l, r)` two-stage encoding throughput.
pub fn measure_lrc(params: LrcParams, chunk_bytes: usize, min_bytes: usize) -> ThroughputPoint {
    let lrc = Lrc::new(params.k, params.l, params.r).expect("valid LRC params");
    let data: Vec<Vec<u8>> = (0..params.k)
        .map(|s| {
            (0..chunk_bytes)
                .map(|i| ((s * 31 + i) % 256) as u8)
                .collect()
        })
        .collect();

    let _ = lrc.encode(&data).unwrap(); // warm-up

    let stripe_data_bytes = params.k * chunk_bytes;
    let iters = (min_bytes / stripe_data_bytes).max(1);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(lrc.encode(&data).unwrap());
    }
    let elapsed = start.elapsed().as_secs_f64();
    ThroughputPoint {
        k: params.k,
        p: params.l + params.r,
        mb_per_s: (iters * stripe_data_bytes) as f64 / 1e6 / elapsed,
    }
}

/// Measure any [`EcScheme`].
pub fn measure_scheme(scheme: EcScheme, chunk_bytes: usize, min_bytes: usize) -> ThroughputPoint {
    match scheme {
        EcScheme::Slec(SlecParams { k, p }) => measure_slec(k, p, chunk_bytes, min_bytes),
        EcScheme::Mlec(m) => measure_mlec(m, chunk_bytes, min_bytes),
        EcScheme::Lrc(l) => measure_lrc(l, chunk_bytes, min_bytes),
    }
}

/// Measure *multi-core* SLEC encoding throughput: independent stripes
/// encoded concurrently on scoped threads (one per stripe, capped at the
/// machine's parallelism), the deployment answer to the paper's
/// "increasing throughput can be done with more CPU cores, but would lead
/// to higher hardware cost, and potentially extra overhead caused by
/// imperfect parallelism" (§5.1.2). Returns the aggregate data MB/s across
/// `stripes` concurrently-encoded stripes.
pub fn measure_slec_parallel(
    k: usize,
    p: usize,
    chunk_bytes: usize,
    stripes: usize,
    min_bytes: usize,
) -> ThroughputPoint {
    let rs = ReedSolomon::new(k, p).expect("valid (k, p)");
    // One independent data + parity buffer set per stripe.
    let data: Vec<Vec<Vec<u8>>> = (0..stripes)
        .map(|s| {
            (0..k)
                .map(|j| {
                    (0..chunk_bytes)
                        .map(|i| ((s * 131 + j * 31 + i) % 256) as u8)
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut parities: Vec<Vec<Vec<u8>>> = vec![vec![vec![0u8; chunk_bytes]; p]; stripes];

    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZero::get)
        .min(stripes.max(1));
    let encode_all = |parities: &mut Vec<Vec<Vec<u8>>>| {
        std::thread::scope(|scope| {
            // Static round-robin assignment of stripes to workers: each
            // worker owns disjoint (data, parity) pairs, no locking needed.
            let mut remaining: &mut [Vec<Vec<u8>>] = parities;
            let mut start = 0usize;
            let mut handles = Vec::new();
            for w in 0..workers {
                let count = (stripes - start) / (workers - w);
                let (mine, rest) = remaining.split_at_mut(count);
                remaining = rest;
                let my_data = &data[start..start + count];
                let rs = &rs;
                handles.push(scope.spawn(move || {
                    for (d, par) in my_data.iter().zip(mine.iter_mut()) {
                        rs.encode_into(d, par).unwrap();
                    }
                }));
                start += count;
            }
        });
    };

    // Warm-up.
    encode_all(&mut parities);

    let batch_bytes = stripes * k * chunk_bytes;
    let iters = (min_bytes / batch_bytes).max(1);
    let start = Instant::now();
    for _ in 0..iters {
        encode_all(&mut parities);
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(&parities);
    ThroughputPoint {
        k,
        p,
        mb_per_s: (iters * batch_bytes) as f64 / 1e6 / elapsed,
    }
}

/// A calibrated *model* of encoding throughput for sweeping hundreds of
/// configurations (Fig. 12/15 scatter plots) without hours of measurement:
/// `MB/s = rate_constant / multiplies_per_byte`, where `rate_constant` is
/// obtained by measuring one reference configuration.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputModel {
    /// Effective multiply-accumulate rate in "MB of coefficient work"/s.
    pub rate_mb_per_s: f64,
}

impl ThroughputModel {
    /// Calibrate against a measured reference configuration.
    pub fn calibrate(chunk_bytes: usize, min_bytes: usize) -> ThroughputModel {
        let reference = EcScheme::Slec(SlecParams::new(10, 4));
        let measured = measure_scheme(reference, chunk_bytes, min_bytes);
        ThroughputModel {
            rate_mb_per_s: measured.mb_per_s * reference.encoding_multiplies_per_byte(),
        }
    }

    /// Build from a known rate constant (for tests / deterministic output).
    pub fn from_rate(rate_mb_per_s: f64) -> ThroughputModel {
        ThroughputModel { rate_mb_per_s }
    }

    /// Predicted single-core encoding throughput for a scheme, in MB/s.
    pub fn predict(&self, scheme: EcScheme) -> f64 {
        self.rate_mb_per_s / scheme.encoding_multiplies_per_byte().max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL_CHUNK: usize = 4 * 1024; // keep unit tests fast
    const SMALL_BYTES: usize = 1 << 20;

    #[test]
    fn throughput_positive_and_finite() {
        let pt = measure_slec(4, 2, SMALL_CHUNK, SMALL_BYTES);
        assert!(pt.mb_per_s.is_finite() && pt.mb_per_s > 0.0);
    }

    #[test]
    fn more_parities_cost_more() {
        // p = 8 must be measurably slower than p = 1 at the same k.
        let fast = measure_slec(8, 1, SMALL_CHUNK, SMALL_BYTES);
        let slow = measure_slec(8, 8, SMALL_CHUNK, SMALL_BYTES);
        assert!(
            slow.mb_per_s < fast.mb_per_s,
            "p=8 ({:.1} MB/s) should be slower than p=1 ({:.1} MB/s)",
            slow.mb_per_s,
            fast.mb_per_s
        );
    }

    #[test]
    fn mlec_and_lrc_measurable() {
        let m = measure_mlec(MlecParams::new(2, 1, 2, 1), SMALL_CHUNK, SMALL_BYTES / 4);
        assert!(m.mb_per_s > 0.0);
        let l = measure_lrc(LrcParams::new(4, 2, 2), SMALL_CHUNK, SMALL_BYTES / 4);
        assert!(l.mb_per_s > 0.0);
    }

    #[test]
    fn parallel_encoding_not_slower_than_serial() {
        // With >= 2 worker threads and independent stripes, aggregate
        // throughput must at least match single-stripe throughput (modulo
        // noise); typically it scales with cores.
        let serial = measure_slec(8, 4, SMALL_CHUNK, SMALL_BYTES);
        let parallel = measure_slec_parallel(8, 4, SMALL_CHUNK, 8, SMALL_BYTES * 2);
        assert!(
            parallel.mb_per_s > serial.mb_per_s * 0.7,
            "serial={:.0} parallel={:.0}",
            serial.mb_per_s,
            parallel.mb_per_s
        );
    }

    #[test]
    fn model_predictions_scale_inversely_with_work() {
        let model = ThroughputModel::from_rate(1000.0);
        let cheap = model.predict(EcScheme::Slec(SlecParams::new(10, 1)));
        let costly = model.predict(EcScheme::Slec(SlecParams::new(10, 10)));
        assert!((cheap / costly - 10.0).abs() < 1e-9);
    }
}
