//! Encoding-throughput measurement (paper Fig. 11).
//!
//! The paper measured Intel ISA-L on a Xeon Gold 6240R. We measure our own
//! GF(2^8) kernels instead (see DESIGN.md substitution table) — since the
//! SIMD dispatch layer (`mlec_gf::simd`) they are the same split-table
//! `pshufb` technique ISA-L uses, so both the *shape* of the `(k, p)`
//! surface and the absolute order of magnitude are comparable.
//!
//! Measurement discipline: wall-clock timing of repeated `encode_into` /
//! `encode_into_parallel` calls over pre-allocated buffers (no allocation
//! and **no thread creation** in the timed region — worker threads for the
//! parallel measurements are spawned once and fed batches through a
//! barrier), with a warm-up pass, reporting data MB processed per second.

use crate::mlec::MlecCodec;
use crate::rs::ReedSolomon;
use crate::scheme::{EcScheme, LrcParams, MlecParams, SlecParams};
use crate::Lrc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Default chunk size used by the paper's setup (§3): 128 KB.
pub const PAPER_CHUNK_BYTES: usize = 128 * 1024;

/// One measured point of the throughput surface.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Data chunks.
    pub k: usize,
    /// Parity chunks (or `l + r` for LRC).
    pub p: usize,
    /// Measured single-core encoding throughput in MB of *data* per second.
    pub mb_per_s: f64,
}

/// Measure SLEC `(k + p)` encoding throughput with `chunk_bytes` chunks.
///
/// `min_bytes` controls how much data is pushed through the encoder (larger
/// = steadier numbers, longer runtime).
pub fn measure_slec(k: usize, p: usize, chunk_bytes: usize, min_bytes: usize) -> ThroughputPoint {
    measure_slec_mt(k, p, chunk_bytes, min_bytes, 1)
}

/// Measure SLEC encoding throughput with the stripe split across `threads`
/// scoped worker threads ([`ReedSolomon::encode_into_parallel`]); the output
/// is bit-identical to the serial path. `threads <= 1` is exactly
/// [`measure_slec`]. This backs the `threads=` parameter of the `fig11` /
/// `fig12` experiments.
pub fn measure_slec_mt(
    k: usize,
    p: usize,
    chunk_bytes: usize,
    min_bytes: usize,
    threads: usize,
) -> ThroughputPoint {
    let rs = ReedSolomon::new(k, p).expect("valid (k, p)");
    let data: Vec<Vec<u8>> = (0..k)
        .map(|s| {
            (0..chunk_bytes)
                .map(|i| ((s * 31 + i) % 256) as u8)
                .collect()
        })
        .collect();
    let mut parity = vec![vec![0u8; chunk_bytes]; p];

    // Warm-up: populate caches and page in the buffers.
    rs.encode_into_parallel(&data, &mut parity, threads)
        .unwrap();

    let stripe_data_bytes = k * chunk_bytes;
    let iters = (min_bytes / stripe_data_bytes).max(1);
    let start = Instant::now();
    for _ in 0..iters {
        rs.encode_into_parallel(&data, &mut parity, threads)
            .unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(&parity);
    ThroughputPoint {
        k,
        p,
        mb_per_s: (iters * stripe_data_bytes) as f64 / 1e6 / elapsed,
    }
}

/// Measure MLEC two-level encoding throughput (both levels timed together,
/// as a storage server + enclosure controller pipeline would see it).
pub fn measure_mlec(params: MlecParams, chunk_bytes: usize, min_bytes: usize) -> ThroughputPoint {
    let codec = MlecCodec::new(
        params.network.k,
        params.network.p,
        params.local.k,
        params.local.p,
    )
    .expect("valid MLEC params");
    let nd = codec.data_chunks();
    let data: Vec<Vec<u8>> = (0..nd)
        .map(|s| {
            (0..chunk_bytes)
                .map(|i| ((s * 31 + i) % 256) as u8)
                .collect()
        })
        .collect();

    let _ = codec.encode(&data).unwrap(); // warm-up

    let stripe_data_bytes = nd * chunk_bytes;
    let iters = (min_bytes / stripe_data_bytes).max(1);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(codec.encode(&data).unwrap());
    }
    let elapsed = start.elapsed().as_secs_f64();
    ThroughputPoint {
        k: params.data_chunks(),
        p: params.total_chunks() - params.data_chunks(),
        mb_per_s: (iters * stripe_data_bytes) as f64 / 1e6 / elapsed,
    }
}

/// Measure LRC `(k, l, r)` two-stage encoding throughput.
pub fn measure_lrc(params: LrcParams, chunk_bytes: usize, min_bytes: usize) -> ThroughputPoint {
    let lrc = Lrc::new(params.k, params.l, params.r).expect("valid LRC params");
    let data: Vec<Vec<u8>> = (0..params.k)
        .map(|s| {
            (0..chunk_bytes)
                .map(|i| ((s * 31 + i) % 256) as u8)
                .collect()
        })
        .collect();

    let _ = lrc.encode(&data).unwrap(); // warm-up

    let stripe_data_bytes = params.k * chunk_bytes;
    let iters = (min_bytes / stripe_data_bytes).max(1);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(lrc.encode(&data).unwrap());
    }
    let elapsed = start.elapsed().as_secs_f64();
    ThroughputPoint {
        k: params.k,
        p: params.l + params.r,
        mb_per_s: (iters * stripe_data_bytes) as f64 / 1e6 / elapsed,
    }
}

/// Measure any [`EcScheme`].
pub fn measure_scheme(scheme: EcScheme, chunk_bytes: usize, min_bytes: usize) -> ThroughputPoint {
    match scheme {
        EcScheme::Slec(SlecParams { k, p }) => measure_slec(k, p, chunk_bytes, min_bytes),
        EcScheme::Mlec(m) => measure_mlec(m, chunk_bytes, min_bytes),
        EcScheme::Lrc(l) => measure_lrc(l, chunk_bytes, min_bytes),
    }
}

/// Outcome of [`measure_slec_parallel_stats`]: the throughput point plus
/// measurement metadata used to assert the harness itself behaves (workers
/// are spawned once per *measurement*, never once per timed iteration).
#[derive(Debug, Clone, Copy)]
pub struct ParallelMeasurement {
    /// The measured aggregate throughput.
    pub point: ThroughputPoint,
    /// How many OS threads the measurement spawned in total (warm-up and all
    /// timed iterations included). With persistent workers this equals the
    /// worker count; the pre-fix harness spawned `workers * (iters + 1)`.
    pub threads_spawned: usize,
    /// Number of timed batches the workers executed.
    pub timed_iters: usize,
}

/// Measure *multi-core* SLEC encoding throughput: independent stripes
/// encoded concurrently on scoped threads (capped at the machine's
/// parallelism), the deployment answer to the paper's "increasing
/// throughput can be done with more CPU cores, but would lead to higher
/// hardware cost, and potentially extra overhead caused by imperfect
/// parallelism" (§5.1.2). Returns the aggregate data MB/s across `stripes`
/// concurrently-encoded stripes.
///
/// The worker set is spawned **once**, outside the timed region; each timed
/// iteration releases the workers through a [`Barrier`], they encode their
/// statically-assigned stripes, and rendezvous on a second barrier before
/// the clock stops. Thread creation/teardown therefore never pollutes the
/// timing (it previously did — a fresh `thread::scope` per iteration — which
/// under-reported parallel throughput for small batches).
pub fn measure_slec_parallel(
    k: usize,
    p: usize,
    chunk_bytes: usize,
    stripes: usize,
    min_bytes: usize,
) -> ThroughputPoint {
    measure_slec_parallel_stats(k, p, chunk_bytes, stripes, min_bytes).point
}

/// [`measure_slec_parallel`] with spawn-count metadata exposed, so tests can
/// pin the "workers outlive the timed loop" invariant.
pub fn measure_slec_parallel_stats(
    k: usize,
    p: usize,
    chunk_bytes: usize,
    stripes: usize,
    min_bytes: usize,
) -> ParallelMeasurement {
    let rs = ReedSolomon::new(k, p).expect("valid (k, p)");
    // One independent data + parity buffer set per stripe.
    let data: Vec<Vec<Vec<u8>>> = (0..stripes)
        .map(|s| {
            (0..k)
                .map(|j| {
                    (0..chunk_bytes)
                        .map(|i| ((s * 131 + j * 31 + i) % 256) as u8)
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut parities: Vec<Vec<Vec<u8>>> = vec![vec![vec![0u8; chunk_bytes]; p]; stripes];

    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZero::get)
        .min(stripes.max(1));
    let batch_bytes = stripes * k * chunk_bytes;
    let iters = (min_bytes / batch_bytes).max(1);

    // Persistent worker pool: spawned once, fed batches through a pair of
    // barrier rendezvous per iteration. `release` starts a batch (or, with
    // `stop` set, shuts the pool down); `done` marks batch completion.
    let release = Barrier::new(workers + 1);
    let done = Barrier::new(workers + 1);
    let stop = AtomicBool::new(false);
    let spawned = AtomicUsize::new(0);
    let mut elapsed = 0.0f64;

    std::thread::scope(|scope| {
        // Static assignment of stripes to workers: each worker owns disjoint
        // (data, parity) slices, so batches need no locking.
        let mut remaining: &mut [Vec<Vec<u8>>] = &mut parities;
        let mut start = 0usize;
        for w in 0..workers {
            let count = (stripes - start) / (workers - w);
            let (mine, rest) = remaining.split_at_mut(count);
            remaining = rest;
            let my_data = &data[start..start + count];
            let (rs, release, done, stop, spawned) = (&rs, &release, &done, &stop, &spawned);
            scope.spawn(move || {
                spawned.fetch_add(1, Ordering::Relaxed);
                loop {
                    release.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    for (d, par) in my_data.iter().zip(mine.iter_mut()) {
                        rs.encode_into(d, par).unwrap();
                    }
                    done.wait();
                }
            });
            start += count;
        }

        // Warm-up batch (not timed): pages in buffers, fills caches.
        release.wait();
        done.wait();

        let t0 = Instant::now();
        for _ in 0..iters {
            release.wait();
            done.wait();
        }
        elapsed = t0.elapsed().as_secs_f64();

        stop.store(true, Ordering::Release);
        release.wait();
    });
    std::hint::black_box(&parities);
    ParallelMeasurement {
        point: ThroughputPoint {
            k,
            p,
            mb_per_s: (iters * batch_bytes) as f64 / 1e6 / elapsed,
        },
        threads_spawned: spawned.load(Ordering::Relaxed),
        timed_iters: iters,
    }
}

/// A calibrated *model* of encoding throughput for sweeping hundreds of
/// configurations (Fig. 12/15 scatter plots) without hours of measurement:
/// `MB/s = rate_constant / multiplies_per_byte`, where `rate_constant` is
/// obtained by measuring one reference configuration.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputModel {
    /// Effective multiply-accumulate rate in "MB of coefficient work"/s.
    pub rate_mb_per_s: f64,
}

impl ThroughputModel {
    /// Calibrate against a measured reference configuration.
    pub fn calibrate(chunk_bytes: usize, min_bytes: usize) -> ThroughputModel {
        Self::calibrate_threads(chunk_bytes, min_bytes, 1)
    }

    /// Calibrate with the reference encode split across `threads` worker
    /// threads (see [`measure_slec_mt`]); `threads <= 1` is [`Self::calibrate`].
    /// Predictions then model a `threads`-core encoder.
    pub fn calibrate_threads(
        chunk_bytes: usize,
        min_bytes: usize,
        threads: usize,
    ) -> ThroughputModel {
        let reference = EcScheme::Slec(SlecParams::new(10, 4));
        let measured = measure_slec_mt(10, 4, chunk_bytes, min_bytes, threads);
        ThroughputModel {
            rate_mb_per_s: measured.mb_per_s * reference.encoding_multiplies_per_byte(),
        }
    }

    /// Build from a known rate constant (for tests / deterministic output).
    pub fn from_rate(rate_mb_per_s: f64) -> ThroughputModel {
        ThroughputModel { rate_mb_per_s }
    }

    /// Predicted single-core encoding throughput for a scheme, in MB/s.
    pub fn predict(&self, scheme: EcScheme) -> f64 {
        self.rate_mb_per_s / scheme.encoding_multiplies_per_byte().max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL_CHUNK: usize = 4 * 1024; // keep unit tests fast
    const SMALL_BYTES: usize = 1 << 20;

    #[test]
    fn throughput_positive_and_finite() {
        let pt = measure_slec(4, 2, SMALL_CHUNK, SMALL_BYTES);
        assert!(pt.mb_per_s.is_finite() && pt.mb_per_s > 0.0);
    }

    #[test]
    fn more_parities_cost_more() {
        // p = 8 must be measurably slower than p = 1 at the same k.
        let fast = measure_slec(8, 1, SMALL_CHUNK, SMALL_BYTES);
        let slow = measure_slec(8, 8, SMALL_CHUNK, SMALL_BYTES);
        assert!(
            slow.mb_per_s < fast.mb_per_s,
            "p=8 ({:.1} MB/s) should be slower than p=1 ({:.1} MB/s)",
            slow.mb_per_s,
            fast.mb_per_s
        );
    }

    #[test]
    fn mlec_and_lrc_measurable() {
        let m = measure_mlec(MlecParams::new(2, 1, 2, 1), SMALL_CHUNK, SMALL_BYTES / 4);
        assert!(m.mb_per_s > 0.0);
        let l = measure_lrc(LrcParams::new(4, 2, 2), SMALL_CHUNK, SMALL_BYTES / 4);
        assert!(l.mb_per_s > 0.0);
    }

    #[test]
    fn parallel_encoding_not_slower_than_serial() {
        // With persistent workers (no thread churn in the timed loop) the
        // aggregate throughput should roughly match serial throughput even
        // on a single-core host, and scale up on multi-core ones. Tolerance
        // 0.5 absorbs barrier overhead + scheduler noise on 1-CPU CI
        // runners; before the persistent-worker fix, per-iteration
        // thread::scope churn routinely dragged this below 0.5.
        let serial = measure_slec(8, 4, SMALL_CHUNK, SMALL_BYTES);
        let parallel = measure_slec_parallel(8, 4, SMALL_CHUNK, 8, SMALL_BYTES * 2);
        assert!(
            parallel.mb_per_s > serial.mb_per_s * 0.5,
            "serial={:.0} parallel={:.0}",
            serial.mb_per_s,
            parallel.mb_per_s
        );
    }

    #[test]
    fn parallel_measurement_spawns_workers_once() {
        // Regression test for the thread-churn bug: the worker pool must be
        // created once per *measurement*, not once per timed iteration. Ask
        // for enough bytes to force several timed batches and check that the
        // spawn count is still just the worker count.
        let stripes = 4;
        let m = measure_slec_parallel_stats(4, 2, SMALL_CHUNK, stripes, SMALL_BYTES);
        let workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZero::get)
            .min(stripes);
        assert!(
            m.timed_iters >= 2,
            "want multiple batches, got {}",
            m.timed_iters
        );
        assert_eq!(
            m.threads_spawned, workers,
            "workers must persist across all {} timed iterations",
            m.timed_iters
        );
        assert!(m.point.mb_per_s.is_finite() && m.point.mb_per_s > 0.0);
    }

    #[test]
    fn threaded_measurement_positive_and_finite() {
        for threads in [0, 1, 2, 4] {
            let pt = measure_slec_mt(4, 2, SMALL_CHUNK, SMALL_BYTES / 2, threads);
            assert!(
                pt.mb_per_s.is_finite() && pt.mb_per_s > 0.0,
                "threads={threads}: {pt:?}"
            );
        }
    }

    #[test]
    fn model_predictions_scale_inversely_with_work() {
        let model = ThroughputModel::from_rate(1000.0);
        let cheap = model.predict(EcScheme::Slec(SlecParams::new(10, 1)));
        let costly = model.predict(EcScheme::Slec(SlecParams::new(10, 10)));
        assert!((cheap / costly - 10.0).abs() < 1e-9);
    }
}
