//! Code-parameter descriptors shared across the analysis stack.
//!
//! These types carry only the *parameters* of a code (not its matrices), so
//! the topology, simulation, and analysis crates can reason about overhead
//! and tolerance without touching byte-level codecs.

/// Single-level erasure code parameters: `k` data + `p` parity chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlecParams {
    /// Data chunks per stripe.
    pub k: usize,
    /// Parity chunks per stripe.
    pub p: usize,
}

impl SlecParams {
    /// Construct `(k + p)` parameters.
    pub const fn new(k: usize, p: usize) -> SlecParams {
        SlecParams { k, p }
    }

    /// Stripe width `k + p`.
    pub const fn width(&self) -> usize {
        self.k + self.p
    }

    /// Parity overhead `p / k`.
    pub fn overhead(&self) -> f64 {
        self.p as f64 / self.k as f64
    }

    /// Maximum arbitrary chunk failures tolerated per stripe.
    pub const fn tolerance(&self) -> usize {
        self.p
    }
}

impl std::fmt::Display for SlecParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}+{})", self.k, self.p)
    }
}

/// Two-level MLEC parameters `(k_n + p_n) / (k_l + p_l)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MlecParams {
    /// Network-level code.
    pub network: SlecParams,
    /// Local-level code.
    pub local: SlecParams,
}

impl MlecParams {
    /// Construct `(kn + pn) / (kl + pl)` parameters.
    pub const fn new(kn: usize, pn: usize, kl: usize, pl: usize) -> MlecParams {
        MlecParams {
            network: SlecParams::new(kn, pn),
            local: SlecParams::new(kl, pl),
        }
    }

    /// The paper's running configuration: `(10+2)/(17+3)`.
    pub const fn paper_default() -> MlecParams {
        MlecParams::new(10, 2, 17, 3)
    }

    /// Data chunks per network stripe (`k_n * k_l`).
    pub const fn data_chunks(&self) -> usize {
        self.network.k * self.local.k
    }

    /// Total chunks per network stripe.
    pub const fn total_chunks(&self) -> usize {
        self.network.width() * self.local.width()
    }

    /// Parity overhead `total/data - 1`; e.g. 41.2% for `(10+2)/(17+3)`.
    pub fn overhead(&self) -> f64 {
        self.total_chunks() as f64 / self.data_chunks() as f64 - 1.0
    }

    /// Chunk failures in one local stripe beyond which the stripe is lost
    /// locally (`p_l + 1` is the catastrophic threshold, Table 1).
    pub const fn local_tolerance(&self) -> usize {
        self.local.p
    }

    /// Lost local stripes in one network stripe beyond which data is lost.
    pub const fn network_tolerance(&self) -> usize {
        self.network.p
    }
}

impl std::fmt::Display for MlecParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.network, self.local)
    }
}

/// `(k, l, r)` LRC parameters (Azure notation, paper §5.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LrcParams {
    /// Data chunks.
    pub k: usize,
    /// Local groups (one XOR parity each).
    pub l: usize,
    /// Global parities.
    pub r: usize,
}

impl LrcParams {
    /// Construct `(k, l, r)` parameters.
    pub const fn new(k: usize, l: usize, r: usize) -> LrcParams {
        LrcParams { k, l, r }
    }

    /// The paper's comparison configuration `(14, 2, 4)` (§5.2.3).
    pub const fn paper_default() -> LrcParams {
        LrcParams::new(14, 2, 4)
    }

    /// Total chunks per stripe.
    pub const fn width(&self) -> usize {
        self.k + self.l + self.r
    }

    /// Parity overhead `(l + r) / k`.
    pub fn overhead(&self) -> f64 {
        (self.l + self.r) as f64 / self.k as f64
    }

    /// Failures always tolerable regardless of pattern (`r + 1` for
    /// information-theoretically optimal LRCs).
    pub const fn guaranteed_tolerance(&self) -> usize {
        self.r + 1
    }
}

impl std::fmt::Display for LrcParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{},{})", self.k, self.l, self.r)
    }
}

/// Any of the three code families compared in the paper (§5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EcScheme {
    /// Single-level erasure coding.
    Slec(SlecParams),
    /// Multi-level erasure coding.
    Mlec(MlecParams),
    /// Locally repairable code.
    Lrc(LrcParams),
}

impl EcScheme {
    /// Parity overhead of the scheme.
    pub fn overhead(&self) -> f64 {
        match self {
            EcScheme::Slec(s) => s.overhead(),
            EcScheme::Mlec(m) => m.overhead(),
            EcScheme::Lrc(l) => l.overhead(),
        }
    }

    /// Total encoding work per data byte, in coefficient multiply-adds —
    /// the first-order model of single-core encoding cost (validated against
    /// the measured Fig. 11 surface):
    /// - SLEC `(k+p)`: each data byte feeds `p` parity accumulations.
    /// - MLEC: `p_n` network parities per byte, then each of the
    ///   `k_n + p_n` rows does `p_l` local accumulations over its bytes.
    /// - LRC: 1 XOR for the local group + `r` global accumulations.
    pub fn encoding_multiplies_per_byte(&self) -> f64 {
        match self {
            EcScheme::Slec(s) => s.p as f64,
            EcScheme::Mlec(m) => {
                let per_data_byte_network = m.network.p as f64;
                // Every byte (data or network-parity) gets local encoding;
                // network-parity bytes are p_n/k_n per data byte.
                let bytes_per_data_byte = 1.0 + m.network.p as f64 / m.network.k as f64;
                per_data_byte_network + bytes_per_data_byte * m.local.p as f64
            }
            EcScheme::Lrc(l) => 1.0 + l.r as f64,
        }
    }
}

impl std::fmt::Display for EcScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcScheme::Slec(s) => write!(f, "SLEC{s}"),
            EcScheme::Mlec(m) => write!(f, "MLEC{m}"),
            EcScheme::Lrc(l) => write!(f, "LRC{l}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_overheads() {
        let m = MlecParams::paper_default();
        // (10+2)/(17+3): 12*20 / (10*17) - 1 = 240/170 - 1 ≈ 0.4118
        assert!((m.overhead() - (240.0 / 170.0 - 1.0)).abs() < 1e-12);
        let l = LrcParams::paper_default();
        assert!((l.overhead() - 6.0 / 14.0).abs() < 1e-12);
        let s = SlecParams::new(7, 3);
        assert!((s.overhead() - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn display_notation_matches_paper() {
        assert_eq!(MlecParams::paper_default().to_string(), "(10+2)/(17+3)");
        assert_eq!(SlecParams::new(7, 3).to_string(), "(7+3)");
        assert_eq!(LrcParams::paper_default().to_string(), "(14,2,4)");
    }

    #[test]
    fn tolerances() {
        let m = MlecParams::paper_default();
        assert_eq!(m.local_tolerance(), 3);
        assert_eq!(m.network_tolerance(), 2);
        assert_eq!(LrcParams::new(12, 2, 2).guaranteed_tolerance(), 3);
    }

    #[test]
    fn encoding_cost_model_orderings() {
        // A wide SLEC with many parities must cost more than an MLEC with
        // few parities per level (the paper's Fig. 12 F#2 mechanism).
        let slec = EcScheme::Slec(SlecParams::new(28, 12));
        let mlec = EcScheme::Mlec(MlecParams::new(17, 3, 17, 3));
        assert!(slec.encoding_multiplies_per_byte() > mlec.encoding_multiplies_per_byte());
        // LRC with one local XOR + r globals sits between.
        let lrc = EcScheme::Lrc(LrcParams::new(14, 2, 4));
        assert!((lrc.encoding_multiplies_per_byte() - 5.0).abs() < 1e-12);
    }
}
