//! `mlec-ec`: the erasure-coding layer of the MLEC analysis suite.
//!
//! This crate implements, from scratch on top of [`mlec_gf`]:
//!
//! - [`rs`]: systematic Reed–Solomon codes for any `(k + p)` with
//!   `k + p <= 256`, built from an extended-Vandermonde generator so any `k`
//!   of the `k + p` shards reconstruct the data (the MDS property).
//! - [`lrc`]: Azure-style `(k, l, r)` Locally Repairable Codes (paper §5.2,
//!   Fig. 14): `l` XOR local groups plus `r` Reed–Solomon global parities,
//!   with an exact rank-based decodability test.
//! - [`mlec`]: the two-level MLEC codec `(k_n + p_n) / (k_l + p_l)` (paper
//!   §2.1, Fig. 2c) which composes a network-level RS code over local-level
//!   RS stripes on real bytes.
//! - [`scheme`]: code-parameter descriptors with capacity-overhead and
//!   failure-tolerance math, used by the durability/throughput tradeoff
//!   analysis (paper Fig. 12 and 15).
//! - [`throughput`]: single-core encoding throughput measurement, the
//!   substitute for the paper's Intel ISA-L measurement (Fig. 11).
//!
//! # Example: repair a lost chunk
//!
//! ```
//! use mlec_ec::rs::ReedSolomon;
//!
//! let rs = ReedSolomon::new(4, 2).unwrap();
//! let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 * 17; 64]).collect();
//! let mut shards: Vec<Option<Vec<u8>>> =
//!     rs.encode(&data).unwrap().into_iter().map(Some).collect();
//! shards[1] = None; // lose a data chunk
//! shards[4] = None; // and a parity chunk
//! rs.reconstruct(&mut shards).unwrap();
//! assert_eq!(shards[1].as_deref(), Some(&data[1][..]));
//! ```

pub mod lrc;
pub mod mlec;
pub mod rs;
pub mod scheme;
pub mod throughput;

pub use lrc::Lrc;
pub use mlec::MlecCodec;
pub use rs::ReedSolomon;
pub use scheme::{EcScheme, LrcParams, MlecParams, SlecParams};

/// Errors produced by the codecs in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcError {
    /// Parameters are out of the representable range (e.g. `k + p > 256`).
    InvalidParameters(String),
    /// Shard vectors passed to encode/reconstruct have inconsistent shapes.
    ShapeMismatch(String),
    /// More shards are missing than the code can tolerate.
    TooManyErasures { present: usize, needed: usize },
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            EcError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            EcError::TooManyErasures { present, needed } => write!(
                f,
                "too many erasures: only {present} shards present, {needed} needed"
            ),
        }
    }
}

impl std::error::Error for EcError {}
