//! The two-level MLEC codec `(k_n + p_n) / (k_l + p_l)` (paper §2.1,
//! Fig. 2c), operating on real bytes.
//!
//! Encoding follows the paper's data path exactly:
//!
//! 1. The storage server receives `k_n * k_l` data chunks, views them as
//!    `k_n` network-level chunks (each holding `k_l` local chunks), and
//!    computes `p_n` network parity chunks with the network RS code —
//!    position-wise across the network chunks (network parity `j`'s local
//!    chunk `i` is coded from local chunk `i` of every network data chunk).
//! 2. Each of the `k_n + p_n` enclosures receives its network chunk, splits
//!    it into `k_l` local chunks, and computes `p_l` local parities with the
//!    local RS code.
//!
//! The result is a `(k_n + p_n) x (k_l + p_l)` grid of chunks; row = local
//! stripe (one enclosure/rack), column = position within the local stripe.
//! A crucial structural property (paper §5.2.1 difference (c)): local
//! parities of the network-parity rows equal network parities of the local
//! parities — the grid is consistent both ways. This is tested.

use crate::rs::ReedSolomon;
use crate::EcError;

/// A two-level MLEC codec.
#[derive(Clone, Debug)]
pub struct MlecCodec {
    network: ReedSolomon,
    local: ReedSolomon,
}

/// A fully-encoded MLEC network stripe: `rows = k_n + p_n` local stripes,
/// each with `k_l + p_l` chunks.
pub type MlecStripe = Vec<Vec<Vec<u8>>>;

impl MlecCodec {
    /// Create a `(k_n + p_n) / (k_l + p_l)` codec.
    pub fn new(kn: usize, pn: usize, kl: usize, pl: usize) -> Result<MlecCodec, EcError> {
        Ok(MlecCodec {
            network: ReedSolomon::new(kn, pn)?,
            local: ReedSolomon::new(kl, pl)?,
        })
    }

    /// The network-level code.
    pub fn network(&self) -> &ReedSolomon {
        &self.network
    }

    /// The local-level code.
    pub fn local(&self) -> &ReedSolomon {
        &self.local
    }

    /// Data chunks per network stripe (`k_n * k_l`).
    pub fn data_chunks(&self) -> usize {
        self.network.data_shards() * self.local.data_shards()
    }

    /// Total chunks per network stripe (`(k_n+p_n) * (k_l+p_l)`).
    pub fn total_chunks(&self) -> usize {
        self.network.total_shards() * self.local.total_shards()
    }

    /// Parity overhead: `total/data - 1`.
    pub fn parity_overhead(&self) -> f64 {
        self.total_chunks() as f64 / self.data_chunks() as f64 - 1.0
    }

    /// Encode `k_n * k_l` data chunks (row-major: chunk `i` of network chunk
    /// `j` is `data[j * k_l + i]`) into the full stripe grid.
    pub fn encode<T: AsRef<[u8]>>(&self, data: &[T]) -> Result<MlecStripe, EcError> {
        let kn = self.network.data_shards();
        let kl = self.local.data_shards();
        if data.len() != kn * kl {
            return Err(EcError::ShapeMismatch(format!(
                "expected {} data chunks, got {}",
                kn * kl,
                data.len()
            )));
        }
        let len = data[0].as_ref().len();
        if data.iter().any(|d| d.as_ref().len() != len) {
            return Err(EcError::ShapeMismatch(
                "data chunks differ in length".into(),
            ));
        }

        // Step 1: network encode, position-by-position across network chunks.
        // rows[j][i] = local chunk i of network chunk j.
        let mut rows: Vec<Vec<Vec<u8>>> = (0..kn)
            .map(|j| {
                (0..kl)
                    .map(|i| data[j * kl + i].as_ref().to_vec())
                    .collect()
            })
            .collect();
        for _ in 0..self.network.parity_shards() {
            rows.push(vec![Vec::new(); kl]);
        }
        // Column-major walk: `i` addresses position i of *every* row, so an
        // iterator over `rows` can't express it.
        #[allow(clippy::needless_range_loop)]
        for i in 0..kl {
            let column: Vec<&[u8]> = (0..kn).map(|j| rows[j][i].as_slice()).collect();
            let mut parity = vec![vec![0u8; len]; self.network.parity_shards()];
            // Compute network parities of this local-chunk position.
            let col_owned: Vec<Vec<u8>> = column.iter().map(|c| c.to_vec()).collect();
            self.network.encode_into(&col_owned, &mut parity)?;
            for (pj, pchunk) in parity.into_iter().enumerate() {
                rows[kn + pj][i] = pchunk;
            }
        }

        // Step 2: local encode each row (enclosure-level controller).
        let mut stripe: MlecStripe = Vec::with_capacity(self.network.total_shards());
        for row in rows {
            stripe.push(self.local.encode(&row)?);
        }
        Ok(stripe)
    }

    /// Multi-core [`MlecCodec::encode`]: the `k_l` independent network
    /// columns of step 1 and the `k_n + p_n` independent local stripes of
    /// step 2 are distributed round-robin over `threads` scoped worker
    /// threads. Work units are fixed (column index, row index) — never a
    /// function of the thread count — and each unit runs the same codec
    /// calls as the serial path, so the stripe grid is **bit-identical**
    /// to [`MlecCodec::encode`] for every thread count.
    ///
    /// # Errors
    /// Same shape errors as [`MlecCodec::encode`].
    pub fn encode_parallel<T: AsRef<[u8]> + Sync>(
        &self,
        data: &[T],
        threads: usize,
    ) -> Result<MlecStripe, EcError> {
        if threads <= 1 {
            return self.encode(data);
        }
        let kn = self.network.data_shards();
        let kl = self.local.data_shards();
        let pn = self.network.parity_shards();
        if data.len() != kn * kl {
            return Err(EcError::ShapeMismatch(format!(
                "expected {} data chunks, got {}",
                kn * kl,
                data.len()
            )));
        }
        let len = data[0].as_ref().len();
        if data.iter().any(|d| d.as_ref().len() != len) {
            return Err(EcError::ShapeMismatch(
                "data chunks differ in length".into(),
            ));
        }

        // Step 1: network parities, one independent unit per local-chunk
        // position (column). Worker `w` owns columns `w, w + workers, …`.
        let data_rows: Vec<Vec<&[u8]>> = (0..kn)
            .map(|j| (0..kl).map(|i| data[j * kl + i].as_ref()).collect())
            .collect();
        let workers = threads.min(kl.max(1));
        let mut col_parities: Vec<Vec<Vec<u8>>> = vec![Vec::new(); kl];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let data_rows = &data_rows;
                handles.push(scope.spawn(move || {
                    let mut mine = Vec::new();
                    let mut i = w;
                    while i < kl {
                        let column: Vec<&[u8]> = (0..kn).map(|j| data_rows[j][i]).collect();
                        let mut parity = vec![vec![0u8; len]; pn];
                        self.network
                            .encode_into(&column, &mut parity)
                            .expect("column shapes checked above");
                        mine.push((i, parity));
                        i += workers;
                    }
                    mine
                }));
            }
            for h in handles {
                for (i, parity) in h.join().expect("network-encode worker panicked") {
                    col_parities[i] = parity;
                }
            }
        });

        // Assemble the k_n + p_n network rows of local data chunks.
        let mut rows: Vec<Vec<Vec<u8>>> = (0..kn)
            .map(|j| {
                (0..kl)
                    .map(|i| data[j * kl + i].as_ref().to_vec())
                    .collect()
            })
            .collect();
        for pj in 0..pn {
            rows.push(
                col_parities
                    .iter_mut()
                    .map(|col| std::mem::take(&mut col[pj]))
                    .collect(),
            );
        }

        // Step 2: local encode, one independent unit per row.
        let nrows = rows.len();
        let workers = threads.min(nrows.max(1));
        let mut stripe: MlecStripe = vec![Vec::new(); nrows];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let rows = &rows;
                handles.push(scope.spawn(move || {
                    let mut mine = Vec::new();
                    let mut j = w;
                    while j < nrows {
                        mine.push((
                            j,
                            self.local
                                .encode(&rows[j])
                                .expect("row shapes checked above"),
                        ));
                        j += workers;
                    }
                    mine
                }));
            }
            for h in handles {
                for (j, full) in h.join().expect("local-encode worker panicked") {
                    stripe[j] = full;
                }
            }
        });
        Ok(stripe)
    }

    /// Degraded read: return the content of chunk `(row, col)` from a
    /// stripe with erasures, touching as few chunks as possible — the read
    /// path equivalent of `R_MIN`'s repair planning. Preference order:
    ///
    /// 1. the chunk itself if present (zero extra reads);
    /// 2. local decode within its row when the row is locally recoverable
    ///    (`<= k_l` reads, no cross-rack traffic);
    /// 3. network decode of the column (`k_n` cross-rack reads) plus, for a
    ///    parity column of a lost row, a local re-encode.
    ///
    /// Returns `(bytes, chunks_read)`.
    ///
    /// # Errors
    /// [`EcError::TooManyErasures`] when the stripe cannot produce the
    /// chunk at all.
    pub fn read_degraded(
        &self,
        stripe: &[Vec<Option<Vec<u8>>>],
        row: usize,
        col: usize,
    ) -> Result<(Vec<u8>, usize), EcError> {
        let nn = self.network.total_shards();
        let nl = self.local.total_shards();
        if stripe.len() != nn || stripe.iter().any(|r| r.len() != nl) {
            return Err(EcError::ShapeMismatch(format!(
                "expected a {nn} x {nl} grid"
            )));
        }
        // Fast path: the chunk survived.
        if let Some(chunk) = &stripe[row][col] {
            return Ok((chunk.clone(), 0));
        }
        // Local path: decode within the row.
        let missing_in_row = stripe[row].iter().filter(|c| c.is_none()).count();
        if missing_in_row <= self.local.parity_shards() {
            let helpers: Vec<usize> = (0..nl)
                .filter(|&i| stripe[row][i].is_some())
                .take(self.local.data_shards())
                .collect();
            let row_shards: Vec<Option<Vec<u8>>> = stripe[row].clone();
            let rebuilt = self.local.reconstruct_one(&row_shards, col, &helpers)?;
            return Ok((rebuilt, helpers.len()));
        }
        // Network path: decode column `col` across rows. Parity columns of
        // lost rows need the row's data columns first, so recurse per data
        // column and re-encode.
        if col < self.local.data_shards() {
            let column: Vec<Option<Vec<u8>>> = (0..nn).map(|j| stripe[j][col].clone()).collect();
            let helpers: Vec<usize> = (0..nn).filter(|&j| column[j].is_some()).collect();
            if helpers.len() < self.network.data_shards() {
                return Err(EcError::TooManyErasures {
                    present: helpers.len(),
                    needed: self.network.data_shards(),
                });
            }
            let rebuilt = self.network.reconstruct_one(&column, row, &helpers)?;
            Ok((rebuilt, self.network.data_shards()))
        } else {
            // Rebuild the row's data columns over the network, then locally
            // re-encode the requested parity.
            let kl = self.local.data_shards();
            let mut data = Vec::with_capacity(kl);
            let mut reads = 0usize;
            for c in 0..kl {
                let (chunk, r) = self.read_degraded(stripe, row, c)?;
                data.push(chunk);
                reads += r.max(1);
            }
            let full = self.local.encode(&data)?;
            Ok((full[col].clone(), reads))
        }
    }

    /// Repair a stripe grid with erasures (`None` entries), using local
    /// repair where a row is locally recoverable and network repair for the
    /// rest. Returns `(locally_repaired, network_repaired)` chunk counts —
    /// the accounting that distinguishes R_FCO-style from hybrid repairs.
    ///
    /// # Errors
    /// [`EcError::TooManyErasures`] when more than `p_n` rows are lost
    /// beyond local recoverability.
    pub fn reconstruct(
        &self,
        stripe: &mut [Vec<Option<Vec<u8>>>],
    ) -> Result<(usize, usize), EcError> {
        let nn = self.network.total_shards();
        let nl = self.local.total_shards();
        if stripe.len() != nn || stripe.iter().any(|r| r.len() != nl) {
            return Err(EcError::ShapeMismatch(format!(
                "expected a {nn} x {nl} grid"
            )));
        }
        let mut local_repaired = 0usize;
        let mut network_repaired = 0usize;

        // Pass 1: repair every locally-recoverable row.
        for row in stripe.iter_mut() {
            let missing = row.iter().filter(|c| c.is_none()).count();
            if missing > 0 && missing <= self.local.parity_shards() {
                self.local.reconstruct(row)?;
                local_repaired += missing;
            }
        }

        // Pass 2: lost rows (more than p_l missing) are repaired over the
        // network, chunk position by chunk position, then re-encode local
        // parities of those rows.
        let lost_rows: Vec<usize> = (0..nn)
            .filter(|&j| stripe[j].iter().any(std::option::Option::is_none))
            .collect();
        if lost_rows.is_empty() {
            return Ok((local_repaired, network_repaired));
        }
        if lost_rows.len() > self.network.parity_shards() {
            return Err(EcError::TooManyErasures {
                present: nn - lost_rows.len(),
                needed: self.network.data_shards(),
            });
        }
        let kl = self.local.data_shards();
        // Column-major walk across all rows — not expressible as a single
        // iterator over `stripe`.
        #[allow(clippy::needless_range_loop)]
        for i in 0..kl {
            // Column i across all rows, as a network-level stripe.
            let mut column: Vec<Option<Vec<u8>>> = (0..nn).map(|j| stripe[j][i].clone()).collect();
            let missing_before = column.iter().filter(|c| c.is_none()).count();
            if missing_before == 0 {
                continue;
            }
            self.network.reconstruct(&mut column)?;
            network_repaired += missing_before;
            for j in 0..nn {
                if stripe[j][i].is_none() {
                    stripe[j][i] = column[j].take();
                }
            }
        }
        // Re-encode local parities of formerly-lost rows.
        for &j in &lost_rows {
            let data: Vec<Vec<u8>> = (0..kl)
                .map(|i| stripe[j][i].clone().expect("data rebuilt above"))
                .collect();
            let full = self.local.encode(&data)?;
            for (i, chunk) in full.into_iter().enumerate() {
                if stripe[j][i].is_none() {
                    stripe[j][i] = Some(chunk);
                    network_repaired += 1;
                }
            }
        }
        Ok((local_repaired, network_repaired))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|s| {
                (0..len)
                    .map(|i| ((s * 83 + i * 29 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn erase(stripe: &crate::mlec::MlecStripe) -> Vec<Vec<Option<Vec<u8>>>> {
        stripe
            .iter()
            .map(|row| row.iter().cloned().map(Some).collect())
            .collect()
    }

    #[test]
    fn paper_figure2c_shape() {
        // (2+1)/(2+1): 3 rows of 3 chunks from 4 data chunks.
        let codec = MlecCodec::new(2, 1, 2, 1).unwrap();
        let data = sample_data(4, 8);
        let stripe = codec.encode(&data).unwrap();
        assert_eq!(stripe.len(), 3);
        assert!(stripe.iter().all(|r| r.len() == 3));
        // Systematic: rows 0..2 carry the data chunks verbatim.
        assert_eq!(stripe[0][0], data[0]);
        assert_eq!(stripe[0][1], data[1]);
        assert_eq!(stripe[1][0], data[2]);
        assert_eq!(stripe[1][1], data[3]);
    }

    #[test]
    fn grid_is_consistent_both_ways() {
        // The local parity of the network-parity row must equal the network
        // parity of the local parities (paper §5.2.1(c): MLEC computes
        // double parities from network parities). With XOR codes this is
        // commutativity of the two linear maps.
        let codec = MlecCodec::new(2, 1, 2, 1).unwrap();
        let data = sample_data(4, 16);
        let stripe = codec.encode(&data).unwrap();
        // Network parity of the local parities (column 2).
        for (b, (&dp, (&l0, &l1))) in stripe[2][2]
            .iter()
            .zip(stripe[0][2].iter().zip(&stripe[1][2]))
            .enumerate()
        {
            assert_eq!(dp, l0 ^ l1, "byte {b}");
        }
    }

    #[test]
    fn encode_parallel_bit_identical_across_thread_counts() {
        let codec = MlecCodec::new(3, 2, 4, 2).unwrap();
        let data = sample_data(12, 512);
        let serial = codec.encode(&data).unwrap();
        for threads in [0usize, 1, 2, 3, 5, 11] {
            let parallel = codec.encode_parallel(&data, threads).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn encode_parallel_shape_errors() {
        let codec = MlecCodec::new(2, 1, 2, 1).unwrap();
        assert!(codec.encode_parallel(&sample_data(3, 8), 4).is_err());
        let mut data = sample_data(4, 8);
        data[2].pop();
        assert!(codec.encode_parallel(&data, 4).is_err());
    }

    #[test]
    fn local_erasures_repaired_locally() {
        let codec = MlecCodec::new(3, 2, 4, 2).unwrap();
        let data = sample_data(12, 8);
        let stripe = codec.encode(&data).unwrap();
        let mut grid = erase(&stripe);
        grid[0][1] = None;
        grid[0][4] = None; // two failures in one row: within p_l = 2
        grid[2][3] = None;
        let (local, network) = codec.reconstruct(&mut grid).unwrap();
        assert_eq!(local, 3);
        assert_eq!(network, 0);
        for (j, row) in stripe.iter().enumerate() {
            for (i, chunk) in row.iter().enumerate() {
                assert_eq!(grid[j][i].as_ref().unwrap(), chunk);
            }
        }
    }

    #[test]
    fn lost_row_repaired_over_network() {
        let codec = MlecCodec::new(3, 2, 4, 2).unwrap();
        let data = sample_data(12, 8);
        let stripe = codec.encode(&data).unwrap();
        let mut grid = erase(&stripe);
        // Lose 3 chunks in row 1 (> p_l = 2): a lost local stripe.
        grid[1][0] = None;
        grid[1][2] = None;
        grid[1][5] = None;
        let (local, network) = codec.reconstruct(&mut grid).unwrap();
        assert_eq!(local, 0);
        assert_eq!(network, 3);
        for (j, row) in stripe.iter().enumerate() {
            for (i, chunk) in row.iter().enumerate() {
                assert_eq!(grid[j][i].as_ref().unwrap(), chunk);
            }
        }
    }

    #[test]
    fn tolerates_pn_lost_rows_plus_local_failures() {
        let codec = MlecCodec::new(2, 2, 3, 1).unwrap();
        let data = sample_data(6, 4);
        let stripe = codec.encode(&data).unwrap();
        let mut grid = erase(&stripe);
        // Lose rows 0 and 3 completely (p_n = 2 tolerated), plus a single
        // chunk in row 1 (locally recoverable).
        for row in [0, 3] {
            grid[row].iter_mut().for_each(|c| *c = None);
        }
        grid[1][2] = None;
        codec.reconstruct(&mut grid).unwrap();
        for (j, row) in stripe.iter().enumerate() {
            for (i, chunk) in row.iter().enumerate() {
                assert_eq!(grid[j][i].as_ref().unwrap(), chunk, "row {j} col {i}");
            }
        }
    }

    #[test]
    fn data_loss_when_too_many_rows_lost() {
        let codec = MlecCodec::new(2, 1, 2, 1).unwrap();
        let data = sample_data(4, 4);
        let stripe = codec.encode(&data).unwrap();
        let mut grid = erase(&stripe);
        // Lose 2 entire rows with p_n = 1: unrecoverable.
        for row in [0, 2] {
            grid[row].iter_mut().for_each(|c| *c = None);
        }
        assert!(codec.reconstruct(&mut grid).is_err());
    }

    #[test]
    fn degraded_read_prefers_cheapest_path() {
        let codec = MlecCodec::new(3, 2, 4, 2).unwrap();
        let data = sample_data(12, 16);
        let stripe = codec.encode(&data).unwrap();
        let mut grid = erase(&stripe);

        // Healthy chunk: zero reads.
        let (bytes, reads) = codec.read_degraded(&grid, 1, 2).unwrap();
        assert_eq!(bytes, stripe[1][2]);
        assert_eq!(reads, 0);

        // One erasure in a row: local decode with k_l = 4 reads.
        grid[1][2] = None;
        let (bytes, reads) = codec.read_degraded(&grid, 1, 2).unwrap();
        assert_eq!(bytes, stripe[1][2]);
        assert_eq!(reads, 4);

        // Lost row (3 > p_l = 2 erasures): network decode, k_n = 3 reads.
        grid[0][0] = None;
        grid[0][1] = None;
        grid[0][3] = None;
        let (bytes, reads) = codec.read_degraded(&grid, 0, 0).unwrap();
        assert_eq!(bytes, stripe[0][0]);
        assert_eq!(reads, 3);

        // Erased parity column of the lost row: rebuild the data columns
        // first, then locally re-encode.
        grid[0][5] = None;
        let (bytes, reads) = codec.read_degraded(&grid, 0, 5).unwrap();
        assert_eq!(bytes, stripe[0][5]);
        assert!(reads >= 4, "reads={reads}");
    }

    #[test]
    fn degraded_read_fails_beyond_tolerance() {
        let codec = MlecCodec::new(2, 1, 2, 1).unwrap();
        let data = sample_data(4, 8);
        let stripe = codec.encode(&data).unwrap();
        let mut grid = erase(&stripe);
        // Lose two full rows with p_n = 1.
        for row in [0, 1] {
            grid[row].iter_mut().for_each(|c| *c = None);
        }
        assert!(codec.read_degraded(&grid, 0, 0).is_err());
    }

    #[test]
    fn overhead_math() {
        // (10+2)/(17+3): 240 total / 170 data - 1 = 41.2%.
        let codec = MlecCodec::new(10, 2, 17, 3).unwrap();
        assert_eq!(codec.data_chunks(), 170);
        assert_eq!(codec.total_chunks(), 240);
        assert!((codec.parity_overhead() - (240.0 / 170.0 - 1.0)).abs() < 1e-12);
    }
}
