//! Systematic Reed–Solomon codes over GF(2^8).
//!
//! Construction: the generator is `G = [I_k; C]` where `C` is a `p x k`
//! *column-normalized Cauchy matrix*: `C[i][j] = 1/(x_i + y_j)` over distinct
//! points `y_j = j`, `x_i = k + i`, with each column scaled so the first
//! parity row is all ones. Every square submatrix of a Cauchy matrix is
//! nonsingular, and column scaling preserves that, so any `k` rows of `G`
//! are linearly independent (the MDS property). The all-ones first parity
//! row makes the `p = 1` code exactly RAID-5 XOR parity — which is also what
//! gives the MLEC grid its both-ways parity consistency for XOR levels.

use crate::EcError;
use mlec_gf::field::{gf_div, gf_inv};
use mlec_gf::matrix::Matrix;
use mlec_gf::slice::{dot_into, mul_add_slice};

/// Segment size of the chunked multi-core encode path
/// ([`ReedSolomon::encode_into_parallel`]). Boundaries are a fixed
/// function of the stripe length — never of the thread count — which is
/// what makes the parallel output bit-identical to the serial path. 64 KiB
/// keeps a segment's working set (`k` data segments + `p` parity segments)
/// around L2 size for paper-scale stripes while leaving enough segments to
/// spread a 128 KiB+ chunk across cores.
pub const PARALLEL_SEGMENT_BYTES: usize = 64 * 1024;

/// A systematic `(k + p)` Reed–Solomon codec.
///
/// Shards `0..k` are data, shards `k..k+p` are parity. Any `k` of the
/// `k + p` shards suffice to reconstruct everything.
#[derive(Clone)]
pub struct ReedSolomon {
    k: usize,
    p: usize,
    /// Full `(k+p) x k` generator matrix, top block = identity.
    generator: Matrix,
}

impl ReedSolomon {
    /// Create a codec with `k` data and `p` parity shards.
    ///
    /// # Errors
    /// Returns [`EcError::InvalidParameters`] if `k == 0`, `p == 0`, or
    /// `k + p > 256` (the field size bounds the stripe width).
    pub fn new(k: usize, p: usize) -> Result<ReedSolomon, EcError> {
        if k == 0 || p == 0 {
            return Err(EcError::InvalidParameters(
                "k and p must both be positive".into(),
            ));
        }
        if k + p > 256 {
            return Err(EcError::InvalidParameters(format!(
                "k + p = {} exceeds the GF(2^8) stripe-width limit of 256",
                k + p
            )));
        }
        // Parity block: Cauchy over x_i = k+i (rows) and y_j = j (columns),
        // column-normalized so parity row 0 is all ones (XOR).
        let mut parity = Matrix::zero(p, k);
        for j in 0..k {
            let row0 = gf_inv((k as u8) ^ (j as u8));
            for i in 0..p {
                let c = gf_inv(((k + i) as u8) ^ (j as u8));
                parity.set(i, j, gf_div(c, row0));
            }
        }
        let generator = Matrix::identity(k).stack(&parity);
        Ok(ReedSolomon { k, p, generator })
    }

    /// Number of data shards.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Number of parity shards.
    pub fn parity_shards(&self) -> usize {
        self.p
    }

    /// Total shards (`k + p`).
    pub fn total_shards(&self) -> usize {
        self.k + self.p
    }

    /// Borrow the parity block (`p x k`) rows of the generator matrix.
    pub fn parity_row(&self, parity_index: usize) -> &[u8] {
        assert!(parity_index < self.p, "parity index out of range");
        self.generator.row(self.k + parity_index)
    }

    fn check_data_shape<T: AsRef<[u8]>>(&self, data: &[T]) -> Result<usize, EcError> {
        if data.len() != self.k {
            return Err(EcError::ShapeMismatch(format!(
                "expected {} data shards, got {}",
                self.k,
                data.len()
            )));
        }
        let len = data[0].as_ref().len();
        if data.iter().any(|d| d.as_ref().len() != len) {
            return Err(EcError::ShapeMismatch(
                "data shards differ in length".into(),
            ));
        }
        Ok(len)
    }

    fn check_parity_shape(&self, parity: &[Vec<u8>], len: usize) -> Result<(), EcError> {
        if parity.len() != self.p {
            return Err(EcError::ShapeMismatch(format!(
                "expected {} parity buffers, got {}",
                self.p,
                parity.len()
            )));
        }
        if parity.iter().any(|b| b.len() != len) {
            return Err(EcError::ShapeMismatch(
                "parity buffer length mismatch".into(),
            ));
        }
        Ok(())
    }

    /// Encode `k` data shards into `k + p` shards (data copied through,
    /// parities computed).
    pub fn encode<T: AsRef<[u8]>>(&self, data: &[T]) -> Result<Vec<Vec<u8>>, EcError> {
        let len = self.check_data_shape(data)?;
        let mut shards: Vec<Vec<u8>> = data.iter().map(|d| d.as_ref().to_vec()).collect();
        let refs: Vec<&[u8]> = data.iter().map(std::convert::AsRef::as_ref).collect();
        for pi in 0..self.p {
            let mut parity = vec![0u8; len];
            dot_into(self.parity_row(pi), &refs, &mut parity);
            shards.push(parity);
        }
        Ok(shards)
    }

    /// Compute parities into caller-provided buffers without allocating —
    /// the hot path measured by the Fig. 11 throughput experiment.
    ///
    /// # Errors
    /// Shape errors if `data` or `parity` counts/lengths are inconsistent.
    pub fn encode_into<T: AsRef<[u8]>>(
        &self,
        data: &[T],
        parity: &mut [Vec<u8>],
    ) -> Result<(), EcError> {
        let len = self.check_data_shape(data)?;
        self.check_parity_shape(parity, len)?;
        let refs: Vec<&[u8]> = data.iter().map(std::convert::AsRef::as_ref).collect();
        for (pi, buf) in parity.iter_mut().enumerate() {
            dot_into(self.generator.row(self.k + pi), &refs, buf);
        }
        Ok(())
    }

    /// Multi-core [`ReedSolomon::encode_into`]: the stripe is split at
    /// fixed [`PARALLEL_SEGMENT_BYTES`] boundaries and the segments are
    /// distributed round-robin over `threads` scoped worker threads, each
    /// computing all `p` parities for its byte ranges.
    ///
    /// Because the segment boundaries are a function of the stripe length
    /// only (never of `threads`) and GF arithmetic is exact, every output
    /// byte is produced by the same operations in the same order as the
    /// serial path — the result is **bit-identical** to
    /// [`ReedSolomon::encode_into`] for every thread count.
    ///
    /// `threads <= 1`, or stripes of at most one segment, fall through to
    /// the serial path (no thread is ever spawned for work that cannot
    /// split).
    ///
    /// # Errors
    /// Shape errors if `data` or `parity` counts/lengths are inconsistent.
    pub fn encode_into_parallel<T: AsRef<[u8]> + Sync>(
        &self,
        data: &[T],
        parity: &mut [Vec<u8>],
        threads: usize,
    ) -> Result<(), EcError> {
        // Per-worker work list: (segment index, that segment's slice of
        // every parity buffer).
        type SegmentWork<'a> = Vec<(usize, Vec<&'a mut [u8]>)>;
        let len = self.check_data_shape(data)?;
        self.check_parity_shape(parity, len)?;
        if threads <= 1 || len <= PARALLEL_SEGMENT_BYTES {
            let refs: Vec<&[u8]> = data.iter().map(std::convert::AsRef::as_ref).collect();
            for (pi, buf) in parity.iter_mut().enumerate() {
                dot_into(self.generator.row(self.k + pi), &refs, buf);
            }
            return Ok(());
        }
        let refs: Vec<&[u8]> = data.iter().map(std::convert::AsRef::as_ref).collect();
        let nseg = len.div_ceil(PARALLEL_SEGMENT_BYTES);
        // Regroup the parity buffers into per-segment bundles: segment
        // `si` owns bytes `si * SEG ..` of every parity buffer.
        let mut per_seg: Vec<Vec<&mut [u8]>> =
            (0..nseg).map(|_| Vec::with_capacity(self.p)).collect();
        for buf in parity.iter_mut() {
            for (si, seg) in buf.chunks_mut(PARALLEL_SEGMENT_BYTES).enumerate() {
                per_seg[si].push(seg);
            }
        }
        // Static round-robin assignment: worker `w` owns segments
        // `w, w + workers, …` — disjoint buffers, no locking.
        let workers = threads.min(nseg);
        let mut assignments: Vec<SegmentWork> = (0..workers).map(|_| Vec::new()).collect();
        for (si, segs) in per_seg.into_iter().enumerate() {
            assignments[si % workers].push((si, segs));
        }
        std::thread::scope(|scope| {
            for mine in assignments {
                let refs = &refs;
                scope.spawn(move || {
                    for (si, mut segs) in mine {
                        let start = si * PARALLEL_SEGMENT_BYTES;
                        let seg_len = segs[0].len();
                        let seg_refs: Vec<&[u8]> =
                            refs.iter().map(|d| &d[start..start + seg_len]).collect();
                        for (pi, seg) in segs.iter_mut().enumerate() {
                            dot_into(self.generator.row(self.k + pi), &seg_refs, seg);
                        }
                    }
                });
            }
        });
        Ok(())
    }

    /// Verify that the parity shards are consistent with the data shards.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, EcError> {
        if shards.len() != self.total_shards() {
            return Err(EcError::ShapeMismatch(format!(
                "expected {} shards, got {}",
                self.total_shards(),
                shards.len()
            )));
        }
        let data = &shards[..self.k];
        let len = self.check_data_shape(data)?;
        let refs: Vec<&[u8]> = data.iter().map(std::vec::Vec::as_slice).collect();
        let mut scratch = vec![0u8; len];
        for pi in 0..self.p {
            dot_into(self.parity_row(pi), &refs, &mut scratch);
            if scratch != shards[self.k + pi] {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Reconstruct all missing shards in place. `shards[i] == None` marks an
    /// erasure; on success every slot is `Some`.
    ///
    /// # Errors
    /// [`EcError::TooManyErasures`] if fewer than `k` shards survive.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        if shards.len() != self.total_shards() {
            return Err(EcError::ShapeMismatch(format!(
                "expected {} shard slots, got {}",
                self.total_shards(),
                shards.len()
            )));
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(EcError::TooManyErasures {
                present: present.len(),
                needed: self.k,
            });
        }
        if present.len() == shards.len() {
            return Ok(());
        }
        let len = shards[present[0]].as_ref().unwrap().len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().unwrap().len() != len)
        {
            return Err(EcError::ShapeMismatch(
                "surviving shards differ in length".into(),
            ));
        }

        // Decode matrix: rows of G for the first k surviving shards.
        let rows: Vec<usize> = present.iter().copied().take(self.k).collect();
        let sub = self.generator.select_rows(&rows);
        let inv = sub
            .invert()
            .expect("any k rows of an MDS generator are independent");

        // data_j = sum_i inv[j][i] * surviving_i  — computed shard-wise so we
        // only materialize the data shards that are actually missing, then
        // re-encode the missing parities.
        let surviving: Vec<&[u8]> = rows
            .iter()
            .map(|&i| shards[i].as_deref().unwrap())
            .collect();

        let missing_data: Vec<usize> = (0..self.k).filter(|&i| shards[i].is_none()).collect();
        let mut rebuilt_data: Vec<(usize, Vec<u8>)> = Vec::with_capacity(missing_data.len());
        for &d in &missing_data {
            let mut out = vec![0u8; len];
            dot_into(inv.row(d), &surviving, &mut out);
            rebuilt_data.push((d, out));
        }
        for (d, buf) in rebuilt_data {
            shards[d] = Some(buf);
        }

        // All data shards are now present; rebuild any missing parity.
        let missing_parity: Vec<usize> = (self.k..self.total_shards())
            .filter(|&i| shards[i].is_none())
            .collect();
        let mut rebuilt_parity: Vec<(usize, Vec<u8>)> = Vec::with_capacity(missing_parity.len());
        {
            let data_refs: Vec<&[u8]> = (0..self.k)
                .map(|i| shards[i].as_deref().expect("data rebuilt above"))
                .collect();
            for &pi in &missing_parity {
                let mut out = vec![0u8; len];
                dot_into(self.generator.row(pi), &data_refs, &mut out);
                rebuilt_parity.push((pi, out));
            }
        }
        for (pi, buf) in rebuilt_parity {
            shards[pi] = Some(buf);
        }
        Ok(())
    }

    /// Incrementally update all parity shards after a partial write to one
    /// data shard: `parity'_j = parity_j + G[j][shard] * (new - old)`.
    /// This is how production systems avoid re-reading the whole stripe on
    /// small writes; cost is `p` multiply-accumulates over the changed
    /// bytes instead of a `k`-wide re-encode.
    ///
    /// # Panics
    /// Panics if `shard >= k`.
    ///
    /// # Errors
    /// Shape errors when lengths disagree.
    pub fn update_parity(
        &self,
        shard: usize,
        old_data: &[u8],
        new_data: &[u8],
        parity: &mut [Vec<u8>],
    ) -> Result<(), EcError> {
        assert!(shard < self.k, "only data shards can be updated");
        if old_data.len() != new_data.len() {
            return Err(EcError::ShapeMismatch("old/new data lengths differ".into()));
        }
        if parity.len() != self.p {
            return Err(EcError::ShapeMismatch(format!(
                "expected {} parity buffers, got {}",
                self.p,
                parity.len()
            )));
        }
        if parity.iter().any(|b| b.len() != old_data.len()) {
            return Err(EcError::ShapeMismatch(
                "parity buffer length mismatch".into(),
            ));
        }
        let delta: Vec<u8> = old_data.iter().zip(new_data).map(|(o, n)| o ^ n).collect();
        for (pi, buf) in parity.iter_mut().enumerate() {
            let coeff = self.generator.get(self.k + pi, shard);
            mul_add_slice(coeff, &delta, buf);
        }
        Ok(())
    }

    /// Decode with an explicit helper set: reconstruct shard `target` using
    /// exactly the shards listed in `helpers` (must contain at least `k`
    /// live shards). Returns the rebuilt shard. This models repair methods
    /// that choose *which* chunks to read (e.g. `R_MIN`'s stage 1).
    pub fn reconstruct_one(
        &self,
        shards: &[Option<Vec<u8>>],
        target: usize,
        helpers: &[usize],
    ) -> Result<Vec<u8>, EcError> {
        if helpers.len() < self.k {
            return Err(EcError::TooManyErasures {
                present: helpers.len(),
                needed: self.k,
            });
        }
        let rows: Vec<usize> = helpers.iter().copied().take(self.k).collect();
        if rows.iter().any(|&h| shards[h].is_none()) {
            return Err(EcError::ShapeMismatch("helper shard is missing".into()));
        }
        let sub = self.generator.select_rows(&rows);
        let inv = sub
            .invert()
            .expect("any k rows of an MDS generator are independent");
        // Row of G for the target, composed with the inverse, gives the
        // coefficients applying directly to the helper shards.
        let target_row = self.generator.row(target).to_vec();
        let len = shards[rows[0]].as_ref().unwrap().len();
        let mut out = vec![0u8; len];
        for (hi, &h) in rows.iter().enumerate() {
            // coeff = sum_j target_row[j] * inv[j][hi]
            let mut coeff = 0u8;
            for (j, &t) in target_row.iter().enumerate() {
                coeff ^= mlec_gf::field::gf_mul(t, inv.get(j, hi));
            }
            mul_add_slice(coeff, shards[h].as_deref().unwrap(), &mut out);
        }
        Ok(out)
    }
}

impl std::fmt::Debug for ReedSolomon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReedSolomon({}+{})", self.k, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|s| {
                (0..len)
                    .map(|i| ((s * 131 + i * 7 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(3, 0).is_err());
        assert!(ReedSolomon::new(200, 57).is_err());
        assert!(ReedSolomon::new(200, 56).is_ok());
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = sample_data(5, 32);
        let shards = rs.encode(&data).unwrap();
        assert_eq!(shards.len(), 8);
        for i in 0..5 {
            assert_eq!(shards[i], data[i]);
        }
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let mut shards = rs.encode(&sample_data(4, 16)).unwrap();
        assert!(rs.verify(&shards).unwrap());
        shards[5][3] ^= 1;
        assert!(!rs.verify(&shards).unwrap());
    }

    #[test]
    fn reconstructs_any_p_erasures() {
        let k = 5;
        let p = 3;
        let rs = ReedSolomon::new(k, p).unwrap();
        let data = sample_data(k, 20);
        let encoded = rs.encode(&data).unwrap();
        let n = k + p;
        // All erasure patterns of size <= p.
        for mask in 0u32..(1 << n) {
            if (mask.count_ones() as usize) > p {
                continue;
            }
            let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
            for (i, shard) in shards.iter_mut().enumerate() {
                if mask & (1 << i) != 0 {
                    *shard = None;
                }
            }
            rs.reconstruct(&mut shards).unwrap();
            for i in 0..n {
                assert_eq!(
                    shards[i].as_ref().unwrap(),
                    &encoded[i],
                    "mask={mask:b} i={i}"
                );
            }
        }
    }

    #[test]
    fn too_many_erasures_is_reported() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let encoded = rs.encode(&sample_data(3, 8)).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[3] = None;
        let err = rs.reconstruct(&mut shards).unwrap_err();
        assert_eq!(
            err,
            EcError::TooManyErasures {
                present: 2,
                needed: 3
            }
        );
    }

    #[test]
    fn encode_into_matches_encode() {
        let rs = ReedSolomon::new(6, 2).unwrap();
        let data = sample_data(6, 48);
        let full = rs.encode(&data).unwrap();
        let mut parity = vec![vec![0u8; 48]; 2];
        rs.encode_into(&data, &mut parity).unwrap();
        assert_eq!(parity[0], full[6]);
        assert_eq!(parity[1], full[7]);
    }

    #[test]
    fn encode_into_parallel_bit_identical_across_thread_counts() {
        // Stripe long enough for several 64 KiB segments, with a ragged
        // tail so the last segment is short.
        let len = 3 * PARALLEL_SEGMENT_BYTES + 12_345;
        let rs = ReedSolomon::new(6, 3).unwrap();
        let data = sample_data(6, len);
        let mut serial = vec![vec![0u8; len]; 3];
        rs.encode_into(&data, &mut serial).unwrap();
        for threads in [0usize, 1, 2, 3, 7, 16] {
            let mut parallel = vec![vec![0xffu8; len]; 3];
            rs.encode_into_parallel(&data, &mut parallel, threads)
                .unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn encode_into_parallel_short_stripe_falls_through() {
        // A stripe of one segment or less must not spawn and must match.
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 100);
        let mut serial = vec![vec![0u8; 100]; 2];
        rs.encode_into(&data, &mut serial).unwrap();
        let mut parallel = vec![vec![0u8; 100]; 2];
        rs.encode_into_parallel(&data, &mut parallel, 8).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn encode_into_parallel_shape_errors() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 16);
        let mut wrong_count = vec![vec![0u8; 16]];
        assert!(rs.encode_into_parallel(&data, &mut wrong_count, 4).is_err());
        let mut wrong_len = vec![vec![0u8; 16], vec![0u8; 15]];
        assert!(rs.encode_into_parallel(&data, &mut wrong_len, 4).is_err());
    }

    #[test]
    fn incremental_parity_update_matches_reencode() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let mut data = sample_data(5, 32);
        let shards = rs.encode(&data).unwrap();
        let mut parity: Vec<Vec<u8>> = shards[5..].to_vec();
        // Overwrite shard 2 with new content and update incrementally.
        let old = data[2].clone();
        let new: Vec<u8> = (0..32).map(|i| (i * 91 + 5) as u8).collect();
        rs.update_parity(2, &old, &new, &mut parity).unwrap();
        data[2] = new;
        let reencoded = rs.encode(&data).unwrap();
        assert_eq!(parity[0], reencoded[5]);
        assert_eq!(parity[1], reencoded[6]);
        assert_eq!(parity[2], reencoded[7]);
    }

    #[test]
    fn incremental_update_shape_errors() {
        let rs = ReedSolomon::new(3, 1).unwrap();
        let mut parity = vec![vec![0u8; 4]];
        assert!(rs
            .update_parity(0, &[1, 2], &[1, 2, 3], &mut parity)
            .is_err());
        assert!(rs
            .update_parity(0, &[1, 2, 3, 4], &[4, 3, 2, 1], [].as_mut())
            .is_err());
    }

    #[test]
    #[should_panic]
    fn incremental_update_rejects_parity_shard() {
        let rs = ReedSolomon::new(3, 1).unwrap();
        let mut parity = vec![vec![0u8; 2]];
        let _ = rs.update_parity(3, &[0, 0], &[1, 1], &mut parity);
    }

    #[test]
    fn reconstruct_one_with_chosen_helpers() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let data = sample_data(4, 24);
        let encoded = rs.encode(&data).unwrap();
        let shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        // Rebuild data shard 2 from shards {0, 4, 5, 6} (one data, three parity).
        let rebuilt = rs.reconstruct_one(&shards, 2, &[0, 4, 5, 6]).unwrap();
        assert_eq!(rebuilt, encoded[2]);
        // Rebuild parity shard 5 from the data shards.
        let rebuilt = rs.reconstruct_one(&shards, 5, &[0, 1, 2, 3]).unwrap();
        assert_eq!(rebuilt, encoded[5]);
    }

    #[test]
    fn xor_parity_matches_plain_xor_for_p1() {
        // With p = 1, RS degenerates to XOR parity (coefficients all 1).
        let rs = ReedSolomon::new(4, 1).unwrap();
        let data = sample_data(4, 10);
        let shards = rs.encode(&data).unwrap();
        for i in 0..10 {
            let x = data[0][i] ^ data[1][i] ^ data[2][i] ^ data[3][i];
            assert_eq!(shards[4][i], x);
        }
    }

    #[test]
    fn wide_stripe_still_mds() {
        // The paper's local code is (17+3); also check a wide (50+15).
        for (k, p) in [(17usize, 3usize), (50, 15)] {
            let rs = ReedSolomon::new(k, p).unwrap();
            let data = sample_data(k, 8);
            let encoded = rs.encode(&data).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
            for i in 0..p {
                shards[i * 2] = None; // erase p spread-out shards
            }
            rs.reconstruct(&mut shards).unwrap();
            for i in 0..(k + p) {
                assert_eq!(shards[i].as_ref().unwrap(), &encoded[i]);
            }
        }
    }

    #[test]
    fn empty_shards_round_trip() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = vec![vec![], vec![], vec![]];
        let encoded = rs.encode(&data).unwrap();
        assert!(encoded.iter().all(std::vec::Vec::is_empty));
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        shards[1] = None;
        rs.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[1].as_deref(), Some(&[][..]));
    }
}
