//! Property-based tests for the erasure codecs: MDS behaviour of RS, LRC
//! decodability structure, and MLEC two-level consistency.

use mlec_ec::{Lrc, MlecCodec, ReedSolomon};
use proptest::prelude::*;

fn deterministic_data(k: usize, len: usize, salt: u64) -> Vec<Vec<u8>> {
    (0..k)
        .map(|s| {
            (0..len)
                .map(|i| ((s as u64 * 131 + i as u64 * 29 + salt) % 256) as u8)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any k surviving shards reconstruct the stripe (the MDS property),
    /// for random (k, p) and random erasure patterns of exactly p shards.
    #[test]
    fn rs_is_mds(
        k in 2usize..24,
        p in 1usize..8,
        salt: u64,
        pattern_seed: u64,
    ) {
        let rs = ReedSolomon::new(k, p).unwrap();
        let data = deterministic_data(k, 24, salt);
        let encoded = rs.encode(&data).unwrap();
        // Pseudo-random erasure pattern of size p from the seed.
        let n = k + p;
        let mut erase: Vec<usize> = (0..n).collect();
        let mut state = pattern_seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            erase.swap(i, j);
        }
        let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        for &e in erase.iter().take(p) {
            shards[e] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for i in 0..n {
            prop_assert_eq!(shards[i].as_ref().unwrap(), &encoded[i]);
        }
    }

    /// Parity is linear: encode(a) XOR encode(b) == encode(a XOR b).
    #[test]
    fn rs_encoding_is_linear(k in 2usize..10, p in 1usize..5, salt: u64) {
        let rs = ReedSolomon::new(k, p).unwrap();
        let a = deterministic_data(k, 16, salt);
        let b = deterministic_data(k, 16, salt.wrapping_add(99));
        let xor: Vec<Vec<u8>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(u, v)| u ^ v).collect())
            .collect();
        let ea = rs.encode(&a).unwrap();
        let eb = rs.encode(&b).unwrap();
        let ex = rs.encode(&xor).unwrap();
        for i in 0..(k + p) {
            for j in 0..16 {
                prop_assert_eq!(ex[i][j], ea[i][j] ^ eb[i][j]);
            }
        }
    }

    /// LRC: every pattern of at most r+1 erasures is decodable (the MR
    /// guarantee), for small random configurations.
    #[test]
    fn lrc_guaranteed_tolerance(
        k in 4usize..16,
        l in 2usize..3,
        r in 1usize..4,
        pattern_seed: u64,
    ) {
        prop_assume!(k % l == 0);
        let lrc = Lrc::new(k, l, r).unwrap();
        let n = lrc.total_chunks();
        let m = r + 1;
        prop_assume!(m <= n);
        let mut idx: Vec<usize> = (0..n).collect();
        let mut state = pattern_seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            idx.swap(i, j);
        }
        let mut erased = vec![false; n];
        for &e in idx.iter().take(m) {
            erased[e] = true;
        }
        prop_assert!(lrc.decodable(&erased), "k={k} l={l} r={r} pattern={erased:?}");
    }

    /// LRC reconstruct agrees byte-for-byte with re-encoding from data.
    #[test]
    fn lrc_reconstruct_round_trip(salt: u64, which in 0usize..8) {
        let lrc = Lrc::new(6, 2, 2).unwrap();
        let data = deterministic_data(6, 12, salt);
        let encoded = lrc.encode(&data).unwrap();
        let mut chunks: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        chunks[which % 10] = None;
        lrc.reconstruct(&mut chunks).unwrap();
        for i in 0..10 {
            prop_assert_eq!(chunks[i].as_ref().unwrap(), &encoded[i]);
        }
    }

    /// MLEC grid consistency: the double parity can be computed either way
    /// (local-of-network == network-of-local) for arbitrary parameters.
    #[test]
    fn mlec_double_parity_commutes(
        kn in 2usize..4,
        kl in 2usize..4,
        salt: u64,
    ) {
        // Both levels p=1 (XOR) keeps the check simple and exact.
        let codec = MlecCodec::new(kn, 1, kl, 1).unwrap();
        let data = deterministic_data(kn * kl, 8, salt);
        let stripe = codec.encode(&data).unwrap();
        let last_row = kn; // network parity row
        let last_col = kl; // local parity column
        for b in 0..8 {
            // Network parity of the local-parity column.
            let mut via_network = 0u8;
            for row in stripe.iter().take(kn) {
                via_network ^= row[last_col][b];
            }
            prop_assert_eq!(stripe[last_row][last_col][b], via_network);
        }
    }

    /// Erasures beyond p always error rather than fabricate data.
    #[test]
    fn rs_never_fabricates(k in 2usize..8, p in 1usize..4, salt: u64) {
        let rs = ReedSolomon::new(k, p).unwrap();
        let data = deterministic_data(k, 8, salt);
        let encoded = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        for slot in shards.iter_mut().take(p + 1) {
            *slot = None;
        }
        prop_assert!(rs.reconstruct(&mut shards).is_err());
    }
}
