//! Property tests for the erasure codecs: MDS behaviour of RS, LRC
//! decodability structure, and MLEC two-level consistency.
//!
//! Cases are driven by `mlec-runner`'s deterministic seed stream (one
//! substream per property, one seed per case), so every run exercises the
//! same inputs.

use mlec_ec::{Lrc, MlecCodec, ReedSolomon};
use mlec_runner::{SeedStream, SplitMix64};

// Scaled down under Miri: the interpreter is ~1000x slower than native.
const CASES: u64 = if cfg!(miri) { 4 } else { 48 };

fn case_rng(property: &str, case: u64) -> SplitMix64 {
    SplitMix64::new(SeedStream::new(0xEC0DEC, property).trial_seed(case))
}

fn in_range(r: &mut SplitMix64, lo: usize, hi: usize) -> usize {
    lo + (r.next_u64() as usize) % (hi - lo)
}

fn deterministic_data(k: usize, len: usize, salt: u64) -> Vec<Vec<u8>> {
    (0..k)
        .map(|s| {
            (0..len)
                .map(|i| ((s as u64 * 131 + i as u64 * 29 + salt) % 256) as u8)
                .collect()
        })
        .collect()
}

/// Fisher–Yates permutation of `0..n` from the case RNG.
fn permutation(r: &mut SplitMix64, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (r.next_u64() as usize) % (i + 1);
        idx.swap(i, j);
    }
    idx
}

/// Any k surviving shards reconstruct the stripe (the MDS property), for
/// random (k, p) and random erasure patterns of exactly p shards.
#[test]
fn rs_is_mds() {
    for case in 0..CASES {
        let mut r = case_rng("rs-mds", case);
        let k = in_range(&mut r, 2, 24);
        let p = in_range(&mut r, 1, 8);
        let salt = r.next_u64();
        let rs = ReedSolomon::new(k, p).unwrap();
        let data = deterministic_data(k, 24, salt);
        let encoded = rs.encode(&data).unwrap();
        let n = k + p;
        let erase = permutation(&mut r, n);
        let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        for &e in erase.iter().take(p) {
            shards[e] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for i in 0..n {
            assert_eq!(shards[i].as_ref().unwrap(), &encoded[i]);
        }
    }
}

/// Parity is linear: encode(a) XOR encode(b) == encode(a XOR b).
#[test]
fn rs_encoding_is_linear() {
    for case in 0..CASES {
        let mut r = case_rng("rs-linear", case);
        let k = in_range(&mut r, 2, 10);
        let p = in_range(&mut r, 1, 5);
        let salt = r.next_u64();
        let rs = ReedSolomon::new(k, p).unwrap();
        let a = deterministic_data(k, 16, salt);
        let b = deterministic_data(k, 16, salt.wrapping_add(99));
        let xor: Vec<Vec<u8>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(u, v)| u ^ v).collect())
            .collect();
        let ea = rs.encode(&a).unwrap();
        let eb = rs.encode(&b).unwrap();
        let ex = rs.encode(&xor).unwrap();
        for i in 0..(k + p) {
            for j in 0..16 {
                assert_eq!(ex[i][j], ea[i][j] ^ eb[i][j]);
            }
        }
    }
}

/// LRC: every pattern of at most r+1 erasures is decodable (the MR
/// guarantee), for small random configurations.
#[test]
fn lrc_guaranteed_tolerance() {
    let mut tested = 0;
    for case in 0..(CASES * 4) {
        let mut r = case_rng("lrc-tolerance", case);
        let k = in_range(&mut r, 4, 16);
        let l = 2;
        let rr = in_range(&mut r, 1, 4);
        if !k.is_multiple_of(l) {
            continue;
        }
        let lrc = Lrc::new(k, l, rr).unwrap();
        let n = lrc.total_chunks();
        let m = rr + 1;
        if m > n {
            continue;
        }
        let idx = permutation(&mut r, n);
        let mut erased = vec![false; n];
        for &e in idx.iter().take(m) {
            erased[e] = true;
        }
        assert!(
            lrc.decodable(&erased),
            "k={k} l={l} r={rr} pattern={erased:?}"
        );
        tested += 1;
    }
    assert!(
        tested >= CASES as usize,
        "only {tested} admissible cases drawn"
    );
}

/// LRC reconstruct agrees byte-for-byte with re-encoding from data.
#[test]
fn lrc_reconstruct_round_trip() {
    for case in 0..CASES {
        let mut r = case_rng("lrc-round-trip", case);
        let salt = r.next_u64();
        let which = in_range(&mut r, 0, 8);
        let lrc = Lrc::new(6, 2, 2).unwrap();
        let data = deterministic_data(6, 12, salt);
        let encoded = lrc.encode(&data).unwrap();
        let mut chunks: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        chunks[which % 10] = None;
        lrc.reconstruct(&mut chunks).unwrap();
        for i in 0..10 {
            assert_eq!(chunks[i].as_ref().unwrap(), &encoded[i]);
        }
    }
}

/// MLEC grid consistency: the double parity can be computed either way
/// (local-of-network == network-of-local) for arbitrary parameters.
#[test]
fn mlec_double_parity_commutes() {
    for case in 0..CASES {
        let mut r = case_rng("mlec-commutes", case);
        let kn = in_range(&mut r, 2, 4);
        let kl = in_range(&mut r, 2, 4);
        let salt = r.next_u64();
        // Both levels p=1 (XOR) keeps the check simple and exact.
        let codec = MlecCodec::new(kn, 1, kl, 1).unwrap();
        let data = deterministic_data(kn * kl, 8, salt);
        let stripe = codec.encode(&data).unwrap();
        let last_row = kn; // network parity row
        let last_col = kl; // local parity column
        for b in 0..8 {
            // Network parity of the local-parity column.
            let mut via_network = 0u8;
            for row in stripe.iter().take(kn) {
                via_network ^= row[last_col][b];
            }
            assert_eq!(stripe[last_row][last_col][b], via_network);
        }
    }
}

/// Erasures beyond p always error rather than fabricate data.
#[test]
fn rs_never_fabricates() {
    for case in 0..CASES {
        let mut r = case_rng("rs-never-fabricates", case);
        let k = in_range(&mut r, 2, 8);
        let p = in_range(&mut r, 1, 4);
        let salt = r.next_u64();
        let rs = ReedSolomon::new(k, p).unwrap();
        let data = deterministic_data(k, 8, salt);
        let encoded = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        for slot in shards.iter_mut().take(p + 1) {
            *slot = None;
        }
        assert!(rs.reconstruct(&mut shards).is_err());
    }
}
