//! Numerical validation of the analysis layer against brute force on tiny
//! systems, plus cross-method consistency checks.

use mlec_analysis::burst::{
    cp_rack_no_cat_prob, poisson_binomial_tail, pool_tail_prob, stripe_failure_distribution,
};
use mlec_analysis::markov::{nines, pdl_from_hazard, BirthDeathChain};
use mlec_runner::{SeedStream, SplitMix64};
use mlec_sim::census::{hypergeom_pmf, ln_choose};
use mlec_topology::Geometry;
use mlec_units::Duration;

/// One RNG per (property, case), derived exactly like runner trial seeds.
fn case_rng(property: &str, case: u64) -> SplitMix64 {
    SplitMix64::new(SeedStream::new(0xA7A1515, property).trial_seed(case))
}

/// Brute-force P(no pool >= threshold) by enumerating every layout of `c`
/// failures over `pools * pool_size` disks (tiny sizes only).
fn brute_force_no_cat(pools: u32, pool_size: u32, c: u32, threshold: u32) -> f64 {
    let disks = (pools * pool_size) as usize;
    let mut good = 0u64;
    let mut total = 0u64;
    // Iterate all c-subsets via bitmask (disks <= 16).
    assert!(disks <= 16);
    for mask in 0u32..(1 << disks) {
        if mask.count_ones() != c {
            continue;
        }
        total += 1;
        let mut ok = true;
        for p in 0..pools {
            let lo = p * pool_size;
            let pool_mask = ((1u32 << pool_size) - 1) << lo;
            if (mask & pool_mask).count_ones() >= threshold {
                ok = false;
                break;
            }
        }
        if ok {
            good += 1;
        }
    }
    good as f64 / total as f64
}

#[test]
fn cp_rack_dp_matches_brute_force() {
    // 4 pools of 4 disks, various failure counts and thresholds.
    for c in 1..=8u32 {
        for threshold in 2..=4u32 {
            let exact = cp_rack_no_cat_prob(4, 4, c, threshold);
            let brute = brute_force_no_cat(4, 4, c, threshold);
            assert!(
                (exact - brute).abs() < 1e-9,
                "c={c} t={threshold}: dp={exact} brute={brute}"
            );
        }
    }
}

#[test]
fn pool_tail_matches_brute_force_marginal() {
    // Marginal catastrophic probability of pool 0 with c failures over 16
    // disks in 4 pools.
    for c in 1..=8u32 {
        let exact = pool_tail_prob(16, 4, c, 3);
        // Brute force over layouts.
        let mut hit = 0u64;
        let mut total = 0u64;
        for mask in 0u32..(1 << 16) {
            if mask.count_ones() != c {
                continue;
            }
            total += 1;
            if (mask & 0xF).count_ones() >= 3 {
                hit += 1;
            }
        }
        let brute = hit as f64 / total as f64;
        assert!((exact - brute).abs() < 1e-9, "c={c}: {exact} vs {brute}");
    }
}

#[test]
fn markov_two_state_against_closed_form() {
    // lambda0 -> state1, then race of mu vs lambda1: absorption prob by
    // time t has the closed form of a 3-state phase-type distribution; use
    // very different rates and compare against high-resolution numerical
    // integration.
    let (l0, l1, mu) = (0.02f64, 0.05f64, 1.3f64);
    let chain = BirthDeathChain::new(vec![l0, l1], vec![mu]);
    // Numerical integration of the Kolmogorov forward equations.
    let mut p0 = 1.0f64;
    let mut p1 = 0.0f64;
    let mut dead = 0.0f64;
    let dt = 1e-4;
    let t_end = 50.0;
    let steps = (t_end / dt) as usize;
    for _ in 0..steps {
        let d0 = -l0 * p0 + mu * p1;
        let d1 = l0 * p0 - (l1 + mu) * p1;
        let dd = l1 * p1;
        p0 += d0 * dt;
        p1 += d1 * dt;
        dead += dd * dt;
    }
    let exact = chain.absorb_prob(Duration::from_hours(t_end));
    assert!(
        (exact - dead).abs() < 1e-4,
        "uniformization={exact} integration={dead}"
    );
}

#[test]
fn stripe_distribution_against_monte_carlo() {
    use rand::prelude::*;
    use rand_chacha::ChaCha12Rng;
    let g = Geometry::paper_default();
    let counts = vec![(2u32, 40u32), (10, 25), (30, 15)];
    let w = 10u32;
    let dist = stripe_failure_distribution(&g, &counts, w, w);
    // Monte Carlo the same quantity.
    let mut rng = ChaCha12Rng::seed_from_u64(11);
    let trials = 40_000;
    let mut histogram = vec![0u32; w as usize + 1];
    let all_racks: Vec<u32> = (0..g.racks).collect();
    for _ in 0..trials {
        let chosen: Vec<u32> = all_racks
            .choose_multiple(&mut rng, w as usize)
            .copied()
            .collect();
        let mut failed = 0;
        for r in chosen {
            let q = counts
                .iter()
                .find(|&&(rack, _)| rack == r)
                .map_or(0.0, |&(_, c)| c as f64 / g.disks_per_rack() as f64);
            if rng.gen_bool(q) {
                failed += 1;
            }
        }
        histogram[failed] += 1;
    }
    for m in 0..=4usize {
        let mc = histogram[m] as f64 / trials as f64;
        assert!(
            (dist[m] - mc).abs() < 0.01 + 0.1 * mc,
            "m={m}: dp={} mc={mc}",
            dist[m]
        );
    }
}

#[test]
fn ln_choose_against_exact_integers() {
    // Against exactly-computed binomials up to C(60, 30).
    let mut pascal = vec![vec![1u128]];
    for n in 1..=60usize {
        let prev = &pascal[n - 1];
        let mut row = vec![1u128];
        for k in 1..n {
            row.push(prev[k - 1] + prev[k]);
        }
        row.push(1);
        pascal.push(row);
    }
    for n in [5usize, 20, 45, 60] {
        for k in [0usize, 1, n / 3, n / 2, n] {
            let exact = (pascal[n][k] as f64).ln();
            let approx = ln_choose(n as u32, k as u32);
            assert!(
                (exact - approx).abs() < 1e-9 * exact.abs().max(1.0),
                "C({n},{k})"
            );
        }
    }
}

mod splitting_properties {
    use mlec_analysis::splitting::{
        catastrophic_sojourn, knowledge_survival_factor, stage1_analytic, stage2_pdl,
    };
    use mlec_sim::config::MlecDeployment;
    use mlec_sim::repair::RepairMethod;
    use mlec_topology::MlecScheme;
    use mlec_units::Duration;

    /// The survival factor is a probability and never higher for a
    /// chunk-knowledge method than for `R_ALL`.
    #[test]
    fn survival_factor_bounds() {
        for scheme in MlecScheme::ALL {
            let dep = MlecDeployment::paper_default(scheme);
            let s1 = stage1_analytic(&dep);
            let phi_all = knowledge_survival_factor(&dep, RepairMethod::All, &s1);
            for method in RepairMethod::PAPER {
                let phi = knowledge_survival_factor(&dep, method, &s1);
                assert!((0.0..=1.0).contains(&phi));
                assert!(phi <= phi_all + 1e-12);
            }
        }
    }

    /// Stage-2 PDL is monotone in mission time and in the sojourn (via
    /// method ordering).
    #[test]
    fn stage2_monotonicity() {
        for scheme in MlecScheme::ALL {
            let dep = MlecDeployment::paper_default(scheme);
            let s1 = stage1_analytic(&dep);
            let one = stage2_pdl(&dep, RepairMethod::Fco, &s1, Duration::from_years(1.0));
            let five = stage2_pdl(&dep, RepairMethod::Fco, &s1, Duration::from_years(5.0));
            assert!(five >= one);
            // Sojourn ordering follows method ordering.
            let mut last = f64::INFINITY;
            for m in RepairMethod::PAPER {
                let s = catastrophic_sojourn(&dep, m).to_hours();
                assert!(s <= last + 1e-9, "sojourns must not increase: {m}");
                last = s;
            }
        }
    }
}

/// The Poisson-binomial tail interpolates between binomial tails.
#[test]
fn poisson_binomial_homogeneous_is_binomial() {
    for case in 0..32u64 {
        let mut r = case_rng("poisson-binomial", case);
        let p = 0.01 + r.next_f64() * 0.98;
        let n = 1 + (r.next_u64() % 14) as usize;
        let k = (r.next_u64() % (n as u64 + 1)) as usize;
        let probs = vec![p; n];
        let tail = poisson_binomial_tail(&probs, k);
        // Binomial tail via hypergeometric-free direct sum.
        let mut expect = 0.0;
        for m in k..=n {
            expect += (ln_choose(n as u32, m as u32)
                + m as f64 * p.ln()
                + (n - m) as f64 * (1.0 - p).ln())
            .exp();
        }
        assert!((tail - expect).abs() < 1e-9, "tail={tail} expect={expect}");
    }
}

/// Hazard-based PDL and chain PDL agree in the strongly-repairing regime
/// for arbitrary small chains.
#[test]
fn hazard_matches_uniformization() {
    for case in 0..32u64 {
        let mut r = case_rng("hazard", case);
        let lam = 1e-6 + r.next_f64() * (1e-4 - 1e-6);
        let mu = 0.01 + r.next_f64() * 0.99;
        let states = 2 + (r.next_u64() % 3) as usize;
        let fail = vec![lam; states];
        let repair = vec![mu; states - 1];
        let chain = BirthDeathChain::new(fail, repair);
        let t = Duration::from_hours(8766.0);
        let exact = chain.absorb_prob(t);
        let approx = pdl_from_hazard(chain.absorb_hazard(), t);
        if exact <= 1e-300 {
            continue;
        }
        let rel = (exact - approx).abs() / exact;
        assert!(rel < 0.05, "exact={exact} approx={approx}");
    }
}

/// `nines()` and `pdl_from_hazard()` are inverse-consistent.
#[test]
fn nines_inverts_powers() {
    for case in 0..32u64 {
        let mut r = case_rng("nines", case);
        let exp = 1.0 + r.next_f64() * 29.0;
        let pdl = 10f64.powf(-exp);
        assert!((nines(pdl) - exp).abs() < 1e-9);
    }
}

/// Hypergeometric pmf is symmetric: drawing w and marking f is the same as
/// drawing f and marking w.
#[test]
fn hypergeometric_symmetry() {
    let mut tested = 0;
    for case in 0..128u64 {
        let mut r = case_rng("hypergeom", case);
        let d = 10 + (r.next_u64() % 90) as u32;
        let w = 1 + (r.next_u64() % 9) as u32;
        let f = 1 + (r.next_u64() % 9) as u32;
        let m = (r.next_u64() % 10) as u32;
        if !(w <= d && f <= d && m <= w.min(f)) {
            continue;
        }
        let a = hypergeom_pmf(d, w, f, m);
        let b = hypergeom_pmf(d, f, w, m);
        assert!((a - b).abs() < 1e-12, "a={a} b={b}");
        tested += 1;
    }
    assert!(tested >= 32, "only {tested} admissible cases drawn");
}
