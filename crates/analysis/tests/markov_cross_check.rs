//! Cross-check: the kernel-driven clustered pool simulator against the
//! analytic birth-death machinery in `mlec_analysis::markov`.
//!
//! The simulator repairs each failed disk independently after a fixed
//! `detection + capacity/bw` window, so the matching Markov chain
//! de-escalates state `m` at rate `m / t_disk` (every in-flight rebuild is
//! its own clock). To leading order in `lambda * t_disk` this exponential
//! chain has the same absorption hazard as the deterministic-window renewal
//! process the simulator implements: the dominant path `0 -> 1 -> ... ->
//! p_l + 1` contributes `prod_m (d - m) lambda t / m` either way (ordered
//! uniform arrivals inside one window vs. the `1/m!` from racing `m`
//! exponential repair clocks).
//!
//! Note this is deliberately *not* `chains::clustered_pool_chain`, which
//! models the paper's serialized spare-disk rebuild (one write target) and
//! therefore predicts a higher rate than the simulator's parallel-repair
//! dynamics.

use mlec_analysis::markov::BirthDeathChain;
use mlec_analysis::splitting::stage1_via_runner;
use mlec_runner::{RunSpec, StopRule};
use mlec_sim::config::{MlecDeployment, HOURS_PER_YEAR};
use mlec_sim::failure::FailureModel;
use mlec_sim::importance::FailureBias;
use mlec_topology::MlecScheme;

#[test]
fn clustered_pool_rate_matches_markov_chain() {
    // AFR high enough that catastrophes are directly observable without
    // importance sampling, low enough that lambda * t_disk stays small
    // (~1.6e-2) and the exponential-repair approximation holds well inside
    // the Monte Carlo error.
    let afr = 1.0;
    let mut dep = MlecDeployment::paper_default(MlecScheme::CC);
    dep.config.afr = afr;
    let model = FailureModel::Exponential { afr };

    let spec = RunSpec::new("markov-cross-check", 2024, StopRule::fixed(512)).threads(0);
    let (_s1, report) =
        stage1_via_runner(&dep, &model, 25.0, FailureBias::NONE, &spec).expect("runner campaign");
    assert!(
        report.acc.events() >= 100,
        "campaign too small to be a meaningful check: {} events",
        report.acc.events()
    );

    let d = dep.local_pools().pool_size() as f64;
    let pl = dep.params.local.p;
    let lambda = dep.config.disk_failure_rate_per_hour();
    let t_disk = dep.config.detection_hours
        + dep.geometry.disk_capacity_tb * 1e6 / dep.config.disk_repair_bw_mbs() / 3600.0;
    let fail: Vec<f64> = (0..=pl).map(|m| (d - m as f64) * lambda).collect();
    let repair: Vec<f64> = (1..=pl).map(|m| m as f64 / t_disk).collect();
    let chain = BirthDeathChain::new(fail, repair);
    let chain_rate = chain.absorb_hazard_per_hour() * HOURS_PER_YEAR;

    let sim_rate = report.acc.rate_per_pool_year();
    let (lo, hi) = report.acc.rate.ci95();
    assert!(
        lo <= chain_rate && chain_rate <= hi,
        "chain rate {chain_rate:.4e}/pool-yr outside sim 95% CI [{lo:.4e}, {hi:.4e}] \
         (sim point {sim_rate:.4e}, {} events over {:.0} pool-years)",
        report.acc.events(),
        report.acc.pool_years()
    );
}
