//! Cross-check: the kernel-driven clustered pool simulator against the
//! analytic birth-death machinery in `mlec_analysis::markov`.
//!
//! The simulator repairs each failed disk independently after a fixed
//! `detection + capacity/bw` window, so the matching Markov chain
//! de-escalates state `m` at rate `m / t_disk` (every in-flight rebuild is
//! its own clock). To leading order in `lambda * t_disk` this exponential
//! chain has the same absorption hazard as the deterministic-window renewal
//! process the simulator implements: the dominant path `0 -> 1 -> ... ->
//! p_l + 1` contributes `prod_m (d - m) lambda t / m` either way (ordered
//! uniform arrivals inside one window vs. the `1/m!` from racing `m`
//! exponential repair clocks).
//!
//! Note this is deliberately *not* `chains::clustered_pool_chain`, which
//! models the paper's serialized spare-disk rebuild (one write target) and
//! therefore predicts a higher rate than the simulator's parallel-repair
//! dynamics.

use mlec_analysis::markov::BirthDeathChain;
use mlec_analysis::splitting::stage1_via_runner;
use mlec_runner::{RunSpec, StopRule};
use mlec_sim::config::{MlecDeployment, HOURS_PER_YEAR};
use mlec_sim::failure::FailureModel;
use mlec_sim::importance::FailureBias;
use mlec_sim::repair::{inject_catastrophic, RepairMethod};
use mlec_sim::system_sim::SystemSimOptions;
use mlec_sim::trials::SystemTrial;
use mlec_topology::MlecScheme;

#[test]
fn clustered_pool_rate_matches_markov_chain() {
    // AFR high enough that catastrophes are directly observable without
    // importance sampling, low enough that lambda * t_disk stays small
    // (~1.6e-2) and the exponential-repair approximation holds well inside
    // the Monte Carlo error.
    let afr = 1.0;
    let mut dep = MlecDeployment::paper_default(MlecScheme::CC);
    dep.config.afr = afr;
    let model = FailureModel::Exponential { afr };

    let spec = RunSpec::new("markov-cross-check", 2024, StopRule::fixed(512)).threads(0);
    let (_s1, report) =
        stage1_via_runner(&dep, &model, 25.0, FailureBias::NONE, &spec).expect("runner campaign");
    assert!(
        report.acc.events() >= 100,
        "campaign too small to be a meaningful check: {} events",
        report.acc.events()
    );

    let d = dep.local_pools().pool_size() as f64;
    let pl = dep.params.local.p;
    let lambda = dep.config.disk_failure_rate().to_per_hour();
    let t_disk = dep.config.detection_hours
        + dep.geometry.disk_capacity_tb * 1e6 / dep.config.disk_repair_bw().to_mbs() / 3600.0;
    let fail: Vec<f64> = (0..=pl).map(|m| (d - m as f64) * lambda).collect();
    let repair: Vec<f64> = (1..=pl).map(|m| m as f64 / t_disk).collect();
    let chain = BirthDeathChain::new(fail, repair);
    let chain_rate = chain.absorb_hazard().to_per_year();

    let sim_rate = report.acc.rate_per_pool_year();
    let (lo, hi) = report.acc.rate.ci95();
    assert!(
        lo <= chain_rate && chain_rate <= hi,
        "chain rate {chain_rate:.4e}/pool-yr outside sim 95% CI [{lo:.4e}, {hi:.4e}] \
         (sim point {sim_rate:.4e}, {} events over {:.0} pool-years)",
        report.acc.events(),
        report.acc.pool_years()
    );
}

/// Predicted per-mission catastrophic sojourn hours from the occupancy
/// birth–death chain over concurrent catastrophic-pool repairs:
/// `birth[m] = (P - m) h`, `death[m] = m / T_s` (the strategy's repair-rate
/// transition), evaluated at its stationary mean over a mission.
fn occupancy_sojourn_h(num_pools: f64, h_per_hour: f64, t_s: f64, mission_h: f64) -> f64 {
    let states = 24usize;
    let fail: Vec<f64> = (0..states)
        .map(|m| (num_pools - m as f64) * h_per_hour)
        .collect();
    let repair: Vec<f64> = (1..states).map(|m| m as f64 / t_s).collect();
    BirthDeathChain::new(fail, repair).stationary_mean() * mission_h
}

/// The strategy matrix: every repair strategy's repair-rate transition
/// (`m / T_s`, with `T_s` the strategy's staged network-repair sojourn from
/// its catastrophic-repair plan) is embedded in a birth–death occupancy
/// chain and cross-checked against the full-system simulator on clustered
/// (C/C) and declustered (D/D) deployments.
///
/// The chain's birth side is the per-pool catastrophe hazard `h`, measured
/// by the *pool* simulator — the paper's iterative "treat a local pool like
/// a disk" step. It is strategy-independent, carries its own 95% CI, and is
/// itself verified analytically for clustered pools by
/// `clustered_pool_rate_matches_markov_chain` above (the declustered pool's
/// de-escalation is census-drain-dominated, so its hazard has no closed
/// birth–death form — the pool campaign supplies it empirically), corrected
/// for the system simulator's constant-aggregate-rate approximation. The check
/// passes when the chain prediction band (evaluated across the pool
/// campaign's rate CI) overlaps the system campaign's 95% CI on accumulated
/// catastrophic sojourn — a wrong `T_s` in any strategy's plan, or a broken
/// strategy→sojourn thread through the system simulator, shifts the
/// prediction linearly and breaks the overlap.
#[test]
fn strategy_repair_rates_match_occupancy_chain() {
    // AFR per scheme, tuned so both campaigns observe enough catastrophes
    // for tight CIs while `lambda * t_disk` stays in the regime where pool
    // catastrophes are rare per pool-year (the occupancy chain's premise).
    // D/D needs a higher AFR: the census's priority drain clears the
    // highest-multiplicity stripes within hours, so declustered catastrophes
    // need a much tighter failure burst than clustered ones.
    for (scheme, afr) in [(MlecScheme::CC, 0.6), (MlecScheme::DD, 1.0)] {
        let mut dep = MlecDeployment::paper_default(scheme);
        dep.config.afr = afr;
        let model = FailureModel::Exponential { afr };
        let num_pools = dep.local_pools().num_pools() as f64;
        let mission_h = HOURS_PER_YEAR;

        // Birth side: pool-level catastrophe hazard, with CI.
        let pool_spec =
            RunSpec::new("markov-strategy-pool", 2024, StopRule::fixed(2048)).threads(0);
        let (_s1, pool_report) =
            stage1_via_runner(&dep, &model, 50.0, FailureBias::NONE, &pool_spec)
                .expect("pool campaign");
        assert!(
            pool_report.acc.events() >= 100,
            "{scheme}: pool campaign too small: {} events",
            pool_report.acc.events()
        );
        // The pool simulator thins the arrival rate to `(d - m) lambda` as
        // disks fail; the system simulator deliberately keeps the constant
        // aggregate rate (its documented "<0.1% failed disks" approximation),
        // so inside one pool every escalation runs at `d lambda`. To leading
        // order the dominant path `0 -> 1 -> ... -> p_l + 1` therefore
        // differs by `prod_i d / (d - i)` — fold that into the pool hazard
        // so the chain models the system simulator it is checked against.
        let d = dep.local_pools().pool_size() as f64;
        let threshold = dep.params.local.p as u32 + 1;
        let aggregate_rate_correction: f64 = (1..threshold).map(|i| d / (d - i as f64)).product();
        let (rate_lo, rate_hi) = pool_report.acc.rate.ci95();
        let (h_lo, h_hi) = (
            rate_lo * aggregate_rate_correction / HOURS_PER_YEAR,
            rate_hi * aggregate_rate_correction / HOURS_PER_YEAR,
        );

        let injected = inject_catastrophic(&dep);
        let rall_traffic = RepairMethod::All
            .strategy()
            .plan(&dep, &injected)
            .cross_rack_traffic_tb;
        for method in RepairMethod::EXTENDED {
            let strategy = method.strategy();
            let plan = strategy.plan(&dep, &injected);
            let t_s = plan.network_time_h;

            let trial = SystemTrial {
                dep: &dep,
                model: &model,
                strategy,
                years: 1.0,
                opts: SystemSimOptions::default(),
                event_log: None,
                log_label: "markov-strategy-xcheck",
            };
            let spec = RunSpec::new("markov-strategy-sys", 2024, StopRule::fixed(16)).threads(0);
            let report = mlec_runner::run(&trial, &spec).expect("system campaign");
            let acc = report.acc;
            assert!(
                acc.catastrophic_pools >= 50,
                "{scheme} {method}: system campaign too small: {} catastrophes",
                acc.catastrophic_pools
            );

            // System-side 95% CI on per-mission catastrophic sojourn hours.
            let mean = acc.total_sojourn_h.mean();
            let half = 1.96 * acc.total_sojourn_h.std_err();
            let (sys_lo, sys_hi) = (mean - half, mean + half);
            // Chain prediction band across the pool-rate CI (monotone in h).
            let pred_lo = occupancy_sojourn_h(num_pools, h_lo, t_s, mission_h);
            let pred_hi = occupancy_sojourn_h(num_pools, h_hi, t_s, mission_h);
            assert!(
                pred_lo <= sys_hi && sys_lo <= pred_hi,
                "{scheme} {method}: chain prediction [{pred_lo:.0}, {pred_hi:.0}] h/mission \
                 disjoint from sim 95% CI [{sys_lo:.0}, {sys_hi:.0}] \
                 (T_s={t_s:.1} h, {} catastrophes over {} missions)",
                acc.catastrophic_pools,
                acc.loss.trials()
            );

            // Acceptance criterion riding on the same campaigns: the
            // beyond-the-paper strategies move strictly less cross-rack
            // data than R_ALL, in the plan and in the simulated mission.
            if matches!(method, RepairMethod::Layer | RepairMethod::Piggy) {
                assert!(
                    plan.cross_rack_traffic_tb < rall_traffic,
                    "{scheme} {method}: plan traffic {} !< R_ALL {rall_traffic}",
                    plan.cross_rack_traffic_tb
                );
                let per_event = acc.cross_rack_traffic_tb.mean() * acc.loss.trials() as f64
                    / acc.catastrophic_pools as f64;
                assert!(
                    per_event < rall_traffic,
                    "{scheme} {method}: simulated per-catastrophe traffic {per_event} \
                     !< R_ALL plan {rall_traffic}"
                );
            }
        }
    }
}
