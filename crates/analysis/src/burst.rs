//! Probability of data loss (PDL) under correlated failure bursts — the
//! dynamic-programming evaluation strategy of the paper (§3), producing the
//! heatmaps of Fig 5 (MLEC), Fig 13 (SLEC), and Fig 16 (LRC).
//!
//! A burst is `y` simultaneous disk failures scattered across exactly `x`
//! racks. The estimator is *conditional Monte Carlo*: sample only the coarse
//! per-rack failure counts (and rack identities), then compute the loss
//! probability of that layout **exactly** with per-rack dynamic programs and
//! Poissonization across placement positions. Because the inner quantity is
//! a smooth probability rather than a 0/1 indicator, a few hundred samples
//! resolve PDLs down to 10^-12 — far beyond what disk-level Monte Carlo
//! (also provided, as a cross-check) can reach.

use mlec_ec::lrc::Lrc;
use mlec_ec::{LrcParams, SlecParams};
use mlec_sim::census::{hypergeom_pmf, ln_choose};
use mlec_sim::config::MlecDeployment;
use mlec_topology::burst::{sample_burst, sample_rack_counts};
use mlec_topology::{Geometry, Placement, SlecPlacement};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// One heatmap cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstCell {
    /// Total simultaneous disk failures (`y` axis).
    pub failures: u32,
    /// Racks the failures are scattered across (`x` axis).
    pub affected_racks: u32,
    /// Probability of data loss.
    pub pdl: f64,
}

/// Tail of a Poisson–binomial distribution: `P(sum of independent
/// Bernoulli(probs) >= k)`, by exact DP convolution.
pub fn poisson_binomial_tail(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if probs.len() < k {
        return 0.0;
    }
    // dist[j] = P(exactly j successes so far), j capped at k (bucket k
    // absorbs "k or more").
    let mut dist = vec![0.0f64; k + 1];
    dist[0] = 1.0;
    for &p in probs {
        for j in (0..=k).rev() {
            let stay = dist[j] * (1.0 - p);
            let up = dist[j] * p;
            dist[j] = stay;
            if j < k {
                dist[j + 1] += up;
            } else {
                dist[j] += up; // cap bucket
            }
        }
        // Re-absorb: moving up from bucket k stays in bucket k.
        // (handled above by the else branch)
    }
    dist[k]
}

/// Hypergeometric tail: `P(a specific pool of ``pool_size`` disks contains at
/// least `threshold` of the `c` failures uniform over ``rack_disks`` disks)`.
pub fn pool_tail_prob(rack_disks: u32, pool_size: u32, c: u32, threshold: u32) -> f64 {
    (threshold..=c.min(pool_size))
        .map(|m| hypergeom_pmf(rack_disks, pool_size, c, m))
        .sum()
}

/// Exact probability that **no** clustered pool in a rack reaches
/// `threshold` failures, given `c` failures uniform over the rack's
/// `pools * pool_size` disks. DP over pools counting constrained layouts.
pub fn cp_rack_no_cat_prob(pools: u32, pool_size: u32, c: u32, threshold: u32) -> f64 {
    let rack_disks = pools * pool_size;
    if c > rack_disks {
        return 0.0;
    }
    let cap = (threshold - 1).min(pool_size) as usize;
    // ways[t] = log-free count of layouts with t failures placed so far; use
    // log-space accumulation via f64 after normalizing with ln C(rack, c).
    // Direct f64 counts overflow, so work with scaled probabilities:
    // iterate the DP in probability space by dividing by C(rack_disks, c) at
    // the end — do everything in log-sum-exp-free normalized form using
    // ratios of binomials computed in log space.
    let mut ways = vec![f64::NEG_INFINITY; c as usize + 1];
    ways[0] = 0.0; // ln(1)
    for _pool in 0..pools {
        let mut next = vec![f64::NEG_INFINITY; c as usize + 1];
        for (t, &w) in ways.iter().enumerate() {
            if w == f64::NEG_INFINITY {
                continue;
            }
            for m in 0..=cap.min(c as usize - t) {
                let add = w + ln_choose(pool_size, m as u32);
                let slot = &mut next[t + m];
                *slot = ln_add_exp(*slot, add);
            }
        }
        ways = next;
    }
    let total = ln_choose(rack_disks, c);
    (ways[c as usize] - total).exp().clamp(0.0, 1.0)
}

/// Probability that a declustered pool (one enclosure) with `f` concurrent
/// failures contains at least one stripe with `threshold` failed chunks,
/// Poissonized over the `stripes` expected stripes of width `w`.
pub fn dp_pool_cat_prob(encl_size: u32, w: u32, f: u32, threshold: u32, stripes: f64) -> f64 {
    if f < threshold {
        return 0.0;
    }
    let p_stripe: f64 = (threshold..=f.min(w))
        .map(|m| hypergeom_pmf(encl_size, w, f, m))
        .sum();
    -(-stripes * p_stripe).exp_m1()
}

/// Exact probability that **no** declustered pool (enclosure) in a rack is
/// catastrophic, given `c` failures uniform over the rack. DP over
/// enclosures with per-enclosure survival weights.
pub fn dp_rack_no_cat_prob(
    enclosures: u32,
    encl_size: u32,
    c: u32,
    w: u32,
    threshold: u32,
    stripes_per_encl: f64,
) -> f64 {
    let rack_disks = enclosures * encl_size;
    if c > rack_disks {
        return 0.0;
    }
    let mut ways = vec![f64::NEG_INFINITY; c as usize + 1];
    ways[0] = 0.0;
    for _e in 0..enclosures {
        let mut next = vec![f64::NEG_INFINITY; c as usize + 1];
        for (t, &wv) in ways.iter().enumerate() {
            if wv == f64::NEG_INFINITY {
                continue;
            }
            for f in 0..=(c as usize - t).min(encl_size as usize) {
                let survive =
                    1.0 - dp_pool_cat_prob(encl_size, w, f as u32, threshold, stripes_per_encl);
                if survive <= 0.0 {
                    continue;
                }
                let add = wv + ln_choose(encl_size, f as u32) + survive.ln();
                let slot = &mut next[t + f];
                *slot = ln_add_exp(*slot, add);
            }
        }
        ways = next;
    }
    let total = ln_choose(rack_disks, c);
    (ways[c as usize] - total).exp().clamp(0.0, 1.0)
}

/// Marginal probability that one *specific* declustered pool (enclosure) in
/// the rack is catastrophic given `c` failures in the rack.
pub fn dp_pool_cat_prob_marginal(
    enclosures: u32,
    encl_size: u32,
    c: u32,
    w: u32,
    threshold: u32,
    stripes_per_encl: f64,
) -> f64 {
    let rack_disks = enclosures * encl_size;
    (0..=c.min(encl_size))
        .map(|f| {
            hypergeom_pmf(rack_disks, encl_size, c, f)
                * dp_pool_cat_prob(encl_size, w, f, threshold, stripes_per_encl)
        })
        .sum()
}

fn ln_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a > b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// One conditional-Monte-Carlo sample of the MLEC burst PDL: draw a coarse
/// per-rack failure layout from `rng`, then evaluate its loss probability
/// exactly (per-rack DP + Poissonization). Averaging these over samples
/// gives the Fig 5 cell value; [`mlec_burst_pdl`] is that loop, and the
/// runner heatmaps feed per-trial seeds here instead.
///
/// Returns NaN when the `(failures, affected_racks)` cell is infeasible for
/// the geometry.
pub fn mlec_burst_sample(
    dep: &MlecDeployment,
    failures: u32,
    affected_racks: u32,
    rng: &mut impl Rng,
) -> f64 {
    let g = dep.geometry;
    let pools = dep.local_pools();
    let threshold = dep.params.local.p as u32 + 1;
    let pn1 = dep.params.network.p + 1;
    let w = dep.local_width();
    let stripes_per_pool = pools.pool_size() as f64 * g.chunks_per_disk() / w as f64;

    let Ok(counts) = sample_rack_counts(&g, failures, affected_racks, rng) else {
        return f64::NAN;
    };
    {
        match dep.scheme.network {
            Placement::Clustered => {
                // E[# (group, position) slots with >= p_n+1 catastrophic
                // pools], Poissonized.
                let group_size = dep.network_width();
                let positions = pools.pools_per_rack();
                let mut per_group: std::collections::BTreeMap<u32, Vec<f64>> =
                    std::collections::BTreeMap::new();
                for &(rack, c) in &counts {
                    let rho = match dep.scheme.local {
                        Placement::Clustered => {
                            pool_tail_prob(g.disks_per_rack(), pools.pool_size(), c, threshold)
                        }
                        Placement::Declustered => dp_pool_cat_prob_marginal(
                            g.enclosures_per_rack,
                            g.disks_per_enclosure,
                            c,
                            w,
                            threshold,
                            stripes_per_pool,
                        ),
                    };
                    per_group.entry(rack / group_size).or_default().push(rho);
                }
                let mut expected = 0.0f64;
                for rhos in per_group.values() {
                    expected += positions as f64 * poisson_binomial_tail(rhos, pn1);
                }
                -(-expected).exp_m1()
            }
            Placement::Declustered => {
                // Exact: P(>= p_n+1 racks each holding >= 1 catastrophic
                // pool) — network stripes need distinct racks.
                let pis: Vec<f64> = counts
                    .iter()
                    .map(|&(_, c)| {
                        1.0 - match dep.scheme.local {
                            Placement::Clustered => cp_rack_no_cat_prob(
                                pools.pools_per_rack(),
                                pools.pool_size(),
                                c,
                                threshold,
                            ),
                            Placement::Declustered => dp_rack_no_cat_prob(
                                g.enclosures_per_rack,
                                g.disks_per_enclosure,
                                c,
                                w,
                                threshold,
                                stripes_per_pool,
                            ),
                        }
                    })
                    .collect();
                poisson_binomial_tail(&pis, pn1)
            }
        }
    }
}

/// MLEC burst PDL (Fig 5) via conditional Monte Carlo + exact inner DP.
pub fn mlec_burst_pdl(
    dep: &MlecDeployment,
    failures: u32,
    affected_racks: u32,
    samples: u32,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut total = 0.0f64;
    for _ in 0..samples {
        let v = mlec_burst_sample(dep, failures, affected_racks, &mut rng);
        if v.is_nan() {
            return f64::NAN;
        }
        total += v;
    }
    total / samples as f64
}

/// One disk-level Monte Carlo trial of the MLEC burst estimator: sample a
/// concrete failed-disk layout and report whether it loses data. `None`
/// when the cell is infeasible for the geometry.
pub fn mlec_burst_direct_trial(
    dep: &MlecDeployment,
    failures: u32,
    affected_racks: u32,
    rng: &mut impl Rng,
) -> Option<bool> {
    let g = dep.geometry;
    let pools = dep.local_pools();
    let threshold = dep.params.local.p as u32 + 1;
    let pn1 = dep.params.network.p as u32 + 1;
    let w = dep.local_width();
    let stripes_per_pool = pools.pool_size() as f64 * g.chunks_per_disk() / w as f64;

    let layout = sample_burst(&g, failures, affected_racks, rng).ok()?;
    // Catastrophic pools (Bernoulli thinning for declustered).
    let mut cat_pools: Vec<u32> = Vec::new();
    for (pool, count) in layout.per_pool_counts(&pools) {
        if count < threshold {
            continue;
        }
        let is_cat = match dep.scheme.local {
            Placement::Clustered => true,
            Placement::Declustered => {
                let p = dp_pool_cat_prob(pools.pool_size(), w, count, threshold, stripes_per_pool);
                rng.gen_bool(p.clamp(0.0, 1.0))
            }
        };
        if is_cat {
            cat_pools.push(pool);
        }
    }
    Some(match dep.scheme.network {
        Placement::Clustered => {
            let group_size = dep.network_width();
            let mut slots: std::collections::BTreeMap<(u32, u32), u32> =
                std::collections::BTreeMap::new();
            for &p in &cat_pools {
                let rack = pools.rack_of_pool(p);
                let key = (rack / group_size, pools.position_in_rack(p));
                *slots.entry(key).or_insert(0) += 1;
            }
            slots.values().any(|&n| n >= pn1)
        }
        Placement::Declustered => {
            let mut racks: Vec<u32> = cat_pools.iter().map(|&p| pools.rack_of_pool(p)).collect();
            racks.sort_unstable();
            racks.dedup();
            racks.len() as u32 >= pn1
        }
    })
}

/// MLEC burst PDL by direct disk-level Monte Carlo (the cross-check for
/// [`mlec_burst_pdl`]; resolution limited to ~1/trials).
pub fn mlec_burst_pdl_direct_mc(
    dep: &MlecDeployment,
    failures: u32,
    affected_racks: u32,
    trials: u32,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut losses = 0u32;
    for _ in 0..trials {
        match mlec_burst_direct_trial(dep, failures, affected_racks, &mut rng) {
            Some(true) => losses += 1,
            Some(false) => {}
            None => return f64::NAN,
        }
    }
    losses as f64 / trials as f64
}

/// One conditional-Monte-Carlo sample of the SLEC burst PDL (see
/// [`mlec_burst_sample`] for the scheme). NaN when the cell is infeasible.
pub fn slec_burst_sample(
    geometry: &Geometry,
    params: SlecParams,
    placement: SlecPlacement,
    failures: u32,
    affected_racks: u32,
    rng: &mut impl Rng,
) -> f64 {
    let w = params.width() as u32;
    let threshold = params.p as u32 + 1;
    let g = geometry;
    let chunks_per_encl = g.disks_per_enclosure as f64 * g.chunks_per_disk();
    let stripes_per_encl = chunks_per_encl / w as f64;
    let total_chunks = g.total_disks() as f64 * g.chunks_per_disk();

    let Ok(counts) = sample_rack_counts(g, failures, affected_racks, rng) else {
        return f64::NAN;
    };
    {
        match placement {
            SlecPlacement::LocalCp => {
                // Any clustered pool reaching p+1 failures is data loss.
                let pools_per_rack = g.disks_per_rack() / w;
                let mut survive = 1.0f64;
                for &(_, c) in &counts {
                    survive *= cp_rack_no_cat_prob(pools_per_rack, w, c, threshold);
                }
                1.0 - survive
            }
            SlecPlacement::LocalDp => {
                let mut survive = 1.0f64;
                for &(_, c) in &counts {
                    survive *= dp_rack_no_cat_prob(
                        g.enclosures_per_rack,
                        g.disks_per_enclosure,
                        c,
                        w,
                        threshold,
                        stripes_per_encl,
                    );
                }
                1.0 - survive
            }
            SlecPlacement::NetCp => {
                // Pools are one disk per rack across a group of `w` racks.
                let mut per_group: std::collections::BTreeMap<u32, Vec<f64>> =
                    std::collections::BTreeMap::new();
                for &(rack, c) in &counts {
                    per_group
                        .entry(rack / w)
                        .or_default()
                        .push(c as f64 / g.disks_per_rack() as f64);
                }
                let mut expected = 0.0f64;
                for qs in per_group.values() {
                    expected +=
                        g.disks_per_rack() as f64 * poisson_binomial_tail(qs, threshold as usize);
                }
                -(-expected).exp_m1()
            }
            SlecPlacement::NetDp => {
                // Stripes pick `w` distinct racks; chunk fails with c_r/960.
                let dist = stripe_failure_distribution(g, &counts, w, threshold);
                let p_lost: f64 = dist[threshold as usize..].iter().sum();
                let n_stripes = total_chunks / w as f64;
                -(-n_stripes * p_lost).exp_m1()
            }
        }
    }
}

/// SLEC burst PDL (Fig 13) for the four placements of a `(k+p)` code.
pub fn slec_burst_pdl(
    geometry: &Geometry,
    params: SlecParams,
    placement: SlecPlacement,
    failures: u32,
    affected_racks: u32,
    samples: u32,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut total = 0.0f64;
    for _ in 0..samples {
        let v = slec_burst_sample(
            geometry,
            params,
            placement,
            failures,
            affected_racks,
            &mut rng,
        );
        if v.is_nan() {
            return f64::NAN;
        }
        total += v;
    }
    total / samples as f64
}

/// Distribution of failed-chunk count for a random stripe of width `w`
/// placed on `w` distinct racks (uniform rack subset, uniform disk per
/// rack), given per-rack failure counts. Exact DP over racks; returns
/// `P(exactly m failed)` for `m in 0..=cap` with the last bucket absorbing
/// `>= cap`.
pub fn stripe_failure_distribution(
    geometry: &Geometry,
    counts: &[(u32, u32)],
    w: u32,
    cap: u32,
) -> Vec<f64> {
    let racks = geometry.racks as usize;
    let w = w as usize;
    let cap = cap as usize;
    let mut fail_prob = vec![0.0f64; racks];
    for &(rack, c) in counts {
        fail_prob[rack as usize] = c as f64 / geometry.disks_per_rack() as f64;
    }
    // dp[j][m]: ln(count-weighted prob) over processed racks with j chosen
    // and m failures (m capped). Count weight = number of rack subsets.
    let mut dp = vec![vec![f64::NEG_INFINITY; cap + 1]; w + 1];
    dp[0][0] = 0.0;
    for q in fail_prob.iter().copied().take(racks) {
        for j in (0..w).rev() {
            for m in (0..=cap).rev() {
                let v = dp[j][m];
                if v == f64::NEG_INFINITY {
                    continue;
                }
                // Choose this rack: chunk fails w.p. q.
                if q < 1.0 {
                    let tgt = &mut dp[j + 1][m];
                    *tgt = ln_add_exp(*tgt, v + (1.0 - q).ln());
                }
                if q > 0.0 {
                    let mc = (m + 1).min(cap);
                    let tgt = &mut dp[j + 1][mc];
                    *tgt = ln_add_exp(*tgt, v + q.ln());
                }
            }
        }
    }
    let total = ln_choose(geometry.racks, w as u32);
    (0..=cap).map(|m| (dp[w][m] - total).exp()).collect()
}

/// LRC burst PDL (Fig 16): declustered LRC with every chunk in a separate
/// rack. `undecodable_by_count[m]` must give `P(an m-chunk erasure pattern
/// at uniform positions is undecodable)` (see [`lrc_undecodable_by_count`]).
pub fn lrc_burst_pdl(
    geometry: &Geometry,
    params: LrcParams,
    undecodable_by_count: &[f64],
    failures: u32,
    affected_racks: u32,
    samples: u32,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut total = 0.0f64;
    for _ in 0..samples {
        let v = lrc_burst_sample(
            geometry,
            params,
            undecodable_by_count,
            failures,
            affected_racks,
            &mut rng,
        );
        if v.is_nan() {
            return f64::NAN;
        }
        total += v;
    }
    total / samples as f64
}

/// One conditional-Monte-Carlo sample of the LRC burst PDL. NaN when the
/// cell is infeasible.
pub fn lrc_burst_sample(
    geometry: &Geometry,
    params: LrcParams,
    undecodable_by_count: &[f64],
    failures: u32,
    affected_racks: u32,
    rng: &mut impl Rng,
) -> f64 {
    let n = params.width() as u32;
    let total_chunks = geometry.total_disks() as f64 * geometry.chunks_per_disk();
    let n_stripes = total_chunks / n as f64;

    let Ok(counts) = sample_rack_counts(geometry, failures, affected_racks, rng) else {
        return f64::NAN;
    };
    let dist = stripe_failure_distribution(geometry, &counts, n, n);
    let p_lost: f64 = dist
        .iter()
        .enumerate()
        .map(|(m, &p)| p * undecodable_by_count.get(m).copied().unwrap_or(1.0))
        .sum();
    -(-n_stripes * p_lost).exp_m1()
}

/// Estimate `P(an erasure pattern of m uniform chunk positions is
/// undecodable)` for each `m in 0..=n` by Monte Carlo over the code's exact
/// rank test.
pub fn lrc_undecodable_by_count(lrc: &Lrc, samples_per_count: u32, seed: u64) -> Vec<f64> {
    let n = lrc.total_chunks();
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n + 1);
    for m in 0..=n {
        if m == 0 {
            out.push(0.0);
            continue;
        }
        if m > n - lrc.data_chunks() {
            // Fewer than k survivors: always undecodable.
            out.push(1.0);
            continue;
        }
        let mut undec = 0u32;
        for _ in 0..samples_per_count {
            let mut erased = vec![false; n];
            // Floyd's algorithm for a uniform m-subset.
            let mut chosen = std::collections::BTreeSet::new();
            for j in (n - m)..n {
                let t = rng.gen_range(0..=j);
                let pick = if chosen.insert(t) { t } else { j };
                chosen.insert(pick);
                erased[pick] = true;
            }
            if !lrc.decodable(&erased) {
                undec += 1;
            }
        }
        out.push(undec as f64 / samples_per_count as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_topology::MlecScheme;

    fn dep(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment::paper_default(scheme)
    }

    #[test]
    fn poisson_binomial_tail_basics() {
        assert_eq!(poisson_binomial_tail(&[0.5, 0.5], 0), 1.0);
        assert!((poisson_binomial_tail(&[0.5, 0.5], 2) - 0.25).abs() < 1e-12);
        assert!((poisson_binomial_tail(&[0.5, 0.5], 1) - 0.75).abs() < 1e-12);
        assert_eq!(poisson_binomial_tail(&[0.9], 2), 0.0);
        // Heterogeneous case against manual enumeration.
        let p = [0.1, 0.2, 0.3];
        let expect = 0.1 * 0.2 * 0.7 + 0.1 * 0.8 * 0.3 + 0.9 * 0.2 * 0.3 + 0.1 * 0.2 * 0.3;
        assert!((poisson_binomial_tail(&p, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn cp_rack_dp_matches_marginal_union_bound() {
        // For tiny failure counts, P(any pool >= threshold) ≈ pools * rho.
        let pools = 48u32;
        let pool_size = 20u32;
        let c = 4u32;
        let threshold = 4u32;
        let rho = pool_tail_prob(960, pool_size, c, threshold);
        let p_any = 1.0 - cp_rack_no_cat_prob(pools, pool_size, c, threshold);
        assert!(
            (p_any - pools as f64 * rho).abs() / p_any < 0.01,
            "p_any={p_any} union={}",
            pools as f64 * rho
        );
    }

    #[test]
    fn fig5_finding3_cc_zero_pdl_below_tolerance() {
        // Paper F#3: PDL = 0 when <= p_n racks are affected, and when no
        // more than x+p_l... here: x + 8 failures in x racks cannot lose
        // data for C/C (each rack at most ~(p_l) extra failures).
        let d = dep(MlecScheme::CC);
        // 2 racks affected: any failure count is survivable at network level.
        let p = mlec_burst_pdl(&d, 40, 2, 50, 1);
        assert_eq!(p, 0.0, "p={p}");
        // 3 racks, 3 failures: far below the p_l+1 local threshold.
        let p = mlec_burst_pdl(&d, 3, 3, 50, 2);
        assert!(p < 1e-12);
    }

    #[test]
    fn fig5_finding1_pdl_grows_with_failures() {
        let d = dep(MlecScheme::CD);
        let p12 = mlec_burst_pdl(&d, 12, 3, 100, 3);
        let p30 = mlec_burst_pdl(&d, 30, 3, 100, 3);
        let p60 = mlec_burst_pdl(&d, 60, 3, 100, 3);
        assert!(p12 < p30 && p30 < p60, "p12={p12} p30={p30} p60={p60}");
    }

    #[test]
    fn fig5_finding2_scatter_lowers_pdl() {
        // Paper F#2: the same 60 failures over more racks → lower PDL.
        let d = dep(MlecScheme::DC);
        let concentrated = mlec_burst_pdl(&d, 60, 3, 100, 4);
        let scattered = mlec_burst_pdl(&d, 60, 30, 100, 4);
        assert!(
            scattered < concentrated / 10.0,
            "concentrated={concentrated} scattered={scattered}"
        );
    }

    #[test]
    fn fig5_finding7_dd_worst() {
        // Paper F#7: D/D has the highest PDL of the four schemes at the
        // worst-case burst (60 failures, p_n+1 = 3 racks).
        let cells: Vec<f64> = MlecScheme::ALL
            .iter()
            .map(|&s| mlec_burst_pdl(&dep(s), 60, 3, 100, 5))
            .collect();
        let (cc, cd, dc, dd) = (cells[0], cells[1], cells[2], cells[3]);
        assert!(
            dd >= cc && dd >= cd && dd >= dc,
            "cc={cc} cd={cd} dc={dc} dd={dd}"
        );
        // And C/C is the most robust (F: "C/C performs the best").
        assert!(cc <= cd && cc <= dc, "cc={cc} cd={cd} dc={dc}");
    }

    #[test]
    fn conditional_mc_matches_direct_mc_on_hot_cells() {
        // The exact-DP estimator must agree with disk-level Monte Carlo
        // where the latter has resolution (PDL >~ 0.05).
        for scheme in [MlecScheme::CD, MlecScheme::DD] {
            let d = dep(scheme);
            let exact = mlec_burst_pdl(&d, 60, 3, 200, 6);
            let direct = mlec_burst_pdl_direct_mc(&d, 60, 3, 400, 7);
            if exact > 0.05 {
                assert!(
                    (exact - direct).abs() < 0.12,
                    "{scheme}: exact={exact} direct={direct}"
                );
            }
        }
    }

    #[test]
    fn fig13_local_slec_patterns() {
        let g = Geometry::paper_default();
        let params = SlecParams::new(7, 3);
        // Localized burst (many failures, 1 rack): Loc-Cp loses data with
        // noticeable probability, and Loc-Dp is even worse (paper §5.1.3).
        let cp_local = slec_burst_pdl(&g, params, SlecPlacement::LocalCp, 40, 1, 100, 8);
        let dp_local = slec_burst_pdl(&g, params, SlecPlacement::LocalDp, 40, 1, 100, 8);
        assert!(dp_local >= cp_local, "cp={cp_local} dp={dp_local}");
        // Scattered burst: local SLEC survives (few failures per rack).
        let cp_scatter = slec_burst_pdl(&g, params, SlecPlacement::LocalCp, 60, 60, 100, 9);
        assert!(cp_scatter < 1e-6, "cp_scatter={cp_scatter}");
    }

    #[test]
    fn fig13_network_slec_patterns() {
        let g = Geometry::paper_default();
        let params = SlecParams::new(7, 3);
        // Net-Cp: zero PDL when <= p racks affected.
        let safe = slec_burst_pdl(&g, params, SlecPlacement::NetCp, 60, 3, 50, 10);
        assert_eq!(safe, 0.0);
        // Net-Dp is worse than Net-Cp under scattered failures.
        let cp = slec_burst_pdl(&g, params, SlecPlacement::NetCp, 60, 60, 50, 11);
        let dp = slec_burst_pdl(&g, params, SlecPlacement::NetDp, 60, 60, 50, 11);
        assert!(dp > cp, "cp={cp} dp={dp}");
        // Network SLEC survives localized bursts that kill local SLEC.
        let localized = slec_burst_pdl(&g, params, SlecPlacement::NetCp, 40, 2, 50, 12);
        assert_eq!(localized, 0.0);
    }

    #[test]
    fn stripe_failure_distribution_sums_to_one() {
        let g = Geometry::paper_default();
        let counts = vec![(0u32, 30u32), (5, 20), (17, 10)];
        let dist = stripe_failure_distribution(&g, &counts, 10, 10);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
        // With few failures, most stripes have zero failed chunks.
        assert!(dist[0] > 0.9);
    }

    #[test]
    fn lrc_undecodable_curve_is_monotone_with_floor_and_ceiling() {
        let lrc = Lrc::new(6, 2, 2).unwrap();
        let curve = lrc_undecodable_by_count(&lrc, 300, 13);
        assert_eq!(curve[0], 0.0);
        assert_eq!(curve[1], 0.0, "single failures always decodable");
        assert_eq!(*curve.last().unwrap(), 1.0);
        // r+1 = 3 failures always decodable for this MR construction.
        assert_eq!(curve[3], 0.0);
        for window in curve.windows(2) {
            assert!(window[1] >= window[0] - 0.05, "roughly monotone");
        }
    }

    #[test]
    fn fig16_lrc_scattered_burst_loses() {
        // Paper: LRC-Dp is susceptible to highly scattered bursts.
        let g = Geometry::paper_default();
        let params = LrcParams::paper_default();
        let lrc = Lrc::new(params.k, params.l, params.r).unwrap();
        let curve = lrc_undecodable_by_count(&lrc, 500, 14);
        let scattered = lrc_burst_pdl(&g, params, &curve, 60, 60, 30, 15);
        let tiny = lrc_burst_pdl(&g, params, &curve, 4, 4, 30, 16);
        assert!(scattered > tiny, "scattered={scattered} tiny={tiny}");
        assert!(scattered > 1e-6, "scattered={scattered}");
    }
}
