//! Pool-level Markov chain builders: the analytic counterpart of
//! [`mlec_sim::pool_sim`] that reaches the 10^-9-per-pool-year catastrophic
//! rates (Fig 7) no Monte Carlo budget could resolve.
//!
//! State = current maximum stripe-failure multiplicity in the pool
//! (equivalently, concurrent unrepaired failures for clustered pools).
//! Absorption at `p_l + 1` is a catastrophic (locally-unrecoverable) pool.
//!
//! - **Clustered pools** repair each failed disk independently onto a spare
//!   (rate `m / T_disk` out of state `m`): the classic RAID chain.
//! - **Declustered pools** repair by priority: the de-escalation rate out of
//!   state `m ≥ 2` is the inverse of the time to drain the class-`m` stripe
//!   census (tiny — this is why Dp pools are orders of magnitude more
//!   durable, paper §4.1.3), while state 1 drains a whole disk's worth of
//!   chunks at the declustered rate.

use crate::markov::BirthDeathChain;
use mlec_sim::bandwidth::{local_repair_bw, single_disk_repair_bw};
use mlec_sim::census::prob_cover_all;
use mlec_sim::config::MlecDeployment;
use mlec_topology::Placement;
use mlec_units::{Bandwidth, Duration, Rate, Volume};

/// Build the catastrophic-failure chain of one local pool of `dep`.
pub fn pool_chain(dep: &MlecDeployment) -> BirthDeathChain {
    match dep.scheme.local {
        Placement::Clustered => clustered_pool_chain(dep),
        Placement::Declustered => declustered_pool_chain(dep),
    }
}

/// Catastrophic-event rate of one local pool (per pool-year).
pub fn pool_catastrophic_rate(dep: &MlecDeployment) -> Rate {
    pool_chain(dep).absorb_hazard()
}

/// Catastrophic-event rate of the whole system (all pools; Fig 7's y-axis
/// is this expressed as a probability, identical for rare events).
pub fn system_catastrophic_rate(dep: &MlecDeployment) -> Rate {
    pool_catastrophic_rate(dep) * dep.local_pools().num_pools() as f64
}

fn clustered_pool_chain(dep: &MlecDeployment) -> BirthDeathChain {
    let d = dep.local_pools().pool_size() as f64;
    let pl = dep.params.local.p;
    let lambda = dep.config.disk_failure_rate().to_per_hour();
    let t_disk = (dep.config.detection()
        + Volume::from_tb(dep.geometry.disk_capacity_tb)
            .transfer_time_mb(single_disk_repair_bw(dep)))
    .to_hours();
    let fail: Vec<f64> = (0..=pl).map(|m| (d - m as f64) * lambda).collect();
    // Rebuilds serialize on the pool's spare disk (paper Fig 2d: "repair to
    // spare disk" — one write target), so the de-escalation rate does not
    // grow with the number of concurrent failures. This is exactly the
    // repair-parallelism disadvantage that declustered placement removes.
    let repair: Vec<f64> = (1..=pl).map(|_| 1.0 / t_disk).collect();
    BirthDeathChain::new(fail, repair)
}

fn declustered_pool_chain(dep: &MlecDeployment) -> BirthDeathChain {
    let pools = dep.local_pools();
    let d = pools.pool_size();
    let w = dep.local_width();
    let pl = dep.params.local.p;
    let lambda = dep.config.disk_failure_rate().to_per_hour();
    let chunk_mb = dep.geometry.chunk_kb / 1e3;
    let total_stripes = d as f64 * dep.geometry.chunks_per_disk() / w as f64;

    let fail: Vec<f64> = (0..=pl).map(|m| (d as f64 - m as f64) * lambda).collect();
    let mut repair = Vec::with_capacity(pl);
    for m in 1..=pl as u32 {
        // Window at state m: detection + time to drain the class-m census
        // that exists right after the m-th failure (priority rebuild).
        let class_m_stripes = total_stripes * prob_cover_all(d, w, m);
        let class_m_chunks = class_m_stripes * m as f64;
        let bw = local_repair_bw(dep, 1, m).to_mbs();
        let chunks_per_hour = bw * 3600.0 / chunk_mb;
        let drain_hours = if m == 1 {
            // State 1 must drain the whole disk's content.
            dep.geometry.disk_capacity_tb * 1e6 / bw / 3600.0
        } else {
            class_m_chunks / chunks_per_hour
        };
        let window = dep.config.detection_hours + drain_hours;
        repair.push(1.0 / window);
    }
    BirthDeathChain::new(fail, repair)
}

/// Inputs of [`generic_declustered_chain`]. The quantity fields keep the
/// raw-`f64`-with-suffix convention (this is a parameter record, the same
/// boundary role as `SimConfig`); the chain builder is the only consumer
/// and does its arithmetic on the named fields directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeclusteredChainSpec {
    /// Disks in the (declustered) pool.
    pub pool_disks: u32,
    /// Stripe width `k + p`.
    pub width: u32,
    /// Failures tolerated per stripe (`p` for MR codes).
    pub tolerance: usize,
    /// Per-disk failure rate, events/hour.
    pub lambda_per_hour: f64,
    /// Failure-detection delay, hours.
    pub detection_hours: f64,
    /// Per-disk capacity, TB.
    pub disk_capacity_tb: f64,
    /// Chunk size, KB.
    pub chunk_kb: f64,
    /// Chunks per disk.
    pub chunks_per_disk: f64,
    /// Bandwidth draining a whole failed disk (state 1), MB/s.
    pub single_bw_mbs: f64,
    /// Bandwidth draining multi-failure stripe classes (states ≥ 2), MB/s.
    pub class_bw_mbs: f64,
}

/// Generic declustered-pool chain: `pool_disks` disks, stripes of
/// `width`, absorption when some stripe reaches `tolerance + 1` failed
/// chunks. `single_bw_mbs` drains a whole failed disk (state 1);
/// `class_bw_mbs` drains the multi-failure stripe classes (states ≥ 2).
pub fn generic_declustered_chain(spec: &DeclusteredChainSpec) -> BirthDeathChain {
    let DeclusteredChainSpec {
        pool_disks,
        width,
        tolerance,
        lambda_per_hour,
        detection_hours,
        disk_capacity_tb,
        chunk_kb,
        chunks_per_disk,
        single_bw_mbs,
        class_bw_mbs,
    } = *spec;
    let total_stripes = pool_disks as f64 * chunks_per_disk / width as f64;
    let chunk_mb = chunk_kb / 1e3;
    // Escalation from state m requires the new failed disk to intersect a
    // surviving class-m stripe. In a small pool (120 disks) the class-m
    // census is millions of stripes and this is certain; in a system-wide
    // declustered pool (tens of thousands of disks) the top classes hold
    // only a handful of stripes and the thinning factor is the dominant
    // protection.
    let fail: Vec<f64> = (0..=tolerance)
        .map(|m| {
            let base = (pool_disks as f64 - m as f64) * lambda_per_hour;
            if m == 0 {
                return base;
            }
            let n_m = total_stripes * prob_cover_all(pool_disks, width, m as u32);
            let hit = (width as f64 - m as f64) / (pool_disks as f64 - m as f64);
            let intersect = -(-n_m * hit).exp_m1();
            base * intersect.clamp(0.0, 1.0)
        })
        .collect();
    let mut repair = Vec::with_capacity(tolerance);
    for m in 1..=tolerance as u32 {
        let drain_hours = if m == 1 {
            Volume::from_tb(disk_capacity_tb)
                .transfer_time_mb(Bandwidth::from_mbs(single_bw_mbs))
                .to_hours()
        } else {
            let class_chunks = total_stripes * prob_cover_all(pool_disks, width, m) * m as f64;
            class_chunks * chunk_mb / Bandwidth::from_mbs(class_bw_mbs).to_mb_per_hour()
        };
        repair.push(1.0 / (detection_hours + drain_hours));
    }
    BirthDeathChain::new(fail, repair)
}

/// Generic clustered-pool chain: `width` disks per pool, per-disk rebuild
/// time `t_disk`, absorption at `tolerance + 1` concurrent failures.
/// Rebuilds serialize on the single spare disk (see
/// [`pool_chain`]'s clustered variant).
pub fn generic_clustered_chain(
    width: u32,
    tolerance: usize,
    lambda: Rate,
    t_disk: Duration,
) -> BirthDeathChain {
    let lambda_per_hour = lambda.to_per_hour();
    let fail: Vec<f64> = (0..=tolerance)
        .map(|m| (width as f64 - m as f64) * lambda_per_hour)
        .collect();
    let repair: Vec<f64> = (1..=tolerance).map(|_| 1.0 / t_disk.to_hours()).collect();
    BirthDeathChain::new(fail, repair)
}

/// One-year durability (in nines) of a SLEC deployment over the given
/// geometry, used by the Fig 12 tradeoff scatter.
pub fn slec_durability_nines(
    geometry: &mlec_topology::Geometry,
    config: &mlec_sim::SimConfig,
    params: mlec_ec::SlecParams,
    placement: mlec_topology::SlecPlacement,
) -> f64 {
    use mlec_topology::SlecPlacement as P;
    let w = params.width() as u32;
    let lambda = config.disk_failure_rate();
    let disk_bw = config.disk_repair_bw().to_mbs();
    let t_disk = (config.detection()
        + Volume::from_tb(geometry.disk_capacity_tb).transfer_time_mb(config.disk_repair_bw()))
    .to_hours();
    let (chain, pools) = match placement {
        P::LocalCp | P::NetCp => {
            let chain = generic_clustered_chain(w, params.p, lambda, Duration::from_hours(t_disk));
            (chain, geometry.total_disks() as f64 / w as f64)
        }
        P::LocalDp => {
            let d = geometry.disks_per_enclosure;
            let survivors = (d - 1) as f64;
            let single_bw = survivors * disk_bw / (params.k as f64 + 1.0);
            let chain = generic_declustered_chain(&DeclusteredChainSpec {
                pool_disks: d,
                width: w,
                tolerance: params.p,
                lambda_per_hour: lambda.to_per_hour(),
                detection_hours: config.detection_hours,
                disk_capacity_tb: geometry.disk_capacity_tb,
                chunk_kb: geometry.chunk_kb,
                chunks_per_disk: geometry.chunks_per_disk(),
                single_bw_mbs: single_bw,
                class_bw_mbs: single_bw,
            });
            (chain, geometry.total_enclosures() as f64)
        }
        P::NetDp => {
            // System-wide pool; repair crosses racks: all racks participate,
            // k reads + 1 write per rebuilt byte.
            let d = geometry.total_disks();
            let net_bw =
                geometry.racks as f64 * config.rack_repair_bw().to_mbs() / (params.k as f64 + 1.0);
            let disk_side = (d - 1) as f64 * disk_bw / (params.k as f64 + 1.0);
            let bw = net_bw.min(disk_side);
            let chain = generic_declustered_chain(&DeclusteredChainSpec {
                pool_disks: d,
                width: w,
                tolerance: params.p,
                lambda_per_hour: lambda.to_per_hour(),
                detection_hours: config.detection_hours,
                disk_capacity_tb: geometry.disk_capacity_tb,
                chunk_kb: geometry.chunk_kb,
                chunks_per_disk: geometry.chunks_per_disk(),
                single_bw_mbs: bw,
                class_bw_mbs: bw,
            });
            (chain, 1.0)
        }
    };
    let hazard = chain.absorb_hazard() * pools; // per pool-yr, scaled to system
    crate::markov::nines(crate::markov::pdl_from_hazard(
        hazard,
        Duration::from_years(1.0),
    ))
}

/// One-year durability (in nines) of a declustered LRC over the geometry
/// (Fig 15). `undecodable_at_limit` is the probability that an erasure
/// pattern of `r + 2` uniform chunks is undecodable (thinning of the
/// absorbing transition; any `r + 1` failures are always decodable for the
/// MR construction).
pub fn lrc_durability_nines(
    geometry: &mlec_topology::Geometry,
    config: &mlec_sim::SimConfig,
    params: mlec_ec::LrcParams,
    undecodable_at_limit: f64,
) -> f64 {
    let w = params.width() as u32;
    let lambda = config.disk_failure_rate();
    let d = geometry.total_disks();
    // Single-chunk repairs read the local group (k/l chunks); multi-failure
    // stripes may need a global decode (k reads). All traffic crosses racks.
    let group_reads = (params.k as f64 / params.l as f64).ceil();
    let rack_bw_total = geometry.racks as f64 * config.rack_repair_bw().to_mbs();
    let single_bw = rack_bw_total / (group_reads + 1.0);
    let class_bw = rack_bw_total / (params.k as f64 + 1.0);
    let chain = generic_declustered_chain(&DeclusteredChainSpec {
        pool_disks: d,
        width: w,
        tolerance: params.r + 1,
        lambda_per_hour: lambda.to_per_hour(),
        detection_hours: config.detection_hours,
        disk_capacity_tb: geometry.disk_capacity_tb,
        chunk_kb: geometry.chunk_kb,
        chunks_per_disk: geometry.chunks_per_disk(),
        single_bw_mbs: single_bw,
        class_bw_mbs: class_bw,
    });
    let hazard = chain.absorb_hazard() * undecodable_at_limit.max(1e-300);
    crate::markov::nines(crate::markov::pdl_from_hazard(
        hazard,
        Duration::from_years(1.0),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_topology::MlecScheme;

    fn dep(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment::paper_default(scheme)
    }

    #[test]
    fn fig7_clustered_rate_magnitude() {
        // Paper Fig 7: C/C and D/C catastrophic probability below 0.001%
        // per year (1e-5 per system-year), but clearly above 1e-7.
        let rate = system_catastrophic_rate(&dep(MlecScheme::CC)).to_per_year();
        assert!(rate < 1e-4 && rate > 1e-7, "rate={rate}");
        // D/C has the same local structure.
        let rate_dc = system_catastrophic_rate(&dep(MlecScheme::DC)).to_per_year();
        assert!((rate - rate_dc).abs() / rate < 1e-9);
    }

    #[test]
    fn fig7_declustered_orders_of_magnitude_better() {
        // Paper Fig 7: "the probability is almost 0.00001%" (1e-7) for C/D
        // and D/D — at least ~100x below the clustered schemes.
        let cp = system_catastrophic_rate(&dep(MlecScheme::CC)).to_per_year();
        let dp = system_catastrophic_rate(&dep(MlecScheme::CD)).to_per_year();
        assert!(dp < cp / 20.0, "cp={cp} dp={dp}");
        assert!(dp < 1e-5 && dp > 1e-10, "dp={dp}");
    }

    #[test]
    fn per_pool_rates_scale_with_pool_count() {
        let d = dep(MlecScheme::CC);
        let per_pool = pool_catastrophic_rate(&d).to_per_year();
        let system = system_catastrophic_rate(&d).to_per_year();
        assert!((system / per_pool - 2880.0).abs() < 1e-6);
    }

    #[test]
    fn declustered_windows_shrink_with_multiplicity() {
        // The chain's repair rates must increase with state (higher classes
        // drain faster), which is the priority-rebuild effect.
        let chain_dep = dep(MlecScheme::CD);
        let pools = chain_dep.local_pools();
        let total_stripes = pools.pool_size() as f64 * chain_dep.geometry.chunks_per_disk() / 20.0;
        let c2 = total_stripes * prob_cover_all(120, 20, 2) * 2.0;
        let c3 = total_stripes * prob_cover_all(120, 20, 3) * 3.0;
        assert!(c3 < c2, "class volumes must shrink: c2={c2} c3={c3}");
    }

    #[test]
    fn higher_afr_higher_rate() {
        let mut d = dep(MlecScheme::CC);
        let base = pool_catastrophic_rate(&d).to_per_year();
        d.config.afr = 0.05;
        let inflated = pool_catastrophic_rate(&d).to_per_year();
        assert!(inflated > base * 100.0, "base={base} inflated={inflated}");
    }

    #[test]
    fn faster_detection_helps() {
        let mut d = dep(MlecScheme::CD);
        let base = pool_catastrophic_rate(&d).to_per_year();
        d.config.detection_hours = 1.0 / 60.0; // 1 minute
        let fast = pool_catastrophic_rate(&d).to_per_year();
        assert!(fast < base, "base={base} fast={fast}");
    }

    #[test]
    fn slec_more_parities_more_nines() {
        let g = mlec_topology::Geometry::paper_default();
        let c = mlec_sim::SimConfig::paper_default();
        let p2 = slec_durability_nines(
            &g,
            &c,
            mlec_ec::SlecParams::new(10, 2),
            mlec_topology::SlecPlacement::LocalCp,
        );
        let p5 = slec_durability_nines(
            &g,
            &c,
            mlec_ec::SlecParams::new(10, 5),
            mlec_topology::SlecPlacement::LocalCp,
        );
        assert!(p5 > p2 + 5.0, "p2={p2} p5={p5}");
    }

    #[test]
    fn slec_durability_plausible_range() {
        // Paper Fig 12: a local (28+12) SLEC reaches ~33 nines. Our model
        // should land in the same regime (tens of nines).
        let g = mlec_topology::Geometry::paper_default();
        let c = mlec_sim::SimConfig::paper_default();
        let n = slec_durability_nines(
            &g,
            &c,
            mlec_ec::SlecParams::new(28, 12),
            mlec_topology::SlecPlacement::LocalCp,
        );
        assert!(n > 20.0 && n < 60.0, "n={n}");
    }

    #[test]
    fn lrc_durability_scales_with_global_parities() {
        let g = mlec_topology::Geometry::paper_default();
        let c = mlec_sim::SimConfig::paper_default();
        let r2 = lrc_durability_nines(&g, &c, mlec_ec::LrcParams::new(12, 2, 2), 0.2);
        let r4 = lrc_durability_nines(&g, &c, mlec_ec::LrcParams::new(12, 2, 4), 0.2);
        assert!(r4 > r2 + 2.0, "r2={r2} r4={r4}");
        // Thinning with a smaller undecodable fraction helps.
        let thin = lrc_durability_nines(&g, &c, mlec_ec::LrcParams::new(12, 2, 2), 0.002);
        assert!(thin > r2 + 1.0, "r2={r2} thin={thin}");
    }

    #[test]
    fn generic_clustered_chain_matches_mlec_builder() {
        // The MLEC clustered local pool is an instance of the generic chain.
        let d = dep(MlecScheme::CC);
        let lambda = d.config.disk_failure_rate();
        let t_disk = d.config.detection_hours
            + d.geometry.disk_capacity_tb * 1e6
                / mlec_sim::bandwidth::single_disk_repair_bw(&d).to_mbs()
                / 3600.0;
        let generic = generic_clustered_chain(20, 3, lambda, Duration::from_hours(t_disk));
        let built = pool_chain(&d);
        assert!(
            (generic.absorb_hazard().to_per_hour() - built.absorb_hazard().to_per_hour()).abs()
                / built.absorb_hazard().to_per_hour()
                < 1e-12
        );
    }
}
