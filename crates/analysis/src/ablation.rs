//! Ablation studies for the design choices DESIGN.md calls out — the
//! paper's discussion hooks turned into sweeps:
//!
//! - **failure detection time** (§5.2.2: "if failure detection time is
//!   reduced significantly (e.g., to 1 minute), LRC-Dp's durability could be
//!   similar or slightly better than MLEC");
//! - **repair-bandwidth throttle** (§3's 20% cap);
//! - **spare-rebuild parallelism** in clustered pools (serial hot spare vs
//!   idealized parallel spares — the modeling decision behind Fig 7's
//!   clustered/declustered gap);
//! - **AFR sensitivity** (the 1%/yr assumption).

use crate::chains::{lrc_durability_nines, pool_catastrophic_rate};
use crate::markov::BirthDeathChain;
use crate::splitting::mlec_durability_nines;
use crate::tradeoff::ideal_lrc_undecodable_at_limit;
use mlec_ec::LrcParams;
use mlec_sim::bandwidth::single_disk_repair_bw;
use mlec_sim::config::MlecDeployment;
use mlec_sim::repair::RepairMethod;
use mlec_units::Volume;

mlec_runner::impl_to_json!(AblationPoint { x, series, value });

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// The varied parameter's value (unit depends on the sweep).
    pub x: f64,
    /// Label of the configuration this row belongs to.
    pub series: String,
    /// Resulting metric (durability nines unless stated otherwise).
    pub value: f64,
}

/// Sweep failure-detection time (hours) for an MLEC deployment and an LRC
/// baseline — reproduces the §5.2.2 discussion that fast detection closes
/// LRC's durability gap.
pub fn detection_time_sweep(
    base: &MlecDeployment,
    lrc: LrcParams,
    detection_hours: &[f64],
) -> Vec<AblationPoint> {
    let mut out = Vec::new();
    for &dt in detection_hours {
        let mut dep = *base;
        dep.config.detection_hours = dt;
        out.push(AblationPoint {
            x: dt,
            series: format!("MLEC {} R_MIN", dep.scheme),
            value: mlec_durability_nines(&dep, RepairMethod::Min),
        });
        let mut cfg = base.config;
        cfg.detection_hours = dt;
        out.push(AblationPoint {
            x: dt,
            series: format!("LRC-Dp {lrc}"),
            value: lrc_durability_nines(
                &base.geometry,
                &cfg,
                lrc,
                ideal_lrc_undecodable_at_limit(lrc),
            ),
        });
    }
    out
}

/// Sweep the repair-bandwidth throttle fraction (the paper fixes 20%).
pub fn throttle_sweep(base: &MlecDeployment, fractions: &[f64]) -> Vec<AblationPoint> {
    let mut out = Vec::new();
    for &f in fractions {
        let mut dep = *base;
        dep.config.repair_fraction = f;
        out.push(AblationPoint {
            x: f,
            series: format!("MLEC {} R_MIN", dep.scheme),
            value: mlec_durability_nines(&dep, RepairMethod::Min),
        });
    }
    out
}

/// Sweep the disk annual failure rate (the paper fixes 1%).
pub fn afr_sweep(base: &MlecDeployment, afrs: &[f64]) -> Vec<AblationPoint> {
    let mut out = Vec::new();
    for &afr in afrs {
        let mut dep = *base;
        dep.config.afr = afr;
        out.push(AblationPoint {
            x: afr,
            series: format!("MLEC {} R_MIN", dep.scheme),
            value: mlec_durability_nines(&dep, RepairMethod::Min),
        });
    }
    out
}

/// Compare the serial-hot-spare clustered rebuild model (deployed reality,
/// used throughout the suite) against an idealized parallel-spares variant.
/// Returns `(serial_rate, parallel_rate)` in catastrophic events per
/// pool-year — the gap quantifies how much of Fig 7's clustered/declustered
/// difference comes from spare-write serialization alone.
pub fn spare_policy_comparison(dep: &MlecDeployment) -> (f64, f64) {
    assert!(
        dep.scheme.local == mlec_topology::Placement::Clustered,
        "spare policy ablation applies to clustered locals"
    );
    let serial = pool_catastrophic_rate(dep).to_per_year();

    // Idealized parallel: m concurrent rebuilds de-escalate at rate m/T.
    let d = dep.local_pools().pool_size() as f64;
    let pl = dep.params.local.p;
    let lambda = dep.config.disk_failure_rate().to_per_hour();
    let t_disk = (dep.config.detection()
        + Volume::from_tb(dep.geometry.disk_capacity_tb)
            .transfer_time_mb(single_disk_repair_bw(dep)))
    .to_hours();
    let fail: Vec<f64> = (0..=pl).map(|m| (d - m as f64) * lambda).collect();
    let repair: Vec<f64> = (1..=pl).map(|m| m as f64 / t_disk).collect();
    let parallel = BirthDeathChain::new(fail, repair)
        .absorb_hazard()
        .to_per_year();
    (serial, parallel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_topology::MlecScheme;

    fn dep(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment::paper_default(scheme)
    }

    #[test]
    fn faster_detection_helps_lrc_more_than_mlec() {
        // The §5.2.2 claim: at 1-minute detection, LRC closes (part of) the
        // gap — its relative gain must exceed MLEC's.
        let points = detection_time_sweep(
            &dep(MlecScheme::CD),
            LrcParams::paper_default(),
            &[0.5, 1.0 / 60.0],
        );
        let get = |series_contains: &str, x: f64| {
            points
                .iter()
                .find(|p| p.series.contains(series_contains) && (p.x - x).abs() < 1e-9)
                .unwrap()
                .value
        };
        let mlec_gain = get("MLEC", 1.0 / 60.0) - get("MLEC", 0.5);
        let lrc_gain = get("LRC", 1.0 / 60.0) - get("LRC", 0.5);
        assert!(lrc_gain > mlec_gain, "mlec={mlec_gain} lrc={lrc_gain}");
        assert!(lrc_gain > 0.0);
    }

    #[test]
    fn more_repair_bandwidth_more_nines() {
        let points = throttle_sweep(&dep(MlecScheme::CC), &[0.1, 0.2, 0.5]);
        assert!(points[0].value < points[1].value);
        assert!(points[1].value < points[2].value);
    }

    #[test]
    fn afr_dominates_durability() {
        let points = afr_sweep(&dep(MlecScheme::CC), &[0.005, 0.01, 0.05]);
        assert!(points[0].value > points[1].value);
        assert!(points[1].value > points[2].value);
        // Roughly: 10x AFR costs ~(p_l+1 + p_n...) orders; at least 4 nines
        // between 0.5% and 5%.
        assert!(points[0].value - points[2].value > 4.0);
    }

    #[test]
    fn parallel_spares_strictly_better_but_not_the_whole_story() {
        let (serial, parallel) = spare_policy_comparison(&dep(MlecScheme::CC));
        assert!(parallel < serial, "serial={serial} parallel={parallel}");
        // Parallel spares buy roughly p_l! (= 6x) on the chain, far less
        // than the ~30x gap to declustered pools.
        let gain = serial / parallel;
        assert!(gain > 3.0 && gain < 12.0, "gain={gain}");
        let dp_rate = pool_catastrophic_rate(&dep(MlecScheme::CD)).to_per_year();
        // Note: rates are per *pool*; a Dp pool has 6x the disks, so compare
        // per disk: Dp per-disk rate must still undercut even the parallel-
        // spare Cp per-disk rate.
        assert!(
            dp_rate / 120.0 < parallel / 20.0,
            "declustering beats spare parallelism"
        );
    }
}
