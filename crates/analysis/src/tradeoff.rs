//! Durability-vs-encoding-throughput tradeoff enumeration (paper Fig 12 and
//! Fig 15): sweep code configurations at a fixed parity-space overhead band
//! and pair each with its one-year durability and predicted single-core
//! encoding throughput.
//!
//! Throughput comes from [`mlec_ec::throughput::ThroughputModel`] (one
//! measured reference scaled by the multiply-per-byte cost model), so a
//! full sweep takes milliseconds; the Fig 11 harness validates the model
//! against direct measurement.

use crate::chains::{lrc_durability_nines, slec_durability_nines};
use crate::splitting::mlec_durability_nines;
use mlec_ec::throughput::ThroughputModel;
use mlec_ec::{EcScheme, LrcParams, MlecParams, SlecParams};
use mlec_sim::config::MlecDeployment;
use mlec_sim::repair::RepairMethod;
use mlec_sim::SimConfig;
use mlec_topology::{Geometry, MlecScheme, Placement, SlecPlacement};

/// One point of the scatter plot.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Configuration label, e.g. `"(10+2)/(17+3)"`.
    pub label: String,
    /// Series name, e.g. `"C/D"` or `"Loc-Cp-S"`.
    pub family: String,
    /// One-year durability in nines.
    pub durability_nines: f64,
    /// Predicted single-core encoding throughput, MB/s.
    pub throughput_mbs: f64,
    /// Parity-space overhead of the configuration.
    pub overhead: f64,
}

/// Inclusive parity-overhead band used by the paper ("around 30%"): we use
/// 25%–45%, which admits the paper's own examples ((10+2)/(17+3) is 41%).
pub const OVERHEAD_BAND: (f64, f64) = (0.25, 0.45);

fn in_band(overhead: f64, band: (f64, f64)) -> bool {
    overhead >= band.0 && overhead <= band.1
}

/// Enumerate MLEC configurations of a scheme within the overhead band.
/// Clustered levels respect the divisibility constraints of §2.2 (enclosure
/// size multiple of `k_l + p_l`, rack count multiple of `k_n + p_n`).
pub fn enumerate_mlec(
    geometry: &Geometry,
    config: &SimConfig,
    scheme: MlecScheme,
    band: (f64, f64),
    model: &ThroughputModel,
) -> Vec<TradeoffPoint> {
    let mut out = Vec::new();
    for pn in 1..=3usize {
        for kn in 2..=30usize {
            let wn = kn + pn;
            if scheme.network == Placement::Clustered
                && !(geometry.racks as usize).is_multiple_of(wn)
            {
                continue;
            }
            if wn > geometry.racks as usize {
                continue;
            }
            for pl in 1..=4usize {
                for kl in 2..=40usize {
                    let wl = kl + pl;
                    let de = geometry.disks_per_enclosure as usize;
                    if wl > de {
                        continue;
                    }
                    if scheme.local == Placement::Clustered && !de.is_multiple_of(wl) {
                        continue;
                    }
                    let params = MlecParams::new(kn, pn, kl, pl);
                    if !in_band(params.overhead(), band) {
                        continue;
                    }
                    let dep = MlecDeployment {
                        geometry: *geometry,
                        params,
                        scheme,
                        config: *config,
                    };
                    let nines = mlec_durability_nines(&dep, RepairMethod::Min);
                    let throughput = model.predict(EcScheme::Mlec(params));
                    out.push(TradeoffPoint {
                        label: params.to_string(),
                        family: scheme.name(),
                        durability_nines: nines,
                        throughput_mbs: throughput,
                        overhead: params.overhead(),
                    });
                }
            }
        }
    }
    out
}

/// Enumerate SLEC configurations of a placement within the overhead band.
pub fn enumerate_slec(
    geometry: &Geometry,
    config: &SimConfig,
    placement: SlecPlacement,
    band: (f64, f64),
    model: &ThroughputModel,
) -> Vec<TradeoffPoint> {
    let mut out = Vec::new();
    let family = format!("{}-S", placement.name());
    for p in 1..=15usize {
        for k in 2..=50usize {
            let w = k + p;
            let fits = match placement {
                SlecPlacement::LocalCp => (geometry.disks_per_enclosure as usize).is_multiple_of(w),
                SlecPlacement::LocalDp => w <= geometry.disks_per_enclosure as usize,
                SlecPlacement::NetCp => (geometry.racks as usize).is_multiple_of(w),
                SlecPlacement::NetDp => w <= geometry.racks as usize,
            };
            if !fits {
                continue;
            }
            let params = SlecParams::new(k, p);
            if !in_band(params.overhead(), band) {
                continue;
            }
            out.push(TradeoffPoint {
                label: params.to_string(),
                family: family.clone(),
                durability_nines: slec_durability_nines(geometry, config, params, placement),
                throughput_mbs: model.predict(EcScheme::Slec(params)),
                overhead: params.overhead(),
            });
        }
    }
    out
}

/// Enumerate declustered-LRC configurations within the overhead band.
/// `undecodable_at_limit` supplies the `P(undecodable | r + 2 uniform
/// erasures)` thinning per configuration; pass
/// [`ideal_lrc_undecodable_at_limit`] for the fast analytic estimate.
pub fn enumerate_lrc(
    geometry: &Geometry,
    config: &SimConfig,
    band: (f64, f64),
    model: &ThroughputModel,
    undecodable_at_limit: impl Fn(LrcParams) -> f64,
) -> Vec<TradeoffPoint> {
    let mut out = Vec::new();
    for l in 2..=4usize {
        for r in 1..=8usize {
            for k in (l..=50).step_by(1) {
                if k % l != 0 {
                    continue; // balanced groups only, as deployed LRCs use
                }
                let params = LrcParams::new(k, l, r);
                if params.width() > geometry.racks as usize {
                    continue; // every chunk in a separate rack
                }
                if !in_band(params.overhead(), band) {
                    continue;
                }
                out.push(TradeoffPoint {
                    label: params.to_string(),
                    family: "LRC-Dp".to_string(),
                    durability_nines: lrc_durability_nines(
                        geometry,
                        config,
                        params,
                        undecodable_at_limit(params),
                    ),
                    throughput_mbs: model.predict(EcScheme::Lrc(params)),
                    overhead: params.overhead(),
                });
            }
        }
    }
    out
}

/// Analytic estimate of `P(an (r+2)-erasure pattern at uniform positions is
/// undecodable)` for a maximally recoverable `(k, l, r)` LRC: the pattern is
/// undecodable iff, after each group with a surviving local parity fixes one
/// erasure, more data erasures remain than surviving globals. Computed by
/// exhaustive-style expectation over the multivariate hypergeometric group
/// split (groups are symmetric, so a DP over per-group erasure counts
/// suffices).
pub fn ideal_lrc_undecodable_at_limit(params: LrcParams) -> f64 {
    let n = params.width();
    let m = params.r + 2; // erasure count at the absorption boundary
    if m > n {
        return 1.0;
    }
    // Monte-Carlo-free enumeration is exponential in l; use the paper-scale
    // structure: groups are symmetric with g = k/l data + 1 parity chunks.
    // Sample-free approach: enumerate compositions of the m erasures over
    // (l groups of size g+1) + (r globals) with hypergeometric weights via
    // a DP over groups tracking (erasures used, residual demand).
    let g = params.k / params.l; // data chunks per group
    let gs = g + 1; // group size incl. local parity
    let mut total_prob = 0.0;
    let mut undec_prob = 0.0;
    // dist over (used, residual) after processing all groups; then globals.
    // residual = sum over groups of erasures the group cannot fix itself.
    let mut dp: Vec<Vec<f64>> = vec![vec![0.0; m + 1]; m + 1];
    dp[0][0] = 1.0;
    let ln_total = mlec_sim::census::ln_choose(n as u32, m as u32);
    for _group in 0..params.l {
        let mut next = vec![vec![0.0; m + 1]; m + 1];
        for used in 0..=m {
            for res in 0..=m {
                let p = dp[used][res];
                if p == 0.0 {
                    continue;
                }
                for e in 0..=gs.min(m - used) {
                    // Within the group, e erasures: parity survives unless
                    // one of the e hits it. P(parity erased | e) = e / gs.
                    let ways = mlec_sim::census::ln_choose(gs as u32, e as u32).exp();
                    if e == 0 {
                        next[used][res] += p * ways;
                        continue;
                    }
                    let p_parity_hit = e as f64 / gs as f64;
                    // Parity survives: residual e-1 data erasures.
                    next[used + e][(res + e - 1).min(m)] += p * ways * (1.0 - p_parity_hit);
                    // Parity erased: e-1 data erasures remain, parity itself
                    // is recomputable → residual e-1.
                    next[used + e][(res + e - 1).min(m)] += p * ways * p_parity_hit;
                }
            }
        }
        dp = next;
    }
    // Globals: remaining erasures hit global parities.
    for (used, row) in dp.iter().enumerate().take(m + 1) {
        for (res, &p) in row.iter().enumerate().take(m + 1) {
            if p == 0.0 {
                continue;
            }
            let globals_erased = m - used;
            if globals_erased > params.r {
                continue; // impossible: only r global chunks exist
            }
            let ways = mlec_sim::census::ln_choose(params.r as u32, globals_erased as u32).exp();
            let weight = p * ways / ln_total.exp();
            total_prob += weight;
            let surviving_globals = params.r - globals_erased;
            if res > surviving_globals {
                undec_prob += weight;
            }
        }
    }
    if total_prob <= 0.0 {
        return 0.0;
    }
    (undec_prob / total_prob).clamp(0.0, 1.0)
}

mlec_runner::impl_to_json!(TradeoffPoint {
    label,
    family,
    durability_nines,
    throughput_mbs,
    overhead,
});

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_ec::Lrc;

    fn setup() -> (Geometry, SimConfig, ThroughputModel) {
        (
            Geometry::paper_default(),
            SimConfig::paper_default(),
            ThroughputModel::from_rate(12_000.0),
        )
    }

    #[test]
    fn mlec_enumeration_respects_band_and_constraints() {
        let (g, c, model) = setup();
        let points = enumerate_mlec(&g, &c, MlecScheme::CC, OVERHEAD_BAND, &model);
        assert!(!points.is_empty());
        for p in &points {
            assert!(
                in_band(p.overhead, OVERHEAD_BAND),
                "{}: {}",
                p.label,
                p.overhead
            );
            // Even the weakest in-band config (single parity at both
            // levels, e.g. (3+1)/(23+1)) keeps a few nines.
            assert!(
                p.durability_nines > 3.0,
                "{}: {} nines",
                p.label,
                p.durability_nines
            );
            assert!(p.throughput_mbs > 0.0);
        }
        // The paper's (10+2)/(17+3) (41% overhead) must be in the band.
        assert!(points.iter().any(|p| p.label == "(10+2)/(17+3)"));
    }

    #[test]
    fn fig12_f1_durability_throughput_anticorrelate() {
        // Within a family, the most durable configs are slower encoders.
        let (g, c, model) = setup();
        let points = enumerate_slec(&g, &c, SlecPlacement::LocalCp, OVERHEAD_BAND, &model);
        assert!(
            points.len() >= 3,
            "need a few configs, got {}",
            points.len()
        );
        let most_durable = points
            .iter()
            .max_by(|a, b| a.durability_nines.total_cmp(&b.durability_nines))
            .unwrap();
        let fastest = points
            .iter()
            .max_by(|a, b| a.throughput_mbs.total_cmp(&b.throughput_mbs))
            .unwrap();
        assert!(most_durable.throughput_mbs <= fastest.throughput_mbs);
        assert!(fastest.durability_nines <= most_durable.durability_nines);
    }

    #[test]
    fn fig12_f2_mlec_wins_at_high_durability() {
        // Paper F#2: above ~20 nines MLEC keeps much higher throughput than
        // SLEC at comparable durability.
        let (g, c, model) = setup();
        let mlec = enumerate_mlec(&g, &c, MlecScheme::CC, OVERHEAD_BAND, &model);
        let slec = enumerate_slec(&g, &c, SlecPlacement::LocalCp, OVERHEAD_BAND, &model);
        let best_mlec_at_30 = mlec
            .iter()
            .filter(|p| p.durability_nines >= 30.0)
            .map(|p| p.throughput_mbs)
            .fold(0.0f64, f64::max);
        let best_slec_at_30 = slec
            .iter()
            .filter(|p| p.durability_nines >= 30.0)
            .map(|p| p.throughput_mbs)
            .fold(0.0f64, f64::max);
        assert!(
            best_mlec_at_30 > best_slec_at_30,
            "mlec={best_mlec_at_30} slec={best_slec_at_30}"
        );
    }

    #[test]
    fn fig15_mlec_cd_beats_lrc_at_high_durability() {
        let (g, c, model) = setup();
        let mlec = enumerate_mlec(&g, &c, MlecScheme::CD, OVERHEAD_BAND, &model);
        let lrc = enumerate_lrc(
            &g,
            &c,
            OVERHEAD_BAND,
            &model,
            ideal_lrc_undecodable_at_limit,
        );
        assert!(!lrc.is_empty());
        let best_mlec = mlec
            .iter()
            .filter(|p| p.durability_nines >= 25.0)
            .map(|p| p.throughput_mbs)
            .fold(0.0f64, f64::max);
        let best_lrc = lrc
            .iter()
            .filter(|p| p.durability_nines >= 25.0)
            .map(|p| p.throughput_mbs)
            .fold(0.0f64, f64::max);
        assert!(best_mlec > best_lrc, "mlec={best_mlec} lrc={best_lrc}");
    }

    #[test]
    fn ideal_undecodable_matches_rank_test() {
        // The analytic MR predicate must agree with the exact rank-based
        // Monte Carlo estimate for a small code.
        let params = LrcParams::new(6, 2, 2);
        let analytic = ideal_lrc_undecodable_at_limit(params);
        let lrc = Lrc::new(6, 2, 2).unwrap();
        let curve = crate::burst::lrc_undecodable_by_count(&lrc, 4000, 99);
        let empirical = curve[params.r + 2];
        assert!(
            (analytic - empirical).abs() < 0.03,
            "analytic={analytic} empirical={empirical}"
        );
    }

    #[test]
    fn lrc_enumeration_has_paper_config() {
        let (g, c, model) = setup();
        let points = enumerate_lrc(
            &g,
            &c,
            OVERHEAD_BAND,
            &model,
            ideal_lrc_undecodable_at_limit,
        );
        assert!(
            points.iter().any(|p| p.label == "(14,2,4)"),
            "paper's (14,2,4) at 43% overhead"
        );
    }
}
