//! `mlec-analysis`: the numerical and rare-event analysis layer of the MLEC
//! suite — the "splitting, dynamic programming, and mathematical modeling"
//! strategies of the paper's §3 methodology.
//!
//! - [`markov`]: birth–death Markov chains with transient (uniformization)
//!   and absorption analysis; the paper's mathematical model, applied twice
//!   for MLEC (a local pool treated as a disk at the network level).
//! - [`chains`]: pool-level chain builders — classic per-disk rebuild for
//!   clustered pools, stage-dependent priority-drain windows for declustered
//!   pools — that yield catastrophic-local-failure rates (Fig 7).
//! - [`burst`]: PDL under correlated failure bursts (`y` failures across `x`
//!   racks) for MLEC schemes (Fig 5), SLEC placements (Fig 13), and LRC
//!   (Fig 16): exact per-rack dynamic programming combined with
//!   Poissonization for declustered placements and Monte Carlo over rack
//!   compositions.
//! - [`splitting`]: the two-stage rare-event estimator for system durability
//!   (Fig 10): stage 1 catastrophic-pool statistics (simulated or analytic),
//!   stage 2 analytic overlap probability at the network level, including
//!   the chunk-knowledge survival factor for `R_FCO/R_HYB/R_MIN`.
//! - [`tradeoff`]: configuration enumeration at fixed parity overhead for
//!   the durability-vs-throughput scatter plots (Fig 12, Fig 15).

pub mod ablation;
pub mod burst;
pub mod chains;
pub mod markov;
pub mod splitting;
pub mod tradeoff;

pub use markov::BirthDeathChain;
