//! Birth–death Markov chains for durability modeling (paper §3
//! "Mathematical model": "We choose to use Markov Chain model as it's
//! commonly used to analyze durability of SLEC systems ... we iteratively
//! apply the model to network-level MLEC by treating a local pool like a
//! disk").
//!
//! States `0..n` count concurrent failures; state `n` is absorbing (data
//! loss / catastrophic). Transient absorption probabilities are computed by
//! uniformization (Poisson-weighted powers of the uniformized transition
//! matrix), which is unconditionally stable — no matrix exponentials, no
//! stiffness trouble at the 10^-40 probabilities the paper operates at.

use mlec_units::{Duration, Rate};

/// A birth–death chain with absorbing top state.
///
/// `fail_rates[m]` is the failure (birth) rate out of state `m`
/// (`m in 0..n`), `repair_rates[m]` the repair (death) rate out of state `m`
/// (`m in 1..n`). All rates are per hour.
#[derive(Debug, Clone, PartialEq)]
pub struct BirthDeathChain {
    fail_rates: Vec<f64>,
    repair_rates: Vec<f64>,
}

impl BirthDeathChain {
    /// Build a chain with `fail_rates.len()` transient states. The
    /// absorbing state is `fail_rates.len()`.
    ///
    /// # Panics
    /// Panics unless `repair_rates.len() == fail_rates.len() - 1`
    /// (state 0 has no repair transition) or rates are negative.
    pub fn new(fail_rates: Vec<f64>, repair_rates: Vec<f64>) -> BirthDeathChain {
        assert!(!fail_rates.is_empty(), "need at least one transient state");
        assert_eq!(
            repair_rates.len(),
            fail_rates.len() - 1,
            "repair_rates must cover states 1..n"
        );
        assert!(
            fail_rates.iter().chain(&repair_rates).all(|&r| r >= 0.0),
            "rates must be non-negative"
        );
        BirthDeathChain {
            fail_rates,
            repair_rates,
        }
    }

    /// Number of transient states.
    pub fn transient_states(&self) -> usize {
        self.fail_rates.len()
    }

    /// Probability of having been absorbed by time `t`, starting from
    /// state 0, computed by uniformization to relative tolerance ~1e-14.
    pub fn absorb_prob(&self, t: Duration) -> f64 {
        let t_hours = t.to_hours();
        if t_hours <= 0.0 {
            return 0.0;
        }
        let n = self.transient_states();
        // Uniformization rate: max total outflow.
        let mut lambda_max = 0.0f64;
        for m in 0..n {
            let out = self.fail_rates[m] + if m > 0 { self.repair_rates[m - 1] } else { 0.0 };
            lambda_max = lambda_max.max(out);
        }
        if lambda_max == 0.0 {
            return 0.0;
        }
        // p = distribution over transient states (+ implicit absorbed mass).
        let mut p = vec![0.0f64; n];
        p[0] = 1.0;
        let mut absorbed = 0.0f64;
        // Accumulate sum over k of Poisson(Λt; k) * absorbed_mass_after_k.
        let lt = lambda_max * t_hours;
        // Poisson weights computed iteratively in log-safe form.
        let mut result = 0.0f64;
        let mut log_weight = -lt; // ln Poisson(lt; 0)
        let mut cumulative_weight = 0.0f64;
        let k_max = (lt + 10.0 * lt.sqrt().max(10.0)).ceil() as usize + 20;
        let mut next = vec![0.0f64; n];
        for k in 0..=k_max {
            let weight = log_weight.exp();
            result += weight * absorbed;
            cumulative_weight += weight;
            if cumulative_weight > 1.0 - 1e-16 && k as f64 > lt {
                break;
            }
            // One uniformized DTMC step: P = I + Q/Λ.
            next.fill(0.0);
            for m in 0..n {
                let pm = p[m];
                if pm == 0.0 {
                    continue;
                }
                let up = self.fail_rates[m] / lambda_max;
                let down = if m > 0 {
                    self.repair_rates[m - 1] / lambda_max
                } else {
                    0.0
                };
                let stay = 1.0 - up - down;
                next[m] += pm * stay;
                if m + 1 < n {
                    next[m + 1] += pm * up;
                } else {
                    absorbed += pm * up;
                }
                if m > 0 {
                    next[m - 1] += pm * down;
                }
            }
            std::mem::swap(&mut p, &mut next);
            log_weight += lt.ln() - ((k + 1) as f64).ln();
        }
        // Tail: everything after k_max is (1 - cumulative) * absorbed-at-end.
        result += (1.0 - cumulative_weight).max(0.0) * absorbed;
        result.clamp(0.0, 1.0)
    }

    /// Mean time to absorption from state 0 (closed-form recursion
    /// for birth–death chains).
    pub fn mean_time_to_absorb(&self) -> Duration {
        // Standard first-step recursion: with h[m] the expected time from
        // state m, solve the tridiagonal system by backward substitution.
        // For birth-death chains: h[m] = (1 + mu_m * h[m-1] + la_m * h[m+1])
        // / (mu_m + la_m), h[n] = 0. Solve via the sum-over-products form.
        let n = self.transient_states();
        // gamma[m] = E[time spent to move from m to m+1] satisfies
        // gamma[m] = 1/la_m + (mu_m/la_m) * gamma[m-1].
        let mut gamma = vec![0.0f64; n];
        for m in 0..n {
            let la = self.fail_rates[m];
            if la == 0.0 {
                return Duration::from_hours(f64::INFINITY);
            }
            let mu = if m > 0 { self.repair_rates[m - 1] } else { 0.0 };
            gamma[m] = 1.0 / la + mu / la * if m > 0 { gamma[m - 1] } else { 0.0 };
        }
        Duration::from_hours(gamma.iter().sum())
    }

    /// Long-run absorption hazard rate for rare-event chains:
    /// `1 / mean_time_to_absorb`. For the chains in this suite, absorption
    /// within a mission time is ≪ 1, so the exponential approximation
    /// `PDL(t) ≈ 1 - exp(-hazard t)` is accurate.
    pub fn absorb_hazard(&self) -> Rate {
        Rate::from_per_hour(1.0 / self.mean_time_to_absorb().to_hours())
    }

    /// Stationary distribution over the transient states, treating the chain
    /// as a truncation of an ergodic birth–death process (the absorbing leak
    /// out of the top transient state is ignored — callers size the chain so
    /// that state carries negligible mass). Detailed balance gives
    /// `pi[m+1] = pi[m] * fail[m] / repair[m]`, normalized to sum to 1.
    ///
    /// This is the occupancy view of the chain: e.g. with states counting
    /// concurrent repairs, `birth = (P - m) h` and `death = m / T`, the
    /// result is the long-run distribution of in-flight repairs.
    ///
    /// # Panics
    /// Panics if any repair rate is zero while the birth rate feeding that
    /// state is positive (the truncated process would not be ergodic).
    pub fn stationary_occupancy(&self) -> Vec<f64> {
        let n = self.transient_states();
        let mut pi = vec![0.0f64; n];
        pi[0] = 1.0;
        for m in 1..n {
            if self.fail_rates[m - 1] == 0.0 {
                // Upper states unreachable; they keep zero mass.
                break;
            }
            assert!(
                self.repair_rates[m - 1] > 0.0,
                "stationary occupancy needs positive repair rates below reachable states"
            );
            pi[m] = pi[m - 1] * self.fail_rates[m - 1] / self.repair_rates[m - 1];
        }
        let z: f64 = pi.iter().sum();
        for p in &mut pi {
            *p /= z;
        }
        pi
    }

    /// Mean of [`BirthDeathChain::stationary_occupancy`]: the long-run
    /// expected state (e.g. mean concurrent repairs in flight).
    pub fn stationary_mean(&self) -> f64 {
        self.stationary_occupancy()
            .iter()
            .enumerate()
            .map(|(m, &p)| m as f64 * p)
            .sum()
    }
}

/// Durability in "nines": `-log10(PDL)` (paper §4.2.3: "99.999% durability
/// means 5 nines").
pub fn nines(pdl: f64) -> f64 {
    if pdl <= 0.0 {
        f64::INFINITY
    } else {
        -pdl.log10()
    }
}

/// PDL over `t` given a constant hazard rate. `Rate * Duration` is the
/// dimensionless expected event count, so hours-vs-years mislabeling (the
/// pre-units version took `per_hour`/`hours` parameters but was routinely
/// fed per-year/years values) is unrepresentable.
pub fn pdl_from_hazard(hazard: Rate, t: Duration) -> f64 {
    -(-(hazard * t)).exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_state_is_exponential() {
        // One transient state with rate r: absorption CDF = 1 - e^{-rt}.
        let chain = BirthDeathChain::new(vec![0.01], vec![]);
        for t in [1.0, 10.0, 100.0, 500.0] {
            let expect = 1.0 - (-0.01f64 * t).exp();
            let got = chain.absorb_prob(Duration::from_hours(t));
            assert!(
                (got - expect).abs() < 1e-10,
                "t={t} got={got} expect={expect}"
            );
        }
        assert!((chain.mean_time_to_absorb().to_hours() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn two_state_no_repair_is_erlang() {
        // Two states, no repair: absorption time ~ Erlang(2).
        let chain = BirthDeathChain::new(vec![0.1, 0.1], vec![0.0]);
        let t = 30.0;
        let lt: f64 = 0.1 * t;
        let expect = 1.0 - (-lt).exp() * (1.0 + lt);
        assert!((chain.absorb_prob(Duration::from_hours(t)) - expect).abs() < 1e-9);
        assert!((chain.mean_time_to_absorb().to_hours() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn repair_extends_lifetime() {
        let without = BirthDeathChain::new(vec![0.01, 0.01], vec![0.0]);
        let with = BirthDeathChain::new(vec![0.01, 0.01], vec![1.0]);
        assert!(
            with.absorb_prob(Duration::from_hours(100.0))
                < without.absorb_prob(Duration::from_hours(100.0)) / 10.0
        );
        assert!(
            with.mean_time_to_absorb().to_hours() > without.mean_time_to_absorb().to_hours() * 10.0
        );
    }

    #[test]
    fn hazard_approximation_matches_transient() {
        // For a strongly-repairing chain, PDL(t) via hazard matches the
        // uniformization result.
        let chain = BirthDeathChain::new(vec![1e-4, 1e-4, 1e-4], vec![0.1, 0.1]);
        let t = 8766.0;
        let exact = chain.absorb_prob(Duration::from_hours(t));
        let approx = pdl_from_hazard(chain.absorb_hazard(), Duration::from_hours(t));
        assert!(
            (exact - approx).abs() / exact < 0.02,
            "exact={exact} approx={approx}"
        );
    }

    #[test]
    fn classic_raid_mttdl_formula() {
        // k+1 disks, tolerate 1 failure: MTTDL ≈ mu / (n(n-1) lambda^2) for
        // mu >> lambda. 10 disks, lambda = 1e-6/h, mu = 0.01/h.
        let n = 10.0f64;
        let la = 1e-6;
        let mu = 1e-2;
        let chain = BirthDeathChain::new(vec![n * la, (n - 1.0) * la], vec![mu]);
        let mttdl = chain.mean_time_to_absorb().to_hours();
        let classic = mu / (n * (n - 1.0) * la * la);
        assert!(
            (mttdl - classic).abs() / classic < 0.01,
            "mttdl={mttdl} classic={classic}"
        );
    }

    #[test]
    fn absorb_prob_monotone_in_time() {
        let chain = BirthDeathChain::new(vec![1e-3, 1e-3, 1e-3], vec![0.05, 0.05]);
        let mut last = 0.0;
        for t in [1.0, 10.0, 100.0, 1000.0, 10000.0] {
            let p = chain.absorb_prob(Duration::from_hours(t));
            assert!(p >= last, "t={t}");
            last = p;
        }
    }

    #[test]
    fn nines_conversion() {
        assert!((nines(1e-5) - 5.0).abs() < 1e-12);
        assert_eq!(nines(0.0), f64::INFINITY);
        assert!(
            (pdl_from_hazard(Rate::from_per_hour(1e-9), Duration::from_hours(8766.0)) - 8.766e-6)
                .abs()
                < 1e-9
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_rate_lengths_panic() {
        let _ = BirthDeathChain::new(vec![1.0, 1.0], vec![]);
    }

    #[test]
    fn stationary_occupancy_is_geometric_for_constant_rates() {
        // Constant birth la, constant death mu: truncated M/M/1, pi[m] ~ rho^m.
        let (la, mu) = (0.02, 0.1);
        let rho: f64 = la / mu;
        let chain = BirthDeathChain::new(vec![la; 8], vec![mu; 7]);
        let pi = chain.stationary_occupancy();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for m in 1..8 {
            assert!(
                (pi[m] / pi[m - 1] - rho).abs() < 1e-12,
                "m={m}: {} vs {rho}",
                pi[m] / pi[m - 1]
            );
        }
    }

    #[test]
    fn stationary_mean_matches_mm_infinity() {
        // Birth la, death m*mu: truncated M/M/inf, occupancy ~ Poisson(la/mu)
        // with mean la/mu once the truncation tail is negligible.
        let (la, mu) = (0.05, 0.1);
        let n = 20;
        let fail = vec![la; n];
        let repair: Vec<f64> = (1..n).map(|m| m as f64 * mu).collect();
        let chain = BirthDeathChain::new(fail, repair);
        let expect = la / mu;
        assert!(
            (chain.stationary_mean() - expect).abs() < 1e-9,
            "mean={} expect={expect}",
            chain.stationary_mean()
        );
    }

    #[test]
    fn stationary_occupancy_flow_balance() {
        // In stationarity, upward flow out of m equals downward flow into m:
        // pi[m] * fail[m] == pi[m+1] * repair[m].
        let chain = BirthDeathChain::new(vec![0.3, 0.2, 0.1, 0.05], vec![0.5, 0.7, 0.9]);
        let pi = chain.stationary_occupancy();
        let repair = [0.5, 0.7, 0.9];
        let fail = [0.3, 0.2, 0.1];
        for m in 0..3 {
            assert!(
                (pi[m] * fail[m] - pi[m + 1] * repair[m]).abs() < 1e-14,
                "m={m}"
            );
        }
    }

    #[test]
    fn stationary_occupancy_handles_unreachable_states() {
        // A zero birth rate cuts the chain: states above it carry no mass
        // even when their repair rates are zero.
        let chain = BirthDeathChain::new(vec![0.1, 0.0, 0.2], vec![0.5, 0.0]);
        let pi = chain.stationary_occupancy();
        assert_eq!(pi[2], 0.0);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((pi[1] / pi[0] - 0.2).abs() < 1e-12);
    }
}
