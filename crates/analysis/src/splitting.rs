//! The splitting (multi-stage) rare-event durability estimator — paper §3
//! "Splitting" and the Fig 10 experiment.
//!
//! Stage 1 produces catastrophic-local-pool statistics: the per-pool rate
//! (from the analytic chain of [`crate::chains`] or from
//! [`mlec_sim::pool_sim`] samples) and the lost-local-stripe census of an
//! event. Stage 2 injects those events at the network level analytically:
//! data is lost when `p_n + 1` catastrophic pools overlap in time inside one
//! network pool (`C/*`) or across distinct racks (`D/*`), scaled by the
//! *chunk-knowledge survival factor* — the probability that such an overlap
//! actually contains a lost network stripe, which repair methods with
//! cross-level transparency (`R_FCO/R_HYB/R_MIN`) can exploit (paper §4.2.3
//! F#1) while black-box `R_ALL` cannot.

use crate::chains::pool_catastrophic_rate;
use crate::markov::nines;
use mlec_runner::{run, RunReport, RunSpec, POISSON_ZERO_EVENT_UPPER_95};
use mlec_sim::config::MlecDeployment;
use mlec_sim::failure::FailureModel;
use mlec_sim::importance::FailureBias;
use mlec_sim::repair::{inject_catastrophic, plan_catastrophic_repair, RepairMethod};
use mlec_sim::trials::{PoolAcc, PoolTrial};
use mlec_topology::Placement;
use mlec_units::{Duration, Rate};

/// Stage-1 summary of catastrophic local-pool behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage1 {
    /// Catastrophic events per pool-year. When `unobserved` is set this is
    /// the Poisson 95% *upper bound* on the rate, not a point estimate.
    pub cat_rate_per_pool_year: f64,
    /// Lost local stripes per catastrophic event.
    pub lost_stripes: f64,
    /// Stripes per pool.
    pub stripes_per_pool: f64,
    /// True when a simulation campaign observed zero events and the rate is
    /// the zero-event upper bound — downstream `stage2_pdl` then yields a
    /// PDL upper bound, i.e. a durability *lower* bound (never ∞ nines).
    pub unobserved: bool,
}

/// Analytic stage 1 from the pool Markov chain plus the injected-failure
/// census (the same `p_l + 1`-simultaneous model the paper injects).
pub fn stage1_analytic(dep: &MlecDeployment) -> Stage1 {
    let injected = inject_catastrophic(dep);
    Stage1 {
        cat_rate_per_pool_year: pool_catastrophic_rate(dep).to_per_year(),
        lost_stripes: injected.lost_stripes,
        stripes_per_pool: injected.total_stripes,
        unobserved: false,
    }
}

/// Stage 1 from simulation samples (pool-years of [`mlec_sim::pool_sim`]).
///
/// A campaign that observed zero events reports the Poisson 95% upper bound
/// `-ln(0.05)/pool_years` with `unobserved` set, instead of a rate of 0 that
/// would silently turn into ∞ nines downstream.
pub fn stage1_from_simulation(
    dep: &MlecDeployment,
    result: &mlec_sim::pool_sim::PoolSimResult,
) -> Stage1 {
    let injected = inject_catastrophic(dep);
    let unobserved = result.events.is_empty();
    let rate = if unobserved {
        if result.pool_years > 0.0 {
            POISSON_ZERO_EVENT_UPPER_95 / result.pool_years
        } else {
            f64::INFINITY
        }
    } else {
        result.rate_per_pool_year()
    };
    Stage1 {
        cat_rate_per_pool_year: rate,
        lost_stripes: if unobserved {
            injected.lost_stripes
        } else {
            result.mean_lost_stripes()
        },
        stripes_per_pool: injected.total_stripes,
        unobserved,
    }
}

/// Stage 1 from a runner-driven pool-simulation campaign: each trial
/// simulates one pool for `years_per_trial` with importance-sampled failure
/// arrivals under `bias` ([`FailureBias::NONE`] for direct simulation),
/// executed by `mlec-runner`'s deterministic batched executor (per-trial
/// seeds from the spec's seed stream, adaptive stopping on the weighted
/// rate's relative error, optional checkpoint/resume via the spec's
/// manifest). Returns the stage-1 summary together with the full run report
/// (compound-Poisson CI on the weighted rate, ESS, trial counts).
///
/// Zero observed events yield the Poisson 95% upper bound with `unobserved`
/// set, exactly like [`stage1_from_simulation`].
pub fn stage1_via_runner(
    dep: &MlecDeployment,
    model: &FailureModel,
    years_per_trial: f64,
    bias: FailureBias,
    spec: &RunSpec,
) -> std::io::Result<(Stage1, RunReport<PoolAcc>)> {
    stage1_via_runner_logged(dep, model, years_per_trial, bias, spec, None)
}

/// [`stage1_via_runner`] with an optional per-trial JSONL event log: every
/// disk failure, repair step, and catastrophe of every trial is streamed to
/// `event_log` (tagged with the spec's run label and trial index), and the
/// returned accumulator carries the degraded-time totals. Logging does not
/// perturb the simulation: results are bit-identical with or without a sink.
pub fn stage1_via_runner_logged(
    dep: &MlecDeployment,
    model: &FailureModel,
    years_per_trial: f64,
    bias: FailureBias,
    spec: &RunSpec,
    event_log: Option<&mlec_sim::trials::EventLogSink>,
) -> std::io::Result<(Stage1, RunReport<PoolAcc>)> {
    let trial = PoolTrial {
        dep,
        model,
        years_per_trial,
        bias,
        event_log,
        log_label: &spec.label,
    };
    let report = run(&trial, spec)?;
    let injected = inject_catastrophic(dep);
    let unobserved = report.acc.events() == 0;
    let s1 = Stage1 {
        cat_rate_per_pool_year: if unobserved {
            report.acc.rate.zero_event_upper_95()
        } else {
            report.acc.rate_per_pool_year()
        },
        lost_stripes: if unobserved {
            injected.lost_stripes
        } else {
            report.acc.mean_lost_stripes()
        },
        stripes_per_pool: injected.total_stripes,
        unobserved,
    };
    Ok((s1, report))
}

/// How long a pool remains a lost-local-stripe contributor under the given
/// repair method: until the network phase has rebuilt (or, for `R_MIN`, made
/// locally recoverable) every lost stripe.
pub fn catastrophic_sojourn(dep: &MlecDeployment, method: RepairMethod) -> Duration {
    Duration::from_hours(plan_catastrophic_repair(dep, method).network_time_h)
}

/// The chunk-knowledge survival factor: probability that an overlap of
/// `p_n + 1` catastrophic pools actually loses a network stripe.
///
/// Methods without chunk knowledge (`R_ALL`) must assume every stripe of a
/// catastrophic pool is lost → factor 1. With knowledge, only the pools'
/// actually-lost local stripes matter; for declustered local pools those are
/// a ~`6e-4` fraction, making a real loss spectacularly unlikely (the
/// paper's "as low as 0.03%" for D/D).
pub fn knowledge_survival_factor(dep: &MlecDeployment, method: RepairMethod, s1: &Stage1) -> f64 {
    let pn1 = dep.params.network.p as u32 + 1;
    let g = dep.network_width() as f64;
    let lost_frac = if method.has_chunk_knowledge() {
        (s1.lost_stripes / s1.stripes_per_pool).min(1.0)
    } else {
        1.0
    };
    match dep.scheme.network {
        Placement::Clustered => {
            // Network stripes pair up same-position local stripes across the
            // group: S per network pool; loss needs the same network stripe
            // lost in all p_n+1 overlapping pools.
            let expected = s1.stripes_per_pool * lost_frac.powi(pn1 as i32);
            -(-expected).exp_m1()
        }
        Placement::Declustered => {
            // Network stripes pick `g` of all P pools (distinct racks);
            // count those covering the p_n+1 specific overlapping pools.
            let p_total = dep.local_pools().num_pools() as f64;
            let n_net_stripes = p_total * s1.stripes_per_pool / g;
            let mut cover = 1.0;
            for i in 0..pn1 {
                cover *= (g - i as f64) / (p_total - i as f64);
            }
            let expected = n_net_stripes * cover * lost_frac.powi(pn1 as i32);
            -(-expected).exp_m1()
        }
    }
}

/// Stage 2: probability of data loss over the `mission` span, combining
/// the catastrophic-pool Poisson process with the overlap and knowledge
/// factors.
pub fn stage2_pdl(
    dep: &MlecDeployment,
    method: RepairMethod,
    s1: &Stage1,
    mission: Duration,
) -> f64 {
    let lambda = s1.cat_rate_per_pool_year; // per pool-year
    let sojourn_years = catastrophic_sojourn(dep, method).to_years();
    let pn = dep.params.network.p as u32;
    let phi = knowledge_survival_factor(dep, method, s1);
    let pools = dep.local_pools();

    // Rate (per year) at which a (p_n+1)-fold overlap forms: a new
    // catastrophic arrival while p_n others are already in their sojourn.
    let loss_rate = Rate::from_per_year(
        match dep.scheme.network {
            Placement::Clustered => {
                let g = dep.network_width() as f64;
                let n_np = pools.num_pools() as f64 / g;
                let concurrent = binom(g - 1.0, pn) * (lambda * sojourn_years).powi(pn as i32);
                n_np * g * lambda * concurrent
            }
            Placement::Declustered => {
                let p_total = pools.num_pools() as f64;
                let per_rack = pools.pools_per_rack() as f64;
                // Overlapping pools must sit in distinct racks.
                let mut distinct = 1.0;
                for i in 1..=pn {
                    distinct *= (p_total - i as f64 * per_rack) / (p_total - i as f64);
                }
                let concurrent =
                    binom(p_total - 1.0, pn) * (lambda * sojourn_years).powi(pn as i32);
                p_total * lambda * concurrent * distinct
            }
        } * phi,
    );

    -(-(loss_rate * mission)).exp_m1()
}

/// One-year durability in nines for a deployment + repair method (Fig 10).
pub fn mlec_durability_nines(dep: &MlecDeployment, method: RepairMethod) -> f64 {
    let s1 = stage1_analytic(dep);
    nines(stage2_pdl(dep, method, &s1, Duration::from_years(1.0)))
}

fn binom(n: f64, k: u32) -> f64 {
    let mut acc = 1.0;
    for i in 0..k {
        acc *= (n - i as f64) / (i as f64 + 1.0);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_topology::MlecScheme;

    fn dep(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment::paper_default(scheme)
    }

    #[test]
    fn fig10_method_ordering_within_every_scheme() {
        // Paper F#1-3: durability increases monotonically
        // R_ALL < R_FCO <= R_HYB <= R_MIN for every scheme.
        for scheme in MlecScheme::ALL {
            let d = dep(scheme);
            let vals: Vec<f64> = RepairMethod::PAPER
                .iter()
                .map(|&m| mlec_durability_nines(&d, m))
                .collect();
            for w in vals.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "{scheme}: methods must not decrease durability: {vals:?}"
                );
            }
        }
    }

    #[test]
    fn fig10_f1_rfco_gain_larger_for_dd() {
        // Paper F#1: R_FCO gains 0.9-6.6 nines, largest for D/D (knowledge
        // factor + repair-time reduction).
        let gain_cc = mlec_durability_nines(&dep(MlecScheme::CC), RepairMethod::Fco)
            - mlec_durability_nines(&dep(MlecScheme::CC), RepairMethod::All);
        let gain_dd = mlec_durability_nines(&dep(MlecScheme::DD), RepairMethod::Fco)
            - mlec_durability_nines(&dep(MlecScheme::DD), RepairMethod::All);
        assert!(gain_dd > gain_cc, "cc={gain_cc} dd={gain_dd}");
        assert!(gain_cc > 0.3 && gain_cc < 4.0, "gain_cc={gain_cc}");
        assert!(gain_dd > 3.0 && gain_dd < 9.0, "gain_dd={gain_dd}");
    }

    #[test]
    fn fig10_f2_rhyb_gain_larger_for_local_dp() {
        // Paper F#2: R_HYB adds 0.6-4.1 nines, most in C/D and D/D.
        let gain_cd = mlec_durability_nines(&dep(MlecScheme::CD), RepairMethod::Hyb)
            - mlec_durability_nines(&dep(MlecScheme::CD), RepairMethod::Fco);
        let gain_cc = mlec_durability_nines(&dep(MlecScheme::CC), RepairMethod::Hyb)
            - mlec_durability_nines(&dep(MlecScheme::CC), RepairMethod::Fco);
        assert!(gain_cd > gain_cc, "cc={gain_cc} cd={gain_cd}");
        assert!(gain_cd > 2.0 && gain_cd < 6.0, "gain_cd={gain_cd}");
    }

    #[test]
    fn fig10_f3_rmin_small_gain_for_local_dp() {
        // Paper F#3: R_MIN adds 0.1-1.2 nines; small for C/D and D/D because
        // their network repair is already detection-bound.
        let gain_cd = mlec_durability_nines(&dep(MlecScheme::CD), RepairMethod::Min)
            - mlec_durability_nines(&dep(MlecScheme::CD), RepairMethod::Hyb);
        let gain_cc = mlec_durability_nines(&dep(MlecScheme::CC), RepairMethod::Min)
            - mlec_durability_nines(&dep(MlecScheme::CC), RepairMethod::Hyb);
        assert!(gain_cd < 1.0, "gain_cd={gain_cd}");
        assert!(gain_cc > gain_cd, "cc={gain_cc} cd={gain_cd}");
    }

    #[test]
    fn fig10_f4_best_and_worst_schemes_after_optimization() {
        // Paper F#4: with R_MIN, C/D and D/D provide the best durability,
        // D/C the worst.
        let vals: Vec<(MlecScheme, f64)> = MlecScheme::ALL
            .iter()
            .map(|&s| (s, mlec_durability_nines(&dep(s), RepairMethod::Min)))
            .collect();
        let dc = vals.iter().find(|(s, _)| *s == MlecScheme::DC).unwrap().1;
        let cd = vals.iter().find(|(s, _)| *s == MlecScheme::CD).unwrap().1;
        let dd = vals.iter().find(|(s, _)| *s == MlecScheme::DD).unwrap().1;
        let cc = vals.iter().find(|(s, _)| *s == MlecScheme::CC).unwrap().1;
        assert!(dc <= cc && dc <= cd && dc <= dd, "D/C worst: {vals:?}");
        assert!(cd >= cc && dd >= cc, "C/D and D/D best: {vals:?}");
    }

    #[test]
    fn knowledge_factor_structure() {
        // R_ALL never benefits; for D/D with knowledge the factor is tiny
        // (paper's "as low as 0.03%" mechanism).
        let d = dep(MlecScheme::DD);
        let s1 = stage1_analytic(&d);
        let all = knowledge_survival_factor(&d, RepairMethod::All, &s1);
        let fco = knowledge_survival_factor(&d, RepairMethod::Fco, &s1);
        assert!(fco < all / 100.0, "all={all} fco={fco}");
        assert!(fco < 5e-3, "fco={fco}");
        // For C/C the factor is 1 either way (whole pools lost).
        let c = dep(MlecScheme::CC);
        let s1c = stage1_analytic(&c);
        assert!((knowledge_survival_factor(&c, RepairMethod::Min, &s1c) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn durability_is_tens_of_nines() {
        // All schemes/methods land in the paper's Fig 10 range (roughly
        // 10-45 nines).
        for scheme in MlecScheme::ALL {
            for method in RepairMethod::PAPER {
                let n = mlec_durability_nines(&dep(scheme), method);
                assert!(n > 8.0 && n < 60.0, "{scheme} {method}: {n}");
            }
        }
    }

    #[test]
    fn stage1_simulation_fallback() {
        // Zero observed events must yield the Poisson 95% upper bound and
        // the unobserved flag — never a rate of 0 that becomes ∞ nines.
        let d = dep(MlecScheme::CC);
        let empty = mlec_sim::pool_sim::PoolSimResult {
            pool_years: 100.0,
            events: vec![],
            disk_failures: 10,
            max_concurrent: 2,
            excursions: 1,
            excursion_weight: 1.0,
        };
        let s1 = stage1_from_simulation(&d, &empty);
        assert!(s1.unobserved);
        let expect = POISSON_ZERO_EVENT_UPPER_95 / 100.0;
        assert!(
            (s1.cat_rate_per_pool_year - expect).abs() < 1e-15,
            "rate={}",
            s1.cat_rate_per_pool_year
        );
        assert!(s1.lost_stripes > 0.0, "falls back to injected census");
        // The bound flows through stage 2 into a finite durability floor.
        let pdl = stage2_pdl(&d, RepairMethod::Fco, &s1, Duration::from_years(1.0));
        assert!(pdl > 0.0 && pdl < 1.0, "pdl={pdl}");
        assert!(nines(pdl).is_finite());
    }

    #[test]
    fn stage1_via_runner_aggregates_pool_trials() {
        use mlec_runner::StopRule;
        let mut d = dep(MlecScheme::CC);
        d.config.afr = 5.0;
        let model = mlec_sim::failure::FailureModel::Exponential { afr: 5.0 };
        let spec = RunSpec::new("splitting/stage1-unit", 9, StopRule::fixed(8));
        let (s1, report) = stage1_via_runner(&d, &model, 100.0, FailureBias::NONE, &spec).unwrap();
        assert_eq!(report.trials, 8);
        assert!((report.acc.pool_years() - 800.0).abs() < 1e-9);
        if report.acc.events() == 0 {
            // Falls back to the injected census, like stage1_from_simulation.
            assert!(s1.unobserved);
            assert!(s1.lost_stripes > 0.0);
        } else {
            assert!(!s1.unobserved);
            assert_eq!(s1.cat_rate_per_pool_year, report.acc.rate_per_pool_year());
            assert_eq!(s1.lost_stripes, report.acc.mean_lost_stripes());
        }
        // Stage 2 accepts the simulated stage 1 and yields a plausible PDL.
        let pdl = stage2_pdl(&d, RepairMethod::Fco, &s1, Duration::from_years(1.0));
        assert!((0.0..=1.0).contains(&pdl));
    }

    #[test]
    fn stage1_via_runner_importance_sampled_at_paper_afr() {
        // The tentpole end-to-end: at the true 1% AFR a biased campaign
        // observes weighted events and stage 2 reports finite nines.
        use mlec_runner::StopRule;
        let d = dep(MlecScheme::CC);
        let model = mlec_sim::failure::FailureModel::Exponential { afr: 0.01 };
        let bias = FailureBias::auto(&d, &model);
        let spec = RunSpec::new("splitting/stage1-is", 11, StopRule::fixed(16));
        let (s1, report) = stage1_via_runner(&d, &model, 50.0, bias, &spec).unwrap();
        assert!(report.acc.events() > 0, "auto bias must observe events");
        assert!(!s1.unobserved);
        assert!(s1.cat_rate_per_pool_year > 0.0);
        assert!(report.acc.rate.ess() > 0.0);
        let pdl = stage2_pdl(&d, RepairMethod::Fco, &s1, Duration::from_years(1.0));
        assert!(pdl > 0.0, "pdl={pdl}");
        assert!(nines(pdl).is_finite());
    }

    #[test]
    fn longer_mission_lower_durability() {
        let d = dep(MlecScheme::CC);
        let s1 = stage1_analytic(&d);
        let one = stage2_pdl(&d, RepairMethod::Fco, &s1, Duration::from_years(1.0));
        let ten = stage2_pdl(&d, RepairMethod::Fco, &s1, Duration::from_years(10.0));
        assert!(ten > one * 5.0, "one={one} ten={ten}");
    }
}
