//! Integration tests across the simulator's modules: failure models driving
//! the pool and system simulators, repair planning consistency, and
//! determinism guarantees.

use mlec_runner::{SeedStream, SplitMix64};
use mlec_sim::config::MlecDeployment;
use mlec_sim::failure::FailureModel;
use mlec_sim::pool_sim::simulate_pool;
use mlec_sim::repair::{inject_catastrophic, plan_catastrophic_repair, RepairMethod};
use mlec_sim::system_sim::{simulate_system, simulate_system_trace};
use mlec_sim::trace::{synthesize, FailureTrace, TraceSpec};
use mlec_topology::{Geometry, MlecScheme};

fn paper(scheme: MlecScheme) -> MlecDeployment {
    MlecDeployment::paper_default(scheme)
}

#[test]
fn repair_plans_are_internally_consistent() {
    for scheme in MlecScheme::ALL {
        let dep = paper(scheme);
        let injected = inject_catastrophic(&dep);
        for method in RepairMethod::EXTENDED {
            let plan = plan_catastrophic_repair(&dep, method);
            // Traffic = wire volume * (k_n + 1); full-wire strategies (the
            // paper four and R_LAYER) ship every network byte, piggybacked
            // schedules ship less.
            let full_wire = plan.network_volume_tb * 11.0;
            if method == RepairMethod::Piggy {
                assert!(plan.cross_rack_traffic_tb < full_wire, "{scheme} {method}");
            } else {
                assert!(
                    (plan.cross_rack_traffic_tb - full_wire).abs() < 1e-6,
                    "{scheme} {method}"
                );
            }
            // Network volume never exceeds R_ALL's whole pool.
            assert!(plan.network_volume_tb <= dep.local_pools().pool_capacity_tb() + 1e-9);
            // Chunk-level methods never move more than the failed bytes over
            // the network.
            if method != RepairMethod::All {
                assert!(plan.network_volume_tb <= injected.failed_volume.to_tb() + 1e-9);
            }
            // Times are non-negative and network time includes detection.
            assert!(plan.network_time_h >= dep.config.detection_hours);
            assert!(plan.local_time_h >= 0.0);
        }
    }
}

#[test]
fn method_traffic_ordering_all_schemes() {
    for scheme in MlecScheme::ALL {
        let dep = paper(scheme);
        let traffic: Vec<f64> = RepairMethod::PAPER
            .iter()
            .map(|&m| plan_catastrophic_repair(&dep, m).cross_rack_traffic_tb)
            .collect();
        // R_ALL >= R_FCO >= R_HYB >= R_MIN.
        for pair in traffic.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9, "{scheme}: {traffic:?}");
        }
        // The beyond-the-paper strategies land inside the same envelope.
        for method in [RepairMethod::Layer, RepairMethod::Piggy] {
            let t = plan_catastrophic_repair(&dep, method).cross_rack_traffic_tb;
            assert!(
                t < traffic[0] && t >= traffic[3] - 1e-9,
                "{scheme} {method}: {t}"
            );
        }
    }
}

#[test]
fn trace_and_exponential_paths_agree_statistically() {
    // A synthesized pure-background trace at AFR a should produce the same
    // catastrophic-pool count distribution as the exponential model.
    let dep = paper(MlecScheme::CC);
    let g = Geometry::paper_default();
    let afr = 1.5;
    let years = 4.0;
    let mut exp_cat = 0u64;
    let mut trace_cat = 0u64;
    for seed in 0..6u64 {
        let model = FailureModel::Exponential { afr };
        exp_cat += simulate_system(&dep, &model, RepairMethod::Fco, years, seed).catastrophic_pools;
        let trace = synthesize(
            &g,
            &TraceSpec {
                background_afr: afr,
                bursts_per_year: 0.0,
                burst_size: 1,
                burst_racks: 1,
                years,
            },
            seed,
        );
        trace_cat +=
            simulate_system_trace(&dep, &trace, RepairMethod::Fco, seed).catastrophic_pools;
    }
    assert!(exp_cat > 10, "need events: exp={exp_cat}");
    let ratio = trace_cat as f64 / exp_cat as f64;
    assert!(
        (0.4..2.5).contains(&ratio),
        "exp={exp_cat} trace={trace_cat}"
    );
}

#[test]
fn pool_sim_scales_linearly_with_years() {
    // Twice the simulated span, roughly twice the failures.
    let dep = paper(MlecScheme::CC);
    let model = FailureModel::Exponential { afr: 1.0 };
    let short = simulate_pool(&dep, &model, 100.0, 42);
    let long = simulate_pool(&dep, &model, 200.0, 43);
    let ratio = long.disk_failures as f64 / short.disk_failures.max(1) as f64;
    assert!((1.6..2.4).contains(&ratio), "ratio={ratio}");
}

/// One RNG per (property, case), derived exactly like runner trial seeds.
fn case_rng(property: &str, case: u64) -> SplitMix64 {
    SplitMix64::new(SeedStream::new(0x51417E5, property).trial_seed(case))
}

/// System simulation is reproducible for any seed/scheme combination.
#[test]
fn system_sim_deterministic() {
    for case in 0..16u64 {
        let mut r = case_rng("system-deterministic", case);
        let seed = r.next_u64();
        let scheme = MlecScheme::ALL[(r.next_u64() % 4) as usize];
        let dep = paper(scheme);
        let model = FailureModel::Exponential { afr: 0.8 };
        let a = simulate_system(&dep, &model, RepairMethod::Hyb, 1.0, seed);
        let b = simulate_system(&dep, &model, RepairMethod::Hyb, 1.0, seed);
        assert_eq!(a, b);
    }
}

/// Traces round-trip through CSV regardless of content.
#[test]
fn trace_csv_roundtrip() {
    for case in 0..16u64 {
        let mut r = case_rng("trace-csv", case);
        let n = (r.next_u64() % 50) as usize;
        let events: Vec<mlec_sim::trace::TraceEvent> = (0..n)
            .map(|_| mlec_sim::trace::TraceEvent {
                time_h: r.next_f64() * 1e5,
                disk: (r.next_u64() % 57_600) as u32,
            })
            .collect();
        let trace = FailureTrace::new(events);
        let parsed = FailureTrace::from_csv(&trace.to_csv()).unwrap();
        assert_eq!(parsed, trace);
    }
}

/// Catastrophic injection census is conserved: lost chunk volume never
/// exceeds the failed volume, lost stripes never exceed the pool.
#[test]
fn injection_census_bounds() {
    for scheme in MlecScheme::ALL {
        let dep = paper(scheme);
        let injected = inject_catastrophic(&dep);
        assert!(injected.lost_chunk_volume.to_tb() <= injected.failed_volume.to_tb() + 1e-9);
        assert!(injected.lost_stripes <= injected.total_stripes);
        assert!(injected.lost_stripes > 0.0);
    }
}
