//! Property tests for the repair-strategy layer: every strategy, over a
//! seeded sweep of deployment shapes and physically injected failure
//! censuses, stays inside the `R_ALL`/`R_MIN` cross-rack traffic envelope and
//! conserves the failed volume across its network/local split.
//!
//! Censuses are always produced by [`inject_catastrophic`] — the paper's
//! `f = p_l + 1` worst-case admission — because the strategies' envelope
//! guarantees are stated for physical censuses (e.g. `R_PIGGY`'s sub-stripe
//! schedule ships `gamma = (f + 1) / 2f >= 1/f` of each lost chunk only
//! when `f` is the catastrophic threshold), not for arbitrary synthetic
//! failure counts.

use mlec_runner::{SeedStream, SplitMix64};
use mlec_sim::config::{MlecDeployment, SimConfig};
use mlec_sim::repair::{inject_catastrophic, RepairMethod};
use mlec_topology::{Geometry, MlecScheme};

/// Deployment shapes swept: paper-scale and small-test geometries with
/// local widths that tile their enclosures and network widths that fit
/// their rack counts.
fn sweep_shapes() -> Vec<(Geometry, mlec_ec::MlecParams)> {
    let paper = Geometry::paper_default();
    let small = Geometry::small_test();
    vec![
        (paper, mlec_ec::MlecParams::paper_default()),
        (paper, mlec_ec::MlecParams::new(4, 2, 5, 1)),
        (paper, mlec_ec::MlecParams::new(8, 2, 9, 3)),
        (paper, mlec_ec::MlecParams::new(10, 2, 3, 1)),
        (small, mlec_ec::MlecParams::new(2, 1, 3, 1)),
        (small, mlec_ec::MlecParams::new(4, 2, 4, 2)),
        (small, mlec_ec::MlecParams::new(3, 1, 10, 2)),
    ]
}

/// Seeded environment perturbations: bandwidths, detection delay, disk
/// capacity, and chunk size all vary so the envelope holds as a property of
/// the strategy algebra, not of the paper constants.
fn perturb(geometry: &mut Geometry, config: &mut SimConfig, rng: &mut SplitMix64) {
    config.disk_bw_mbs = 50.0 + rng.next_f64() * 400.0;
    config.rack_net_gbps = 1.0 + rng.next_f64() * 40.0;
    config.repair_fraction = 0.05 + rng.next_f64() * 0.5;
    config.detection_hours = rng.next_f64() * 4.0;
    geometry.disk_capacity_tb = 4.0 + rng.next_f64() * 28.0;
    geometry.chunk_kb = [64.0, 128.0, 1024.0][(rng.next_u64() % 3) as usize];
}

#[test]
fn strategies_stay_inside_traffic_envelope_and_conserve_volume() {
    for (case, (base_geometry, params)) in sweep_shapes().into_iter().enumerate() {
        let mut rng = SplitMix64::new(
            SeedStream::new(0x57A7E6, "strategy-properties").trial_seed(case as u64),
        );
        for variant in 0..8u64 {
            let mut geometry = base_geometry;
            let mut config = SimConfig::paper_default();
            if variant > 0 {
                perturb(&mut geometry, &mut config, &mut rng);
            }
            for scheme in MlecScheme::ALL {
                let dep = MlecDeployment {
                    geometry,
                    params,
                    scheme,
                    config,
                };
                let injected = inject_catastrophic(&dep);
                let ctx = format!("case {case} variant {variant} {scheme} {params:?}");

                let all = RepairMethod::All.strategy().plan(&dep, &injected);
                let min = RepairMethod::Min.strategy().plan(&dep, &injected);
                for method in RepairMethod::EXTENDED {
                    let strategy = method.strategy();
                    let plan = strategy.plan(&dep, &injected);

                    // Every field is finite and non-negative (up to the
                    // census's float noise, ~1e-15 of the failed volume);
                    // the network stage always pays the detection delay.
                    let noise = 1e-9 * injected.failed_volume.to_tb().max(1.0);
                    for (name, v) in [
                        ("network_volume_tb", plan.network_volume_tb),
                        ("local_volume_tb", plan.local_volume_tb),
                        ("cross_rack_traffic_tb", plan.cross_rack_traffic_tb),
                        ("local_read_extra_tb", plan.local_read_extra_tb),
                        ("local_time_h", plan.local_time_h),
                    ] {
                        assert!(v.is_finite() && v >= -noise, "{ctx} {method}: {name}={v}");
                    }
                    assert!(
                        plan.network_time_h >= dep.config.detection_hours,
                        "{ctx} {method}"
                    );

                    // Cross-rack traffic bounded by R_ALL above, R_MIN below.
                    assert!(
                        plan.cross_rack_traffic_tb <= all.cross_rack_traffic_tb + 1e-9,
                        "{ctx} {method}: traffic {} above R_ALL {}",
                        plan.cross_rack_traffic_tb,
                        all.cross_rack_traffic_tb
                    );
                    assert!(
                        plan.cross_rack_traffic_tb >= min.cross_rack_traffic_tb - 1e-9,
                        "{ctx} {method}: traffic {} below R_MIN {}",
                        plan.cross_rack_traffic_tb,
                        min.cross_rack_traffic_tb
                    );

                    // Chunk-aware strategies repair exactly the failed bytes:
                    // the network/local split conserves the injected volume.
                    if strategy.has_chunk_knowledge() {
                        let total = plan.network_volume_tb + plan.local_volume_tb;
                        assert!(
                            (total - injected.failed_volume.to_tb()).abs()
                                <= 1e-9 * injected.failed_volume.to_tb().max(1.0),
                            "{ctx} {method}: network {} + local {} != failed {}",
                            plan.network_volume_tb,
                            plan.local_volume_tb,
                            injected.failed_volume.to_tb()
                        );
                    }
                }
            }
        }
    }
}

/// Regression pin for the staged `T_s = volume / bandwidth` accounting on
/// the paper's C/C deployment (Table 2 bandwidths, Fig 6 times). The
/// hand-derived values:
///
/// - `R_ALL`: the whole 400 TB pool crosses racks; at the 250 MB/s
///   (= 0.9 TB/h) catastrophic bandwidth that is 0.5 h detection +
///   400/0.9 h ≈ 444.94 h, with no local phase.
/// - `R_LAYER`: stage 1 aggregates 20 TB over the network
///   (0.5 + 20/0.9 ≈ 22.72 h), then rebuilds the remaining 60 TB locally
///   at 120 MB/s (= 0.432 TB/h): 60/0.432 ≈ 138.89 h.
///
/// Both times must also equal the typed `Volume / Bandwidth` quotient
/// exactly — the plan's escape-hatch fields and the mlec-units algebra
/// are the same arithmetic.
#[test]
fn staged_time_accounting_matches_volume_over_bandwidth() {
    use mlec_sim::bandwidth::catastrophic_pool_repair_bw;
    use mlec_units::{Duration, Volume};

    let dep = MlecDeployment::paper_default(MlecScheme::CC);
    let injected = inject_catastrophic(&dep);

    let all = RepairMethod::All.strategy().plan(&dep, &injected);
    assert!((all.network_volume_tb - 400.0).abs() < 1e-9);
    assert!((all.network_time_h - (0.5 + 400.0 / 0.9)).abs() < 1e-9);
    assert!((all.network_time_h - 444.944).abs() < 1e-2);
    assert_eq!(all.local_time_h, 0.0);

    let layer = RepairMethod::Layer.strategy().plan(&dep, &injected);
    assert!((layer.network_volume_tb - 20.0).abs() < 1e-9);
    assert!((layer.local_volume_tb - 60.0).abs() < 1e-9);
    assert!((layer.network_time_h - (0.5 + 20.0 / 0.9)).abs() < 1e-9);
    assert!((layer.local_time_h - 60.0 / 0.432).abs() < 1e-9);

    // The typed algebra reproduces the plan's staged accounting bitwise:
    // detection + wire / catastrophic_bw.
    let typed: Duration = dep.config.detection()
        + Volume::from_tb(all.network_volume_tb) / catastrophic_pool_repair_bw(&dep);
    assert_eq!(typed.to_hours().to_bits(), all.network_time_h.to_bits());
}
