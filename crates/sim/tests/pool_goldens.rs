//! Fixed-seed, bit-exact golden tests for `simulate_pool` /
//! `simulate_pool_biased`, mirroring the kernel-invariance goldens in
//! `system_sim.rs`.
//!
//! These pin the exact RNG draw order of the clustered and declustered
//! pool simulators (biased and unbiased) so that the shared
//! `HazardKernel` port is provably draw-order-preserving on all three
//! simulators, not just `system_sim`. Values were captured from the
//! pre-kernel hand-rolled loops; any refactor that perturbs a single
//! draw or a single floating-point operation will flip these bits.
//!
//! We pin individual counters and `f64` bit patterns rather than whole
//! result structs so that additive fields (e.g. new observer-backed
//! accounting) do not invalidate the goldens.

use mlec_sim::config::MlecDeployment;
use mlec_sim::failure::FailureModel;
use mlec_sim::importance::FailureBias;
use mlec_sim::pool_sim::{simulate_pool, simulate_pool_biased, PoolSimResult};
use mlec_topology::MlecScheme;

struct GoldenCase {
    scheme: MlecScheme,
    afr: f64,
    years: f64,
    seed: u64,
    bias: FailureBias,
}

fn run_case(c: &GoldenCase) -> PoolSimResult {
    let dep = MlecDeployment::paper_default(c.scheme);
    let model = FailureModel::Exponential { afr: c.afr };
    if c.bias.is_unbiased() {
        simulate_pool(&dep, &model, c.years, c.seed)
    } else {
        simulate_pool_biased(&dep, &model, c.years, c.seed, c.bias)
    }
}

fn sum_weight_bits(r: &PoolSimResult) -> u64 {
    r.events.iter().map(|e| e.weight).sum::<f64>().to_bits()
}

fn sum_lost_bits(r: &PoolSimResult) -> u64 {
    r.events
        .iter()
        .map(|e| e.lost_stripes)
        .sum::<f64>()
        .to_bits()
}

#[test]
fn golden_clustered_pool_unbiased() {
    let r = run_case(&GoldenCase {
        scheme: MlecScheme::CC,
        afr: 8.0,
        years: 40.0,
        seed: 101,
        bias: FailureBias::NONE,
    });
    assert_eq!(r.disk_failures, 5965);
    assert_eq!(r.events.len(), 907);
    assert_eq!(r.max_concurrent, 4);
    assert_eq!(r.excursions, 1439);
    assert_eq!(r.excursion_weight.to_bits(), 4654043604375830528);
    assert_eq!(sum_weight_bits(&r), 4651189272190124032);
    assert_eq!(sum_lost_bits(&r), 4773955845385355264);
    let first = &r.events[0];
    assert_eq!(first.time_h.to_bits(), 4646665874588539634);
    assert_eq!(first.weight.to_bits(), 4607182418800017408);
    assert_eq!(first.concurrent_failures, 4);
}

#[test]
fn golden_clustered_pool_biased() {
    let r = run_case(&GoldenCase {
        scheme: MlecScheme::CC,
        afr: 0.5,
        years: 200.0,
        seed: 102,
        bias: FailureBias::degraded_only(40.0),
    });
    assert_eq!(r.disk_failures, 7449);
    assert_eq!(r.events.len(), 1799);
    assert_eq!(r.max_concurrent, 4);
    assert_eq!(r.excursions, 1810);
    assert_eq!(r.excursion_weight.to_bits(), 4645506620765389270);
    assert_eq!(sum_weight_bits(&r), 4605831497069243308);
    assert_eq!(sum_lost_bits(&r), 4778421045012725760);
    let first = &r.events[0];
    assert_eq!(first.time_h.to_bits(), 4658257099034104617);
    assert_eq!(first.weight.to_bits(), 4564487488913267643);
    assert_eq!(first.concurrent_failures, 4);
}

#[test]
fn golden_declustered_pool_unbiased() {
    let r = run_case(&GoldenCase {
        scheme: MlecScheme::CD,
        afr: 10.0,
        years: 60.0,
        seed: 103,
        bias: FailureBias::NONE,
    });
    assert_eq!(r.disk_failures, 70442);
    assert_eq!(r.events.len(), 10053);
    assert_eq!(r.max_concurrent, 8);
    assert_eq!(r.excursions, 10718);
    assert_eq!(r.excursion_weight.to_bits(), 4667117897141714944);
    assert_eq!(sum_weight_bits(&r), 4666752309525479424);
    assert_eq!(sum_lost_bits(&r), 4756206254222634411);
    let first = &r.events[0];
    assert_eq!(first.time_h.to_bits(), 4638288583647299186);
    assert_eq!(first.weight.to_bits(), 4607182418800017408);
    assert_eq!(first.concurrent_failures, 5);
}

#[test]
fn golden_declustered_pool_biased() {
    let r = run_case(&GoldenCase {
        scheme: MlecScheme::DD,
        afr: 1.0,
        years: 150.0,
        seed: 104,
        bias: FailureBias::degraded_only(25.0),
    });
    assert_eq!(r.disk_failures, 77453);
    assert_eq!(r.events.len(), 15551);
    assert_eq!(r.max_concurrent, 7);
    assert_eq!(r.excursions, 15560);
    assert_eq!(r.excursion_weight.to_bits(), 4666090281138535833);
    assert_eq!(sum_weight_bits(&r), 4620923819685333231);
    assert_eq!(sum_lost_bits(&r), 4756894700091184958);
    let first = &r.events[0];
    assert_eq!(first.time_h.to_bits(), 4633123850576866677);
    assert_eq!(first.weight.to_bits(), 4542386472144723907);
    assert_eq!(first.concurrent_failures, 5);
}
