//! Forced-failure importance sampling for the stage-1 pool simulator.
//!
//! At the paper's true 1% AFR a catastrophic local-pool failure is a
//! once-per-10⁸-pool-years event for clustered pools and far rarer for
//! declustered ones — direct simulation observes nothing (the reason the
//! paper's §3 splitting method exists). The fix is a *biased* failure
//! process: per-disk exponential arrivals are sampled at `b × rate` with a
//! state-dependent multiplier `b`, and every trajectory carries the exact
//! likelihood ratio of the true measure against the biased one, so each
//! observed catastrophe contributes its weight — not 1 — to the rate
//! estimate. The estimator stays unbiased at any `b > 0`.
//!
//! ## Exact likelihood-ratio accounting
//!
//! Failure arrivals form a (state-modulated) Poisson process with true
//! intensity `r(t)` — surviving disks × per-disk rate — simulated at
//! `b(t) r(t)`. For a trajectory with failures at times `t_i`, the
//! Radon–Nikodym derivative of the true law against the biased law is
//!
//! ```text
//! L  =  Π_i 1/b(t_i)  ×  exp( ∫ (b(t) − 1) r(t) dt )
//! ```
//!
//! [`PathWeight`] accumulates `ln L` in two moves that mirror the
//! simulator's event loop exactly: [`PathWeight::exposure`] adds
//! `(b−1) r Δt` for every elapsed interval, [`PathWeight::event`]
//! subtracts `ln b` at every failure arrival. Repairs, detection delays,
//! and the Poisson rare-stripe draws are identical under both measures and
//! contribute nothing.
//!
//! ## Regeneration: weights reset at every return to healthy
//!
//! The pool is a regenerative process — every return to the all-healthy
//! state is a renewal point (arrivals are memoryless). Weights therefore
//! reset at each regeneration and events are weighted by the *current
//! excursion's* likelihood ratio only. This is the standard
//! measure-specific dynamic-IS refinement: still exactly unbiased (the
//! optional-stopping argument applies excursion by excursion) but immune
//! to the weight degeneracy a whole-trajectory product suffers over long
//! horizons. Each completed excursion's final weight is recorded; their
//! mean is 1 in expectation — the built-in unbiasedness diagnostic the
//! tests and figure binaries report.
//!
//! With [`FailureBias::NONE`] every multiplier is 1, `ln L` stays exactly
//! 0.0, and the biased simulator is bit-identical to the direct one (the
//! RNG consumes the same draws).
//!
//! Simulators do not drive [`PathWeight`] directly: the
//! [`crate::kernel::HazardKernel`] is the single owner of the
//! exposure/event calls (and of the RNG stream they must stay in lockstep
//! with), so the likelihood-ratio bookkeeping lives in exactly one place.

use crate::config::MlecDeployment;
use crate::failure::FailureModel;

/// State-dependent rate multiplier on per-disk failure arrivals.
///
/// `healthy` applies while no disk is failed, `degraded` while at least
/// one is. The interesting regime is `healthy = 1` (first failures are
/// common — no bias needed) with `degraded ≫ 1` (forcing the overlapping
/// failures that escalate a degraded pool to catastrophe).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureBias {
    /// Multiplier while the pool has no failed disk.
    pub healthy: f64,
    /// Multiplier while at least one disk is failed.
    pub degraded: f64,
}

impl FailureBias {
    /// No biasing: the direct simulator, bit for bit.
    pub const NONE: FailureBias = FailureBias {
        healthy: 1.0,
        degraded: 1.0,
    };

    /// Bias only the degraded state by `mult` (the usual configuration).
    pub fn degraded_only(mult: f64) -> FailureBias {
        assert!(
            mult.is_finite() && mult > 0.0,
            "bias multiplier must be finite and positive, got {mult}"
        );
        FailureBias {
            healthy: 1.0,
            degraded: mult,
        }
    }

    /// A sensible default for the deployment: pick `degraded` so that a
    /// degraded pool sees about two biased failure arrivals per
    /// single-disk repair window — enough to force escalation chains with
    /// non-negligible probability, without driving the weights to zero.
    /// Unbiased when the failure rate is already high enough (the
    /// multiplier would be ≤ 1) or when the model has no finite rate.
    pub fn auto(dep: &MlecDeployment, model: &FailureModel) -> FailureBias {
        let rate = 1.0 / model.mttf().to_hours(); // per-disk failures/hour
        if !rate.is_finite() || rate <= 0.0 {
            return FailureBias::NONE;
        }
        let d = dep.local_pools().pool_size();
        let window_h = crate::bandwidth::single_disk_repair_time(dep).to_hours();
        let others = (d.saturating_sub(1)).max(1) as f64;
        let mult = 2.0 / (others * rate * window_h);
        FailureBias {
            healthy: 1.0,
            degraded: mult.clamp(1.0, 1e6),
        }
    }

    /// The multiplier in effect with `failed_disks` concurrent failures.
    #[inline]
    pub fn multiplier(&self, failed_disks: u32) -> f64 {
        if failed_disks == 0 {
            self.healthy
        } else {
            self.degraded
        }
    }

    /// True when both multipliers are exactly 1 (direct simulation).
    pub fn is_unbiased(&self) -> bool {
        self.healthy == 1.0 && self.degraded == 1.0
    }
}

impl Default for FailureBias {
    fn default() -> FailureBias {
        FailureBias::NONE
    }
}

/// Running log-likelihood-ratio of the current excursion (see the module
/// docs for the exact formula it accumulates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PathWeight {
    log_w: f64,
}

impl PathWeight {
    pub fn new() -> PathWeight {
        PathWeight::default()
    }

    /// Account an interval of length `dt` hours during which the true
    /// failure intensity was `rate` (events/hour, all surviving disks
    /// pooled) and the multiplier was `mult`.
    #[inline]
    pub fn exposure(&mut self, mult: f64, rate: f64, dt: f64) {
        if mult != 1.0 {
            self.log_w += (mult - 1.0) * rate * dt;
        }
    }

    /// Account one failure arrival sampled under multiplier `mult`.
    #[inline]
    pub fn event(&mut self, mult: f64) {
        if mult != 1.0 {
            self.log_w -= mult.ln();
        }
    }

    /// The excursion's likelihood ratio so far (exactly 1.0 while
    /// unbiased).
    #[inline]
    pub fn weight(&self) -> f64 {
        self.log_w.exp()
    }

    /// Start a fresh excursion (regeneration point reached).
    #[inline]
    pub fn reset(&mut self) {
        self.log_w = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_topology::MlecScheme;

    #[test]
    fn unbiased_weight_is_exactly_one() {
        let mut w = PathWeight::new();
        w.exposure(1.0, 0.3, 1234.5);
        w.event(1.0);
        w.event(1.0);
        assert_eq!(w.weight(), 1.0, "log-weight must stay exactly 0.0");
    }

    #[test]
    fn weight_matches_closed_form() {
        // One interval of exposure then one event under bias b: the LR is
        // exp((b-1) r dt) / b.
        let (b, r, dt) = (50.0, 2e-6, 40.0);
        let mut w = PathWeight::new();
        w.exposure(b, r, dt);
        w.event(b);
        let expect = ((b - 1.0) * r * dt).exp() / b;
        assert!((w.weight() - expect).abs() / expect < 1e-12);
        w.reset();
        assert_eq!(w.weight(), 1.0);
    }

    #[test]
    fn auto_bias_is_large_at_paper_afr_and_unity_when_saturated() {
        let dep = MlecDeployment::paper_default(MlecScheme::CC);
        let low = FailureBias::auto(&dep, &FailureModel::Exponential { afr: 0.01 });
        assert_eq!(low.healthy, 1.0);
        assert!(
            low.degraded > 100.0 && low.degraded < 1e5,
            "degraded={}",
            low.degraded
        );
        // At an already-inflated AFR the window sees plenty of arrivals;
        // auto must not bias further.
        let high = FailureBias::auto(&dep, &FailureModel::Exponential { afr: 50.0 });
        assert!(high.is_unbiased(), "degraded={}", high.degraded);
    }

    #[test]
    fn multiplier_switches_on_degraded_state() {
        let bias = FailureBias::degraded_only(300.0);
        assert_eq!(bias.multiplier(0), 1.0);
        assert_eq!(bias.multiplier(1), 300.0);
        assert_eq!(bias.multiplier(7), 300.0);
        assert!(!bias.is_unbiased());
        assert!(FailureBias::NONE.is_unbiased());
    }
}
