//! Repair-flow scheduling with max–min fair bandwidth arbitration.
//!
//! The Table 2 model gives each repair its *stand-alone* bandwidth; when
//! several repairs run concurrently they contend on shared links. This
//! module models that contention properly: repairs are **flows** consuming
//! capacity on **links** (per-rack network ingress/egress and per-pool disk
//! aggregates), allocated by progressive filling (max–min fairness — the
//! steady state of per-flow fair queuing, the standard abstraction for
//! TCP-like sharing). A small flow-level simulator advances flows to
//! completion, recomputing the allocation at each arrival/departure.
//!
//! Consistency: a lone flow reproduces the Table 2 stand-alone bandwidths
//! exactly (asserted in tests), so the analytic model is the 1-flow special
//! case of this scheduler.

use mlec_units::{Bandwidth, Volume};
use std::collections::BTreeMap;

/// Identifier of a capacity-constrained link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkId {
    /// Cross-rack network capacity of one rack (repair share).
    RackNet(u32),
    /// Aggregate disk repair bandwidth of one local pool.
    PoolDisks(u32),
}

/// A repair flow: moves `volume_mb` of *rebuilt* data, loading each listed
/// link by `weight` units of link capacity per rebuilt byte (the IO
/// amplification of DESIGN.md's bandwidth model).
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// Caller-assigned identifier.
    pub id: u64,
    /// Remaining rebuilt volume, MB.
    pub volume_mb: f64,
    /// `(link, weight)`: rebuilding at rate `r` consumes `r * weight` of
    /// the link's capacity.
    pub demands: Vec<(LinkId, f64)>,
}

/// The arbiter: link capacities plus the active flow set.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    capacity: BTreeMap<LinkId, f64>,
    flows: Vec<Flow>,
}

impl Scheduler {
    /// Empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Declare a link's capacity. Redeclaring replaces it. Stored in MB/s
    /// (numerically identical to the Flow record's MB-and-seconds space).
    pub fn set_capacity(&mut self, link: LinkId, bw: Bandwidth) {
        assert!(bw.to_mbs() > 0.0, "capacity must be positive");
        self.capacity.insert(link, bw.to_mbs());
    }

    /// Add a flow.
    ///
    /// # Panics
    /// Panics if the flow references an undeclared link, has no demands, or
    /// a non-positive weight/volume.
    pub fn add_flow(&mut self, flow: Flow) {
        assert!(flow.volume_mb > 0.0, "flow volume must be positive");
        assert!(!flow.demands.is_empty(), "flow must use at least one link");
        for &(link, weight) in &flow.demands {
            assert!(weight > 0.0, "demand weights must be positive");
            assert!(
                self.capacity.contains_key(&link),
                "undeclared link {link:?}"
            );
        }
        self.flows.push(flow);
    }

    /// Remove a flow by id (no-op if absent).
    pub fn remove_flow(&mut self, id: u64) {
        self.flows.retain(|f| f.id != id);
    }

    /// Active flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Compute the max–min fair rebuilt-data rate (MB/s) per flow by
    /// progressive filling: repeatedly find the tightest link, freeze its
    /// flows at the equal-share rate, remove the consumed capacity, repeat.
    pub fn allocate(&self) -> BTreeMap<u64, f64> {
        let mut rates: BTreeMap<u64, f64> = BTreeMap::new();
        if self.flows.is_empty() {
            return rates;
        }
        let mut remaining: BTreeMap<LinkId, f64> = self.capacity.clone();
        let mut unfrozen: Vec<&Flow> = self.flows.iter().collect();

        while !unfrozen.is_empty() {
            // For each link, the equal-share rate it can give its unfrozen
            // flows: cap_remaining / sum of their weights on the link.
            let mut tightest: Option<(LinkId, f64)> = None;
            for (&link, &cap) in &remaining {
                let weight_sum: f64 = unfrozen
                    .iter()
                    .flat_map(|f| &f.demands)
                    .filter(|&&(l, _)| l == link)
                    .map(|&(_, w)| w)
                    .sum();
                if weight_sum <= 0.0 {
                    continue;
                }
                let share = cap / weight_sum;
                if tightest.is_none_or(|(_, s)| share < s) {
                    tightest = Some((link, share));
                }
            }
            let Some((bottleneck, rate)) = tightest else {
                // No unfrozen flow touches any remaining link (cannot happen
                // given add_flow invariants, but terminate defensively).
                break;
            };
            // Freeze every unfrozen flow using the bottleneck at `rate`.
            let (frozen, rest): (Vec<&Flow>, Vec<&Flow>) = unfrozen
                .into_iter()
                .partition(|f| f.demands.iter().any(|&(l, _)| l == bottleneck));
            for f in &frozen {
                rates.insert(f.id, rate);
                for &(link, weight) in &f.demands {
                    if let Some(cap) = remaining.get_mut(&link) {
                        *cap = (*cap - rate * weight).max(0.0);
                    }
                }
            }
            unfrozen = rest;
        }
        rates
    }

    /// Advance all flows by `dt_s` seconds at the current allocation,
    /// removing completed flows. Returns the ids that completed.
    pub fn advance(&mut self, dt_s: f64) -> Vec<u64> {
        let rates = self.allocate();
        let mut done = Vec::new();
        for f in &mut self.flows {
            let r = rates.get(&f.id).copied().unwrap_or(0.0);
            f.volume_mb -= r * dt_s;
            if f.volume_mb <= 1e-9 {
                done.push(f.id);
            }
        }
        self.flows.retain(|f| f.volume_mb > 1e-9);
        done
    }

    /// Seconds until the next flow completes at the current allocation
    /// (`None` when idle or nothing progresses).
    pub fn next_completion_s(&self) -> Option<f64> {
        let rates = self.allocate();
        self.flows
            .iter()
            .filter_map(|f| {
                let r = rates.get(&f.id).copied().unwrap_or(0.0);
                (r > 0.0).then(|| f.volume_mb / r)
            })
            .min_by(f64::total_cmp)
    }

    /// Run all current flows to completion, returning `(id, finish_s)` in
    /// completion order. Flows added later are not considered.
    pub fn drain(&mut self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        let mut t = 0.0f64;
        while let Some(dt) = self.next_completion_s() {
            t += dt;
            for id in self.advance(dt) {
                out.push((id, t));
            }
        }
        out
    }
}

/// Build the link set of the paper's deployment: one [`LinkId::RackNet`]
/// per rack at the throttled rack bandwidth, one [`LinkId::PoolDisks`] per
/// local pool at `pool_size * throttled disk bandwidth`.
pub fn paper_links(dep: &crate::config::MlecDeployment) -> Scheduler {
    let mut s = Scheduler::new();
    for rack in 0..dep.geometry.racks {
        s.set_capacity(LinkId::RackNet(rack), dep.config.rack_repair_bw());
    }
    let pools = dep.local_pools();
    for pool in 0..pools.num_pools() {
        s.set_capacity(
            LinkId::PoolDisks(pool),
            pools.pool_size() as f64 * dep.config.disk_repair_bw(),
        );
    }
    s
}

/// Construct the flow of one catastrophic-pool network repair under `R_ALL`
/// semantics for the deployment's scheme: reads load `k_n` source racks
/// (1 unit each per rebuilt byte), the write loads the target rack (or all
/// racks when network-declustered).
pub fn catastrophic_repair_flow(
    dep: &crate::config::MlecDeployment,
    id: u64,
    target_pool: u32,
    volume: Volume,
) -> Flow {
    use mlec_topology::Placement;
    let volume_mb = volume.to_mb();
    let pools = dep.local_pools();
    let target_rack = pools.rack_of_pool(target_pool);
    let kn = dep.params.network.k as f64;
    let racks = dep.geometry.racks;
    let mut demands: Vec<(LinkId, f64)> = Vec::new();
    match dep.scheme.network {
        Placement::Clustered => {
            // Reads from the k_n peer racks of the rack group; write into
            // the target rack. Per rebuilt byte: 1 unit on each source rack
            // (k_n sources at rate/k_n each... loads sum to k_n), 1 on the
            // target. Model source load spread evenly over the group.
            let group_size = dep.network_width();
            let group = target_rack / group_size;
            for peer in 0..group_size {
                let rack = group * group_size + peer;
                if rack == target_rack {
                    demands.push((LinkId::RackNet(rack), 1.0)); // write in
                } else {
                    demands.push((LinkId::RackNet(rack), kn / (group_size as f64 - 1.0)));
                }
            }
        }
        Placement::Declustered => {
            // Reads and writes spread over every rack: (k_n + 1) units of
            // cross-rack IO per rebuilt byte, evenly.
            let per_rack = (kn + 1.0) / racks as f64;
            for rack in 0..racks {
                demands.push((LinkId::RackNet(rack), per_rack));
            }
        }
    }
    Flow {
        id,
        volume_mb,
        demands,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MlecDeployment;
    use mlec_topology::MlecScheme;

    #[test]
    fn single_flow_gets_bottleneck_rate() {
        let mut s = Scheduler::new();
        s.set_capacity(LinkId::RackNet(0), Bandwidth::from_mbs(250.0));
        s.set_capacity(LinkId::RackNet(1), Bandwidth::from_mbs(250.0));
        s.add_flow(Flow {
            id: 1,
            volume_mb: 1000.0,
            demands: vec![(LinkId::RackNet(0), 1.0), (LinkId::RackNet(1), 2.0)],
        });
        let rates = s.allocate();
        // Link 1 is the bottleneck: 250 / 2 = 125 MB/s.
        assert!((rates[&1] - 125.0).abs() < 1e-9);
    }

    #[test]
    fn lone_catastrophic_flow_matches_table2() {
        // The scheduler's 1-flow case must reproduce the analytic Table 2
        // bandwidths for both network placements.
        for (scheme, expect) in [(MlecScheme::CC, 250.0), (MlecScheme::DC, 1363.6)] {
            let dep = MlecDeployment::paper_default(scheme);
            let mut s = paper_links(&dep);
            s.add_flow(catastrophic_repair_flow(&dep, 1, 7, Volume::from_mb(1e6)));
            let rates = s.allocate();
            assert!(
                (rates[&1] - expect).abs() / expect < 0.01,
                "{scheme}: {} vs {expect}",
                rates[&1]
            );
        }
    }

    #[test]
    fn two_repairs_into_same_rack_halve() {
        let dep = MlecDeployment::paper_default(MlecScheme::CC);
        let mut s = paper_links(&dep);
        // Pools 0 and 1 are both in rack 0: their writes share its ingress.
        s.add_flow(catastrophic_repair_flow(&dep, 1, 0, Volume::from_mb(1e6)));
        s.add_flow(catastrophic_repair_flow(&dep, 2, 1, Volume::from_mb(1e6)));
        let rates = s.allocate();
        assert!((rates[&1] - 125.0).abs() < 1.0, "{rates:?}");
        assert!((rates[&2] - 125.0).abs() < 1.0, "{rates:?}");
    }

    #[test]
    fn repairs_in_disjoint_rack_groups_independent() {
        let dep = MlecDeployment::paper_default(MlecScheme::CC);
        let pools = dep.local_pools();
        let mut s = paper_links(&dep);
        // Rack group 0 (racks 0..12) and group 1 (racks 12..24).
        let pool_a = 0; // rack 0
        let pool_b = 13 * pools.pools_per_rack(); // rack 13
        s.add_flow(catastrophic_repair_flow(
            &dep,
            1,
            pool_a,
            Volume::from_mb(1e6),
        ));
        s.add_flow(catastrophic_repair_flow(
            &dep,
            2,
            pool_b,
            Volume::from_mb(1e6),
        ));
        let rates = s.allocate();
        assert!((rates[&1] - 250.0).abs() < 1.0, "{rates:?}");
        assert!((rates[&2] - 250.0).abs() < 1.0, "{rates:?}");
    }

    #[test]
    fn max_min_fairness_property() {
        // A 3-flow scenario with asymmetric bottlenecks: the allocation must
        // saturate at least one link per flow and give equal shares on the
        // shared bottleneck.
        let mut s = Scheduler::new();
        s.set_capacity(LinkId::RackNet(0), Bandwidth::from_mbs(100.0));
        s.set_capacity(LinkId::RackNet(1), Bandwidth::from_mbs(300.0));
        // Flows 1 and 2 share link 0; flow 3 only uses link 1.
        s.add_flow(Flow {
            id: 1,
            volume_mb: 1.0,
            demands: vec![(LinkId::RackNet(0), 1.0)],
        });
        s.add_flow(Flow {
            id: 2,
            volume_mb: 1.0,
            demands: vec![(LinkId::RackNet(0), 1.0), (LinkId::RackNet(1), 1.0)],
        });
        s.add_flow(Flow {
            id: 3,
            volume_mb: 1.0,
            demands: vec![(LinkId::RackNet(1), 1.0)],
        });
        let rates = s.allocate();
        assert!((rates[&1] - 50.0).abs() < 1e-9);
        assert!((rates[&2] - 50.0).abs() < 1e-9);
        // Flow 3 takes what link 1 has left: 300 - 50 = 250.
        assert!((rates[&3] - 250.0).abs() < 1e-9);
    }

    #[test]
    fn drain_orders_completions_correctly() {
        let mut s = Scheduler::new();
        s.set_capacity(LinkId::RackNet(0), Bandwidth::from_mbs(100.0));
        s.add_flow(Flow {
            id: 1,
            volume_mb: 100.0,
            demands: vec![(LinkId::RackNet(0), 1.0)],
        });
        s.add_flow(Flow {
            id: 2,
            volume_mb: 300.0,
            demands: vec![(LinkId::RackNet(0), 1.0)],
        });
        let done = s.drain();
        // Shared 50/50 until flow 1 finishes at t = 2 s; flow 2 then gets
        // the full 100: remaining 200 MB -> finishes at t = 4 s.
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].0, 1);
        assert!((done[0].1 - 2.0).abs() < 1e-9, "{done:?}");
        assert_eq!(done[1].0, 2);
        assert!((done[1].1 - 4.0).abs() < 1e-9, "{done:?}");
    }

    #[test]
    fn conservation_no_link_oversubscribed() {
        let dep = MlecDeployment::paper_default(MlecScheme::DC);
        let mut s = paper_links(&dep);
        for i in 0..20u64 {
            s.add_flow(catastrophic_repair_flow(
                &dep,
                i,
                (i as u32) * 37 % 2880,
                Volume::from_mb(1e6),
            ));
        }
        let rates = s.allocate();
        // Sum of weighted loads per link never exceeds capacity.
        let mut load: BTreeMap<LinkId, f64> = BTreeMap::new();
        for f in s.flows() {
            let r = rates[&f.id];
            for &(l, w) in &f.demands {
                *load.entry(l).or_insert(0.0) += r * w;
            }
        }
        for (l, used) in load {
            let cap = match l {
                LinkId::RackNet(r) => {
                    let _ = r;
                    dep.config.rack_repair_bw().to_mbs()
                }
                LinkId::PoolDisks(_) => 20.0 * dep.config.disk_repair_bw().to_mbs(),
            };
            assert!(used <= cap + 1e-6, "{l:?}: {used} > {cap}");
        }
    }

    #[test]
    fn remove_flow_frees_capacity() {
        let mut s = Scheduler::new();
        s.set_capacity(LinkId::RackNet(0), Bandwidth::from_mbs(100.0));
        s.add_flow(Flow {
            id: 1,
            volume_mb: 1.0,
            demands: vec![(LinkId::RackNet(0), 1.0)],
        });
        s.add_flow(Flow {
            id: 2,
            volume_mb: 1.0,
            demands: vec![(LinkId::RackNet(0), 1.0)],
        });
        assert!((s.allocate()[&2] - 50.0).abs() < 1e-9);
        s.remove_flow(1);
        assert!((s.allocate()[&2] - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn undeclared_link_rejected() {
        let mut s = Scheduler::new();
        s.add_flow(Flow {
            id: 1,
            volume_mb: 1.0,
            demands: vec![(LinkId::RackNet(9), 1.0)],
        });
    }
}
