//! Catastrophic-pool repair methods (paper §2.4, Fig 4) and their
//! cross-rack traffic / repair-time accounting (Fig 8, Fig 9).
//!
//! The evaluated scenario is the paper's fault injection (§3): `p_l + 1`
//! simultaneous disk failures in one local pool — the smallest catastrophic
//! (locally-unrecoverable) failure. Every quantity decomposes into:
//!
//! - *network volume*: bytes reconstructed via network-level parity;
//! - *local volume*: bytes reconstructed by the local repairer;
//! - *cross-rack traffic*: `wire volume × (k_n reads + 1 write)`;
//! - times from the Table 2 bandwidth model.
//!
//! [`RepairMethod`] is the lightweight `Copy` selector used by the CLI and
//! the figure registry; the accounting itself lives in the pluggable
//! [`crate::strategy::RepairStrategy`] layer, to which everything here
//! delegates.

use crate::census::prob_cover_all;
use crate::config::MlecDeployment;
use mlec_topology::Placement;
use mlec_units::{Duration, Volume};

/// Repair-method selectors: the paper's four (§2.4) plus the two
/// beyond-the-paper strategies layered on the [`crate::strategy`] seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepairMethod {
    /// `R_ALL`: rebuild the entire local pool over the network. Black-box
    /// RBOD friendly, maximum traffic.
    All,
    /// `R_FCO`: rebuild only the failed chunks over the network. Requires
    /// cross-level failure reporting.
    Fco,
    /// `R_HYB`: network repair for lost local stripes only; everything else
    /// repaired locally.
    Hyb,
    /// `R_MIN`: two-stage — network-repair just enough chunks to make every
    /// lost stripe locally recoverable, then finish locally.
    Min,
    /// `R_LAYER`: gather-within-layer, decode-across (Hu et al.) — minimal
    /// decoded partials cross racks, recoverable chunks stream directly.
    Layer,
    /// `R_PIGGY`: piggybacked sub-stripe scheduling (Rashmi et al.) —
    /// trades extra same-rack reads for reduced cross-rack volume.
    Piggy,
}

impl RepairMethod {
    /// The paper's four methods in its presentation order. Figures that
    /// reproduce the paper exactly (fig08–fig10 defaults) iterate this.
    pub const PAPER: [RepairMethod; 4] = [
        RepairMethod::All,
        RepairMethod::Fco,
        RepairMethod::Hyb,
        RepairMethod::Min,
    ];

    /// Every selector, paper methods first, then the beyond-the-paper
    /// strategies (`R_LAYER`, `R_PIGGY`).
    pub const EXTENDED: [RepairMethod; 6] = [
        RepairMethod::All,
        RepairMethod::Fco,
        RepairMethod::Hyb,
        RepairMethod::Min,
        RepairMethod::Layer,
        RepairMethod::Piggy,
    ];

    /// Paper label, e.g. `"R_HYB"`.
    pub fn name(&self) -> &'static str {
        match self {
            RepairMethod::All => "R_ALL",
            RepairMethod::Fco => "R_FCO",
            RepairMethod::Hyb => "R_HYB",
            RepairMethod::Min => "R_MIN",
            RepairMethod::Layer => "R_LAYER",
            RepairMethod::Piggy => "R_PIGGY",
        }
    }

    /// Parse a paper-style label (`"R_HYB"`, case-insensitive).
    pub fn parse(label: &str) -> Option<RepairMethod> {
        RepairMethod::EXTENDED
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(label))
    }

    /// Whether the network repairer knows which exact chunks are lost
    /// (everything but `R_ALL`). Drives the §4.2.3 F#1 durability effect:
    /// chunk knowledge lets the system survive `p_n + 1` catastrophic pools
    /// with no actually-lost network stripe.
    pub fn has_chunk_knowledge(&self) -> bool {
        self.strategy().has_chunk_knowledge()
    }
}

impl std::fmt::Display for RepairMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Volumes and timings of one catastrophic-pool repair.
///
/// This is the *rendering boundary* of the strategy layer: the fields are
/// suffixed `f64`s (not [`Volume`]/[`Duration`] newtypes) because the plan
/// feeds straight into figure JSON and CLI tables. All arithmetic that
/// produces these numbers happens in typed quantities inside
/// [`crate::strategy::RepairStrategy::plan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatastrophicRepairPlan {
    /// Bytes (TB) reconstructed via network-level parity.
    pub network_volume_tb: f64,
    /// Bytes (TB) reconstructed by the local repairer.
    pub local_volume_tb: f64,
    /// Cross-rack bytes moved: `wire volume * (k_n + 1)`. The wire volume
    /// equals the network volume for every strategy that ships full helper
    /// chunks; piggybacked schedules move less.
    pub cross_rack_traffic_tb: f64,
    /// Network-phase repair time, hours (includes detection).
    pub network_time_h: f64,
    /// Local-phase repair time, hours.
    pub local_time_h: f64,
    /// Extra same-rack companion reads (TB) spent to shrink the wire
    /// volume. Zero for the four paper methods.
    pub local_read_extra_tb: f64,
}

impl CatastrophicRepairPlan {
    /// Total wall-clock repair time (the phases run back to back).
    pub fn total_time(&self) -> Duration {
        Duration::from_hours(self.network_time_h + self.local_time_h)
    }
}

/// Stripe-loss census of the injected `p_l + 1`-failure scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedFailure {
    /// Failed disks (`p_l + 1`).
    pub failed_disks: u32,
    /// Total failed bytes.
    pub failed_volume: Volume,
    /// Expected lost local stripes.
    pub lost_stripes: f64,
    /// Bytes in lost-stripe failed chunks.
    pub lost_chunk_volume: Volume,
    /// Stripes in the pool.
    pub total_stripes: f64,
}

/// Compute the loss census of `p_l + 1` simultaneous failures in one pool.
pub fn inject_catastrophic(dep: &MlecDeployment) -> InjectedFailure {
    let f = dep.params.local.p as u32 + 1;
    let pools = dep.local_pools();
    let d = pools.pool_size();
    let w = dep.local_width();
    let chunk = Volume::from_kb(dep.geometry.chunk_kb);
    let pool_chunks = d as f64 * dep.geometry.chunks_per_disk();
    let total_stripes = pool_chunks / w as f64;
    let failed_volume = f as f64 * Volume::from_tb(dep.geometry.disk_capacity_tb);

    let (lost_stripes, lost_chunk_volume) = match dep.scheme.local {
        // Clustered: every stripe spans the whole pool, so every stripe has
        // all f failed chunks — the entire failed volume is lost-stripe data.
        Placement::Clustered => (total_stripes, failed_volume),
        // Declustered: only stripes covering all f failed disks are lost.
        Placement::Declustered => {
            let lost = total_stripes * prob_cover_all(d, w, f);
            (lost, lost * f as f64 * chunk)
        }
    };
    InjectedFailure {
        failed_disks: f,
        failed_volume,
        lost_stripes,
        lost_chunk_volume,
        total_stripes,
    }
}

/// Plan a catastrophic-pool repair under the given method (Fig 8 / Fig 9).
///
/// Convenience wrapper over the strategy layer: computes the census and
/// delegates to [`RepairMethod::strategy`]'s
/// [`plan`](crate::strategy::RepairStrategy::plan).
pub fn plan_catastrophic_repair(
    dep: &MlecDeployment,
    method: RepairMethod,
) -> CatastrophicRepairPlan {
    let injected = inject_catastrophic(dep);
    method.strategy().plan(dep, &injected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_topology::MlecScheme;

    fn dep(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment::paper_default(scheme)
    }

    fn traffic(scheme: MlecScheme, method: RepairMethod) -> f64 {
        plan_catastrophic_repair(&dep(scheme), method).cross_rack_traffic_tb
    }

    #[test]
    fn fig8_rall_traffic() {
        // R_ALL rebuilds the whole pool: 400 TB * 11 = 4,400 TB for */C,
        // 2,400 TB * 11 = 26,400 TB for */D (paper's exact numbers).
        assert!((traffic(MlecScheme::CC, RepairMethod::All) - 4400.0).abs() < 1.0);
        assert!((traffic(MlecScheme::DC, RepairMethod::All) - 4400.0).abs() < 1.0);
        assert!((traffic(MlecScheme::CD, RepairMethod::All) - 26400.0).abs() < 1.0);
        assert!((traffic(MlecScheme::DD, RepairMethod::All) - 26400.0).abs() < 1.0);
    }

    #[test]
    fn fig8_rfco_traffic() {
        // R_FCO: 4 failed disks * 20 TB * 11 = 880 TB for every scheme.
        for scheme in MlecScheme::ALL {
            assert!(
                (traffic(scheme, RepairMethod::Fco) - 880.0).abs() < 1.0,
                "{scheme}"
            );
        }
    }

    #[test]
    fn fig8_rhyb_traffic() {
        // R_HYB: no gain over R_FCO for */C (all stripes lost on simultaneous
        // injection), 3.1 TB for */D (paper's exact number).
        assert!((traffic(MlecScheme::CC, RepairMethod::Hyb) - 880.0).abs() < 1.0);
        assert!((traffic(MlecScheme::DC, RepairMethod::Hyb) - 880.0).abs() < 1.0);
        let cd = traffic(MlecScheme::CD, RepairMethod::Hyb);
        assert!((cd - 3.1).abs() < 0.1, "cd={cd}");
        let dd = traffic(MlecScheme::DD, RepairMethod::Hyb);
        assert!((dd - 3.1).abs() < 0.1, "dd={dd}");
    }

    #[test]
    fn fig8_rmin_traffic_4x_below_rhyb() {
        // R_MIN repairs 1 of 4 failed chunks per lost stripe over the
        // network: exactly 4x less traffic than R_HYB here.
        for scheme in MlecScheme::ALL {
            let hyb = traffic(scheme, RepairMethod::Hyb);
            let min = traffic(scheme, RepairMethod::Min);
            assert!(
                (hyb / min - 4.0).abs() < 0.01,
                "{scheme}: hyb={hyb} min={min}"
            );
        }
        assert!((traffic(MlecScheme::CC, RepairMethod::Min) - 220.0).abs() < 0.5);
    }

    #[test]
    fn fig9_rfco_network_time_5_to_30x_below_rall() {
        // Paper F#1: R_FCO reduces network repair time by 5-30x.
        for (scheme, lo, hi) in [
            (MlecScheme::CC, 4.5, 5.5),
            (MlecScheme::CD, 25.0, 32.0),
            (MlecScheme::DC, 4.5, 5.5),
            (MlecScheme::DD, 25.0, 32.0),
        ] {
            let all = plan_catastrophic_repair(&dep(scheme), RepairMethod::All).network_time_h;
            let fco = plan_catastrophic_repair(&dep(scheme), RepairMethod::Fco).network_time_h;
            let ratio = all / fco;
            assert!(ratio > lo && ratio < hi, "{scheme}: ratio={ratio}");
        }
    }

    #[test]
    fn fig9_rhyb_on_cd_similar_to_rfco_total() {
        // Paper F#2: on C/D, R_HYB takes a similar total time to R_FCO.
        let fco = plan_catastrophic_repair(&dep(MlecScheme::CD), RepairMethod::Fco);
        let hyb = plan_catastrophic_repair(&dep(MlecScheme::CD), RepairMethod::Hyb);
        assert!(hyb.local_time_h > 0.0);
        let ratio = hyb.total_time().to_hours() / fco.total_time().to_hours();
        assert!(ratio > 0.8 && ratio < 1.2, "ratio={ratio}");
    }

    #[test]
    fn fig9_rmin_total_longer_but_network_shorter() {
        // Paper F#3: R_MIN moves the least data over the network but can
        // take longer in total (clearest on C/C).
        let fco = plan_catastrophic_repair(&dep(MlecScheme::CC), RepairMethod::Fco);
        let min = plan_catastrophic_repair(&dep(MlecScheme::CC), RepairMethod::Min);
        assert!(min.network_time_h < fco.network_time_h);
        assert!(min.total_time().to_hours() > fco.total_time().to_hours());
    }

    #[test]
    fn injection_census() {
        let inj = inject_catastrophic(&dep(MlecScheme::CD));
        assert_eq!(inj.failed_disks, 4);
        assert!((inj.failed_volume.to_tb() - 80.0).abs() < 1e-9);
        // ~553k lost stripes (paper's R_HYB math).
        assert!(
            (inj.lost_stripes - 553_000.0).abs() < 2_000.0,
            "{}",
            inj.lost_stripes
        );
        let inj_c = inject_catastrophic(&dep(MlecScheme::CC));
        assert!((inj_c.lost_chunk_volume.to_tb() - 80.0).abs() < 1e-9);
        assert!((inj_c.lost_stripes - inj_c.total_stripes).abs() < 1e-3);
    }

    #[test]
    fn volume_conservation() {
        // Failed volume = network + local volume for chunk-level methods.
        for scheme in MlecScheme::ALL {
            for method in [RepairMethod::Fco, RepairMethod::Hyb, RepairMethod::Min] {
                let plan = plan_catastrophic_repair(&dep(scheme), method);
                let total = plan.network_volume_tb + plan.local_volume_tb;
                assert!((total - 80.0).abs() < 1e-6, "{scheme} {method}: {total}");
            }
        }
    }

    #[test]
    fn method_metadata() {
        assert_eq!(RepairMethod::All.name(), "R_ALL");
        assert!(!RepairMethod::All.has_chunk_knowledge());
        assert!(RepairMethod::Min.has_chunk_knowledge());
        assert!(RepairMethod::Layer.has_chunk_knowledge());
        assert!(RepairMethod::Piggy.has_chunk_knowledge());
        assert_eq!(RepairMethod::PAPER.len(), 4);
        assert_eq!(RepairMethod::EXTENDED.len(), 6);
        assert_eq!(&RepairMethod::EXTENDED[..4], &RepairMethod::PAPER[..]);
    }

    #[test]
    fn method_labels_round_trip() {
        for method in RepairMethod::EXTENDED {
            assert_eq!(RepairMethod::parse(method.name()), Some(method));
            assert_eq!(
                RepairMethod::parse(&method.name().to_ascii_lowercase()),
                Some(method)
            );
        }
        assert_eq!(RepairMethod::parse("R_NOPE"), None);
    }
}
