//! Whole-datacenter discrete-event simulation: every pool of the deployment
//! simulated together, with network-level repair of catastrophic pools and
//! data-loss detection — the paper's direct "Simulation" methodology (§3).
//!
//! Direct simulation resolves probabilities down to roughly `1/iterations`;
//! the paper (and this suite) uses it to validate the splitting estimator at
//! inflated failure rates, to measure repair-traffic distributions, and to
//! drive trace-based what-if studies. The rare-event durability numbers of
//! Fig 10 come from `mlec-analysis`'s splitting path instead.
//!
//! State kept per pool is the same abstraction as
//! [`crate::pool_sim`]: concurrent-failure sets for clustered pools, the
//! stripe census with FIFO disk release for declustered pools. Catastrophic
//! pools enter a network-repair sojourn whose length depends on the repair
//! method; while `p_n + 1` pools in loss position overlap, a data-loss event
//! is recorded (with rare-stripe thinning for chunk-knowledge methods on
//! declustered locals).
//!
//! Next-event selection runs on [`crate::engine::EventQueue`]: disk-failure
//! arrivals and network-repair completions are scheduled events, with FIFO
//! tie-breaking at equal timestamps. Failure arrivals come from the shared
//! [`crate::kernel::HazardKernel`] through a [`ArrivalSource`] (stochastic
//! or trace-replay); the RNG draw order (inter-arrival gap, then disk
//! index, then per-pool processing draws) matches the original hand-rolled
//! loop exactly, so fixed-seed results are bit-identical — see the
//! `golden_*` kernel-invariance tests below.

use crate::census::StripeCensus;
use crate::config::{MlecDeployment, HOURS_PER_YEAR};
use crate::engine::EventQueue;
use crate::failure::{sample_poisson, FailureModel};
use crate::importance::FailureBias;
use crate::kernel::{ArrivalSource, HazardKernel, NoopObserver, SimObserver};
use crate::repair::{inject_catastrophic, RepairMethod};
use crate::strategy::RepairStrategy;
use mlec_topology::Placement;
use mlec_units::Volume;
use rand::Rng;
use std::collections::BTreeMap;

/// Result of one system simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSimResult {
    /// Simulated mission time in years.
    pub years: f64,
    /// Disk failures generated.
    pub disk_failures: u64,
    /// Catastrophic local-pool events.
    pub catastrophic_pools: u64,
    /// Data-loss events (a network stripe lost).
    pub data_loss_events: u64,
    /// Time of the first data loss, hours (None if none).
    pub first_loss_h: Option<f64>,
    /// Total cross-rack repair traffic, TB.
    pub cross_rack_traffic_tb: f64,
    /// Summed network-repair sojourn hours over all catastrophic pools
    /// (grows under bandwidth contention).
    pub total_sojourn_h: f64,
}

impl SystemSimResult {
    /// Empirical probability of data loss in the mission (0/1 per run; use
    /// many seeds and average).
    pub fn lost_data(&self) -> bool {
        self.data_loss_events > 0
    }
}

/// Per-pool simulation state.
enum PoolState {
    Clustered {
        /// Repair-completion times of active failures.
        active: Vec<f64>,
    },
    Declustered {
        census: StripeCensus,
        pending: std::collections::VecDeque<f64>,
        drain_paused_until: f64,
        last_advanced: f64,
    },
}

/// Replay a recorded failure trace through the system simulator: identical
/// semantics to [`simulate_system`] but failures come from the trace rather
/// than a stochastic model (the paper's trace-driven fault-simulation mode).
pub fn simulate_system_trace(
    dep: &MlecDeployment,
    trace: &crate::trace::FailureTrace,
    method: RepairMethod,
    seed: u64,
) -> SystemSimResult {
    simulate_system_trace_observed(dep, trace, method.strategy(), seed, &mut NoopObserver)
}

/// [`simulate_system_trace`] with a [`SimObserver`] attached and the repair
/// behaviour supplied as a [`RepairStrategy`] object.
pub fn simulate_system_trace_observed<O: SimObserver>(
    dep: &MlecDeployment,
    trace: &crate::trace::FailureTrace,
    strategy: &dyn RepairStrategy,
    seed: u64,
    observer: &mut O,
) -> SystemSimResult {
    let years = (trace.span_h() / HOURS_PER_YEAR).max(f64::MIN_POSITIVE);
    run_system(
        dep,
        strategy,
        years,
        seed,
        trace.arrival_source(dep.geometry.total_disks()),
        SystemSimOptions::default(),
        observer,
    )
}

/// Optional realism knobs for the system simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SystemSimOptions {
    /// Model cross-rack bandwidth contention between concurrent
    /// catastrophic-pool repairs: a newly admitted repair's sojourn is
    /// stretched by the number of active repairs sharing its bottleneck
    /// (same target rack for network-clustered schemes, the global fabric
    /// for network-declustered ones). Off by default so results match the
    /// analytic splitting model, which assumes independent sojourns.
    pub shared_repair_bandwidth: bool,
}

/// Simulate the whole deployment for `years`, with catastrophic pools
/// repaired over the network using `method`.
pub fn simulate_system(
    dep: &MlecDeployment,
    failure_model: &FailureModel,
    method: RepairMethod,
    years: f64,
    seed: u64,
) -> SystemSimResult {
    simulate_system_opts(
        dep,
        failure_model,
        method,
        years,
        seed,
        SystemSimOptions::default(),
    )
}

/// [`simulate_system`] with explicit [`SystemSimOptions`].
pub fn simulate_system_opts(
    dep: &MlecDeployment,
    failure_model: &FailureModel,
    method: RepairMethod,
    years: f64,
    seed: u64,
    opts: SystemSimOptions,
) -> SystemSimResult {
    simulate_system_observed(
        dep,
        failure_model,
        method.strategy(),
        years,
        seed,
        opts,
        &mut NoopObserver,
    )
}

/// [`simulate_system_opts`] with a [`SimObserver`] attached and the repair
/// behaviour supplied as a [`RepairStrategy`] object: per-event
/// callbacks for disk failures, catastrophic pools, network-repair
/// completions, and data-loss events, plus degraded-interval accounting of
/// each pool's network-repair sojourn.
pub fn simulate_system_observed<O: SimObserver>(
    dep: &MlecDeployment,
    failure_model: &FailureModel,
    strategy: &dyn RepairStrategy,
    years: f64,
    seed: u64,
    opts: SystemSimOptions,
    observer: &mut O,
) -> SystemSimResult {
    let rate = match failure_model {
        FailureModel::Exponential { afr } => afr / HOURS_PER_YEAR,
        _ => panic!("system simulation drives exponential failures; use simulate_system_trace"),
    };
    run_system(
        dep,
        strategy,
        years,
        seed,
        // One aggregate arrival process over every disk in the deployment;
        // the same product the pre-kernel loop computed per draw.
        ArrivalSource::exponential(dep.geometry.total_disks() as f64 * rate),
        opts,
        observer,
    )
}

/// Events driving the system simulation.
enum Event {
    /// A disk failure. `disk` is pre-recorded for trace arrivals and drawn
    /// at pop time for stochastic ones (preserving the RNG draw order of
    /// the pre-event-queue implementation: gap, then disk).
    Arrival { disk: Option<u32> },
    /// A catastrophic pool's network reconstruction completed.
    NetworkRepairDone { pool: u32 },
}

/// Schedule the next failure arrival from the kernel-backed source: a fresh
/// exponential gap from `queue.now()` (one RNG draw through the kernel), or
/// the next in-order trace record.
fn schedule_next_arrival(
    queue: &mut EventQueue<Event>,
    arrivals: &mut ArrivalSource,
    kernel: &mut HazardKernel,
) {
    if let Some((t, disk)) = arrivals.next_arrival(kernel, queue.now()) {
        queue.schedule(t, Event::Arrival { disk });
    }
}

/// A catastrophic pool's in-flight network reconstruction.
struct RepairInFlight {
    /// Scheduled completion time, hours.
    done_h: f64,
    /// Admission time, hours (for degraded-interval accounting).
    admitted_h: f64,
    /// Concurrently failed disks when the pool went catastrophic.
    concurrent: u32,
}

fn run_system<O: SimObserver>(
    dep: &MlecDeployment,
    strategy: &dyn RepairStrategy,
    years: f64,
    seed: u64,
    mut arrivals: ArrivalSource,
    opts: SystemSimOptions,
    observer: &mut O,
) -> SystemSimResult {
    // Unbiased kernel: with multiplier 1 the exposure/jump accounting is a
    // no-op and the arrival draws are bit-identical to raw sampling; the
    // kernel still owns the RNG stream and the failure counter.
    let mut kernel = HazardKernel::from_seed_stream(
        seed,
        "system_sim",
        FailureBias::NONE,
        years * HOURS_PER_YEAR,
    );
    let pools = dep.local_pools();
    let num_pools = pools.num_pools();
    let d = pools.pool_size();
    let w = dep.local_width();
    let threshold = dep.params.local.p as u32 + 1;
    let pn1 = dep.params.network.p as u32 + 1;
    let horizon = kernel.horizon();
    let chunk_mb = dep.geometry.chunk_kb / 1e3;
    let total_stripes_per_pool = d as f64 * dep.geometry.chunks_per_disk() / w as f64;

    // Repair plan for the configured strategy (identical for every pool).
    let injected = inject_catastrophic(dep);
    let plan = strategy.plan(dep, &injected);
    let sojourn_h = plan.network_time_h;
    let lost_frac = if strategy.has_chunk_knowledge() {
        (injected.lost_stripes / injected.total_stripes).min(1.0)
    } else {
        1.0
    };

    let disk_repair_h = (dep.config.detection()
        + Volume::from_tb(dep.geometry.disk_capacity_tb)
            .transfer_time_mb(crate::bandwidth::single_disk_repair_bw(dep)))
    .to_hours();

    let mut states: BTreeMap<u32, PoolState> = BTreeMap::new();
    // Catastrophic pools under network repair. Entries are removed by their
    // `NetworkRepairDone` event; at equal timestamps the completion pops
    // before the arrival (FIFO tie-break on insertion order), so an arrival
    // never sees a repair that finished at its own timestamp.
    let mut catastrophic_until: BTreeMap<u32, RepairInFlight> = BTreeMap::new();

    let mut catastrophic_pools = 0u64;
    let mut data_loss_events = 0u64;
    let mut first_loss_h = None;
    let mut cross_rack_traffic_tb = 0.0f64;
    let mut total_sojourn_h = 0.0f64;

    // Failure arrivals: stochastic (aggregate-rate exponential; the rate
    // reduction from <0.1% failed disks is negligible) or trace records.
    let mut queue: EventQueue<Event> = EventQueue::new();
    schedule_next_arrival(&mut queue, &mut arrivals, &mut kernel);

    while let Some((now, event)) = queue.pop() {
        let disk: u32 = match event {
            Event::NetworkRepairDone { pool } => {
                if let Some(repair) = catastrophic_until.remove(&pool) {
                    observer.on_degraded_interval(repair.admitted_h, now, repair.concurrent);
                    observer.on_repair(now, 0);
                }
                continue;
            }
            Event::Arrival { disk } => {
                if now > horizon {
                    break;
                }
                match disk {
                    Some(d) => d,
                    None => kernel.rng().gen_range(0..dep.geometry.total_disks()),
                }
            }
        };
        kernel.advance_to(now);
        kernel.record_failure();

        let pool = pools.pool_of(disk);
        if catastrophic_until.contains_key(&pool) {
            // Pool already under network reconstruction; the failure is
            // absorbed by that repair.
            observer.on_disk_failure(now, 0);
            schedule_next_arrival(&mut queue, &mut arrivals, &mut kernel);
            continue;
        }

        // `(went_catastrophic, failed-disk count of the pool after this
        // failure)` — the count feeds the observer hooks.
        let (went_catastrophic, pool_failed) = match dep.scheme.local {
            Placement::Clustered => {
                let state = states
                    .entry(pool)
                    .or_insert(PoolState::Clustered { active: vec![] });
                let PoolState::Clustered { active } = state else {
                    unreachable!()
                };
                active.retain(|&t| t > now);
                active.push(now + disk_repair_h);
                let f = active.len() as u32;
                (f >= threshold, f)
            }
            Placement::Declustered => {
                let state = states
                    .entry(pool)
                    .or_insert_with(|| PoolState::Declustered {
                        census: StripeCensus::new(d, w, total_stripes_per_pool),
                        pending: Default::default(),
                        drain_paused_until: 0.0,
                        last_advanced: 0.0,
                    });
                let PoolState::Declustered {
                    census,
                    pending,
                    drain_paused_until,
                    last_advanced,
                } = state
                else {
                    unreachable!()
                };
                // Advance the pool's drain to `now`.
                if census.failed_chunks() > 0.5 {
                    let f = census.failed_disks();
                    let bw = crate::bandwidth::local_repair_bw(dep, 1, f).to_mbs();
                    let cph = bw * 3600.0 / chunk_mb;
                    let start = drain_paused_until.max(*last_advanced);
                    if now > start {
                        let repaired = census.drain_priority((now - start) * cph);
                        census.consume_drain(pending, repaired);
                        if census.failed_chunks() < 0.5 {
                            pending.clear();
                        }
                    }
                }
                *last_advanced = now;
                if census.failed_disks() + 1 >= d {
                    (true, d)
                } else {
                    let before = census.failed_chunks();
                    census.add_disk_failure();
                    pending.push_back(census.failed_chunks() - before);
                    *drain_paused_until = now + dep.config.detection_hours;
                    let f = census.failed_disks();
                    if f >= threshold {
                        let lambda = census.at_or_above(threshold);
                        let lost = if lambda > 30.0 {
                            lambda
                        } else {
                            sample_poisson(kernel.rng(), lambda) as f64
                        };
                        if lost < 1.0 {
                            let removed = census.at_or_above(threshold);
                            let repaired = census.drain_priority(removed * threshold as f64 * 2.0);
                            census.consume_drain(pending, repaired);
                            if census.failed_chunks() < 0.5 {
                                pending.clear();
                            }
                            (false, census.failed_disks())
                        } else {
                            (true, f)
                        }
                    } else {
                        (false, f)
                    }
                }
            }
        };
        observer.on_disk_failure(now, pool_failed);

        if !went_catastrophic {
            schedule_next_arrival(&mut queue, &mut arrivals, &mut kernel);
            continue;
        }
        catastrophic_pools += 1;
        cross_rack_traffic_tb += plan.cross_rack_traffic_tb;
        observer.on_catastrophe(now, pool_failed, injected.lost_stripes, 1.0);
        states.remove(&pool); // network repair rebuilds the pool
                              // Bandwidth contention: concurrent repairs sharing this repair's
                              // bottleneck stretch its sojourn (snapshot at admission).
        let contention = if opts.shared_repair_bandwidth {
            let sharing = match dep.scheme.network {
                Placement::Clustered => {
                    // Same target rack shares its ingress link.
                    let rack = pools.rack_of_pool(pool);
                    catastrophic_until
                        .keys()
                        .filter(|&&p| pools.rack_of_pool(p) == rack)
                        .count()
                }
                // Declustered repairs all share the global fabric.
                Placement::Declustered => catastrophic_until.len(),
            };
            (sharing + 1) as f64
        } else {
            1.0
        };
        total_sojourn_h += sojourn_h * contention;
        catastrophic_until.insert(
            pool,
            RepairInFlight {
                done_h: now + sojourn_h * contention,
                admitted_h: now,
                concurrent: pool_failed,
            },
        );
        queue.schedule(
            now + sojourn_h * contention,
            Event::NetworkRepairDone { pool },
        );

        // Data-loss check: p_n+1 overlapping catastrophic pools in loss
        // position.
        let overlapping: Vec<u32> = catastrophic_until.keys().copied().collect();
        let in_loss_position = match dep.scheme.network {
            Placement::Clustered => {
                let group_size = dep.network_width();
                let mut slots: BTreeMap<(u32, u32), u32> = BTreeMap::new();
                for &p in &overlapping {
                    let key = (
                        pools.rack_of_pool(p) / group_size,
                        pools.position_in_rack(p),
                    );
                    *slots.entry(key).or_insert(0) += 1;
                }
                slots.values().any(|&n| n >= pn1)
            }
            Placement::Declustered => {
                let mut racks: Vec<u32> =
                    overlapping.iter().map(|&p| pools.rack_of_pool(p)).collect();
                racks.sort_unstable();
                racks.dedup();
                racks.len() as u32 >= pn1
            }
        };
        if in_loss_position {
            // Chunk-knowledge thinning: with only a fraction of each pool's
            // stripes actually lost, the overlap may contain no lost network
            // stripe (paper §4.2.3 F#1).
            let survival = match dep.scheme.network {
                Placement::Clustered => {
                    let expected = injected.total_stripes * lost_frac.powi(pn1 as i32);
                    -(-expected).exp_m1()
                }
                Placement::Declustered => {
                    let p_total = num_pools as f64;
                    let g = dep.network_width() as f64;
                    let n_net = p_total * injected.total_stripes / g;
                    let mut cover = 1.0;
                    for i in 0..pn1 {
                        cover *= (g - i as f64) / (p_total - i as f64);
                    }
                    let expected = n_net * cover * lost_frac.powi(pn1 as i32);
                    -(-expected).exp_m1()
                }
            };
            if kernel.rng().gen_bool(survival.clamp(0.0, 1.0)) {
                data_loss_events += 1;
                first_loss_h.get_or_insert(now);
                observer.on_data_loss(now);
            }
        }
        schedule_next_arrival(&mut queue, &mut arrivals, &mut kernel);
    }

    // Censored degraded intervals for pools still under network repair at
    // the end of the run.
    for repair in catastrophic_until.values() {
        observer.on_degraded_interval(
            repair.admitted_h,
            repair.done_h.min(horizon),
            repair.concurrent,
        );
    }

    SystemSimResult {
        years,
        disk_failures: kernel.disk_failures(),
        catastrophic_pools,
        data_loss_events,
        first_loss_h,
        cross_rack_traffic_tb,
        total_sojourn_h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_topology::MlecScheme;

    fn dep(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment::paper_default(scheme)
    }

    /// A 144-disk system with (2+1)/(3+1) codes: failures and losses are
    /// cheap to provoke, keeping statistical tests fast.
    fn small_dep(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment {
            geometry: mlec_topology::Geometry::small_test(),
            params: mlec_ec::MlecParams::new(2, 1, 3, 1),
            scheme,
            config: crate::SimConfig::paper_default(),
        }
    }

    /// Kernel-invariance goldens: bit-identical values captured from the
    /// original hand-rolled loop (pre-EventQueue, pre-HazardKernel). Every
    /// structural port since — event-queue next-event selection, then the
    /// shared hazard kernel with `ArrivalSource` — must reproduce every
    /// counter and the exact f64 bits of the first-loss timestamp.
    #[test]
    fn golden_small_system_kernel_invariance() {
        // (seed, disk_failures, catastrophic, losses, first_loss bits,
        //  traffic TB, sojourn h)
        let expect = [
            (
                0u64,
                11525u64,
                4095u64,
                4059u64,
                Some(4629182367612455520u64),
                982800.0,
                184047.5,
            ),
            (
                1,
                11559,
                4120,
                4091,
                Some(4634701570660637926),
                988800.0,
                185171.111111,
            ),
            (
                2,
                11600,
                4152,
                4107,
                Some(4632270670623875367),
                996480.0,
                186609.333333,
            ),
            (
                3,
                11623,
                4160,
                4125,
                Some(4626115151872540084),
                998400.0,
                186968.888889,
            ),
        ];
        let model = FailureModel::Exponential { afr: 20.0 };
        for (seed, df, cat, loss, first_bits, traffic, sojourn) in expect {
            let r = simulate_system(
                &small_dep(MlecScheme::DC),
                &model,
                RepairMethod::All,
                4.0,
                seed,
            );
            assert_eq!(r.disk_failures, df, "seed {seed}");
            assert_eq!(r.catastrophic_pools, cat, "seed {seed}");
            assert_eq!(r.data_loss_events, loss, "seed {seed}");
            assert_eq!(r.first_loss_h.map(f64::to_bits), first_bits, "seed {seed}");
            assert!(
                (r.cross_rack_traffic_tb - traffic).abs() < 1e-3,
                "seed {seed}: {r:?}"
            );
            assert!(
                (r.total_sojourn_h - sojourn).abs() < 1e-3,
                "seed {seed}: {r:?}"
            );
        }
    }

    /// Kernel-invariance golden at paper scale (57,600 disks).
    #[test]
    fn golden_paper_scale_kernel_invariance() {
        let model = FailureModel::Exponential { afr: 1.0 };
        let r = simulate_system(&dep(MlecScheme::CD), &model, RepairMethod::Fco, 2.0, 7);
        assert_eq!(r.disk_failures, 115255);
        assert_eq!(r.catastrophic_pools, 44);
        assert_eq!(r.data_loss_events, 0);
        assert_eq!(r.first_loss_h, None);
        assert!((r.cross_rack_traffic_tb - 38720.0).abs() < 1e-3, "{r:?}");
        assert!((r.total_sojourn_h - 3933.111111).abs() < 1e-3, "{r:?}");
    }

    /// Kernel-invariance golden for the trace-replay arrival source.
    #[test]
    fn golden_trace_replay_kernel_invariance() {
        let g = mlec_topology::Geometry::paper_default();
        let trace = crate::trace::synthesize(
            &g,
            &crate::trace::TraceSpec {
                background_afr: 0.05,
                bursts_per_year: 1.0,
                burst_size: 20,
                burst_racks: 2,
                years: 2.0,
            },
            5,
        );
        let r = simulate_system_trace(&dep(MlecScheme::CC), &trace, RepairMethod::Fco, 9);
        assert_eq!(r.disk_failures, 5889);
        assert_eq!(r.catastrophic_pools, 0);
        assert_eq!(r.data_loss_events, 0);
        assert_eq!(r.cross_rack_traffic_tb, 0.0);
        assert_eq!(r.total_sojourn_h, 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let model = FailureModel::Exponential { afr: 0.5 };
        let a = simulate_system(&dep(MlecScheme::CC), &model, RepairMethod::All, 2.0, 3);
        let b = simulate_system(&dep(MlecScheme::CC), &model, RepairMethod::All, 2.0, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn failure_volume_matches_afr() {
        // 57,600 disks at AFR 1% over 10 years ≈ 5,760 failures.
        let model = FailureModel::Exponential { afr: 0.01 };
        let r = simulate_system(&dep(MlecScheme::CC), &model, RepairMethod::All, 10.0, 7);
        assert!(
            (r.disk_failures as f64 - 5760.0).abs() < 400.0,
            "failures={}",
            r.disk_failures
        );
    }

    #[test]
    fn no_loss_at_paper_afr_over_short_missions() {
        // At 1% AFR the system must survive a few years with overwhelming
        // probability (its durability is tens of nines).
        let model = FailureModel::Exponential { afr: 0.01 };
        for scheme in MlecScheme::ALL {
            let r = simulate_system(&dep(scheme), &model, RepairMethod::Fco, 3.0, 11);
            assert_eq!(r.data_loss_events, 0, "{scheme}");
        }
    }

    #[test]
    fn inflated_afr_produces_catastrophic_pools_and_traffic() {
        let model = FailureModel::Exponential { afr: 2.0 };
        let r = simulate_system(&dep(MlecScheme::CC), &model, RepairMethod::All, 3.0, 13);
        assert!(r.catastrophic_pools > 0, "{r:?}");
        assert!(r.cross_rack_traffic_tb > 0.0);
        // Traffic accounting: every catastrophic pool moved one R_ALL plan's
        // worth of bytes.
        let expected = r.catastrophic_pools as f64 * 4400.0;
        assert!((r.cross_rack_traffic_tb - expected).abs() < 1.0);
    }

    #[test]
    fn rmin_moves_less_traffic_than_rall_at_same_seed() {
        let model = FailureModel::Exponential { afr: 2.0 };
        let all = simulate_system(&dep(MlecScheme::CC), &model, RepairMethod::All, 3.0, 17);
        let min = simulate_system(&dep(MlecScheme::CC), &model, RepairMethod::Min, 3.0, 17);
        if all.catastrophic_pools > 0 && min.catastrophic_pools > 0 {
            let all_per = all.cross_rack_traffic_tb / all.catastrophic_pools as f64;
            let min_per = min.cross_rack_traffic_tb / min.catastrophic_pools as f64;
            assert!(min_per < all_per / 10.0, "all={all_per} min={min_per}");
        }
    }

    #[test]
    fn extreme_afr_eventually_loses_data() {
        // Sanity: the loss path fires under absurd failure pressure.
        let model = FailureModel::Exponential { afr: 20.0 };
        let mut any_loss = false;
        for seed in 0..8 {
            let r = simulate_system(
                &small_dep(MlecScheme::DC),
                &model,
                RepairMethod::All,
                4.0,
                seed,
            );
            any_loss |= r.lost_data();
        }
        assert!(any_loss, "no data loss at AFR 20 across seeds");
    }

    #[test]
    fn bandwidth_contention_stretches_sojourns() {
        // The direct property: under contention, the per-repair sojourn can
        // only grow, so the mean sojourn per catastrophic pool is at least
        // the uncontended one.
        let model = FailureModel::Exponential { afr: 10.0 };
        let mut base_h = 0.0;
        let mut base_n = 0u64;
        let mut shared_h = 0.0;
        let mut shared_n = 0u64;
        for seed in 0..10 {
            let b = simulate_system(
                &small_dep(MlecScheme::DC),
                &model,
                RepairMethod::All,
                3.0,
                seed,
            );
            base_h += b.total_sojourn_h;
            base_n += b.catastrophic_pools;
            let s = simulate_system_opts(
                &small_dep(MlecScheme::DC),
                &model,
                RepairMethod::All,
                3.0,
                seed,
                SystemSimOptions {
                    shared_repair_bandwidth: true,
                },
            );
            shared_h += s.total_sojourn_h;
            shared_n += s.catastrophic_pools;
        }
        assert!(base_n > 0 && shared_n > 0);
        let base_mean = base_h / base_n as f64;
        let shared_mean = shared_h / shared_n as f64;
        assert!(
            shared_mean >= base_mean,
            "base={base_mean} shared={shared_mean}"
        );
    }

    #[test]
    fn trace_replay_matches_trace_volume() {
        let g = mlec_topology::Geometry::paper_default();
        let trace = crate::trace::synthesize(
            &g,
            &crate::trace::TraceSpec {
                background_afr: 0.05,
                bursts_per_year: 1.0,
                burst_size: 20,
                burst_racks: 2,
                years: 2.0,
            },
            5,
        );
        let r = simulate_system_trace(&dep(MlecScheme::CC), &trace, RepairMethod::Fco, 9);
        assert_eq!(r.disk_failures as usize, trace.len());
        assert!((r.years - trace.span_h() / 8766.0).abs() < 0.01);
    }

    #[test]
    fn trace_burst_can_cause_catastrophic_pool() {
        // A synthetic trace with a dense burst confined to one rack must
        // drive at least one pool catastrophic under clustered placement.
        let _ = mlec_topology::Geometry::paper_default();
        let dep_cc = dep(MlecScheme::CC);
        let pools = dep_cc.local_pools();
        // Fail 5 disks of pool 7 within a minute.
        let events: Vec<crate::trace::TraceEvent> = pools
            .disks_of_pool(7)
            .take(5)
            .enumerate()
            .map(|(i, disk)| crate::trace::TraceEvent {
                time_h: 1.0 + i as f64 * 0.01,
                disk,
            })
            .collect();
        let trace = crate::trace::FailureTrace::new(events);
        let r = simulate_system_trace(&dep_cc, &trace, RepairMethod::All, 2);
        assert!(r.catastrophic_pools >= 1, "{r:?}");
    }

    #[test]
    fn knowledge_methods_lose_less_often_on_dp_locals() {
        // The §4.2.3 F#1 effect, observed directly in simulation: R_ALL on
        // a local-Dp scheme declares loss in overlaps where R_FCO's chunk
        // knowledge (few actually-lost stripes + shorter sojourn) survives.
        // Statistical comparison over many small-system missions.
        let model = FailureModel::Exponential { afr: 6.0 };
        let mut all_losses = 0u64;
        let mut fco_losses = 0u64;
        for seed in 0..40 {
            all_losses += simulate_system(
                &small_dep(MlecScheme::CD),
                &model,
                RepairMethod::All,
                4.0,
                seed,
            )
            .data_loss_events;
            fco_losses += simulate_system(
                &small_dep(MlecScheme::CD),
                &model,
                RepairMethod::Fco,
                4.0,
                seed,
            )
            .data_loss_events;
        }
        assert!(all_losses > 0, "need R_ALL losses for a meaningful test");
        assert!(
            (fco_losses as f64) < all_losses as f64 * 0.8,
            "all={all_losses} fco={fco_losses}"
        );
    }
}
