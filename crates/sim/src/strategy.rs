//! Pluggable catastrophic-repair strategies.
//!
//! The paper's §2.4 methods were originally a closed enum with the volume
//! accounting hardcoded in match arms. This module re-expresses each method
//! as a [`RepairStrategy`]: an object that owns the *volume split* of one
//! catastrophic-pool repair (network-rebuilt vs locally-rebuilt bytes, the
//! bytes that actually cross rack boundaries, and any extra same-rack
//! companion reads), while the shared accounting tail in
//! [`RepairStrategy::plan`] turns that split into cross-rack traffic and
//! staged repair times exactly the way `plan_catastrophic_repair` always has.
//!
//! Bit-exactness of the four paper ports is by construction: each strategy's
//! [`RepairStrategy::split`] copies the corresponding match arm's expressions
//! verbatim (same operations, same order), and the shared tail is the
//! verbatim former function tail, so every intermediate `f64` is the same
//! binary value as before the refactor. The pinned fig08/fig09 tests in
//! `repair.rs` and the golden kernel-invariance tests in `system_sim.rs`
//! hold the line.
//!
//! Beyond the paper, two traffic-reduced strategies ride on the seam:
//!
//! - [`RLayer`] — repair layering à la Hu et al. ("Optimal Repair Layering
//!   for Erasure-Coded Data Centers"): surviving chunks of a lost stripe are
//!   gathered *within* each layer (rack) and only the minimal decoded
//!   partial crosses the rack boundary; the rest of the lost stripe is
//!   re-expanded locally, while recoverable failed chunks stream directly
//!   (R_FCO-style) so no local rebuild of them is needed.
//! - [`RPiggy`] — piggybacked sub-stripe scheduling in the spirit of
//!   Rashmi et al.'s Facebook-warehouse study: the repair of a lost chunk is
//!   split into `f` sub-stripes and companion reads are piggybacked so only
//!   a `γ = 1/2 + 1/(2f)` fraction of the helper bytes crosses racks, at
//!   the cost of extra same-rack reads.

use crate::bandwidth::{catastrophic_pool_repair_bw, local_repair_bw, time_to_move};
use crate::config::MlecDeployment;
use crate::repair::{CatastrophicRepairPlan, InjectedFailure, RepairMethod};
use mlec_units::Volume;

/// The volume split a strategy assigns to one catastrophic-pool repair.
///
/// The shared accounting tail ([`RepairStrategy::plan`]) derives traffic
/// and times from this split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairSplit {
    /// Bytes reconstructed via network-level parity.
    pub network_volume: Volume,
    /// Bytes that cross rack boundaries per `(k_n reads + 1 write)`
    /// accounting unit. Equal to `network_volume` for every strategy
    /// that ships full helper chunks (the four paper methods and `R_LAYER`);
    /// smaller for piggybacked schedules.
    pub wire_volume: Volume,
    /// Bytes reconstructed by the local repairer.
    pub local_volume: Volume,
    /// Failed chunks per stripe the local repairer rebuilds (drives the
    /// Table 2 local-bandwidth model; `0` means "no local phase").
    pub local_chunks_per_stripe: u32,
    /// Extra same-rack companion reads (beyond the cross-rack helper
    /// bytes) the strategy spends to reduce wire volume. Zero for the
    /// four paper methods.
    pub local_read_extra: Volume,
}

impl RepairSplit {
    /// A split where every helper byte crosses racks (paper methods).
    fn full_wire(
        network_volume: Volume,
        local_volume: Volume,
        local_chunks_per_stripe: u32,
    ) -> Self {
        RepairSplit {
            network_volume,
            wire_volume: network_volume,
            local_volume,
            local_chunks_per_stripe,
            local_read_extra: Volume::ZERO,
        }
    }
}

/// A catastrophic-pool repair strategy (paper §2.4 seam).
///
/// A strategy owns its repair plan: the volume split ([`split`]), the
/// cross-rack transfers-per-byte factor ([`cross_rack_transfers_per_byte`],
/// `k_n` reads + 1 write by default), and — via the provided [`plan`] —
/// the staged time accounting under the Table 2 bandwidth model.
///
/// [`split`]: RepairStrategy::split
/// [`plan`]: RepairStrategy::plan
/// [`cross_rack_transfers_per_byte`]: RepairStrategy::cross_rack_transfers_per_byte
pub trait RepairStrategy: Sync {
    /// The selector this strategy implements.
    fn method(&self) -> RepairMethod;

    /// Paper-style label, e.g. `"R_LAYER"`.
    fn name(&self) -> &'static str {
        self.method().name()
    }

    /// Whether the network repairer knows which exact chunks are lost
    /// (everything but `R_ALL`). Drives the §4.2.3 F#1 durability effect.
    fn has_chunk_knowledge(&self) -> bool {
        true
    }

    /// Cross-rack transfers per wire byte: `k_n` helper reads plus the
    /// rebuilt-chunk write. Strategies that reduce traffic do so by
    /// shrinking [`RepairStrategy::split`]'s `wire_volume`, not this
    /// factor, so the `(k_n + 1)` accounting stays comparable across
    /// methods.
    fn cross_rack_transfers_per_byte(&self, dep: &MlecDeployment) -> f64 {
        let kn = dep.params.network.k as f64;
        kn + 1.0
    }

    /// The strategy-specific volume split for the given failure census.
    fn split(&self, dep: &MlecDeployment, injected: &InjectedFailure) -> RepairSplit;

    /// Assemble the full repair plan: the shared accounting tail, identical
    /// (expression for expression) to the pre-refactor
    /// `plan_catastrophic_repair` so the four paper ports stay bit-exact.
    fn plan(&self, dep: &MlecDeployment, injected: &InjectedFailure) -> CatastrophicRepairPlan {
        let split = self.split(dep, injected);
        let cross_rack_traffic = split.wire_volume * self.cross_rack_transfers_per_byte(dep);
        let network_time = dep.config.detection()
            + time_to_move(split.wire_volume, catastrophic_pool_repair_bw(dep));
        let local_bw = local_repair_bw(
            dep,
            split.local_chunks_per_stripe.max(1),
            injected.failed_disks,
        );
        let local_time = time_to_move(split.local_volume, local_bw);
        CatastrophicRepairPlan {
            network_volume_tb: split.network_volume.to_tb(),
            local_volume_tb: split.local_volume.to_tb(),
            cross_rack_traffic_tb: cross_rack_traffic.to_tb(),
            network_time_h: network_time.to_hours(),
            local_time_h: local_time.to_hours(),
            local_read_extra_tb: split.local_read_extra.to_tb(),
        }
    }
}

/// `R_MIN`'s stage-1 network volume: the minimal decode-across bytes that
/// make every lost stripe locally recoverable (`f − p_l` chunks per lost
/// stripe). Shared by [`RMin`] and [`RLayer`].
fn min_stage1_network(dep: &MlecDeployment, injected: &InjectedFailure) -> Volume {
    let chunk = Volume::from_kb(dep.geometry.chunk_kb);
    let pl = dep.params.local.p as f64;
    let per_stripe = (injected.failed_disks as f64 - pl).max(0.0);
    injected.lost_stripes * per_stripe * chunk
}

/// `R_ALL`: rebuild the entire local pool over the network.
pub struct RAll;

impl RepairStrategy for RAll {
    fn method(&self) -> RepairMethod {
        RepairMethod::All
    }

    fn has_chunk_knowledge(&self) -> bool {
        false
    }

    fn split(&self, dep: &MlecDeployment, _injected: &InjectedFailure) -> RepairSplit {
        let pool_capacity = Volume::from_tb(dep.local_pools().pool_capacity_tb());
        RepairSplit::full_wire(pool_capacity, Volume::ZERO, 0)
    }
}

/// `R_FCO`: rebuild only the failed chunks over the network.
pub struct RFco;

impl RepairStrategy for RFco {
    fn method(&self) -> RepairMethod {
        RepairMethod::Fco
    }

    fn split(&self, _dep: &MlecDeployment, injected: &InjectedFailure) -> RepairSplit {
        RepairSplit::full_wire(injected.failed_volume, Volume::ZERO, 0)
    }
}

/// `R_HYB`: network repair for lost local stripes only; everything else
/// repaired locally.
pub struct RHyb;

impl RepairStrategy for RHyb {
    fn method(&self) -> RepairMethod {
        RepairMethod::Hyb
    }

    fn split(&self, _dep: &MlecDeployment, injected: &InjectedFailure) -> RepairSplit {
        RepairSplit::full_wire(
            injected.lost_chunk_volume,
            injected.failed_volume - injected.lost_chunk_volume,
            1,
        )
    }
}

/// `R_MIN`: two-stage — network-repair just enough chunks to make every
/// lost stripe locally recoverable, then finish locally.
pub struct RMin;

impl RepairStrategy for RMin {
    fn method(&self) -> RepairMethod {
        RepairMethod::Min
    }

    fn split(&self, dep: &MlecDeployment, injected: &InjectedFailure) -> RepairSplit {
        let network = min_stage1_network(dep, injected);
        RepairSplit::full_wire(
            network,
            injected.failed_volume - network,
            dep.params.local.p as u32,
        )
    }
}

/// `R_LAYER`: gather-within-layer, decode-across (Hu et al.).
///
/// Lost stripes are repaired by the minimal decode-across (`R_MIN`'s stage-1
/// volume): surviving chunks are combined inside each rack so only one
/// partial result per contribution crosses the rack boundary, and the
/// remaining `p_l` chunks per lost stripe are re-expanded locally.
/// Recoverable failed chunks (stripes not lost) stream directly over the
/// network `R_FCO`-style, avoiding any local rebuild of them. On clustered
/// local placement every stripe is lost, so the direct portion vanishes and
/// `R_LAYER` degenerates to `R_MIN`'s traffic (with the same local phase).
pub struct RLayer;

impl RepairStrategy for RLayer {
    fn method(&self) -> RepairMethod {
        RepairMethod::Layer
    }

    fn split(&self, dep: &MlecDeployment, injected: &InjectedFailure) -> RepairSplit {
        let kn = dep.params.network.k as f64;
        // Aggregated partials for lost stripes: the minimal decode-across
        // volume, produced by in-rack gather of the k_n helper reads.
        let aggregated = min_stage1_network(dep, injected);
        // Recoverable failed chunks ship directly (their stripes still have
        // ≤ p_l failures, but streaming them network-side frees the local
        // repairer for the lost-stripe re-expansion).
        let direct = injected.failed_volume - injected.lost_chunk_volume;
        let network = aggregated + direct;
        RepairSplit {
            network_volume: network,
            wire_volume: network,
            local_volume: injected.lost_chunk_volume - aggregated,
            local_chunks_per_stripe: dep.params.local.p as u32,
            // The in-rack gather still reads k_n helper bytes per
            // aggregated byte; they just never cross a rack boundary.
            local_read_extra: aggregated * kn,
        }
    }
}

/// `R_PIGGY`: piggybacked sub-stripe scheduling (Rashmi et al.).
///
/// The repair of each lost chunk is split into `f` sub-stripes; companion
/// reads piggyback the first sub-stripe's helpers so only a
/// `γ = 1/2 + 1/(2f)` fraction of the helper bytes crosses racks, while the
/// remaining `(1 − γ) · k_n` helper bytes per rebuilt byte are read from
/// same-rack companions. Recoverable failed chunks stream at full wire
/// volume (`R_FCO`-style); nothing is left for a local rebuild phase.
pub struct RPiggy;

impl RepairStrategy for RPiggy {
    fn method(&self) -> RepairMethod {
        RepairMethod::Piggy
    }

    fn split(&self, dep: &MlecDeployment, injected: &InjectedFailure) -> RepairSplit {
        let kn = dep.params.network.k as f64;
        let f = injected.failed_disks as f64;
        // Piggyback savings factor over the lost-chunk helper traffic:
        // γ = 1/2 + 1/(2f) of the helper bytes still cross racks. With the
        // injected f = p_l + 1 failures this is always ≥ 1/f, so R_PIGGY
        // never undercuts R_MIN's minimal decode volume.
        let gamma = 0.5 + 1.0 / (2.0 * f);
        let direct = injected.failed_volume - injected.lost_chunk_volume;
        let wire = gamma * injected.lost_chunk_volume + direct;
        RepairSplit {
            network_volume: injected.failed_volume,
            wire_volume: wire,
            local_volume: Volume::ZERO,
            local_chunks_per_stripe: 0,
            local_read_extra: (1.0 - gamma) * kn * injected.lost_chunk_volume,
        }
    }
}

/// Every registered strategy, paper methods first, in presentation order.
pub static STRATEGIES: [&dyn RepairStrategy; 6] = [&RAll, &RFco, &RHyb, &RMin, &RLayer, &RPiggy];

impl RepairMethod {
    /// The strategy object implementing this selector.
    pub fn strategy(self) -> &'static dyn RepairStrategy {
        match self {
            RepairMethod::All => &RAll,
            RepairMethod::Fco => &RFco,
            RepairMethod::Hyb => &RHyb,
            RepairMethod::Min => &RMin,
            RepairMethod::Layer => &RLayer,
            RepairMethod::Piggy => &RPiggy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::{inject_catastrophic, plan_catastrophic_repair};
    use mlec_topology::MlecScheme;

    fn dep(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment::paper_default(scheme)
    }

    #[test]
    fn registry_matches_selectors() {
        assert_eq!(STRATEGIES.len(), RepairMethod::EXTENDED.len());
        for (s, m) in STRATEGIES.iter().zip(RepairMethod::EXTENDED) {
            assert_eq!(s.method(), m);
            assert_eq!(s.name(), m.name());
            assert_eq!(s.has_chunk_knowledge(), m.has_chunk_knowledge());
        }
    }

    #[test]
    fn paper_strategies_match_plan_function_bitwise() {
        // The trait path and the convenience function must agree bit-for-bit
        // (the function delegates, but keep the seam honest).
        for scheme in MlecScheme::ALL {
            let dep = dep(scheme);
            let injected = inject_catastrophic(&dep);
            for method in RepairMethod::EXTENDED {
                let via_fn = plan_catastrophic_repair(&dep, method);
                let via_trait = method.strategy().plan(&dep, &injected);
                assert_eq!(via_fn, via_trait, "{scheme} {method}");
            }
        }
    }

    #[test]
    fn layer_traffic_between_min_and_fco() {
        for scheme in MlecScheme::ALL {
            let dep = dep(scheme);
            let min = plan_catastrophic_repair(&dep, RepairMethod::Min);
            let fco = plan_catastrophic_repair(&dep, RepairMethod::Fco);
            let layer = plan_catastrophic_repair(&dep, RepairMethod::Layer);
            assert!(
                layer.cross_rack_traffic_tb >= min.cross_rack_traffic_tb,
                "{scheme}"
            );
            assert!(
                layer.cross_rack_traffic_tb < fco.cross_rack_traffic_tb + 1e-9,
                "{scheme}"
            );
        }
        // Clustered locals: every stripe is lost, so R_LAYER degenerates to
        // R_MIN's wire volume — 220 TB on C/C (paper Fig 8 scale).
        let cc = plan_catastrophic_repair(&dep(MlecScheme::CC), RepairMethod::Layer);
        assert!((cc.cross_rack_traffic_tb - 220.0).abs() < 0.5);
    }

    #[test]
    fn piggy_traffic_gamma_of_fco() {
        // On C/C everything is lost-chunk volume: wire = γ · 80 TB with
        // γ = 1/2 + 1/(2·4) = 0.625 → 550 TB of cross-rack traffic.
        let cc = plan_catastrophic_repair(&dep(MlecScheme::CC), RepairMethod::Piggy);
        assert!((cc.cross_rack_traffic_tb - 550.0).abs() < 0.5);
        // And the shed helper bytes show up as same-rack companion reads.
        assert!(cc.local_read_extra_tb > 0.0);
        assert!((cc.local_read_extra_tb - 0.375 * 10.0 * 80.0).abs() < 1e-6);
    }

    #[test]
    fn new_strategies_strictly_beat_rall_on_paper_deployments() {
        for scheme in MlecScheme::ALL {
            let dep = dep(scheme);
            let all = plan_catastrophic_repair(&dep, RepairMethod::All);
            for method in [RepairMethod::Layer, RepairMethod::Piggy] {
                let plan = plan_catastrophic_repair(&dep, method);
                assert!(
                    plan.cross_rack_traffic_tb < all.cross_rack_traffic_tb,
                    "{scheme} {method}: {} !< {}",
                    plan.cross_rack_traffic_tb,
                    all.cross_rack_traffic_tb
                );
            }
        }
    }

    #[test]
    fn new_strategies_conserve_failed_volume() {
        for scheme in MlecScheme::ALL {
            let dep = dep(scheme);
            let injected = inject_catastrophic(&dep);
            for method in [RepairMethod::Layer, RepairMethod::Piggy] {
                let plan = plan_catastrophic_repair(&dep, method);
                let total = plan.network_volume_tb + plan.local_volume_tb;
                assert!(
                    (total - injected.failed_volume.to_tb()).abs() < 1e-6,
                    "{scheme} {method}: {total}"
                );
            }
        }
    }

    #[test]
    fn piggy_network_time_below_fco() {
        // Fewer wire bytes through the same bottleneck: the network phase
        // finishes sooner than R_FCO on every paper deployment.
        for scheme in MlecScheme::ALL {
            let dep = dep(scheme);
            let fco = plan_catastrophic_repair(&dep, RepairMethod::Fco);
            let piggy = plan_catastrophic_repair(&dep, RepairMethod::Piggy);
            assert!(piggy.network_time_h < fco.network_time_h, "{scheme}");
            assert!(piggy.local_time_h == 0.0, "{scheme}");
        }
    }
}
