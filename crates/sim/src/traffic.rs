//! Steady-state repair *network* traffic under independent failures
//! (paper §5.1.4 and §5.2.4, reported in text rather than figures).
//!
//! Every repaired byte in a network-placed code costs `reads + 1 write`
//! cross-rack transfers; local codes repair inside the rack and generate no
//! cross-rack traffic for single-disk failures. MLEC only touches the
//! network when a local pool goes catastrophic — which is why its repair
//! traffic is "a few TB every thousand of years" instead of "hundreds of TB
//! every day".
//!
//! Traffic is returned as a [`Volume`] (per day or per year as each
//! function documents); rates come in as [`Rate`] so hours-vs-years mixups
//! are unrepresentable.

use crate::config::{MlecDeployment, SimConfig};
use crate::repair::{inject_catastrophic, RepairMethod};
use crate::strategy::RepairStrategy;
use mlec_ec::LrcParams;
use mlec_topology::Geometry;
use mlec_units::{Rate, Volume};

/// Expected disk-failure rate of the whole system.
pub fn system_disk_failure_rate(geometry: &Geometry, config: &SimConfig) -> Rate {
    Rate::from_per_year(geometry.total_disks() as f64 * config.afr)
}

/// Daily cross-rack repair traffic of a network SLEC `(k + p)`:
/// every disk repair reads `k` chunks and writes 1 chunk across racks.
pub fn net_slec_daily_traffic(geometry: &Geometry, config: &SimConfig, k: usize) -> Volume {
    system_disk_failure_rate(geometry, config).to_per_day()
        * Volume::from_tb(geometry.disk_capacity_tb)
        * (k as f64 + 1.0)
}

/// Daily cross-rack repair traffic of a local SLEC: zero — all repair I/O
/// stays inside the enclosure. (Rack-level failures are not repairable at
/// all, which is the durability price Fig 13a/b shows.)
pub fn local_slec_daily_traffic() -> Volume {
    Volume::ZERO
}

/// Daily cross-rack repair traffic of a declustered LRC.
///
/// Chunks are spread one-per-rack, so every repair crosses racks. A data or
/// local-parity chunk is repaired from its local group (`k/l` reads); a
/// global parity needs a full decode (`k` reads).
pub fn lrc_daily_traffic(geometry: &Geometry, config: &SimConfig, params: LrcParams) -> Volume {
    let n = params.width() as f64;
    let group_reads = (params.k as f64 / params.l as f64).ceil();
    let avg_reads =
        ((params.k + params.l) as f64 * group_reads + params.r as f64 * params.k as f64) / n;
    system_disk_failure_rate(geometry, config).to_per_day()
        * Volume::from_tb(geometry.disk_capacity_tb)
        * (avg_reads + 1.0)
}

/// Yearly cross-rack repair traffic of MLEC, given the system's
/// catastrophic-local-pool rate (from simulation or the analytic chain)
/// and the repair method.
pub fn mlec_yearly_traffic(
    dep: &MlecDeployment,
    method: RepairMethod,
    catastrophic_rate: Rate,
) -> Volume {
    mlec_yearly_traffic_strategy(dep, method.strategy(), catastrophic_rate)
}

/// [`mlec_yearly_traffic`] with the repair behaviour supplied as a
/// [`RepairStrategy`] object (pluggable strategies, e.g. from
/// [`crate::strategy::STRATEGIES`]).
pub fn mlec_yearly_traffic_strategy(
    dep: &MlecDeployment,
    strategy: &dyn RepairStrategy,
    catastrophic_rate: Rate,
) -> Volume {
    let injected = inject_catastrophic(dep);
    let per_event = Volume::from_tb(strategy.plan(dep, &injected).cross_rack_traffic_tb);
    catastrophic_rate.to_per_year() * per_event
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HOURS_PER_YEAR;
    use mlec_topology::MlecScheme;

    #[test]
    fn paper_scale_failure_rate() {
        let g = Geometry::paper_default();
        let c = SimConfig::paper_default();
        // 57,600 disks at 1% AFR ≈ 1.58 failures/day.
        let f = system_disk_failure_rate(&g, &c).to_per_day();
        assert!((f - 1.577).abs() < 0.01, "f={f}");
        // Bit-identical to the historical inline expression.
        assert_eq!(
            f.to_bits(),
            (g.total_disks() as f64 * c.afr / (HOURS_PER_YEAR / 24.0)).to_bits()
        );
    }

    #[test]
    fn net_slec_hundreds_of_tb_per_day() {
        // Paper §5.1.4: "(7+3) network SLEC requires hundreds of TB repair
        // network traffic every day".
        let g = Geometry::paper_default();
        let c = SimConfig::paper_default();
        let daily = net_slec_daily_traffic(&g, &c, 7).to_tb();
        assert!(daily > 100.0 && daily < 500.0, "daily={daily}");
    }

    #[test]
    fn lrc_less_than_matched_slec() {
        // Paper §5.2.4: LRC repairs most failures from the small local
        // group. At matched width/overhead — (14,2,4) LRC vs (14+6) network
        // SLEC — LRC must move less.
        let g = Geometry::paper_default();
        let c = SimConfig::paper_default();
        let lrc = lrc_daily_traffic(&g, &c, LrcParams::new(14, 2, 4)).to_tb();
        let slec = net_slec_daily_traffic(&g, &c, 14).to_tb();
        assert!(lrc < slec, "lrc={lrc} slec={slec}");
        // ...but still a lot in absolute terms ("every repair still needs to
        // read and write over the network").
        assert!(lrc > 100.0);
    }

    #[test]
    fn mlec_orders_of_magnitude_below_slec() {
        // Paper §5.1.4: MLEC needs a few TB every *thousands of years*.
        // With a catastrophic rate of ~1e-5/system-year and R_MIN's 220 TB
        // per event, yearly traffic is ~2e-3 TB.
        let dep = MlecDeployment::paper_default(MlecScheme::CC);
        let yearly =
            mlec_yearly_traffic(&dep, RepairMethod::Min, Rate::from_per_year(1e-5)).to_tb();
        assert!(yearly < 0.01, "yearly={yearly}");
        // Versus SLEC's ~92,000 TB/year: >7 orders of magnitude apart.
        let slec_yearly =
            net_slec_daily_traffic(&Geometry::paper_default(), &SimConfig::paper_default(), 7)
                .to_tb()
                * 365.25;
        assert!(slec_yearly / yearly > 1e6);
    }

    #[test]
    fn local_slec_is_free_of_network_traffic() {
        assert_eq!(local_slec_daily_traffic(), Volume::ZERO);
    }
}
