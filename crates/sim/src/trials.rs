//! [`mlec_runner::Trial`] implementations for the simulators, making
//! `pool_sim` and `system_sim` runnable through the deterministic batched
//! executor (seed streams, adaptive stopping, checkpoint/resume).
//!
//! The trials drive the simulators through the [`SimObserver`] hook layer:
//! attach an [`EventLogSink`] to stream per-trial JSONL event logs, and the
//! accumulators pick up degraded-time accounting either way. Observers never
//! consume randomness, so attaching one cannot perturb fixed-seed results.

use crate::config::MlecDeployment;
use crate::failure::FailureModel;
use crate::importance::FailureBias;
use crate::kernel::SimObserver;
use crate::pool_sim::simulate_pool_observed;
use crate::strategy::RepairStrategy;
use crate::system_sim::{simulate_system_observed, SystemSimOptions};
use mlec_runner::{
    Accumulator, Json, Proportion, Summary, Trial, WeightedRate, WeightedWelford, Welford,
};

/// A shared, thread-safe sink for per-trial JSONL event logs.
///
/// Worker threads buffer each trial's records locally and append them in one
/// locked write, so lines never interleave mid-trial (trial blocks may appear
/// in any order across threads; each line carries its trial index).
pub struct EventLogSink {
    out: std::sync::Mutex<Box<dyn std::io::Write + Send>>,
}

impl EventLogSink {
    /// A sink over any writer (a file, a `Vec<u8>` in tests, ...).
    pub fn new(writer: Box<dyn std::io::Write + Send>) -> EventLogSink {
        EventLogSink {
            out: std::sync::Mutex::new(writer),
        }
    }

    /// A sink writing (buffered) to `path`, truncating any existing file.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<EventLogSink> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(EventLogSink::new(Box::new(std::io::BufWriter::new(file))))
    }

    fn append(&self, block: &str) {
        use std::io::Write;
        // PANICS: lock poisoning only follows a panic on another worker; propagating the abort is correct.
        let mut out = self.out.lock().expect("event log lock");
        // Log I/O failure must not abort a long simulation campaign; the
        // JSONL is diagnostics, the manifest is the durable result.
        let _ = out.write_all(block.as_bytes());
        let _ = out.flush();
    }
}

/// A [`SimObserver`] that accumulates degraded-time/event counters for one
/// trial and (optionally) buffers JSONL event records for an
/// [`EventLogSink`]. Call [`TrialObserver::finish`] after the simulation to
/// emit the buffered block plus a `trial_end` summary record.
pub struct TrialObserver<'a> {
    sink: Option<&'a EventLogSink>,
    label: &'a str,
    trial: u64,
    buf: String,
    /// Total hours spent degraded: pool sims count time with ≥1 disk
    /// failed; system sims count per-pool network-reconstruction sojourns.
    pub degraded_hours: f64,
    /// Disk failures observed.
    pub failures: u64,
    /// Repair completions observed.
    pub repairs: u64,
    /// Catastrophic pool events observed.
    pub catastrophes: u64,
    /// Network data-loss events observed (system sims only).
    pub data_losses: u64,
}

impl<'a> TrialObserver<'a> {
    /// An observer for trial `trial` of the run labelled `label`, logging to
    /// `sink` when one is given (counters accumulate either way).
    pub fn new(sink: Option<&'a EventLogSink>, label: &'a str, trial: u64) -> TrialObserver<'a> {
        TrialObserver {
            sink,
            label,
            trial,
            buf: String::new(),
            degraded_hours: 0.0,
            failures: 0,
            repairs: 0,
            catastrophes: 0,
            data_losses: 0,
        }
    }

    fn record(&mut self, body: std::fmt::Arguments<'_>) {
        if self.sink.is_some() {
            use std::fmt::Write;
            let _ = writeln!(
                self.buf,
                "{{\"label\":\"{}\",\"trial\":{},{}}}",
                self.label, self.trial, body
            );
        }
    }

    /// Emit the trial's buffered records plus a `trial_end` summary line.
    pub fn finish(mut self) {
        let (degraded, failures, repairs, catastrophes, losses) = (
            self.degraded_hours,
            self.failures,
            self.repairs,
            self.catastrophes,
            self.data_losses,
        );
        self.record(format_args!(
            "\"kind\":\"trial_end\",\"degraded_hours\":{degraded},\"failures\":{failures},\
             \"repairs\":{repairs},\"catastrophes\":{catastrophes},\"data_losses\":{losses}"
        ));
        if let Some(sink) = self.sink {
            sink.append(&self.buf);
        }
    }
}

impl SimObserver for TrialObserver<'_> {
    fn on_disk_failure(&mut self, time_h: f64, concurrent: u32) {
        self.failures += 1;
        self.record(format_args!(
            "\"kind\":\"disk_failure\",\"time_h\":{time_h},\"concurrent\":{concurrent}"
        ));
    }

    fn on_repair(&mut self, time_h: f64, concurrent: u32) {
        self.repairs += 1;
        self.record(format_args!(
            "\"kind\":\"repair\",\"time_h\":{time_h},\"concurrent\":{concurrent}"
        ));
    }

    fn on_catastrophe(&mut self, time_h: f64, concurrent: u32, lost_stripes: f64, weight: f64) {
        self.catastrophes += 1;
        self.record(format_args!(
            "\"kind\":\"catastrophe\",\"time_h\":{time_h},\"concurrent\":{concurrent},\
             \"lost_stripes\":{lost_stripes},\"weight\":{weight}"
        ));
    }

    fn on_data_loss(&mut self, time_h: f64) {
        self.data_losses += 1;
        self.record(format_args!("\"kind\":\"data_loss\",\"time_h\":{time_h}"));
    }

    fn on_degraded_interval(&mut self, from_h: f64, to_h: f64, _failed_disks: u32) {
        self.degraded_hours += to_h - from_h;
    }
}

/// One trial = one pool simulated for `years_per_trial` (splitting stage 1),
/// optionally with importance-sampled failure arrivals ([`FailureBias`] —
/// use [`FailureBias::NONE`] for direct simulation).
pub struct PoolTrial<'a> {
    pub dep: &'a MlecDeployment,
    pub model: &'a FailureModel,
    pub years_per_trial: f64,
    pub bias: FailureBias,
    /// Optional per-trial JSONL event log (`None` = no logging; the
    /// simulation is bit-identical either way).
    pub event_log: Option<&'a EventLogSink>,
    /// Label stamped on every event-log line (e.g. `fig10/CC`).
    pub log_label: &'a str,
}

/// Aggregate pool-simulation statistics. The primary statistic is the
/// weighted catastrophic-event rate per pool-year with a compound-Poisson
/// confidence interval and ESS ([`WeightedRate`]); lost stripes per event
/// accumulate in a weighted Welford estimator. Under unbiased simulation all
/// weights are exactly 1.0 and the estimates reduce to the plain Poisson
/// counting statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PoolAcc {
    pub trials: u64,
    pub disk_failures: u64,
    pub max_concurrent: u32,
    /// Weighted catastrophic-event rate over the simulated pool-years.
    pub rate: WeightedRate,
    /// Weighted lost-stripe distribution over catastrophic events.
    pub lost_stripes: WeightedWelford,
    /// Completed likelihood-ratio excursions across all trials.
    pub excursions: u64,
    /// Sum of final excursion weights (mean ≈ 1 is the unbiasedness check).
    pub excursion_weight: f64,
    /// Pool-hours spent with at least one disk failed, across all trials
    /// (observer-backed degraded-state accounting).
    pub degraded_hours: f64,
}

impl PoolAcc {
    /// Catastrophic events observed (raw count, not weighted).
    pub fn events(&self) -> u64 {
        self.rate.events()
    }

    /// Simulated pool-years of exposure.
    pub fn pool_years(&self) -> f64 {
        self.rate.exposure()
    }

    /// Weighted catastrophic events per pool-year (0 with no exposure).
    pub fn rate_per_pool_year(&self) -> f64 {
        self.rate.rate()
    }

    /// Weighted mean lost local stripes per catastrophic event (0 if none).
    pub fn mean_lost_stripes(&self) -> f64 {
        if self.rate.events() == 0 {
            0.0
        } else {
            self.lost_stripes.mean()
        }
    }

    /// Mean final likelihood weight per excursion (≈1 when correctly
    /// weighted; 0 before any excursion completes).
    pub fn mean_excursion_weight(&self) -> f64 {
        if self.excursions == 0 {
            0.0
        } else {
            self.excursion_weight / self.excursions as f64
        }
    }

    /// Fraction of simulated time the pool spent degraded (≥1 disk failed);
    /// 0 with no exposure.
    pub fn degraded_fraction(&self) -> f64 {
        let hours = self.pool_years() * crate::config::HOURS_PER_YEAR;
        if hours <= 0.0 {
            0.0
        } else {
            self.degraded_hours / hours
        }
    }
}

impl Trial for PoolTrial<'_> {
    type Acc = PoolAcc;

    fn run(&self, index: u64, seed: u64, acc: &mut PoolAcc) {
        let mut observer = TrialObserver::new(self.event_log, self.log_label, index);
        let result = simulate_pool_observed(
            self.dep,
            self.model,
            self.years_per_trial,
            seed,
            self.bias,
            &mut observer,
        );
        acc.trials += 1;
        acc.rate.add_exposure(result.pool_years);
        acc.disk_failures += result.disk_failures;
        acc.max_concurrent = acc.max_concurrent.max(result.max_concurrent);
        for event in &result.events {
            acc.rate.push(event.weight);
            acc.lost_stripes.push(event.lost_stripes, event.weight);
        }
        acc.excursions += result.excursions;
        acc.excursion_weight += result.excursion_weight;
        acc.degraded_hours += observer.degraded_hours;
        observer.finish();
    }
}

impl Accumulator for PoolAcc {
    fn merge(&mut self, other: &Self) {
        self.trials += other.trials;
        self.disk_failures += other.disk_failures;
        self.max_concurrent = self.max_concurrent.max(other.max_concurrent);
        self.rate.merge(&other.rate);
        self.lost_stripes.merge(&other.lost_stripes);
        self.excursions += other.excursions;
        self.excursion_weight += other.excursion_weight;
        self.degraded_hours += other.degraded_hours;
    }

    fn trials(&self) -> u64 {
        self.trials
    }

    fn summary(&self) -> Summary {
        // Compound-Poisson statistics: se(rate) = sqrt(sum w^2)/exposure,
        // reducing to sqrt(events)/exposure at unit weights.
        let (ci_low, ci_high) = self.rate.ci95();
        Summary {
            trials: self.trials,
            mean: self.rate.rate(),
            std_err: self.rate.std_err(),
            ci_low,
            ci_high,
            rel_err: self.rate.rel_err(),
        }
    }

    fn save(&self) -> Json {
        Json::obj(vec![
            ("trials", Json::U64(self.trials)),
            ("disk_failures", Json::U64(self.disk_failures)),
            ("max_concurrent", Json::U64(self.max_concurrent as u64)),
            ("rate", self.rate.save()),
            ("lost_stripes", self.lost_stripes.save()),
            ("excursions", Json::U64(self.excursions)),
            (
                "excursion_weight_bits",
                Json::U64(self.excursion_weight.to_bits()),
            ),
            (
                "degraded_hours_bits",
                Json::U64(self.degraded_hours.to_bits()),
            ),
        ])
    }

    fn load(value: &Json) -> Option<Self> {
        Some(PoolAcc {
            trials: value.get("trials")?.as_u64()?,
            disk_failures: value.get("disk_failures")?.as_u64()?,
            max_concurrent: value.get("max_concurrent")?.as_u64()? as u32,
            rate: WeightedRate::load(value.get("rate")?)?,
            lost_stripes: WeightedWelford::load(value.get("lost_stripes")?)?,
            excursions: value.get("excursions")?.as_u64()?,
            excursion_weight: f64::from_bits(value.get("excursion_weight_bits")?.as_u64()?),
            // Pre-observer manifests lack this field; resume them as zero
            // rather than refusing to load.
            degraded_hours: value
                .get("degraded_hours_bits")
                .and_then(Json::as_u64)
                .map_or(0.0, f64::from_bits),
        })
    }
}

/// One trial = one full-system mission simulation.
pub struct SystemTrial<'a> {
    pub dep: &'a MlecDeployment,
    pub model: &'a FailureModel,
    /// Catastrophic-repair behaviour for the mission; use
    /// [`crate::RepairMethod::strategy`] to select a built-in one.
    pub strategy: &'a dyn RepairStrategy,
    pub years: f64,
    pub opts: SystemSimOptions,
    /// Optional per-trial JSONL event log (`None` = no logging; the
    /// simulation is bit-identical either way).
    pub event_log: Option<&'a EventLogSink>,
    /// Label stamped on every event-log line (e.g. `fig07/sys/CC`).
    pub log_label: &'a str,
}

/// Aggregate system-simulation statistics. The primary statistic is the
/// probability a mission loses data (Wilson CI — the rare-event target of
/// the validation experiments).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LossAcc {
    pub loss: Proportion,
    pub catastrophic_pools: u64,
    pub data_loss_events: u64,
    pub disk_failures: u64,
    pub cross_rack_traffic_tb: Welford,
    pub total_sojourn_h: Welford,
    /// Pool-hours spent under network reconstruction, across all trials
    /// (observer-backed degraded-state accounting).
    pub degraded_hours: f64,
}

impl Trial for SystemTrial<'_> {
    type Acc = LossAcc;

    fn run(&self, index: u64, seed: u64, acc: &mut LossAcc) {
        let mut observer = TrialObserver::new(self.event_log, self.log_label, index);
        let result = simulate_system_observed(
            self.dep,
            self.model,
            self.strategy,
            self.years,
            seed,
            self.opts,
            &mut observer,
        );
        acc.loss.push(result.lost_data());
        acc.catastrophic_pools += result.catastrophic_pools;
        acc.data_loss_events += result.data_loss_events;
        acc.disk_failures += result.disk_failures;
        acc.cross_rack_traffic_tb.push(result.cross_rack_traffic_tb);
        acc.total_sojourn_h.push(result.total_sojourn_h);
        acc.degraded_hours += observer.degraded_hours;
        observer.finish();
    }
}

impl Accumulator for LossAcc {
    fn merge(&mut self, other: &Self) {
        self.loss.merge(&other.loss);
        self.catastrophic_pools += other.catastrophic_pools;
        self.data_loss_events += other.data_loss_events;
        self.disk_failures += other.disk_failures;
        self.cross_rack_traffic_tb
            .merge(&other.cross_rack_traffic_tb);
        self.total_sojourn_h.merge(&other.total_sojourn_h);
        self.degraded_hours += other.degraded_hours;
    }

    fn trials(&self) -> u64 {
        self.loss.trials()
    }

    fn summary(&self) -> Summary {
        let (lo, hi) = self.loss.wilson(1.96);
        Summary {
            trials: self.loss.trials(),
            mean: self.loss.estimate(),
            std_err: self.loss.wilson_half_width() / 1.96,
            ci_low: lo,
            ci_high: hi,
            rel_err: self.loss.rel_half_width(),
        }
    }

    fn save(&self) -> Json {
        Json::obj(vec![
            ("loss", self.loss.save()),
            ("catastrophic_pools", Json::U64(self.catastrophic_pools)),
            ("data_loss_events", Json::U64(self.data_loss_events)),
            ("disk_failures", Json::U64(self.disk_failures)),
            ("cross_rack_traffic_tb", self.cross_rack_traffic_tb.save()),
            ("total_sojourn_h", self.total_sojourn_h.save()),
            (
                "degraded_hours_bits",
                Json::U64(self.degraded_hours.to_bits()),
            ),
        ])
    }

    fn load(value: &Json) -> Option<Self> {
        Some(LossAcc {
            loss: Proportion::load(value.get("loss")?)?,
            catastrophic_pools: value.get("catastrophic_pools")?.as_u64()?,
            data_loss_events: value.get("data_loss_events")?.as_u64()?,
            disk_failures: value.get("disk_failures")?.as_u64()?,
            cross_rack_traffic_tb: Welford::load(value.get("cross_rack_traffic_tb")?)?,
            total_sojourn_h: Welford::load(value.get("total_sojourn_h")?)?,
            // Pre-observer manifests lack this field; resume them as zero
            // rather than refusing to load.
            degraded_hours: value
                .get("degraded_hours_bits")
                .and_then(Json::as_u64)
                .map_or(0.0, f64::from_bits),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_runner::{run, RunSpec, StopRule};
    use mlec_topology::MlecScheme;

    #[test]
    fn pool_trial_runs_through_executor_deterministically() {
        let dep = MlecDeployment::paper_default(MlecScheme::CC);
        let model = FailureModel::Exponential { afr: 4.0 };
        let trial = PoolTrial {
            dep: &dep,
            model: &model,
            years_per_trial: 20.0,
            bias: FailureBias::NONE,
            event_log: None,
            log_label: "",
        };
        let a = run(
            &trial,
            &RunSpec::new("trials/pool", 77, StopRule::fixed(24)).threads(1),
        )
        .unwrap();
        let b = run(
            &trial,
            &RunSpec::new("trials/pool", 77, StopRule::fixed(24)).threads(4),
        )
        .unwrap();
        assert_eq!(a.acc, b.acc);
        assert!((a.acc.pool_years() - 24.0 * 20.0).abs() < 1e-9);
        assert!(a.acc.disk_failures > 0);
    }

    #[test]
    fn weighted_pool_trial_is_thread_count_invariant() {
        // Importance-sampled campaigns must stay bit-identical across
        // worker-thread counts: weighted sums merge in batch order.
        let dep = MlecDeployment::paper_default(MlecScheme::CC);
        let model = FailureModel::Exponential { afr: 0.01 };
        let bias = FailureBias::auto(&dep, &model);
        let trial = PoolTrial {
            dep: &dep,
            model: &model,
            years_per_trial: 25.0,
            bias,
            event_log: None,
            log_label: "",
        };
        let a = run(
            &trial,
            &RunSpec::new("trials/pool-is", 77, StopRule::fixed(32)).threads(1),
        )
        .unwrap();
        let b = run(
            &trial,
            &RunSpec::new("trials/pool-is", 77, StopRule::fixed(32)).threads(4),
        )
        .unwrap();
        assert_eq!(a.acc, b.acc);
        assert_eq!(
            a.acc.rate.rate().to_bits(),
            b.acc.rate.rate().to_bits(),
            "weighted rate must be bit-identical"
        );
        assert!(
            a.acc.events() > 0,
            "auto bias must observe events at 1% AFR"
        );
        let mw = a.acc.mean_excursion_weight();
        assert!(mw > 0.1 && mw < 10.0, "mean excursion weight {mw}");
    }

    #[test]
    fn pool_acc_round_trips_through_json() {
        let dep = MlecDeployment::paper_default(MlecScheme::CD);
        let model = FailureModel::Exponential { afr: 2.0 };
        let trial = PoolTrial {
            dep: &dep,
            model: &model,
            years_per_trial: 50.0,
            bias: FailureBias::degraded_only(20.0),
            event_log: None,
            log_label: "",
        };
        let report = run(
            &trial,
            &RunSpec::new("trials/pool-json", 3, StopRule::fixed(8)),
        )
        .unwrap();
        let back = PoolAcc::load(&report.acc.save()).unwrap();
        assert_eq!(back, report.acc);
    }

    #[test]
    fn system_trial_loss_proportion_is_sane() {
        let dep = MlecDeployment::paper_default(MlecScheme::CC);
        let model = FailureModel::Exponential { afr: 1.0 };
        let trial = SystemTrial {
            dep: &dep,
            model: &model,
            strategy: crate::RepairMethod::Fco.strategy(),
            years: 0.5,
            opts: SystemSimOptions::default(),
            event_log: None,
            log_label: "",
        };
        let report = run(
            &trial,
            &RunSpec::new("trials/system", 5, StopRule::fixed(6)),
        )
        .unwrap();
        assert_eq!(report.trials, 6);
        let s = report.summary;
        assert!((0.0..=1.0).contains(&s.mean));
        assert!(s.ci_low <= s.mean && s.mean <= s.ci_high);
    }
}
