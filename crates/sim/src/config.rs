//! Simulation configuration: the paper's §3 setup plus the knobs the
//! evaluation sweeps.

use mlec_ec::MlecParams;
use mlec_topology::{Geometry, MlecScheme};
use mlec_units::{Bandwidth, Duration, Rate};

pub use mlec_units::HOURS_PER_YEAR;

/// Bandwidth, throttling, detection, and failure-rate parameters (§3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Raw per-disk I/O bandwidth in MB/s (200 in the paper).
    pub disk_bw_mbs: f64,
    /// Raw cross-rack network bandwidth per rack in Gbps (10 in the paper).
    pub rack_net_gbps: f64,
    /// Fraction of raw bandwidth available to repairs (0.2 in the paper:
    /// "disk and network traffics are both capped at 20%").
    pub repair_fraction: f64,
    /// Failure detection time in hours before a repair is triggered (0.5).
    pub detection_hours: f64,
    /// Annual failure rate of a disk (0.01 in the paper).
    pub afr: f64,
}

impl SimConfig {
    /// The paper's §3 values.
    pub const fn paper_default() -> SimConfig {
        SimConfig {
            disk_bw_mbs: 200.0,
            rack_net_gbps: 10.0,
            repair_fraction: 0.2,
            detection_hours: 0.5,
            afr: 0.01,
        }
    }

    /// Throttled per-disk repair bandwidth (40 MB/s in the paper).
    pub fn disk_repair_bw(&self) -> Bandwidth {
        Bandwidth::from_mbs(self.disk_bw_mbs) * self.repair_fraction
    }

    /// Throttled per-rack cross-rack repair bandwidth (250 MB/s).
    pub fn rack_repair_bw(&self) -> Bandwidth {
        Bandwidth::from_gbps(self.rack_net_gbps) * self.repair_fraction
    }

    /// Per-disk failure rate (the AFR, dimensioned).
    pub fn disk_failure_rate(&self) -> Rate {
        Rate::from_per_year(self.afr)
    }

    /// Failure-detection delay before a repair is triggered.
    pub fn detection(&self) -> Duration {
        Duration::from_hours(self.detection_hours)
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::paper_default()
    }
}

/// Everything needed to simulate one MLEC deployment: physical geometry,
/// code parameters, placement scheme, and environment knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlecDeployment {
    /// Physical shape of the datacenter.
    pub geometry: Geometry,
    /// `(k_n + p_n) / (k_l + p_l)` code parameters.
    pub params: MlecParams,
    /// Placement scheme (C/C … D/D).
    pub scheme: MlecScheme,
    /// Bandwidth/failure environment.
    pub config: SimConfig,
}

impl MlecDeployment {
    /// The paper's reference deployment with the given scheme:
    /// 57,600 disks, `(10+2)/(17+3)`, §3 bandwidths.
    pub fn paper_default(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment {
            geometry: Geometry::paper_default(),
            params: MlecParams::paper_default(),
            scheme,
            config: SimConfig::paper_default(),
        }
    }

    /// Local stripe width `k_l + p_l`.
    pub fn local_width(&self) -> u32 {
        self.params.local.width() as u32
    }

    /// Network stripe width `k_n + p_n`.
    pub fn network_width(&self) -> u32 {
        self.params.network.width() as u32
    }

    /// The local pool map implied by the scheme's local placement.
    pub fn local_pools(&self) -> mlec_topology::LocalPoolMap {
        mlec_topology::LocalPoolMap::new(self.geometry, self.scheme.local, self.local_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidths() {
        let c = SimConfig::paper_default();
        assert!((c.disk_repair_bw().to_mbs() - 40.0).abs() < 1e-9);
        assert!((c.rack_repair_bw().to_mbs() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn failure_rate_units() {
        let c = SimConfig::paper_default();
        // 1% AFR: rate * hours-per-year == 0.01.
        assert!((c.disk_failure_rate().to_per_hour() * HOURS_PER_YEAR - 0.01).abs() < 1e-12);
        // The per-hour reading is bit-identical to the old inline division.
        assert_eq!(
            c.disk_failure_rate().to_per_hour().to_bits(),
            (c.afr / HOURS_PER_YEAR).to_bits()
        );
    }

    #[test]
    fn deployment_pools_follow_scheme() {
        let dep_c = MlecDeployment::paper_default(MlecScheme::CC);
        assert_eq!(dep_c.local_pools().pool_size(), 20);
        let dep_d = MlecDeployment::paper_default(MlecScheme::CD);
        assert_eq!(dep_d.local_pools().pool_size(), 120);
        assert_eq!(dep_c.network_width(), 12);
    }
}
