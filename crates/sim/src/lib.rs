//! `mlec-sim`: the discrete-event failure/repair simulator for multi-level
//! erasure-coded storage (the Rust reproduction of the paper's ~13 kLOC
//! simulator, §3 "Simulation").
//!
//! Layered modules:
//!
//! - [`config`]: the §3 reference setup (bandwidths, throttles, detection
//!   time, AFR) and scheme/geometry bundles.
//! - [`engine`]: a deterministic discrete-event queue with stable FIFO
//!   tie-breaking.
//! - [`failure`]: time-to-failure models — exponential (the paper's default,
//!   AFR 1%), Weibull (infant-mortality/wear-out studies), and trace-driven.
//! - [`bandwidth`]: the analytic available-repair-bandwidth model that
//!   reproduces Table 2 exactly (participating devices × throttled bandwidth
//!   ÷ IO amplification).
//! - [`census`]: the stripe-census model for declustered pools — expected
//!   stripe counts by failure multiplicity, updated on failure/repair events
//!   (this is what lets us track 10^9 stripes without materializing them).
//! - [`repair`]: repair-method selectors (`R_ALL` / `R_FCO` / `R_HYB` /
//!   `R_MIN` plus the beyond-the-paper `R_LAYER` / `R_PIGGY`) with
//!   cross-rack traffic and network/local repair-time accounting (Fig 8, 9).
//! - [`strategy`]: the pluggable [`strategy::RepairStrategy`] trait layer
//!   that owns each method's volume split and staged accounting; the paper's
//!   four are bit-exact ports, and layered/piggybacked repair plug in here.
//! - [`importance`]: forced-failure importance sampling — state-dependent
//!   rate multipliers with exact likelihood-ratio weights, so `pool_sim`
//!   observes catastrophes at the paper's true 1% AFR.
//! - [`kernel`]: the shared hazard kernel — one owner for the RNG stream,
//!   bias application, likelihood-ratio bookkeeping, excursion/regeneration
//!   accounting, and horizon censoring. Simulators plug in as
//!   [`kernel::PoolPolicy`] implementations and observe events through
//!   [`kernel::SimObserver`] hooks.
//! - [`pool_sim`]: per-pool long-horizon durability simulation with priority
//!   (most-failed-first) rebuild — the clustered/declustered pool policies
//!   driven by the kernel — produces catastrophic-failure rates (Fig 7) and
//!   the samples consumed by the splitting estimator (Fig 10).
//! - [`traffic`]: yearly repair network traffic for SLEC / LRC / MLEC
//!   (§5.1.4, §5.2.4).
//! - [`trials`]: [`mlec_runner::Trial`] adapters so pool/system simulations
//!   run through the deterministic batched executor (`mlec-runner`).

pub mod bandwidth;
pub mod census;
pub mod config;
pub mod engine;
pub mod failure;
pub mod importance;
pub mod kernel;
pub mod pool_sim;
pub mod repair;
pub mod scheduler;
pub mod strategy;
pub mod system_sim;
pub mod trace;
pub mod traffic;
pub mod trials;

pub use config::SimConfig;
pub use repair::RepairMethod;
pub use strategy::{RepairStrategy, STRATEGIES};
