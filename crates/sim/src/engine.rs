//! A deterministic discrete-event queue.
//!
//! Time is `f64` hours. Events at equal times pop in insertion (FIFO) order
//! via a monotone sequence number, which keeps simulations bit-reproducible
//! under a fixed RNG seed regardless of heap internals.
//!
//! The queue schedules *what happens when*; randomness and importance
//! weighting for failure arrivals are owned by
//! [`crate::kernel::HazardKernel`], which `system_sim` consults each time
//! it schedules the next arrival into this queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A timestamped event with a stable tie-breaking sequence number.
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first.
        // PANICS: event times are finite by construction; a NaN here means a corrupted queue and must abort.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event priority queue over event type `E`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> EventQueue<E> {
    /// An empty queue starting at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `event` at absolute time `time` (hours).
    ///
    /// # Panics
    /// Panics if `time` is NaN or earlier than the current time.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedule `event` `delay` hours from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.now(), 2.0);
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "first");
        q.pop();
        q.schedule_in(2.5, "second");
        assert_eq!(q.pop(), Some((12.5, "second")));
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10.0, ());
        q.pop();
        q.schedule(5.0, ());
    }

    #[test]
    fn len_and_peek() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(4.0, 1);
        q.schedule(2.0, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2.0));
    }
}
