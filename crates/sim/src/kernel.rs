//! The shared hazard-process simulation kernel under all three simulators.
//!
//! Before this module existed, `simulate_clustered_pool`,
//! `simulate_declustered_pool`, and the [`crate::system_sim`] loop each
//! hand-rolled the same four concerns: biased-exponential failure-arrival
//! sampling, exact likelihood-ratio [`PathWeight`] exposure accounting,
//! excursion/regeneration bookkeeping, and horizon censoring. The
//! [`HazardKernel`] owns all of them — plus the `ChaCha12` RNG stream they
//! draw from — so the simulators reduce to *policies over the kernel*:
//!
//! - the pool simulators implement [`PoolPolicy`] (state transitions, loss
//!   detection, and the repair-time model) and run under the shared
//!   next-event loop [`run_pool_policy`];
//! - the system simulator keeps its own repair scheduling on
//!   [`crate::engine::EventQueue`] but consumes the kernel for failure
//!   arrivals (via [`ArrivalSource`] — stochastic or trace-replay) and for
//!   exposure/jump accounting.
//!
//! Every RNG draw the kernel makes mirrors the original hand-rolled loops
//! operation for operation, so fixed-seed results are bit-identical — the
//! `golden_*` tests in [`crate::pool_sim`], [`crate::system_sim`], and
//! `tests/pool_goldens.rs` pin this.
//!
//! [`SimObserver`] is the uniform hook layer: per-event callbacks for
//! failure/repair/catastrophe/data-loss plus degraded-interval accounting,
//! driven identically by all three simulators. The default methods are
//! empty and [`NoopObserver`] is a zero-sized type, so the monomorphized
//! unobserved simulators compile to exactly the pre-observer code.

use crate::failure::sample_exponential;
use crate::importance::{FailureBias, PathWeight};
use crate::pool_sim::CatastrophicEvent;
use rand_chacha::ChaCha12Rng;

/// Uniform per-event hook layer for all three simulators.
///
/// Every method has an empty default body: implement only what you need.
/// Observers must not consume randomness or mutate simulator state — they
/// see events, they do not steer them (the fixed-seed goldens hold with any
/// observer attached).
pub trait SimObserver {
    /// A disk failed at `time_h`; `concurrent` is the failed-disk count of
    /// the affected pool after the failure (0 when the pool was already
    /// under network reconstruction and the failure was absorbed by it).
    fn on_disk_failure(&mut self, _time_h: f64, _concurrent: u32) {}

    /// A repair event completed at `time_h` (clustered disk rebuild,
    /// declustered drain completion, or a network-level pool
    /// reconstruction); `concurrent` is the pool's failed-disk count after
    /// the repair.
    fn on_repair(&mut self, _time_h: f64, _concurrent: u32) {}

    /// A pool went catastrophic: `lost_stripes` local stripes lost at
    /// `concurrent` concurrent failures, with likelihood-ratio `weight`
    /// (exactly 1.0 under unbiased simulation).
    fn on_catastrophe(&mut self, _time_h: f64, _concurrent: u32, _lost_stripes: f64, _weight: f64) {
    }

    /// A network-level data-loss event (system simulator only).
    fn on_data_loss(&mut self, _time_h: f64) {}

    /// The pool spent `(from_h, to_h]` with `failed_disks ≥ 1` disks down
    /// (degraded-time accounting; pool simulators only).
    fn on_degraded_interval(&mut self, _from_h: f64, _to_h: f64, _failed_disks: u32) {}
}

/// The do-nothing observer: zero-sized, every callback compiles away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {}

/// The shared hazard-process kernel: one `ChaCha12` stream, state-dependent
/// [`FailureBias`] application, exact likelihood-ratio exposure/jump
/// accounting, excursion bookkeeping, and horizon censoring.
///
/// The kernel memoizes the `(multiplier, true rate)` pair of the most
/// recent [`Self::sample_next_failure`]/[`Self::sample_gap`] call; every
/// subsequent [`Self::advance_to`] charges exposure at exactly those values
/// — the same interval-start convention the hand-rolled loops used, so the
/// likelihood ratio is exact, not an approximation.
#[derive(Debug, Clone)]
pub struct HazardKernel {
    rng: ChaCha12Rng,
    bias: FailureBias,
    pw: PathWeight,
    now: f64,
    horizon: f64,
    /// Multiplier in force since the last failure-time sample.
    mult: f64,
    /// True aggregate failure intensity (events/hour) since the last sample.
    true_rate: f64,
    disk_failures: u64,
    excursions: u64,
    excursion_weight: f64,
}

impl HazardKernel {
    /// A kernel over a pre-seeded RNG (each simulator keeps its own seeding
    /// convention), simulating until `horizon_h` hours under `bias`.
    pub fn new(rng: ChaCha12Rng, bias: FailureBias, horizon_h: f64) -> HazardKernel {
        HazardKernel {
            rng,
            bias,
            pw: PathWeight::new(),
            now: 0.0,
            horizon: horizon_h,
            mult: 1.0,
            true_rate: 0.0,
            disk_failures: 0,
            excursions: 0,
            excursion_weight: 0.0,
        }
    }

    /// A kernel seeded raw: `seed` feeds `ChaCha12Rng::seed_from_u64`
    /// directly. This is the clustered pool simulator's historical
    /// convention; the draw stream is bit-identical to pre-kernel code.
    ///
    /// Together with [`Self::from_seed_stream`] this keeps every RNG
    /// construction inside this module — the `rng-confinement` lint
    /// (`cargo xtask lint`) rejects `ChaCha`/`SeedableRng` anywhere else
    /// in the simulators.
    pub fn from_seed(seed: u64, bias: FailureBias, horizon_h: f64) -> HazardKernel {
        use rand::SeedableRng as _;
        HazardKernel::new(ChaCha12Rng::seed_from_u64(seed), bias, horizon_h)
    }

    /// A kernel seeded through the runner's [`mlec_runner::SeedStream`]
    /// convention: the stream is labeled, and trial 0 of the derived
    /// stream seeds the `ChaCha12` generator (the declustered-pool and
    /// system simulators' convention).
    pub fn from_seed_stream(
        seed: u64,
        label: &str,
        bias: FailureBias,
        horizon_h: f64,
    ) -> HazardKernel {
        HazardKernel::from_seed(
            mlec_runner::SeedStream::new(seed, label).trial_seed(0),
            bias,
            horizon_h,
        )
    }

    /// Current simulation clock, hours.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Censoring horizon, hours.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The kernel's RNG, for policy-owned draws that are identical under
    /// the true and biased measures (Poisson rare-stripe thinning, disk
    /// selection, survival coin-flips). Failure *arrival* times must come
    /// from [`Self::sample_next_failure`] instead so the likelihood ratio
    /// stays exact.
    #[inline]
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        &mut self.rng
    }

    /// The current excursion's likelihood ratio (exactly 1.0 unbiased).
    #[inline]
    pub fn weight(&self) -> f64 {
        self.pw.weight()
    }

    /// Failure arrivals recorded so far.
    #[inline]
    pub fn disk_failures(&self) -> u64 {
        self.disk_failures
    }

    /// Completed likelihood-ratio excursions (regeneration cycles plus the
    /// censored one closed at the horizon).
    #[inline]
    pub fn excursions(&self) -> u64 {
        self.excursions
    }

    /// Sum of final excursion weights (`E[weight] = 1` per excursion).
    #[inline]
    pub fn excursion_weight(&self) -> f64 {
        self.excursion_weight
    }

    /// Sample the gap (hours) to the next failure arrival with
    /// `failed_disks` currently down and true aggregate intensity
    /// `true_rate`, drawn at `bias.multiplier(failed_disks) × true_rate`.
    /// Memoizes the pair for subsequent exposure accounting.
    #[inline]
    pub fn sample_gap(&mut self, failed_disks: u32, true_rate: f64) -> f64 {
        self.mult = self.bias.multiplier(failed_disks);
        self.true_rate = true_rate;
        sample_exponential(&mut self.rng, self.mult * true_rate)
    }

    /// [`Self::sample_gap`] expressed as an absolute time: `now + gap`.
    #[inline]
    pub fn sample_next_failure(&mut self, failed_disks: u32, true_rate: f64) -> f64 {
        let gap = self.sample_gap(failed_disks, true_rate);
        self.now + gap
    }

    /// Advance the clock to `t`, charging likelihood-ratio exposure for the
    /// elapsed interval at the memoized multiplier/rate.
    #[inline]
    pub fn advance_to(&mut self, t: f64) {
        self.pw.exposure(self.mult, self.true_rate, t - self.now);
        self.now = t;
    }

    /// Record one failure arrival (jump term of the likelihood ratio).
    #[inline]
    pub fn record_failure(&mut self) {
        self.disk_failures += 1;
        self.pw.event(self.mult);
    }

    /// Close the current excursion at a regeneration point (return to
    /// all-healthy, or a catastrophic reset): record its final weight and
    /// start a fresh one.
    #[inline]
    pub fn regenerate(&mut self) {
        self.excursions += 1;
        self.excursion_weight += self.pw.weight();
        self.pw.reset();
    }

    /// Censor the run at the horizon: charge exposure for the remaining
    /// interval and close the in-progress excursion (valid by optional
    /// stopping at a bounded time).
    pub fn censor_at_horizon(&mut self) {
        self.pw
            .exposure(self.mult, self.true_rate, self.horizon - self.now);
        self.now = self.horizon;
        self.regenerate();
    }
}

/// Where the system simulator's disk-failure arrivals come from. Trace
/// replay is just another arrival source behind the same interface (build
/// one with [`crate::trace::FailureTrace::arrival_source`]).
#[derive(Debug, Clone)]
pub enum ArrivalSource {
    /// Exponential inter-arrival at the given aggregate rate per hour;
    /// disks chosen uniformly by the consumer.
    Exponential {
        /// Aggregate failure intensity, events/hour.
        rate_per_hour: f64,
    },
    /// Pre-recorded `(time_h, disk)` events, time-ascending.
    Trace {
        /// The recorded events.
        events: Vec<(f64, u32)>,
        /// Replay cursor.
        index: usize,
    },
}

impl ArrivalSource {
    /// A stochastic source at the given aggregate intensity.
    pub fn exponential(rate_per_hour: f64) -> ArrivalSource {
        ArrivalSource::Exponential { rate_per_hour }
    }

    /// A trace-replay source over pre-sorted `(time_h, disk)` records.
    pub fn trace(events: Vec<(f64, u32)>) -> ArrivalSource {
        ArrivalSource::Trace { events, index: 0 }
    }

    /// The next arrival at or after `from`: a fresh exponential gap sampled
    /// through the kernel (one RNG draw), or the next in-order trace record
    /// (records behind `from` are skipped, uncounted — traces are
    /// pre-sorted, so this is defensive only). `None` once a trace is
    /// exhausted. The disk is `Some` for trace records and `None` for
    /// stochastic arrivals (the consumer draws it uniformly at pop time,
    /// preserving the gap-then-disk draw order).
    pub fn next_arrival(
        &mut self,
        kernel: &mut HazardKernel,
        from: f64,
    ) -> Option<(f64, Option<u32>)> {
        match self {
            ArrivalSource::Exponential { rate_per_hour } => {
                let dt = kernel.sample_gap(0, *rate_per_hour);
                Some((from + dt, None))
            }
            ArrivalSource::Trace { events, index } => {
                while let Some(&(t, disk)) = events.get(*index) {
                    *index += 1;
                    if t < from {
                        continue;
                    }
                    return Some((t, Some(disk)));
                }
                None
            }
        }
    }
}

/// What a [`PoolPolicy`] decided about a failure arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureOutcome {
    /// The pool absorbed the failure and remains degraded (or healthy).
    Continue,
    /// Thinning/repair concluded the pool is back to all-healthy: a
    /// regeneration point (the kernel closes the excursion).
    Regenerated,
    /// The pool went catastrophic; the policy has already reset its own
    /// state to healthy (network repair rebuilds the pool).
    Catastrophic {
        /// Concurrently failed disks at the event.
        concurrent_failures: u32,
        /// Lost local stripes (sampled for Dp, all stripes for Cp).
        lost_stripes: f64,
    },
}

/// Pool-state policy driven by [`run_pool_policy`]: the clustered and
/// declustered pool simulators expressed as state transitions over the
/// shared kernel. See `ClusteredPolicy`/`DeclusteredPolicy` in
/// [`crate::pool_sim`].
pub trait PoolPolicy {
    /// Currently failed disks (drives the bias multiplier).
    fn failed_disks(&self) -> u32;

    /// True aggregate failure intensity (events/hour) with `failed` disks
    /// down.
    fn failure_rate(&self, failed: u32) -> f64;

    /// Absolute time of the next internal repair event — clustered rebuild
    /// completion or declustered full-drain completion — or infinity.
    fn next_repair_event(&self, now: f64) -> f64;

    /// Tie rule at `next_failure == next_repair_event`: `true` handles the
    /// failure first (declustered), `false` the repair (clustered). The
    /// asymmetry is load-bearing for the fixed-seed goldens.
    fn failure_wins_ties(&self) -> bool;

    /// Apply continuous repair progress over `(from, to]` (the declustered
    /// drain; a no-op for clustered pools).
    fn on_repair_progress(&mut self, from: f64, to: f64);

    /// Handle the internal repair event at `now`; `failed_before` is the
    /// failed-disk count at the start of the step. Returns `true` when the
    /// pool returned to all-healthy (a regeneration point).
    fn on_repair_event(&mut self, now: f64, failed_before: u32) -> bool;

    /// Handle a failure arrival at `kernel.now()`. The kernel has already
    /// recorded the arrival (jump weight); the policy may draw thinning
    /// randomness through `kernel.rng()`. On a catastrophic outcome the
    /// policy resets its own state to healthy before returning.
    fn on_failure(&mut self, kernel: &mut HazardKernel) -> FailureOutcome;

    /// Maximum concurrent failures seen (policy-specific accounting — the
    /// declustered simulator deliberately excludes the everything-failed
    /// catastrophic branch, mirroring the original loop).
    fn max_concurrent(&self) -> u32;
}

/// The shared next-event loop of both pool simulators: sample the next
/// biased failure arrival, race it against the policy's next repair event,
/// charge exposure, censor at the horizon, and route regeneration and
/// catastrophic outcomes through the kernel. Returns the catastrophic
/// events observed (each carrying its excursion's likelihood weight).
pub fn run_pool_policy<P: PoolPolicy, O: SimObserver>(
    kernel: &mut HazardKernel,
    policy: &mut P,
    observer: &mut O,
) -> Vec<CatastrophicEvent> {
    let mut events = Vec::new();
    loop {
        let failed = policy.failed_disks();
        let next_fail = kernel.sample_next_failure(failed, policy.failure_rate(failed));
        let next_repair = policy.next_repair_event(kernel.now());
        let step_to = next_fail.min(next_repair);
        if step_to > kernel.horizon() {
            let from = kernel.now();
            kernel.censor_at_horizon();
            if failed > 0 {
                observer.on_degraded_interval(from, kernel.now(), failed);
            }
            break;
        }
        let from = kernel.now();
        kernel.advance_to(step_to);
        if failed > 0 {
            observer.on_degraded_interval(from, step_to, failed);
        }
        policy.on_repair_progress(from, step_to);
        let failure_fires = if policy.failure_wins_ties() {
            next_fail <= next_repair
        } else {
            next_fail < next_repair
        };
        if failure_fires {
            kernel.record_failure();
            match policy.on_failure(kernel) {
                FailureOutcome::Continue => {
                    observer.on_disk_failure(step_to, policy.failed_disks());
                }
                FailureOutcome::Regenerated => {
                    observer.on_disk_failure(step_to, policy.failed_disks());
                    kernel.regenerate();
                }
                FailureOutcome::Catastrophic {
                    concurrent_failures,
                    lost_stripes,
                } => {
                    let weight = kernel.weight();
                    observer.on_disk_failure(step_to, concurrent_failures);
                    observer.on_catastrophe(step_to, concurrent_failures, lost_stripes, weight);
                    events.push(CatastrophicEvent {
                        time_h: step_to,
                        concurrent_failures,
                        lost_stripes,
                        weight,
                    });
                    kernel.regenerate();
                }
            }
        } else {
            let healthy = policy.on_repair_event(step_to, failed);
            observer.on_repair(step_to, policy.failed_disks());
            if healthy {
                kernel.regenerate();
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn kernel(bias: FailureBias) -> HazardKernel {
        HazardKernel::new(ChaCha12Rng::seed_from_u64(7), bias, 1000.0)
    }

    #[test]
    fn unbiased_kernel_weight_stays_exactly_one() {
        let mut k = kernel(FailureBias::NONE);
        let t = k.sample_next_failure(0, 0.01);
        k.advance_to(t);
        k.record_failure();
        assert_eq!(k.weight(), 1.0);
        assert_eq!(k.disk_failures(), 1);
        k.censor_at_horizon();
        assert_eq!(k.excursions(), 1);
        assert_eq!(k.excursion_weight(), 1.0);
    }

    #[test]
    fn kernel_draws_match_raw_sampling() {
        // The kernel consumes exactly the draws the hand-rolled loops did:
        // one exponential per sample_next_failure, nothing else.
        let mut raw = ChaCha12Rng::seed_from_u64(42);
        let mut k = HazardKernel::new(ChaCha12Rng::seed_from_u64(42), FailureBias::NONE, 1e9);
        for _ in 0..100 {
            // The policy hands the kernel the total rate for the current
            // state (here: 3 failed disks, total rate 0.02/h).
            let expect = sample_exponential(&mut raw, 0.02);
            let got = k.sample_next_failure(3, 0.02) - k.now();
            assert_eq!(got.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn biased_kernel_accumulates_exact_likelihood_ratio() {
        // One exposure interval then one jump under bias b: LR must equal
        // exp((b-1) r dt) / b bit-for-bit with the PathWeight closed form.
        let bias = FailureBias::degraded_only(50.0);
        let mut k = kernel(bias);
        let r = 2e-4;
        let t = k.sample_next_failure(2, r);
        let dt = t - k.now();
        k.advance_to(t);
        k.record_failure();
        let mut pw = PathWeight::new();
        pw.exposure(50.0, r, dt);
        pw.event(50.0);
        assert_eq!(k.weight().to_bits(), pw.weight().to_bits());
        k.regenerate();
        assert_eq!(k.weight(), 1.0, "regeneration resets the excursion");
        assert_eq!(k.excursions(), 1);
    }

    #[test]
    fn exponential_arrival_source_matches_direct_gap() {
        let mut raw = ChaCha12Rng::seed_from_u64(9);
        let expect = sample_exponential(&mut raw, 5.0);
        let mut k = HazardKernel::new(ChaCha12Rng::seed_from_u64(9), FailureBias::NONE, 1e9);
        let mut src = ArrivalSource::exponential(5.0);
        let (t, disk) = src.next_arrival(&mut k, 100.0).unwrap();
        assert_eq!(disk, None);
        assert_eq!(t.to_bits(), (100.0 + expect).to_bits());
    }

    #[test]
    fn trace_arrival_source_skips_stale_records_and_exhausts() {
        let mut k = kernel(FailureBias::NONE);
        let mut src = ArrivalSource::trace(vec![(1.0, 10), (2.0, 20), (5.0, 30)]);
        assert_eq!(src.next_arrival(&mut k, 1.5), Some((2.0, Some(20))));
        assert_eq!(src.next_arrival(&mut k, 2.0), Some((5.0, Some(30))));
        assert_eq!(src.next_arrival(&mut k, 0.0), None, "exhausted");
    }
}
